//! Determinism and zero-perturbation guarantees of the observability
//! layer.
//!
//! The contract (DESIGN.md §5.4): exported artifacts are a pure function
//! of the simulated work — byte-identical no matter how many threads ran
//! the schemes; attaching an observer never changes a single simulated
//! number; and every derived metric reconciles exactly with the golden
//! `SimStats` counters it was folded from.

use obs::{export, Recorder};
use rand::{rngs::StdRng, SeedableRng};
use reliability::mc;
use ssd::{Scheme, SimObserver, SimStats, SsdConfig, SsdSimulator, StageKind, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// Same knobs as the golden fixture, shrunk for test runtime.
fn fixture_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(4_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

fn config_for(scheme: Scheme, model: TimingModel) -> SsdConfig {
    SsdConfig::scaled(scheme, 64)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(model)
}

/// Runs one observed simulation and returns its stats and recorder.
fn observed_run(scheme: Scheme, trace: &Trace, model: TimingModel) -> (SimStats, Recorder) {
    let mut sim =
        SsdSimulator::new(config_for(scheme, model)).with_observer(SimObserver::new(scheme, 100));
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()));
    let stats = sim.stats().clone();
    let recorder = sim
        .take_observer()
        .expect("observer attached")
        .into_recorder();
    (stats, recorder)
}

/// Replays every scheme on `threads` worker threads and merges the
/// per-scheme recorders in fixed scheme order — the production pattern
/// `flexlevel-sim --all-schemes` uses.
fn merged_recorder(trace: &Trace, model: TimingModel, threads: u32) -> Recorder {
    let recorders = mc::parallel_map(Scheme::ALL.to_vec(), threads, |_, scheme| {
        observed_run(scheme, trace, model).1
    });
    let mut combined = Recorder::new();
    for recorder in &recorders {
        combined.merge(recorder);
    }
    combined
}

/// Every exported artifact — Prometheus text, span JSONL, Chrome trace —
/// is byte-identical whether the schemes ran on 1, 2 or 8 threads.
#[test]
fn exports_are_byte_identical_across_thread_counts() {
    let trace = fixture_trace();
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        let base = merged_recorder(&trace, model, 1);
        let prom = export::prometheus(&base.metrics);
        let jsonl = export::span_jsonl(&base.spans);
        let chrome = export::chrome_trace(&base.spans);
        for threads in [2u32, 8] {
            let other = merged_recorder(&trace, model, threads);
            assert_eq!(
                prom,
                export::prometheus(&other.metrics),
                "{}: .prom drifted at {threads} threads",
                model.label()
            );
            assert_eq!(
                jsonl,
                export::span_jsonl(&other.spans),
                "{}: span JSONL drifted at {threads} threads",
                model.label()
            );
            assert_eq!(
                chrome,
                export::chrome_trace(&other.spans),
                "{}: Chrome trace drifted at {threads} threads",
                model.label()
            );
        }
    }
}

/// Attaching an observer must not perturb the simulation: the full
/// `SimStats` — every counter, latency sample and stage account — is
/// identical with and without one, under both timing models.
#[test]
fn observer_does_not_perturb_simulation() {
    let trace = fixture_trace();
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        for scheme in Scheme::ALL {
            let mut bare = SsdSimulator::new(config_for(scheme, model));
            let untraced = bare
                .run(&trace)
                .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()))
                .clone();
            let (traced, _) = observed_run(scheme, &trace, model);
            assert_eq!(
                untraced,
                traced,
                "{} / {}: observer perturbed the simulation",
                scheme.label(),
                model.label()
            );
        }
    }
}

/// The registry's logical counters are a timing-model invariant: both
/// backends replay the same logical simulation, so the folded counter
/// series match name-for-name, value-for-value.
#[test]
fn registry_counters_match_across_timing_models() {
    let trace = fixture_trace();
    for scheme in Scheme::ALL {
        let (_, single) = observed_run(scheme, &trace, TimingModel::SingleQueue);
        let (_, piped) = observed_run(scheme, &trace, TimingModel::Pipelined);
        let labels: &[(&str, &str)] = &[("scheme", scheme.label())];
        for name in [
            "flexlevel_host_reads_total",
            "flexlevel_host_writes_total",
            "flexlevel_buffer_read_hits_total",
            "flexlevel_flash_reads_total",
            "flexlevel_flash_programs_total",
            "flexlevel_erases_total",
            "flexlevel_gc_runs_total",
            "flexlevel_gc_migrated_pages_total",
            "flexlevel_promotions_total",
            "flexlevel_demotions_total",
            "flexlevel_reduced_reads_total",
        ] {
            let a = single.metrics.find_counter(name, labels);
            let b = piped.metrics.find_counter(name, labels);
            assert!(
                a.is_some(),
                "{}: {name} missing from registry",
                scheme.label()
            );
            assert_eq!(
                a,
                b,
                "{}: {name} differs across timing models",
                scheme.label()
            );
        }
    }
}

/// Histogram-derived stage metrics reconcile exactly with the golden
/// `StageAccount`s: for every stage, the busy/wait histogram populations
/// and the `flexlevel_stage_ops_total` counter all equal `ops`.
#[test]
fn stage_histograms_reconcile_with_stage_accounts() {
    let trace = fixture_trace();
    let (stats, recorder) = observed_run(Scheme::FlexLevel, &trace, TimingModel::Pipelined);
    let scheme = Scheme::FlexLevel.label();
    let mut total_ops = 0;
    for kind in StageKind::ALL {
        let ops = stats.stage(kind).ops;
        total_ops += ops;
        let labels: &[(&str, &str)] = &[("scheme", scheme), ("stage", kind.label())];
        let busy = recorder
            .metrics
            .find_histogram("flexlevel_stage_busy_us", labels)
            .unwrap_or_else(|| panic!("{} busy histogram missing", kind.label()));
        let wait = recorder
            .metrics
            .find_histogram("flexlevel_stage_wait_us", labels)
            .unwrap_or_else(|| panic!("{} wait histogram missing", kind.label()));
        assert_eq!(
            busy.count(),
            ops,
            "{}: busy histogram count != StageAccount ops",
            kind.label()
        );
        assert_eq!(
            wait.count(),
            ops,
            "{}: wait histogram count != StageAccount ops",
            kind.label()
        );
        assert_eq!(
            recorder
                .metrics
                .find_counter("flexlevel_stage_ops_total", labels),
            Some(ops),
            "{}: stage ops counter != StageAccount ops",
            kind.label()
        );
        let busy_total: f64 = stats.stage(kind).busy_us;
        assert!(
            (busy.sum() - busy_total).abs() <= busy_total.abs() * 1e-9,
            "{}: busy histogram sum {} != StageAccount busy_us {}",
            kind.label(),
            busy.sum(),
            busy_total
        );
    }
    assert!(total_ops > 0, "pipelined run recorded no stage executions");
}
