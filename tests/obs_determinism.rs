//! Determinism and zero-perturbation guarantees of the observability
//! layer.
//!
//! The contract (DESIGN.md §5.4): exported artifacts are a pure function
//! of the simulated work — byte-identical no matter how many threads ran
//! the schemes; attaching an observer never changes a single simulated
//! number; and every derived metric reconciles exactly with the golden
//! `SimStats` counters it was folded from.

use obs::{export, Recorder};
use rand::{rngs::StdRng, SeedableRng};
use reliability::mc;
use ssd::{Scheme, SimObserver, SimStats, SsdConfig, SsdSimulator, StageKind, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// Same knobs as the golden fixture, shrunk for test runtime.
fn fixture_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(4_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

fn config_for(scheme: Scheme, model: TimingModel) -> SsdConfig {
    SsdConfig::scaled(scheme, 64)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(model)
}

/// Runs one observed simulation and returns its stats and recorder.
fn observed_run(scheme: Scheme, trace: &Trace, model: TimingModel) -> (SimStats, Recorder) {
    let mut sim =
        SsdSimulator::new(config_for(scheme, model)).with_observer(SimObserver::new(scheme, 100));
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()));
    let stats = sim.stats().clone();
    let recorder = sim
        .take_observer()
        .expect("observer attached")
        .into_recorder();
    (stats, recorder)
}

/// Replays every scheme on `threads` worker threads and merges the
/// per-scheme recorders in fixed scheme order — the production pattern
/// `flexlevel-sim --all-schemes` uses.
fn merged_recorder(trace: &Trace, model: TimingModel, threads: u32) -> Recorder {
    let recorders = mc::parallel_map(Scheme::ALL.to_vec(), threads, |_, scheme| {
        observed_run(scheme, trace, model).1
    });
    let mut combined = Recorder::new();
    for recorder in &recorders {
        combined.merge(recorder);
    }
    combined
}

/// Every exported artifact — Prometheus text, span JSONL, Chrome trace —
/// is byte-identical whether the schemes ran on 1, 2 or 8 threads.
#[test]
fn exports_are_byte_identical_across_thread_counts() {
    let trace = fixture_trace();
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        let base = merged_recorder(&trace, model, 1);
        let prom = export::prometheus(&base.metrics);
        let jsonl = export::span_jsonl(&base.spans);
        let chrome = export::chrome_trace(&base.spans);
        for threads in [2u32, 8] {
            let other = merged_recorder(&trace, model, threads);
            assert_eq!(
                prom,
                export::prometheus(&other.metrics),
                "{}: .prom drifted at {threads} threads",
                model.label()
            );
            assert_eq!(
                jsonl,
                export::span_jsonl(&other.spans),
                "{}: span JSONL drifted at {threads} threads",
                model.label()
            );
            assert_eq!(
                chrome,
                export::chrome_trace(&other.spans),
                "{}: Chrome trace drifted at {threads} threads",
                model.label()
            );
        }
    }
}

/// Attaching an observer must not perturb the simulation: the full
/// `SimStats` — every counter, latency sample and stage account — is
/// identical with and without one, under both timing models.
#[test]
fn observer_does_not_perturb_simulation() {
    let trace = fixture_trace();
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        for scheme in Scheme::ALL {
            let mut bare = SsdSimulator::new(config_for(scheme, model));
            let untraced = bare
                .run(&trace)
                .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()))
                .clone();
            let (traced, _) = observed_run(scheme, &trace, model);
            assert_eq!(
                untraced,
                traced,
                "{} / {}: observer perturbed the simulation",
                scheme.label(),
                model.label()
            );
        }
    }
}

/// The registry's logical counters are a timing-model invariant: both
/// backends replay the same logical simulation, so the folded counter
/// series match name-for-name, value-for-value.
#[test]
fn registry_counters_match_across_timing_models() {
    let trace = fixture_trace();
    for scheme in Scheme::ALL {
        let (_, single) = observed_run(scheme, &trace, TimingModel::SingleQueue);
        let (_, piped) = observed_run(scheme, &trace, TimingModel::Pipelined);
        let labels: &[(&str, &str)] = &[("scheme", scheme.label())];
        for name in [
            "flexlevel_host_reads_total",
            "flexlevel_host_writes_total",
            "flexlevel_buffer_read_hits_total",
            "flexlevel_flash_reads_total",
            "flexlevel_flash_programs_total",
            "flexlevel_erases_total",
            "flexlevel_gc_runs_total",
            "flexlevel_gc_migrated_pages_total",
            "flexlevel_promotions_total",
            "flexlevel_demotions_total",
            "flexlevel_reduced_reads_total",
        ] {
            let a = single.metrics.find_counter(name, labels);
            let b = piped.metrics.find_counter(name, labels);
            assert!(
                a.is_some(),
                "{}: {name} missing from registry",
                scheme.label()
            );
            assert_eq!(
                a,
                b,
                "{}: {name} differs across timing models",
                scheme.label()
            );
        }
    }
}

const SERIES_INTERVAL_US: u64 = 2_000;

/// Like [`observed_run`] but with windowed series sampling attached.
fn observed_series_run(scheme: Scheme, trace: &Trace, model: TimingModel) -> (SimStats, Recorder) {
    let observer = SimObserver::new(scheme, 100).with_series(SERIES_INTERVAL_US);
    let mut sim = SsdSimulator::new(config_for(scheme, model)).with_observer(observer);
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()));
    let stats = sim.stats().clone();
    let recorder = sim
        .take_observer()
        .expect("observer attached")
        .into_recorder();
    (stats, recorder)
}

/// Series-enabled variant of [`merged_recorder`].
fn merged_series_recorder(trace: &Trace, model: TimingModel, threads: u32) -> Recorder {
    let recorders = mc::parallel_map(Scheme::ALL.to_vec(), threads, |_, scheme| {
        observed_series_run(scheme, trace, model).1
    });
    let mut combined = Recorder::new();
    for recorder in &recorders {
        combined.merge(recorder);
    }
    combined
}

/// The series JSONL is bit-identical across 1/2/8 worker threads *and*
/// across both timing backends: the sampler is keyed to trace arrival
/// times and samples only logical values, so neither the thread schedule
/// nor the timing model can leak into a single byte.
#[test]
fn series_jsonl_is_byte_identical_across_threads_and_backends() {
    let trace = fixture_trace();
    let single = merged_series_recorder(&trace, TimingModel::SingleQueue, 1);
    let golden = export::series_jsonl(&single.series);
    assert!(!golden.is_empty(), "series export produced no lines");
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        for threads in [1u32, 2, 8] {
            if model == TimingModel::SingleQueue && threads == 1 {
                continue;
            }
            let other = merged_series_recorder(&trace, model, threads);
            assert_eq!(
                golden,
                export::series_jsonl(&other.series),
                "series JSONL drifted at {} / {threads} threads",
                model.label()
            );
        }
    }
}

/// Window bookkeeping is exact: windows are consecutive from 0 with
/// nominal end times, deltas telescope onto cumulative values, the last
/// (partial) window is flushed exactly once, and the final cumulative
/// row equals the end-of-run `SimStats` counters.
#[test]
fn series_windows_are_exact_and_final_flush_is_single() {
    let trace = fixture_trace();
    let last_arrival = trace.requests.last().expect("non-empty trace").arrival_us;
    let (stats, recorder) = observed_series_run(Scheme::FlexLevel, &trace, TimingModel::Pipelined);
    assert_eq!(recorder.series.len(), 1, "one block per run");
    let block = &recorder.series[0];
    assert_eq!(block.scheme, Scheme::FlexLevel.label());

    // Every boundary the trace crossed is emitted, plus exactly one
    // flush of the open partial window at end-of-run.
    let crossed = (last_arrival / SERIES_INTERVAL_US as f64).floor() as u64;
    assert_eq!(
        block.snapshots.len() as u64,
        crossed + 1,
        "expected {crossed} full windows + exactly one flushed partial window"
    );

    let mut prev: Option<&Vec<u64>> = None;
    for (k, snap) in block.snapshots.iter().enumerate() {
        assert_eq!(snap.window, k as u64, "windows must be consecutive");
        assert_eq!(
            snap.t_us,
            ((k as u64 + 1) * SERIES_INTERVAL_US) as f64,
            "window {k}: t_us must be the nominal window end"
        );
        assert_eq!(snap.cumulative.len(), block.counters.len());
        assert_eq!(snap.delta.len(), block.counters.len());
        assert_eq!(snap.gauges.len(), block.gauges.len());
        for (c, name) in block.counters.iter().enumerate() {
            let before = prev.map_or(0, |p| p[c]);
            assert!(
                snap.cumulative[c] >= before,
                "window {k}: {name} cumulative decreased"
            );
            assert_eq!(
                snap.delta[c],
                snap.cumulative[c] - before,
                "window {k}: {name} delta does not telescope"
            );
        }
        prev = Some(&snap.cumulative);
    }

    // The flushed row is the end-of-run state: its cumulative counters
    // match the golden SimStats exactly.
    let last = block.snapshots.last().expect("at least the flushed window");
    let col = |name: &str| {
        let i = block
            .counters
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("{name} missing from series schema"));
        last.cumulative[i]
    };
    assert_eq!(col("host_reads"), stats.host_reads);
    assert_eq!(col("host_writes"), stats.host_writes);
    assert_eq!(col("flash_reads"), stats.flash_reads);
    assert_eq!(col("flash_programs"), stats.flash_programs);
    assert_eq!(col("erases"), stats.erases);
    assert_eq!(col("gc_runs"), stats.gc_runs);
    assert_eq!(col("retry_reads"), stats.retry_reads);
}

/// Histogram-derived stage metrics reconcile exactly with the golden
/// `StageAccount`s: for every stage, the busy/wait histogram populations
/// and the `flexlevel_stage_ops_total` counter all equal `ops`.
#[test]
fn stage_histograms_reconcile_with_stage_accounts() {
    let trace = fixture_trace();
    let (stats, recorder) = observed_run(Scheme::FlexLevel, &trace, TimingModel::Pipelined);
    let scheme = Scheme::FlexLevel.label();
    let mut total_ops = 0;
    for kind in StageKind::ALL {
        let ops = stats.stage(kind).ops;
        total_ops += ops;
        let labels: &[(&str, &str)] = &[("scheme", scheme), ("stage", kind.label())];
        let busy = recorder
            .metrics
            .find_histogram("flexlevel_stage_busy_us", labels)
            .unwrap_or_else(|| panic!("{} busy histogram missing", kind.label()));
        let wait = recorder
            .metrics
            .find_histogram("flexlevel_stage_wait_us", labels)
            .unwrap_or_else(|| panic!("{} wait histogram missing", kind.label()));
        assert_eq!(
            busy.count(),
            ops,
            "{}: busy histogram count != StageAccount ops",
            kind.label()
        );
        assert_eq!(
            wait.count(),
            ops,
            "{}: wait histogram count != StageAccount ops",
            kind.label()
        );
        assert_eq!(
            recorder
                .metrics
                .find_counter("flexlevel_stage_ops_total", labels),
            Some(ops),
            "{}: stage ops counter != StageAccount ops",
            kind.label()
        );
        let busy_total: f64 = stats.stage(kind).busy_us;
        assert!(
            (busy.sum() - busy_total).abs() <= busy_total.abs() * 1e-9,
            "{}: busy histogram sum {} != StageAccount busy_us {}",
            kind.label(),
            busy.sum(),
            busy_total
        );
    }
    assert!(total_ops > 0, "pipelined run recorded no stage executions");
}
