//! Integration of the LDPC stack with the device reliability models: the
//! decoder must succeed exactly where the sensing schedule says it can.

use flash_model::{Hours, LevelConfig};
use ldpc::{
    decode_success_rate, encode, random_info, ChannelStress, DecoderGraph, MinSumDecoder,
    MlcReadChannel, QcLdpcCode, SoftSensingConfig,
};
use rand::{rngs::StdRng, SeedableRng};

/// Soft sensing rescues frames that hard decision loses at a stress point
/// where the baseline raw BER is far beyond hard-decision capability.
#[test]
fn soft_sensing_rescues_harsh_stress() {
    let code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::new(&code);
    let decoder = MinSumDecoder::new();
    let cfg = LevelConfig::normal_mlc();
    let mut rng = StdRng::seed_from_u64(1);

    let hard = MlcReadChannel::build_lower_page(
        &cfg,
        ChannelStress::retention(6000, Hours::months(1.0)),
        SoftSensingConfig::hard_decision(),
        60_000,
        11,
    );
    let (hard_success, _) = decode_success_rate(&code, &graph, &decoder, &hard, 6, &mut rng);

    let soft = MlcReadChannel::build_lower_page(
        &cfg,
        ChannelStress::retention(6000, Hours::months(1.0)),
        SoftSensingConfig::soft(6),
        60_000,
        11,
    );
    let (soft_success, _) = decode_success_rate(&code, &graph, &decoder, &soft, 6, &mut rng);

    assert!(
        soft_success > hard_success,
        "soft ({soft_success}) must beat hard ({hard_success})"
    );
    assert!(
        soft_success >= 0.99,
        "six extra levels must decode reliably, got {soft_success}"
    );
}

/// At mild stress the hard-decision read already decodes — the Table 5
/// zero entries.
#[test]
fn mild_stress_needs_no_soft_sensing() {
    let code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::new(&code);
    let decoder = MinSumDecoder::new();
    let cfg = LevelConfig::normal_mlc();
    let mut rng = StdRng::seed_from_u64(2);
    let channel = MlcReadChannel::build_lower_page(
        &cfg,
        ChannelStress::retention(2000, Hours::days(1.0)),
        SoftSensingConfig::hard_decision(),
        60_000,
        12,
    );
    let (success, iters) = decode_success_rate(&code, &graph, &decoder, &channel, 6, &mut rng);
    assert_eq!(success, 1.0, "2000 P/E / 1 day must decode hard-decision");
    assert!(iters < 10.0, "convergence should be quick, got {iters}");
}

/// Decoder iterations grow with stress — the input to the latency model's
/// `typical_iterations` heuristic.
#[test]
fn iterations_grow_with_stress() {
    let code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::new(&code);
    let decoder = MinSumDecoder::new();
    let cfg = LevelConfig::normal_mlc();
    let mut rng = StdRng::seed_from_u64(3);
    let mut iter_curve = Vec::new();
    for (pe, t) in [(2000u32, Hours::days(1.0)), (6000, Hours::months(1.0))] {
        let channel = MlcReadChannel::build_lower_page(
            &cfg,
            ChannelStress::retention(pe, t),
            SoftSensingConfig::soft(6),
            60_000,
            13,
        );
        let (_, iters) = decode_success_rate(&code, &graph, &decoder, &channel, 6, &mut rng);
        iter_curve.push(iters);
    }
    assert!(
        iter_curve[1] >= iter_curve[0],
        "harsher stress must not converge faster: {iter_curve:?}"
    );
}

/// The C2C noise source also passes through the channel (full stress).
#[test]
fn full_stress_channel_builds_and_decodes() {
    let code = QcLdpcCode::small_test_code();
    let graph = DecoderGraph::new(&code);
    let decoder = MinSumDecoder::new();
    let cfg = LevelConfig::normal_mlc();
    let mut rng = StdRng::seed_from_u64(4);
    let channel = MlcReadChannel::build_lower_page(
        &cfg,
        ChannelStress::full(4000, Hours::weeks(1.0)),
        SoftSensingConfig::soft(4),
        40_000,
        14,
    );
    assert!(channel.raw_ber() > 0.0);
    let (success, _) = decode_success_rate(&code, &graph, &decoder, &channel, 10, &mut rng);
    assert!(success >= 0.9, "success {success}");
}

/// Codeword length sanity across the stack: one rate-8/9 codeword per
/// 4 KB block, matching the UBER configuration in `reliability`.
#[test]
fn code_matches_uber_config() {
    let code = QcLdpcCode::paper_code();
    let ecc = reliability::EccConfig::paper_ldpc();
    assert_eq!(code.info_bits() as u64, ecc.info_bits);
    assert_eq!(code.codeword_bits() as u64, ecc.codeword_bits);
    // And the encoder produces codewords of exactly that size.
    let mut rng = StdRng::seed_from_u64(5);
    let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
    assert_eq!(cw.len() as u64, ecc.codeword_bits);
}
