//! Cross-model integration tests for the two timing models.
//!
//! The pipelined discrete-event model must be a pure *timing* refinement
//! of the single-queue model: the logical layer (buffer, FTL, GC,
//! AccessEval, RNG draws) is shared, so every integer counter matches
//! bit-for-bit on any trace. On top of that the pipelined model must be
//! deterministic run-to-run, and extra parallel resources (dies,
//! decoder slots) must buy real throughput on a read-heavy trace.

use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SimStats, SsdConfig, SsdSimulator, StageKind, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// The golden fixture trace (same knobs as `golden_sim.rs`).
fn golden_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(6_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

/// A read-heavy trace (web1 is 99% reads) with tight inter-arrivals so
/// the device saturates and parallelism is the bottleneck resource.
fn read_heavy_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() / 2;
    WorkloadSpec::web1()
        .with_requests(8_000)
        .with_footprint(footprint)
        .with_interarrival_scale(0.05)
        .generate(&mut StdRng::seed_from_u64(0xB00C))
}

fn run_with(scheme: Scheme, trace: &Trace, model: TimingModel, dies: u32, slots: u32) -> SimStats {
    let config = SsdConfig::scaled(scheme, 64)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(model)
        .with_dies_per_channel(dies)
        .with_decoder_slots(slots);
    let mut sim = SsdSimulator::new(config);
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()))
        .clone()
}

fn counters(stats: &SimStats) -> [u64; 11] {
    [
        stats.host_reads,
        stats.host_writes,
        stats.buffer_read_hits,
        stats.flash_reads,
        stats.flash_programs,
        stats.erases,
        stats.gc_runs,
        stats.gc_migrated_pages,
        stats.promotions,
        stats.demotions,
        stats.reduced_reads,
    ]
}

/// Both timing models replay the same logical simulation: every integer
/// counter matches exactly for every scheme, even with parallel
/// resources configured, because decisions never depend on timing.
#[test]
fn pipelined_counters_match_single_queue_for_all_schemes() {
    let trace = golden_trace();
    for scheme in Scheme::ALL {
        let single = run_with(scheme, &trace, TimingModel::SingleQueue, 1, 1);
        let piped = run_with(scheme, &trace, TimingModel::Pipelined, 1, 1);
        assert_eq!(
            counters(&single),
            counters(&piped),
            "{}: pipelined counters drifted from single-queue",
            scheme.label()
        );
        let wide = run_with(scheme, &trace, TimingModel::Pipelined, 4, 4);
        assert_eq!(
            counters(&single),
            counters(&wide),
            "{}: counters must not depend on die/decoder parallelism",
            scheme.label()
        );
    }
}

/// The pipelined model is bit-identical run-to-run: full stats equality
/// including every latency sample, stage account and the makespan.
#[test]
fn pipelined_replay_is_bit_identical() {
    let trace = golden_trace();
    let a = run_with(Scheme::FlexLevel, &trace, TimingModel::Pipelined, 4, 2);
    let b = run_with(Scheme::FlexLevel, &trace, TimingModel::Pipelined, 4, 2);
    assert_eq!(a, b, "pipelined replay must be deterministic");
}

/// On a saturating read-heavy trace, extra dies and decoder slots raise
/// throughput: the whole point of splitting sense / transfer / decode is
/// that sensing on one die overlaps transfer and decode of another.
#[test]
fn multi_die_pipelined_beats_single_queue_throughput() {
    let trace = read_heavy_trace();
    let single = run_with(Scheme::FlexLevel, &trace, TimingModel::SingleQueue, 1, 1);
    let piped = run_with(Scheme::FlexLevel, &trace, TimingModel::Pipelined, 4, 2);
    assert!(
        piped.throughput_rps() > single.throughput_rps(),
        "pipelined 4-die throughput {:.0} req/s must beat single-queue {:.0} req/s",
        piped.throughput_rps(),
        single.throughput_rps()
    );
}

/// Pipelined runs populate per-stage accounting and ordered latency
/// percentiles; the single-queue model leaves stage accounts empty but
/// still reports a makespan.
#[test]
fn stage_accounting_and_percentiles_are_reported() {
    let trace = read_heavy_trace();
    let piped = run_with(Scheme::FlexLevel, &trace, TimingModel::Pipelined, 4, 2);

    assert_eq!(piped.stage(StageKind::Sense).ops, piped.flash_reads);
    assert!(piped.stage(StageKind::Transfer).ops > 0);
    assert!(piped.stage(StageKind::Decode).busy_us > 0.0);
    assert!(piped.makespan_us > 0.0);
    for kind in StageKind::ALL {
        let util = piped.stage_utilization(kind, 4);
        assert!(
            (0.0..=1.0).contains(&util),
            "{} utilization {util} out of range",
            kind.label()
        );
        assert!(piped.mean_queue_depth(kind) >= 0.0);
    }

    let p50 = piped.response_percentile(0.50);
    let p95 = piped.response_percentile(0.95);
    let p99 = piped.response_percentile(0.99);
    assert!(p50.as_f64() <= p95.as_f64() && p95.as_f64() <= p99.as_f64());

    let single = run_with(Scheme::FlexLevel, &trace, TimingModel::SingleQueue, 1, 1);
    assert_eq!(single.stage(StageKind::Sense).ops, 0);
    assert!(single.makespan_us > 0.0);
}
