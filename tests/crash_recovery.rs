//! Crash-torture harness for the sudden-power-off recovery subsystem.
//!
//! Three layers of assurance, all fully deterministic:
//!
//! 1. **Checkpoint/restore fidelity** — a run split at an arbitrary
//!    request boundary (checkpoint → restore → resume) reproduces the
//!    uninterrupted run's `SimStats` bit-for-bit.
//! 2. **Crash-point sweep** — for three (scheme, scenario) combinations,
//!    210 seeded journal cuts (some with a torn trailing page) are each
//!    recovered onto the checkpoint image; every recovered FTL passes
//!    `check_invariants` and its logical→physical mapping matches an
//!    independent fold of the surviving journal prefix, so no
//!    acknowledged write is lost and no stale mapping is resurrected.
//! 3. **Crash → recover → resume** — full power-loss cycles through the
//!    simulator API (including pipelined and multi-threaded configs)
//!    finish with counters identical to the never-crashed golden run.

use obs::export;
use rand::{rngs::StdRng, SeedableRng};
use ssd::{
    CrashPlan, DeviceImage, FtlImage, JournalRecord, PageMapFtl, ScenarioSpec, Scheme, SimError,
    SimObserver, SimStats, SsdConfig, SsdSimulator, TimingModel, TornPage,
};
use std::collections::HashMap;
use workloads::{Trace, WorkloadSpec};

/// Shared torture workload: enough churn for thousands of journal
/// records (programs, GC erases, invalidations) on a 64-block device.
fn torture_trace() -> Trace {
    WorkloadSpec::fin2()
        .with_requests(3_000)
        .with_footprint(1_500)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

fn combo_config(scheme: Scheme, preset: &str) -> SsdConfig {
    let config = SsdConfig::scaled(scheme, 64).with_seed(7);
    ScenarioSpec::find(preset)
        .unwrap_or_else(|| panic!("unknown scenario preset {preset}"))
        .apply(config)
}

/// The backend-independent operation counters (the same set the
/// pipelined-vs-single-queue equivalence test pins).
fn logical_counters(stats: &SimStats) -> (Vec<u64>, Vec<u64>) {
    (
        vec![
            stats.host_reads,
            stats.host_writes,
            stats.buffer_read_hits,
            stats.flash_reads,
            stats.flash_programs,
            stats.erases,
            stats.gc_runs,
            stats.gc_migrated_pages,
            stats.promotions,
            stats.reduced_reads,
        ],
        stats.reads_by_sensing_level.clone(),
    )
}

/// Independently folds the checkpoint image plus a journal prefix into
/// the expected logical→physical mapping. This is the oracle the
/// recovered FTL is audited against: it shares no code with
/// `PageMapFtl::recover` beyond the record definitions.
fn expected_mapping(
    image: &FtlImage,
    journal: &[JournalRecord],
    torn: Option<TornPage>,
) -> HashMap<u64, (u32, u32)> {
    let mut map = HashMap::new();
    for (b, block) in image.block_states.iter().enumerate() {
        for (p, slot) in block.slots.iter().enumerate() {
            if let Some(lpn) = slot {
                map.insert(*lpn, (b as u32, p as u32));
            }
        }
    }
    for record in journal {
        match *record {
            JournalRecord::Write {
                lpn, block, page, ..
            }
            | JournalRecord::Map { lpn, block, page } => {
                map.insert(lpn, (block.0, page));
            }
            JournalRecord::Invalidate { lpn } => {
                map.remove(&lpn);
            }
            JournalRecord::Erase { .. }
            | JournalRecord::Retire { .. }
            | JournalRecord::Commit { .. } => {}
        }
    }
    if let Some(torn) = torn {
        map.retain(|_, &mut (b, p)| (b, p) != (torn.block.0, torn.page));
    }
    map
}

/// Audits a recovered FTL against the fold oracle: every surviving
/// journalled write must be readable at its journalled location (no
/// acknowledged-write loss) and nothing else may be mapped (no stale
/// reads through resurrected mappings).
fn audit_recovery(
    image: &FtlImage,
    journal: &[JournalRecord],
    torn: Option<TornPage>,
    recovered: &PageMapFtl,
) {
    let expected = expected_mapping(image, journal, torn);
    for (&lpn, &(block, page)) in &expected {
        let (phys, _mode) = recovered
            .placement(lpn)
            .unwrap_or_else(|| panic!("lpn {lpn} lost across recovery (cut {})", journal.len()));
        assert_eq!(
            (phys.block.0, phys.page),
            (block, page),
            "lpn {lpn} recovered to the wrong physical page"
        );
    }
    assert_eq!(
        recovered.total_valid_pages(),
        expected.len() as u64,
        "recovered FTL maps pages the journal prefix never acknowledged"
    );
}

#[test]
fn split_run_reproduces_uninterrupted_stats() {
    let trace = torture_trace();
    for scheme in [Scheme::Baseline, Scheme::FlexLevel] {
        let config = SsdConfig::scaled(scheme, 64).with_seed(7);
        let golden = {
            let mut sim = SsdSimulator::new(config.clone());
            sim.run(&trace).expect("golden run completes").clone()
        };

        let mut first = SsdSimulator::new(config.clone());
        first.run_prefix(&trace, 1_700).expect("prefix completes");
        let image = first.checkpoint().expect("checkpoint serializes");

        let mut second = SsdSimulator::restore(config, &image).expect("image restores");
        let resumed = second.resume(&trace).expect("resumed run completes");
        assert_eq!(
            resumed, &golden,
            "{scheme:?}: split run diverged from the uninterrupted run"
        );
    }
}

#[test]
fn crash_point_sweep_recovers_every_cut() {
    let combos = [
        (Scheme::FlexLevel, "baseline", 0xA11CEu64),
        (Scheme::FlexLevel, "tlc", 0xB0B5Eu64),
        (Scheme::Baseline, "read-disturb-hot", 0xCAB1Eu64),
    ];
    let trace = torture_trace();
    let mut total_points = 0usize;
    for (scheme, preset, seed) in combos {
        let config = combo_config(scheme, preset);
        let mut sim = SsdSimulator::new(config);
        sim.run_prefix(&trace, 0).expect("preload completes");
        let image = sim.checkpoint().expect("checkpoint serializes");
        sim.resume(&trace).expect("journaled run completes");
        let journal = sim.ftl().journal().expect("journal enabled").to_vec();
        assert!(
            journal.len() > 1_000,
            "{scheme:?}/{preset}: workload too small to torture ({} records)",
            journal.len()
        );

        // Replaying the whole journal must land exactly on the live
        // end-of-run FTL state.
        let (full, report) =
            PageMapFtl::recover(&image.ftl, &journal, None).expect("full replay succeeds");
        assert_eq!(full.digest(), sim.ftl().digest());
        assert_eq!(report.journal_replayed, journal.len() as u64);

        for (cut, torn_flag) in CrashPlan::sweep_points(seed, 70, journal.len()) {
            // A torn page is the program that power-failure interrupted:
            // the first record that did NOT survive, when it is a write.
            let torn = if torn_flag {
                match journal.get(cut) {
                    Some(&JournalRecord::Write { block, page, .. }) => {
                        Some(TornPage { block, page })
                    }
                    _ => None,
                }
            } else {
                None
            };
            let prefix = &journal[..cut];
            let (recovered, report) = PageMapFtl::recover(&image.ftl, prefix, torn)
                .unwrap_or_else(|e| panic!("{scheme:?}/{preset} cut {cut}: recovery failed: {e}"));
            if let Err(violation) = recovered.check_invariants() {
                panic!("{scheme:?}/{preset} cut {cut}: {violation}");
            }
            assert_eq!(report.journal_replayed, cut as u64);
            audit_recovery(&image.ftl, prefix, torn, &recovered);
            total_points += 1;
        }
    }
    assert!(
        total_points >= 200,
        "sweep only covered {total_points} crash points"
    );
}

#[test]
fn crash_restore_resume_matches_golden() {
    let trace = torture_trace();
    let config = combo_config(Scheme::FlexLevel, "baseline");
    let golden = {
        let mut sim = SsdSimulator::new(config.clone());
        sim.run(&trace).expect("golden run completes").clone()
    };

    for crash_at in [137u64, 1_500, 2_999] {
        let checkpoint_at = crash_at / 2;
        let mut sim = SsdSimulator::new(config.clone());
        sim.run_prefix(&trace, checkpoint_at)
            .expect("prefix completes");
        let base = sim.checkpoint().expect("checkpoint serializes");
        sim.set_crash_plan(Some(CrashPlan::at_request(0x5EED ^ crash_at, crash_at)));
        let err = sim.resume(&trace).expect_err("armed crash plan fires");
        assert!(
            matches!(err, SimError::PowerLoss { at_request } if at_request == crash_at),
            "unexpected error: {err}"
        );

        let crash = sim.crash_image(&base).expect("crash image serializes");
        assert_eq!(crash.crashed_at, Some(crash_at));

        // Recovery proof: the journal that survived the cut folds onto
        // the checkpoint into a consistent, audited FTL.
        let (recovered, _report) = PageMapFtl::recover(&crash.ftl, &crash.journal, crash.torn)
            .expect("post-crash recovery succeeds");
        recovered
            .check_invariants()
            .unwrap_or_else(|v| panic!("crash at {crash_at}: {v}"));
        audit_recovery(&crash.ftl, &crash.journal, crash.torn, &recovered);

        // Resume proof: re-execution from the checkpoint cursor ends
        // bit-identical to the run that never lost power.
        let mut resumed = SsdSimulator::restore(config.clone(), &crash).expect("image restores");
        let stats = resumed.resume(&trace).expect("resumed run completes");
        assert_eq!(
            stats, &golden,
            "crash at {crash_at}: resumed stats diverged from golden"
        );
    }
}

const SERIES_INTERVAL_US: u64 = 2_000;

/// Observer with series sampling, as `--series-out` builds one.
fn series_observer(scheme: Scheme) -> SimObserver {
    SimObserver::new(scheme, 100).with_series(SERIES_INTERVAL_US)
}

/// Renders a finished simulator's series as the JSONL the CLI writes.
fn series_of(sim: &mut SsdSimulator) -> String {
    let recorder = sim
        .take_observer()
        .expect("observer attached")
        .into_recorder();
    assert!(
        !recorder.series.is_empty(),
        "series sampling produced no block"
    );
    export::series_jsonl(&recorder.series)
}

/// A checkpointed-and-resumed campaign's `--series-out` JSONL is
/// byte-identical to the uninterrupted run's: the open window's
/// accumulation state rides the device image (wire v2) and the resumed
/// observer picks it up, so not a single window is lost, duplicated or
/// shifted. Also pins the image round-trip with a populated series.
#[test]
fn split_run_reproduces_series_byte_for_byte() {
    let trace = torture_trace();
    let config = combo_config(Scheme::FlexLevel, "baseline");
    let golden = {
        let mut sim =
            SsdSimulator::new(config.clone()).with_observer(series_observer(Scheme::FlexLevel));
        sim.run(&trace).expect("golden run completes");
        series_of(&mut sim)
    };

    let mut first =
        SsdSimulator::new(config.clone()).with_observer(series_observer(Scheme::FlexLevel));
    first.run_prefix(&trace, 1_700).expect("prefix completes");
    let image = first.checkpoint().expect("checkpoint serializes");
    assert!(
        image.series.is_some(),
        "checkpoint must carry the open series state"
    );
    let decoded = DeviceImage::from_bytes(&image.to_bytes()).expect("image round-trips");
    assert_eq!(
        decoded.series, image.series,
        "series state corrupted by the wire format"
    );

    let mut second = SsdSimulator::restore(config, &image).expect("image restores");
    second.attach_observer(series_observer(Scheme::FlexLevel));
    second.resume(&trace).expect("resumed run completes");
    assert_eq!(
        series_of(&mut second),
        golden,
        "checkpoint/resume changed the series JSONL"
    );
}

/// Same guarantee across an actual power loss: crash → recover from the
/// pre-crash checkpoint → resume ends with the identical series, because
/// the crash image carries the checkpoint-time series state and the
/// journaled suffix replays deterministically.
#[test]
fn crash_restore_reproduces_series_byte_for_byte() {
    let trace = torture_trace();
    let config = combo_config(Scheme::FlexLevel, "baseline");
    let golden = {
        let mut sim =
            SsdSimulator::new(config.clone()).with_observer(series_observer(Scheme::FlexLevel));
        sim.run(&trace).expect("golden run completes");
        series_of(&mut sim)
    };

    let mut sim =
        SsdSimulator::new(config.clone()).with_observer(series_observer(Scheme::FlexLevel));
    sim.run_prefix(&trace, 1_000).expect("prefix completes");
    let base = sim.checkpoint().expect("checkpoint serializes");
    sim.set_crash_plan(Some(CrashPlan::at_request(0x5EED, 2_200)));
    let err = sim.resume(&trace).expect_err("armed crash plan fires");
    assert!(matches!(err, SimError::PowerLoss { at_request: 2_200 }));

    let crash = sim.crash_image(&base).expect("crash image serializes");
    assert!(
        crash.series.is_some(),
        "crash image must carry the checkpoint-time series state"
    );
    let mut resumed = SsdSimulator::restore(config, &crash).expect("image restores");
    resumed.attach_observer(series_observer(Scheme::FlexLevel));
    resumed.resume(&trace).expect("resumed run completes");
    assert_eq!(
        series_of(&mut resumed),
        golden,
        "crash/restore changed the series JSONL"
    );
}

#[test]
fn resume_is_thread_count_invariant() {
    let trace = torture_trace();
    let golden = {
        let mut sim = SsdSimulator::new(combo_config(Scheme::FlexLevel, "baseline"));
        logical_counters(sim.run(&trace).expect("golden run completes"))
    };
    for threads in [1u32, 2, 8] {
        let config = combo_config(Scheme::FlexLevel, "baseline").with_threads(threads);
        let mut sim = SsdSimulator::new(config.clone());
        sim.run_prefix(&trace, 1_100).expect("prefix completes");
        let image = sim.checkpoint().expect("checkpoint serializes");
        let mut resumed = SsdSimulator::restore(config, &image).expect("image restores");
        let stats = resumed.resume(&trace).expect("resumed run completes");
        assert_eq!(
            logical_counters(stats),
            golden,
            "{threads}-thread resume changed logical counters"
        );
    }
}

#[test]
fn resume_is_backend_invariant() {
    let trace = torture_trace();
    let golden = {
        let mut sim = SsdSimulator::new(combo_config(Scheme::FlexLevel, "baseline"));
        logical_counters(sim.run(&trace).expect("golden run completes"))
    };

    // Full power-loss cycle on the pipelined backend: the crash fires at
    // admission time (phase 1), before the event-driven phase runs.
    let config =
        combo_config(Scheme::FlexLevel, "baseline").with_timing_model(TimingModel::Pipelined);
    let mut sim = SsdSimulator::new(config.clone());
    sim.run_prefix(&trace, 1_000).expect("prefix completes");
    let base = sim.checkpoint().expect("checkpoint serializes");
    sim.set_crash_plan(Some(CrashPlan::at_request(0xD1E5E1, 2_000)));
    let err = sim.resume(&trace).expect_err("armed crash plan fires");
    assert!(matches!(err, SimError::PowerLoss { at_request: 2_000 }));

    let crash = sim.crash_image(&base).expect("crash image serializes");
    let (recovered, _) = PageMapFtl::recover(&crash.ftl, &crash.journal, crash.torn)
        .expect("post-crash recovery succeeds");
    recovered
        .check_invariants()
        .expect("recovered FTL consistent");

    let mut resumed = SsdSimulator::restore(config, &crash).expect("image restores");
    let stats = resumed.resume(&trace).expect("resumed run completes");
    assert_eq!(
        logical_counters(stats),
        golden,
        "pipelined crash-resume changed logical counters"
    );
}
