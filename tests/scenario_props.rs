//! Property-based tests of the scenario engine's correlated-cluster
//! component (proptest).
//!
//! Two properties are pinned over randomly drawn cluster configurations:
//!
//! 1. **Determinism.** A cluster-faulted simulation is a pure function
//!    of its configuration: bit-identical across 1/2/8 worker threads
//!    and (logical counters) across both timing backends — the cluster
//!    geometry is derived from the scenario seed alone, never from
//!    access order or scheduling.
//! 2. **Spatial correlation.** Cluster events are genuinely co-located
//!    within a plane: the mean intra-cluster plane distance of affected
//!    pages sits below the i.i.d.-placement expectation by more than
//!    6σ, so the engine cannot silently degrade into uniform noise.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use reliability::parallel_map;
use ssd::{
    ClusterFaultConfig, EnvironmentConfig, EnvironmentState, FaultConfig, Scheme, SimStats,
    SsdConfig, SsdSimulator, TimingModel,
};
use workloads::{Trace, WorkloadSpec};

fn cluster_config(seed: u64, events: u32, span_rows: u64) -> SsdConfig {
    SsdConfig::scaled(Scheme::FlexLevel, 64)
        .with_channels(2)
        .with_dies_per_channel(4)
        .with_planes_per_die(2)
        .with_environment(
            EnvironmentConfig::default().with_clusters(ClusterFaultConfig {
                seed,
                events,
                span_rows,
                ..ClusterFaultConfig::default()
            }),
        )
}

fn small_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(1_500)
        .with_footprint(footprint)
        .generate(&mut StdRng::seed_from_u64(0xC105))
}

fn run_clustered(seed: u64, events: u32, timing: TimingModel, trace: &Trace) -> SimStats {
    let config = cluster_config(seed, events, 64)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(timing)
        .with_faults(FaultConfig {
            escalate_fer_factor: 0.7,
            final_fer_factor: 0.5,
            ..FaultConfig::enabled().with_scale(4.0)
        });
    let mut sim = SsdSimulator::new(config);
    sim.run(trace).expect("trace fits the device").clone()
}

fn logical(s: &SimStats) -> impl PartialEq + std::fmt::Debug {
    (
        (s.host_reads, s.host_writes, s.buffer_read_hits),
        (s.flash_reads, s.flash_programs, s.erases),
        (s.gc_runs, s.gc_migrated_pages, s.reduced_reads),
        s.reads_by_sensing_level.clone(),
        (s.retry_reads, s.recovered_reads, s.uncorrectable_reads),
        s.retry_depth_histogram.clone(),
        (s.scrub_runs, s.scrub_reads, s.scrub_refreshes),
    )
}

proptest! {
    /// Property 1: the cluster-faulted run is bit-identical across 1/2/8
    /// worker threads and its logical counters match across both timing
    /// backends, for arbitrary cluster seeds and event counts.
    #[test]
    fn cluster_streams_are_thread_and_timing_invariant(
        seed in 0u64..u64::MAX,
        events in 1u32..6,
    ) {
        let trace = small_trace();
        let reference = run_clustered(seed, events, TimingModel::SingleQueue, &trace);
        for threads in [1u32, 2, 8] {
            let replicas = parallel_map(vec![(); 2], threads, |_, ()| {
                run_clustered(seed, events, TimingModel::SingleQueue, &trace)
            });
            for stats in &replicas {
                prop_assert_eq!(
                    stats, &reference,
                    "clustered run diverged under {} threads", threads
                );
            }
        }
        let piped = run_clustered(seed, events, TimingModel::Pipelined, &trace);
        prop_assert_eq!(logical(&piped), logical(&reference));
    }

    /// Property 2: affected pages really cluster in space. Under i.i.d.
    /// plane placement the expected pairwise plane distance over P=16
    /// planes is (P²−1)/(3P) ≈ 5.31 with a per-pair σ of ≈ 0.2357·P;
    /// intra-cluster pairs share one plane by construction, so the
    /// observed mean distance (0) must sit below the i.i.d. mean by more
    /// than 6 standard errors.
    #[test]
    fn clusters_are_spatially_correlated_at_6_sigma(
        seed in 0u64..u64::MAX,
        events in 2u32..6,
        span in 32u64..96,
    ) {
        let config = cluster_config(seed, events, span);
        let env = EnvironmentState::new(&config).expect("clusters enabled");
        let planes = 16u64; // 2 channels × 4 dies × 2 planes
        let pages = config.geometry.logical_pages();

        // Collect the plane of every affected page, grouped by cluster.
        let mut pair_count = 0u64;
        let mut distance_sum = 0.0f64;
        for cluster in env.clusters() {
            let members: Vec<u64> = (0..pages)
                .filter(|&lpn| cluster.contains(env.plane_of(lpn), env.row_of(lpn)))
                .map(|lpn| env.plane_of(lpn))
                .collect();
            prop_assert!(
                members.len() as u64 >= span.min(32),
                "cluster spans {} rows but only {} pages", cluster.span_rows, members.len()
            );
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    distance_sum += members[i].abs_diff(members[j]) as f64;
                    pair_count += 1;
                }
            }
        }
        prop_assert!(pair_count >= 18, "need pairs for the σ bound, got {pair_count}");
        let observed = distance_sum / pair_count as f64;

        // i.i.d. null hypothesis: planes drawn uniformly from 0..P.
        let p = planes as f64;
        let iid_mean = (p * p - 1.0) / (3.0 * p);
        let iid_sigma_single = 0.2357 * p;
        let sigma_mean = iid_sigma_single / (pair_count as f64).sqrt();
        prop_assert!(
            observed < iid_mean - 6.0 * sigma_mean,
            "mean intra-cluster distance {observed} not below i.i.d. {iid_mean} at 6σ ({sigma_mean})"
        );
    }
}

/// The placement is also stable across process lifetimes: a fixed seed
/// pins exact cluster coordinates (guards the keying discipline itself —
/// any change to the draw order or hashing shows up here).
#[test]
fn fixed_seed_pins_cluster_geometry() {
    let config = cluster_config(0x5EB_0057, 4, 64);
    let env = EnvironmentState::new(&config).expect("clusters enabled");
    let coords: Vec<(u64, u64, u64)> = env
        .clusters()
        .iter()
        .map(|c| (c.plane, c.row_start, c.span_rows))
        .collect();
    println!("{coords:?}");
    assert_eq!(
        coords,
        [(0, 67, 64), (8, 7, 64), (13, 31, 64), (14, 80, 64)],
        "cluster placement drifted (bless with --nocapture if deliberate)"
    );
}
