//! Property-based tests over the workspace's core data structures and
//! invariants (proptest).

use flash_model::{CellMode, LevelConfig, Volts, VthLevel};
use flexlevel::{ReduceCode, ReducedCellPool};
use ldpc::{encode, DecoderGraph, MinSumDecoder, QcLdpcCode, SensingSchedule};
use proptest::prelude::*;
use reliability::SymbolCodec;
use ssd::{PageMapFtl, WriteBuffer};
use workloads::{decode as trace_decode, encode as trace_encode, IoOp, IoRequest, Trace};

proptest! {
    /// ReduceCode is involutive over its whole symbol space, and any
    /// single-cell distortion costs at most 2 bits.
    #[test]
    fn reduce_code_roundtrip_and_bounded_damage(value in 0u16..8, da in 0u8..3, db in 0u8..3) {
        let (a, b) = ReduceCode::encode_value(value);
        prop_assert_eq!(ReduceCode::decode_levels(a, b), value);
        let read = ReduceCode::decode_levels(VthLevel::new(da), VthLevel::new(db));
        let errs = (value ^ read).count_ones();
        prop_assert!(errs <= 3, "3-bit symbols can't disagree in more bits");
        // Single-level slips (distance 1 in exactly one cell) cost ≤ 2.
        let slip = (a.index().abs_diff(da) + b.index().abs_diff(db)) == 1;
        if slip {
            prop_assert!(errs <= 2, "one-level slip cost {errs} bits");
        }
    }

    /// Gray MLC codec: every one-level slip costs exactly one bit.
    #[test]
    fn gray_one_level_slip_single_bit(value in 0u16..4, up in proptest::bool::ANY) {
        let codec = reliability::GrayMlcCodec;
        let mut cells = [VthLevel::ERASED; 1];
        codec.encode(value, &mut cells);
        let idx = cells[0].index() as i8 + if up { 1 } else { -1 };
        if (0..=3).contains(&idx) {
            let read = codec.decode(&[VthLevel::new(idx as u8)]);
            prop_assert_eq!(codec.bit_errors(value, read), 1);
        }
    }

    /// LevelConfig classification is monotone in voltage: a higher Vth
    /// never reads as a lower level.
    #[test]
    fn classification_is_monotone(v1 in 0.0f64..5.0, v2 in 0.0f64..5.0) {
        let cfg = LevelConfig::normal_mlc();
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        prop_assert!(cfg.classify(Volts(lo)) <= cfg.classify(Volts(hi)));
    }

    /// The sensing schedule is monotone in BER.
    #[test]
    fn schedule_monotone(b1 in 0.0f64..0.05, b2 in 0.0f64..0.05) {
        let s = SensingSchedule::paper_anchor();
        let (lo, hi) = if b1 <= b2 { (b1, b2) } else { (b2, b1) };
        prop_assert!(s.required_levels(lo) <= s.required_levels(hi));
    }

    /// Every random information word encodes to a valid codeword
    /// (syndrome zero), and the codeword is systematic.
    #[test]
    fn ldpc_encoding_always_valid(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let code = QcLdpcCode::small_test_code();
        let mut rng = StdRng::seed_from_u64(seed);
        let info = ldpc::random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        prop_assert_eq!(code.syndrome_weight(&cw), 0);
        prop_assert_eq!(&cw[..code.info_bits()], &info[..]);
    }

    /// Any ≤3-bit corruption of a small-code codeword is corrected by the
    /// decoder at strong LLR magnitude.
    #[test]
    fn ldpc_corrects_small_corruptions(seed in 0u64..200, flips in prop::collection::vec(0usize..1280, 1..4)) {
        use rand::{rngs::StdRng, SeedableRng};
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let info = ldpc::random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        let mut llrs: Vec<f32> = cw.iter().map(|&b| if b == 0 { 5.0 } else { -5.0 }).collect();
        for &f in &flips {
            llrs[f] = -llrs[f].abs() * if cw[f] == 0 { 1.0 } else { -1.0 };
        }
        let out = decoder.decode(&graph, &llrs);
        prop_assert!(out.success);
        prop_assert_eq!(out.info_bits(&code), &info[..]);
    }

    /// The trace binary codec roundtrips arbitrary traces.
    #[test]
    fn trace_codec_roundtrip(
        name in "[a-z]{1,12}",
        reqs in prop::collection::vec(
            (0.0f64..1e9, 0u64..1_000_000, 1u32..64, proptest::bool::ANY),
            0..50,
        )
    ) {
        let mut arrival = 0.0;
        let requests: Vec<IoRequest> = reqs
            .into_iter()
            .map(|(gap, lpn, pages, is_read)| {
                arrival += gap;
                IoRequest {
                    arrival_us: arrival,
                    lpn,
                    pages,
                    op: if is_read { IoOp::Read } else { IoOp::Write },
                }
            })
            .collect();
        let trace = Trace { name, footprint_pages: 2_000_000, requests };
        let decoded = trace_decode(&trace_encode(&trace)).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    /// FTL invariant: after any sequence of writes, the number of valid
    /// pages equals the number of distinct LPNs written, and every
    /// mapping points at a valid physical page.
    #[test]
    fn ftl_mapping_consistent(writes in prop::collection::vec((0u64..500, proptest::bool::ANY), 1..300)) {
        let geometry = flash_model::DeviceGeometry::scaled(16).unwrap();
        let mut ftl = PageMapFtl::new(geometry, 4);
        let mut written = std::collections::HashSet::new();
        for (lpn, reduced) in writes {
            let mode = if reduced { CellMode::Reduced } else { CellMode::Normal };
            // The mixed workload stays far below capacity; writes succeed.
            ftl.write(lpn, mode).unwrap();
            written.insert(lpn);
        }
        prop_assert_eq!(ftl.total_valid_pages(), written.len() as u64);
        for &lpn in &written {
            let (phys, _) = ftl.placement(lpn).unwrap();
            prop_assert!(ftl.geometry().contains(phys));
        }
    }

    /// Write buffer invariant: never exceeds capacity; a page is either
    /// buffered or was evicted/never written.
    #[test]
    fn buffer_capacity_respected(cap in 1u64..32, writes in prop::collection::vec(0u64..100, 0..200)) {
        let mut buf = WriteBuffer::new(cap);
        for lpn in writes {
            let _ = buf.write(lpn);
            prop_assert!(buf.len() <= cap);
        }
    }

    /// ReducedCell pool: insertions never exceed capacity and evictions
    /// only happen when full.
    #[test]
    fn pool_capacity_respected(cap in 1u64..16, inserts in prop::collection::vec(0u64..64, 0..200)) {
        let mut pool = ReducedCellPool::new(cap);
        for lpn in inserts {
            let was_full = pool.len() >= cap;
            let contained = pool.contains(lpn);
            let evicted = pool.insert(lpn);
            prop_assert!(pool.len() <= cap);
            if evicted.is_some() {
                prop_assert!(was_full && !contained, "eviction only on full-pool new inserts");
            }
        }
    }

    /// Hybrid (FAST-style) FTL: after any write sequence within capacity,
    /// every written LPN resolves to a valid physical page and the free
    /// pool never leaks blocks.
    #[test]
    fn hybrid_ftl_mapping_consistent(writes in prop::collection::vec(0u64..600, 1..400)) {
        let geometry = flash_model::DeviceGeometry::scaled(16).unwrap();
        let mut ftl = ssd::HybridFtl::new(geometry, 3);
        let mut written = std::collections::HashSet::new();
        for lpn in writes {
            ftl.write(lpn).unwrap();
            written.insert(lpn);
        }
        for &lpn in &written {
            let phys = ftl.placement(lpn).expect("written page resolves");
            prop_assert!(geometry.contains(phys));
        }
        // Unwritten pages stay unmapped.
        let unwritten = (0..ftl.logical_pages()).find(|l| !written.contains(l));
        if let Some(l) = unwritten {
            prop_assert!(ftl.placement(l).is_none());
        }
    }

    /// Device images round-trip bit-identically through the binary
    /// codec from any checkpoint position, and damaged bytes always
    /// surface as typed errors — never a panic, never a silent
    /// mis-restore.
    #[test]
    fn device_image_roundtrip_and_damage_typed(
        stop in 50u64..250,
        seed in 0u64..1_000,
        cases in prop::collection::vec((prop::bool::ANY, 0usize..1 << 20), 4),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        use ssd::{DeviceImage, Scheme, SsdConfig, SsdSimulator};

        let trace = workloads::WorkloadSpec::fin2()
            .with_requests(300)
            .with_footprint(500)
            .generate(&mut StdRng::seed_from_u64(seed));
        let config = SsdConfig::scaled(Scheme::FlexLevel, 16).with_seed(seed ^ 0xDEC0DE);
        let mut sim = SsdSimulator::new(config);
        sim.run_prefix(&trace, stop).unwrap();
        let image = sim.checkpoint().unwrap();

        let bytes = image.to_bytes();
        let decoded = DeviceImage::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &image, "decode is lossless");
        prop_assert_eq!(decoded.to_bytes(), bytes.clone(), "re-encode is bit-stable");

        for (truncate, at) in cases {
            if truncate {
                // Any strict prefix must fail with a typed error.
                let cut = at % bytes.len();
                prop_assert!(DeviceImage::from_bytes(&bytes[..cut]).is_err());
            } else {
                // A flipped bit either fails typed or decodes; it must
                // never panic, and a decode success must re-encode (the
                // flip landed in a value payload, not the framing).
                let mut damaged = bytes.clone();
                let pos = at % damaged.len();
                damaged[pos] ^= 1 << (at % 8);
                if let Ok(img) = DeviceImage::from_bytes(&damaged) {
                    let _ = img.to_bytes();
                }
            }
        }
    }

    /// Zipf sampler stays in range for arbitrary parameters.
    #[test]
    fn zipf_in_range(n in 1u64..10_000, theta in 0.0f64..2.0, seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let z = workloads::ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }
}
