//! End-to-end regression for the fault-injection + error-recovery
//! subsystem (`ssd::faults`, `ssd::recovery`, bad-block retirement and
//! patrol scrub).
//!
//! Three contracts are pinned here:
//!
//! 1. **Faults off is free.** With the default (disabled) [`FaultConfig`]
//!    the FlexLevel golden row of `tests/golden_sim.rs` is reproduced
//!    bit-for-bit and every recovery counter stays zero.
//! 2. **Faults on is deterministic.** The fault streams are keyed by
//!    `(seed, stream kind, lpn, access index)`, so a faulted run is a
//!    pure function of the configuration and the logical access
//!    sequence — identical across 1/2/8 worker threads and across the
//!    two timing models' logical counters.
//! 3. **The ladder is exercised.** A high-P/E accelerated run climbs the
//!    retry ladder past depth 0, retires at least one grown-bad block,
//!    patrol-scrubs, and feeds uncorrectable sectors into the
//!    [`reliability`] UBER accounting.

use rand::{rngs::StdRng, SeedableRng};
use reliability::{parallel_map, EccConfig};
use ssd::{FaultConfig, Scheme, SimStats, SsdConfig, SsdSimulator, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// The same pinned trace as `tests/golden_sim.rs`: prj-1, 6000 requests,
/// 70% footprint of the 64-block device, seed 0xF1E2.
fn golden_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(6_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

/// Accelerated-aging fault model used by the faulted fixtures: hot
/// enough that every recovery path fires on the short golden trace. The
/// rung factors are weakened so the ladder leaks a few sectors all the
/// way to uncorrectable within 6000 requests (at the calibrated factors
/// an uncorrectable is a ~1e-4-per-fault event — too rare to pin).
fn stress_faults() -> FaultConfig {
    FaultConfig {
        escalate_fer_factor: 0.7,
        final_fer_factor: 0.5,
        ..FaultConfig::enabled().with_scale(25.0)
    }
}

fn run(config: SsdConfig, trace: &Trace) -> SimStats {
    let mut sim = SsdSimulator::new(config);
    sim.run(trace).expect("trace fits the device").clone()
}

fn flexlevel_config(faults: FaultConfig) -> SsdConfig {
    SsdConfig::scaled(Scheme::FlexLevel, 64)
        .with_base_pe(6000)
        .with_seed(7)
        .with_faults(faults)
}

/// Contract 1: a disabled `FaultConfig` — even one explicitly attached —
/// reproduces the golden FlexLevel counters exactly and leaves the whole
/// recovery panel at zero.
#[test]
fn faults_off_reproduces_the_golden_flexlevel_row() {
    let stats = run(flexlevel_config(FaultConfig::default()), &golden_trace());
    assert_eq!(
        (stats.host_reads, stats.host_writes, stats.buffer_read_hits),
        (2064, 3936, 137)
    );
    assert_eq!(
        (stats.flash_reads, stats.flash_programs, stats.erases),
        (12941, 20308, 299)
    );
    assert_eq!((stats.gc_runs, stats.gc_migrated_pages), (299, 4865));
    assert_eq!((stats.promotions, stats.demotions), (142, 0));
    assert_eq!(stats.reduced_reads, 677);
    // The recovery panel must be untouched.
    assert_eq!(stats.retry_reads, 0);
    assert_eq!(stats.recovered_reads, 0);
    assert_eq!(stats.uncorrectable_reads, 0);
    assert!(stats.retry_depth_histogram.iter().all(|&n| n == 0));
    assert_eq!(stats.program_failures, 0);
    assert_eq!(stats.retired_blocks, 0);
    assert_eq!(stats.die_resets, 0);
    assert_eq!(
        (stats.scrub_runs, stats.scrub_reads, stats.scrub_refreshes),
        (0, 0, 0)
    );
    assert_eq!(stats.recovery_latency_us, 0.0);
    assert_eq!(stats.max_retry_depth(), 0);
    assert_eq!(stats.observed_uber(EccConfig::paper_ldpc().info_bits), 0.0);
}

/// Contract 3: the accelerated high-P/E run climbs the ladder, retires
/// blocks, scrubs, and still serves every host request.
#[test]
fn stress_run_exercises_every_recovery_path() {
    let stats = run(flexlevel_config(stress_faults()), &golden_trace());
    // The retry ladder fired and mostly succeeded.
    assert!(stats.retry_reads > 0, "no retries at scale 25");
    assert!(stats.recovered_reads > 0, "nothing recovered");
    assert!(stats.max_retry_depth() >= 1);
    assert!(
        stats.uncorrectable_reads > 0,
        "scale 25 must push some sector past the final rung"
    );
    // Attempts can exceed faulted reads (deep ladders), never undershoot.
    assert!(stats.retry_reads >= stats.recovered_reads + stats.uncorrectable_reads);
    assert_eq!(
        stats.retry_depth_histogram[1..].iter().sum::<u64>(),
        stats.recovered_reads + stats.uncorrectable_reads,
        "every faulted read lands in exactly one depth bin"
    );
    // Program failures grew bad blocks and the FTL retired them.
    assert!(stats.program_failures >= 1);
    assert!(stats.retired_blocks >= 1, "no grown-bad block retired");
    assert!(stats.retired_blocks <= stats.program_failures);
    // The patrol scrubber visited blocks and refreshed hot-retention pages.
    assert!(stats.scrub_runs > 0);
    assert!(stats.scrub_reads > 0);
    assert!(stats.scrub_refreshes > 0);
    // Recovery work was priced, not free.
    assert!(stats.recovery_latency_us > 0.0);
    // The host workload was still served in full.
    assert_eq!((stats.host_reads, stats.host_writes), (2064, 3936));
}

/// Satellite: end-to-end UBER accounting. The observed uncorrectable
/// rate must equal the hand computation against the paper's LDPC code
/// dimensions, and grow (weakly) with the acceleration scale.
#[test]
fn observed_uber_feeds_the_reliability_accounting() {
    let info_bits = EccConfig::paper_ldpc().info_bits;
    let stats = run(flexlevel_config(stress_faults()), &golden_trace());
    assert!(stats.uncorrectable_reads > 0);
    let by_hand =
        stats.uncorrectable_reads as f64 / (stats.decoded_frames() as f64 * info_bits as f64);
    assert_eq!(stats.observed_uber(info_bits), by_hand);
    assert!(stats.observed_uber(info_bits) > 0.0);

    // More acceleration can only make the device less reliable.
    let mut last = (0u64, 0u64);
    for scale in [1.0, 4.0, 25.0] {
        let s = run(
            flexlevel_config(FaultConfig::enabled().with_scale(scale)),
            &golden_trace(),
        );
        let now = (s.retry_reads, s.uncorrectable_reads);
        assert!(
            now.0 >= last.0 && now.1 >= last.1,
            "scale {scale}: {now:?} regressed below {last:?}"
        );
        last = now;
    }
    assert!(last.0 > 0);
}

/// Contract 2a: the faulted run is bit-identical no matter how many
/// worker threads the surrounding harness uses.
#[test]
fn faulted_stats_are_identical_across_thread_counts() {
    let trace = golden_trace();
    let reference = run(flexlevel_config(stress_faults()), &trace);
    assert!(reference.retry_reads > 0, "fixture must actually fault");
    for threads in [1u32, 2, 8] {
        let replicas = parallel_map(vec![(); 4], threads, |_, ()| {
            run(flexlevel_config(stress_faults()), &trace)
        });
        for (i, stats) in replicas.iter().enumerate() {
            assert_eq!(
                *stats, reference,
                "replica {i} under {threads} threads diverged"
            );
        }
    }
}

/// Contract 2b: both timing models resolve the same faults — every
/// logical and recovery counter matches; only clock-domain metrics
/// (latency, makespan) may differ.
#[test]
fn timing_models_agree_on_recovery_counters() {
    let trace = golden_trace();
    // Hot die faults so the pipelined model also schedules DieReset ops.
    let faults = stress_faults().with_die_fault_prob(2e-3);
    let single = run(
        flexlevel_config(faults.clone()).with_timing_model(TimingModel::SingleQueue),
        &trace,
    );
    let pipelined = run(
        flexlevel_config(faults)
            .with_timing_model(TimingModel::Pipelined)
            .with_dies_per_channel(4)
            .with_decoder_slots(2),
        &trace,
    );
    assert!(
        single.die_resets > 0,
        "die faults must fire in this fixture"
    );
    let logical = |s: &SimStats| {
        (
            (s.host_reads, s.host_writes, s.buffer_read_hits),
            (s.flash_reads, s.flash_programs, s.erases),
            (s.gc_runs, s.gc_migrated_pages, s.reduced_reads),
            (s.promotions, s.demotions),
            (s.retry_reads, s.recovered_reads, s.uncorrectable_reads),
            s.retry_depth_histogram.clone(),
            (s.program_failures, s.retired_blocks, s.die_resets),
            (s.scrub_runs, s.scrub_reads, s.scrub_refreshes),
        )
    };
    assert_eq!(logical(&single), logical(&pipelined));
}
