//! Golden end-to-end regression: one pinned synthetic trace replayed
//! through all four storage schemes, with the integer [`SimStats`]
//! counters asserted exactly.
//!
//! The values below are a fingerprint of the whole stack — trace
//! generation, write buffer, FTL mapping, GC victim selection,
//! AccessEval migration and the deterministic RNG streams. Any change to
//! any of those layers shows up here as an exact diff, not a statistical
//! drift. If a deliberate behaviour change moves the counters, re-run
//! with `--nocapture` and update the table from the printed rows (see
//! TESTING.md).

use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SimStats, SsdConfig, SsdSimulator};
use workloads::{Trace, WorkloadSpec};

/// Pinned counters for one scheme.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    scheme: Scheme,
    host_reads: u64,
    host_writes: u64,
    buffer_read_hits: u64,
    flash_reads: u64,
    flash_programs: u64,
    erases: u64,
    gc_runs: u64,
    gc_migrated_pages: u64,
    promotions: u64,
    demotions: u64,
    reduced_reads: u64,
}

impl Golden {
    fn capture(scheme: Scheme, stats: &SimStats) -> Golden {
        Golden {
            scheme,
            host_reads: stats.host_reads,
            host_writes: stats.host_writes,
            buffer_read_hits: stats.buffer_read_hits,
            flash_reads: stats.flash_reads,
            flash_programs: stats.flash_programs,
            erases: stats.erases,
            gc_runs: stats.gc_runs,
            gc_migrated_pages: stats.gc_migrated_pages,
            promotions: stats.promotions,
            demotions: stats.demotions,
            reduced_reads: stats.reduced_reads,
        }
    }
}

/// The pinned workload: a small mixed read/write trace with a footprint
/// that forces GC on the 64-block device. Every knob is explicit so the
/// fixture cannot drift with suite defaults.
fn golden_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(6_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

fn run(scheme: Scheme, trace: &Trace) -> SimStats {
    let config = SsdConfig::scaled(scheme, 64)
        .with_base_pe(6000)
        .with_seed(7);
    let mut sim = SsdSimulator::new(config);
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} failed: {e}", scheme.label()))
        .clone()
}

#[test]
fn golden_counters_for_all_schemes() {
    let trace = golden_trace();
    // Regenerate with `cargo test -p bench --test golden_sim -- --nocapture`.
    let expected = [
        Golden {
            scheme: Scheme::Baseline,
            host_reads: 2064,
            host_writes: 3936,
            buffer_read_hits: 137,
            flash_reads: 12358,
            flash_programs: 19725,
            erases: 281,
            gc_runs: 281,
            gc_migrated_pages: 4424,
            promotions: 0,
            demotions: 0,
            reduced_reads: 0,
        },
        Golden {
            scheme: Scheme::LdpcInSsd,
            host_reads: 2064,
            host_writes: 3936,
            buffer_read_hits: 137,
            flash_reads: 12358,
            flash_programs: 19725,
            erases: 281,
            gc_runs: 281,
            gc_migrated_pages: 4424,
            promotions: 0,
            demotions: 0,
            reduced_reads: 0,
        },
        Golden {
            scheme: Scheme::LevelAdjustOnly,
            host_reads: 2064,
            host_writes: 3936,
            buffer_read_hits: 137,
            flash_reads: 18779,
            flash_programs: 26146,
            erases: 507,
            gc_runs: 507,
            gc_migrated_pages: 10845,
            promotions: 0,
            demotions: 0,
            reduced_reads: 6423,
        },
        Golden {
            scheme: Scheme::FlexLevel,
            host_reads: 2064,
            host_writes: 3936,
            buffer_read_hits: 137,
            flash_reads: 12941,
            flash_programs: 20308,
            erases: 299,
            gc_runs: 299,
            gc_migrated_pages: 4865,
            promotions: 142,
            demotions: 0,
            reduced_reads: 677,
        },
    ];
    for (want, scheme) in expected.iter().zip(Scheme::ALL) {
        let stats = run(scheme, &trace);
        let actual = Golden::capture(scheme, &stats);
        println!("{actual:?},");
        assert_eq!(
            *want,
            actual,
            "{} drifted from the golden run",
            scheme.label()
        );
    }
}

/// The pinned trace itself must stay frozen: request mix and page volume
/// are part of the fixture, and a drift here explains any counter diff.
#[test]
fn golden_trace_fingerprint() {
    let trace = golden_trace();
    assert_eq!(trace.len(), 6_000);
    let (read_pages, write_pages) = trace.page_counts();
    assert_eq!((read_pages, write_pages), (8_071, 15_537));
}
