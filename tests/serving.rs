//! Integration net for the generator-driven scheduler: open-loop
//! multi-tenant serving with per-tenant QoS.
//!
//! Pins the refactor's contracts end to end:
//!
//! * replaying a closed trace through [`SsdSimulator::serve`] with
//!   [`ServeOptions::replay`] is **bit-identical** to the original
//!   [`SsdSimulator::run`] path, on both timing backends;
//! * serving results are a pure function of the request stream — the
//!   `threads` knob (1/2/8) never changes a single field;
//! * the admitted/dropped/deferred sets and every logical counter are
//!   backend-independent (lumped admission model);
//! * a noisy neighbor raising its arrival rate degrades the victim
//!   tenant's p99 monotonically;
//! * the Drop policy conserves requests (served + dropped = arrivals)
//!   and the Defer policy serves everything it delays.

use rand::{rngs::StdRng, SeedableRng};
use ssd::{
    OverloadPolicy, Scheme, ServeOptions, SimStats, SsdConfig, SsdSimulator, TenantQos, TimingModel,
};
use workloads::{OpenLoopSource, TenantWorkload, TraceSource, WorkloadSpec};

const SEED: u64 = 0xF1E2;

fn config(timing: TimingModel, threads: u32) -> SsdConfig {
    SsdConfig::scaled(Scheme::FlexLevel, 64)
        .with_base_pe(6_000)
        .with_seed(7)
        .with_timing_model(timing)
        .with_threads(threads)
}

/// Two tenants over disjoint 1 024-page working sets (the 64-block
/// device holds ~3 000 logical pages); the second tenant's arrival rate
/// is the parameter (the "noisy neighbor").
fn two_tenants(neighbor_rps: f64) -> Vec<TenantWorkload> {
    vec![
        TenantWorkload::new(0, 1_024, 400.0).with_requests(1_500),
        TenantWorkload::new(1_024, 1_024, neighbor_rps).with_requests(1_500),
    ]
}

fn serve_stats(
    timing: TimingModel,
    threads: u32,
    tenants: Vec<TenantWorkload>,
    qos: TenantQos,
) -> SimStats {
    let mut sim = SsdSimulator::new(config(timing, threads));
    let mut source = OpenLoopSource::new(tenants, SEED);
    let options = ServeOptions::uniform(2, qos);
    sim.serve(&mut source, &options)
        .expect("serving run succeeds")
        .clone()
}

#[test]
fn serve_replay_is_bit_identical_to_run() {
    let device = SsdConfig::scaled(Scheme::Baseline, 64);
    let trace = WorkloadSpec::prj1()
        .with_requests(4_000)
        .with_footprint(device.geometry.logical_pages() * 7 / 10)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(SEED));
    for timing in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        let mut via_run = SsdSimulator::new(config(timing, 0));
        let run_stats = via_run.run(&trace).expect("replay succeeds").clone();

        let mut via_serve = SsdSimulator::new(config(timing, 0));
        let mut source = TraceSource::new(&trace);
        let serve_stats = via_serve
            .serve(&mut source, &ServeOptions::replay())
            .expect("serve replay succeeds")
            .clone();

        assert_eq!(run_stats, serve_stats, "replay diverged under {timing:?}");
        assert!(
            serve_stats.tenants.is_empty(),
            "replay must stay untenanted"
        );
    }
}

#[test]
fn serving_is_invariant_under_thread_count() {
    let qos = TenantQos::default().with_queue_depth(8).with_slo_us(500.0);
    for timing in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        let base = serve_stats(timing, 1, two_tenants(1_200.0), qos);
        for threads in [2, 8] {
            let other = serve_stats(timing, threads, two_tenants(1_200.0), qos);
            assert_eq!(
                base, other,
                "threads={threads} changed results under {timing:?}"
            );
        }
    }
}

#[test]
fn tenant_logical_counters_are_backend_independent() {
    let qos = TenantQos::default()
        .with_queue_depth(4)
        .with_policy(OverloadPolicy::Drop)
        .with_slo_us(500.0);
    let single = serve_stats(TimingModel::SingleQueue, 0, two_tenants(3_000.0), qos);
    let pipelined = serve_stats(TimingModel::Pipelined, 0, two_tenants(3_000.0), qos);
    assert_eq!(single.tenants.len(), 2);
    assert_eq!(pipelined.tenants.len(), 2);
    for (t, (s, p)) in single.tenants.iter().zip(&pipelined.tenants).enumerate() {
        assert_eq!(s.arrivals, p.arrivals, "tenant {t} arrivals");
        assert_eq!(s.served, p.served, "tenant {t} served");
        assert_eq!(s.dropped, p.dropped, "tenant {t} dropped");
        assert_eq!(s.deferred, p.deferred, "tenant {t} deferred");
        assert_eq!(s.reads, p.reads, "tenant {t} reads");
        assert_eq!(s.writes, p.writes, "tenant {t} writes");
    }
    // The lumped admission model must actually have exercised the cap,
    // or this test pins nothing.
    assert!(
        single.tenants.iter().any(|t| t.dropped > 0),
        "expected backpressure at these rates"
    );
}

#[test]
fn noisy_neighbor_degrades_victim_p99_monotonically() {
    // Unlimited queue depth: the only coupling between tenants is the
    // shared device, so the victim's tail latency is a direct read on
    // contention.
    let qos = TenantQos::default();
    let mut last = 0.0;
    for neighbor_rps in [400.0, 1_600.0, 6_400.0] {
        let stats = serve_stats(TimingModel::SingleQueue, 0, two_tenants(neighbor_rps), qos);
        let victim_p99 = stats.tenants[0].p99().as_f64();
        assert!(
            victim_p99 > last,
            "victim p99 {victim_p99} did not rise past {last} at neighbor rate {neighbor_rps}"
        );
        last = victim_p99;
    }
}

#[test]
fn drop_policy_conserves_requests() {
    let qos = TenantQos::default()
        .with_queue_depth(2)
        .with_policy(OverloadPolicy::Drop);
    let stats = serve_stats(TimingModel::SingleQueue, 0, two_tenants(8_000.0), qos);
    let mut dropped_total = 0;
    for (t, tenant) in stats.tenants.iter().enumerate() {
        assert_eq!(
            tenant.served + tenant.dropped,
            tenant.arrivals,
            "tenant {t} leaked requests"
        );
        assert_eq!(tenant.deferred, 0, "tenant {t} deferred under Drop");
        dropped_total += tenant.dropped;
    }
    assert!(dropped_total > 0, "expected drops at these rates");
    // Only admitted requests reach the device.
    let served: u64 = stats.tenants.iter().map(|t| t.served).sum();
    assert_eq!(stats.host_requests(), served);
}

#[test]
fn defer_policy_serves_everything() {
    let qos = TenantQos::default()
        .with_queue_depth(8)
        .with_policy(OverloadPolicy::Defer);
    let stats = serve_stats(TimingModel::SingleQueue, 0, two_tenants(2_500.0), qos);
    let mut deferred_total = 0;
    for (t, tenant) in stats.tenants.iter().enumerate() {
        assert_eq!(tenant.served, tenant.arrivals, "tenant {t} lost requests");
        assert_eq!(tenant.dropped, 0, "tenant {t} dropped under Defer");
        deferred_total += tenant.deferred;
    }
    assert!(deferred_total > 0, "expected deferrals at these rates");
}
