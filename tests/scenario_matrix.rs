//! Golden regression matrix for the scenario engine: every named
//! [`ScenarioSpec`] preset × all four storage schemes replayed over the
//! pinned golden trace, with the integer [`SimStats`] counters and the
//! retry-depth histogram of every cell asserted exactly.
//!
//! The matrix extends `tests/golden_sim.rs` sideways: the `baseline`
//! rows reproduce that fixture byte-for-byte (the empty environment is
//! the identity), and every other row fingerprints one hostile
//! environment — correlated SEU clusters, a thermal gradient, read
//! disturb, TLC cell technology — through the whole stack. A drift in
//! any cell prints a readable matrix diff; to bless a deliberate change,
//! re-run with `--nocapture` and replace the `GOLDEN` table with the
//! printed rows (see TESTING.md).

use rand::{rngs::StdRng, SeedableRng};
use reliability::{parallel_map, EccConfig};
use ssd::{ScenarioSpec, Scheme, SimStats, SsdConfig, SsdSimulator, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// The same pinned trace as `tests/golden_sim.rs`: prj-1, 6000 requests,
/// 70% footprint of the 64-block device, seed 0xF1E2.
fn golden_trace() -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, 64);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(6_000)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xF1E2))
}

/// One matrix cell: `spec` applied over the golden base configuration.
fn cell_config(spec: &ScenarioSpec, scheme: Scheme, timing: TimingModel) -> SsdConfig {
    spec.apply(
        SsdConfig::scaled(scheme, 64)
            .with_base_pe(6000)
            .with_seed(7)
            .with_timing_model(timing),
    )
}

fn run_cell(spec: &ScenarioSpec, scheme: Scheme, trace: &Trace, timing: TimingModel) -> SimStats {
    let mut sim = SsdSimulator::new(cell_config(spec, scheme, timing));
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{}/{} failed: {e}", spec.name, scheme.label()))
        .clone()
}

/// Histogram rendered with trailing zeros trimmed (stable under a
/// `max_extra_levels` widening that only appends empty bins).
fn fmt_hist(h: &[u64]) -> String {
    let trimmed = h.len() - h.iter().rev().take_while(|&&n| n == 0).count();
    format!("{:?}", &h[..trimmed.max(1)])
}

/// One golden row: every integer counter of the cell, formatted so a
/// diff reads as a labelled record rather than a bare tuple.
fn row_line(scenario: &str, scheme: Scheme, s: &SimStats) -> String {
    format!(
        "{scenario:<17} {:<12} host={}/{}/{} flash={}/{}/{} gc={}/{} acc={}/{} red={} \
         lvls={} retry={}/{}/{} depths={} scrub={}/{}/{} die={} pfail={}/{}",
        scheme.label(),
        s.host_reads,
        s.host_writes,
        s.buffer_read_hits,
        s.flash_reads,
        s.flash_programs,
        s.erases,
        s.gc_runs,
        s.gc_migrated_pages,
        s.promotions,
        s.demotions,
        s.reduced_reads,
        fmt_hist(&s.reads_by_sensing_level),
        s.retry_reads,
        s.recovered_reads,
        s.uncorrectable_reads,
        fmt_hist(&s.retry_depth_histogram),
        s.scrub_runs,
        s.scrub_reads,
        s.scrub_refreshes,
        s.die_resets,
        s.program_failures,
        s.retired_blocks,
    )
}

/// Pinned rows: every preset × every scheme over the golden trace.
/// Regenerate with
/// `cargo test -p bench --test scenario_matrix -- --nocapture`.
const GOLDEN: &[&str] = &[
    "baseline          baseline     host=2064/3936/137 flash=12358/19725/281 gc=281/4424 acc=0/0 red=0 lvls=[495, 1266, 831, 0, 4634, 0, 708] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "baseline          LDPC-in-SSD  host=2064/3936/137 flash=12358/19725/281 gc=281/4424 acc=0/0 red=0 lvls=[495, 1266, 831, 0, 4634, 0, 708] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "baseline          LevelAdjust-only host=2064/3936/137 flash=18779/26146/507 gc=507/10845 acc=0/0 red=6423 lvls=[105, 223, 154, 0, 895, 0, 134] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "baseline          LevelAdjust+AccessEval host=2064/3936/137 flash=12941/20308/299 gc=299/4865 acc=142/0 red=677 lvls=[448, 1163, 740, 0, 4236, 0, 670] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "seu-burst         baseline     host=2064/3936/137 flash=13661/20715/298 gc=298/4949 acc=0/0 red=0 lvls=[541, 1246, 746, 0, 4404, 0, 997] retry=258/243/7 depths=[7684, 242, 8] scrub=12/431/373 die=0 pfail=3/3",
    "seu-burst         LDPC-in-SSD  host=2064/3936/137 flash=13697/20715/298 gc=298/4949 acc=0/0 red=0 lvls=[541, 1246, 746, 0, 4404, 0, 997] retry=294/279/7 depths=[7648, 278, 8] scrub=12/431/373 die=0 pfail=3/3",
    "seu-burst         LevelAdjust-only host=2064/3936/137 flash=21475/28136/548 gc=548/12713 acc=0/0 red=6423 lvls=[78, 221, 142, 0, 682, 0, 388] retry=289/276/6 depths=[7652, 275, 7] scrub=12/420/0 die=0 pfail=3/3",
    "seu-burst         LevelAdjust+AccessEval host=2064/3936/137 flash=14345/21369/318 gc=318/5419 acc=148/0 red=709 lvls=[485, 1103, 698, 0, 4024, 0, 915] retry=288/271/7 depths=[7656, 270, 7, 0, 1] scrub=12/430/372 die=0 pfail=3/3",
    "thermal-tilt      baseline     host=2064/3936/137 flash=15284/20579/296 gc=296/4876 acc=0/0 red=0 lvls=[414, 564, 415, 0, 2120, 0, 4421] retry=2046/1965/29 depths=[5940, 1942, 52] scrub=12/343/314 die=0 pfail=3/3",
    "thermal-tilt      LDPC-in-SSD  host=2064/3936/137 flash=15303/20579/296 gc=296/4876 acc=0/0 red=0 lvls=[414, 564, 415, 0, 2120, 0, 4421] retry=2065/1983/29 depths=[5922, 1959, 53] scrub=12/343/314 die=0 pfail=3/3",
    "thermal-tilt      LevelAdjust-only host=2064/3936/137 flash=21561/28136/548 gc=548/12713 acc=0/0 red=6423 lvls=[72, 129, 84, 0, 385, 0, 841] retry=375/362/3 depths=[7569, 355, 10] scrub=12/420/0 die=0 pfail=3/3",
    "thermal-tilt      LevelAdjust+AccessEval host=2064/3936/137 flash=15840/21283/316 gc=316/5321 acc=157/0 red=729 lvls=[400, 510, 390, 0, 1842, 0, 4063] retry=1888/1811/25 depths=[6098, 1784, 52] scrub=12/376/337 die=0 pfail=3/3",
    "read-disturb-hot  baseline     host=2064/3936/137 flash=13479/20812/299 gc=299/5012 acc=0/0 red=0 lvls=[611, 1224, 798, 0, 4439, 1, 861] retry=0/0/0 depths=[7934] scrub=12/410/373 die=0 pfail=3/3",
    "read-disturb-hot  LDPC-in-SSD  host=2064/3936/137 flash=13529/20812/299 gc=299/5012 acc=0/0 red=0 lvls=[611, 1224, 798, 0, 4439, 1, 861] retry=50/39/2 depths=[7893, 39, 0, 0, 1, 0, 0, 1] scrub=12/410/373 die=0 pfail=3/3",
    "read-disturb-hot  LevelAdjust-only host=2064/3936/137 flash=21195/28136/548 gc=548/12713 acc=0/0 red=6423 lvls=[101, 239, 168, 0, 864, 1, 138] retry=9/5/1 depths=[7928, 5, 0, 0, 1] scrub=12/420/0 die=0 pfail=3/3",
    "read-disturb-hot  LevelAdjust+AccessEval host=2064/3936/137 flash=14055/21320/316 gc=316/5364 acc=146/0 red=691 lvls=[569, 1098, 725, 0, 4044, 1, 806] retry=53/42/2 depths=[7890, 40, 1, 1, 2] scrub=12/459/407 die=0 pfail=3/3",
    "tlc               baseline     host=2064/3936/137 flash=12358/19725/281 gc=281/4424 acc=0/0 red=0 lvls=[0, 0, 0, 0, 0, 0, 7934] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "tlc               LDPC-in-SSD  host=2064/3936/137 flash=12358/19725/281 gc=281/4424 acc=0/0 red=0 lvls=[0, 0, 0, 0, 0, 0, 7934] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "tlc               LevelAdjust-only host=2064/3936/137 flash=18779/26146/507 gc=507/10845 acc=0/0 red=6423 lvls=[0, 0, 0, 0, 0, 0, 1511] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "tlc               LevelAdjust+AccessEval host=2064/3936/137 flash=12820/20187/299 gc=299/4713 acc=173/0 red=794 lvls=[0, 0, 0, 0, 0, 0, 7140] retry=0/0/0 depths=[0] scrub=0/0/0 die=0 pfail=0/0",
    "aged-tlc          baseline     host=2064/3936/137 flash=21038/20611/297 gc=297/4848 acc=0/0 red=0 lvls=[0, 0, 0, 0, 0, 0, 7934] retry=7797/6938/282 depths=[714, 6643, 577] scrub=12/363/363 die=0 pfail=3/3",
    "aged-tlc          LDPC-in-SSD  host=2064/3936/137 flash=21038/20611/297 gc=297/4848 acc=0/0 red=0 lvls=[0, 0, 0, 0, 0, 0, 7934] retry=7797/6938/282 depths=[714, 6643, 577] scrub=12/363/363 die=0 pfail=3/3",
    "aged-tlc          LevelAdjust-only host=2064/3936/137 flash=28793/28607/558 gc=558/12728 acc=0/0 red=6423 lvls=[0, 0, 0, 0, 0, 0, 1511] retry=7556/6696/280 depths=[958, 6396, 580] scrub=12/460/460 die=0 pfail=3/3",
    "aged-tlc          LevelAdjust+AccessEval host=2064/3936/137 flash=21824/21436/320 gc=320/5409 acc=173/0 red=794 lvls=[0, 0, 0, 0, 0, 0, 7140] retry=7758/6873/293 depths=[768, 6574, 592] scrub=12/455/455 die=0 pfail=3/3",
    "hostile           baseline     host=2064/3936/137 flash=15849/20702/298 gc=298/4972 acc=0/0 red=0 lvls=[339, 534, 362, 0, 1740, 0, 4959] retry=2496/2396/37 depths=[5501, 2370, 63] scrub=12/363/342 die=0 pfail=3/3",
    "hostile           LDPC-in-SSD  host=2064/3936/137 flash=15865/20702/298 gc=298/4972 acc=0/0 red=0 lvls=[339, 534, 362, 0, 1740, 0, 4959] retry=2512/2408/38 depths=[5488, 2382, 63, 0, 1] scrub=12/363/342 die=0 pfail=3/3",
    "hostile           LevelAdjust-only host=2064/3936/137 flash=21655/28136/548 gc=548/12713 acc=0/0 red=6423 lvls=[54, 112, 63, 0, 335, 0, 947] retry=469/452/6 depths=[7476, 447, 11] scrub=12/420/0 die=0 pfail=3/3",
    "hostile           LevelAdjust+AccessEval host=2064/3936/137 flash=16349/21335/318 gc=318/5365 acc=163/0 red=749 lvls=[323, 474, 331, 0, 1443, 0, 4614] retry=2327/2232/34 depths=[5668, 2205, 61] scrub=12/436/379 die=0 pfail=3/3",
];

#[test]
fn scenario_matrix_rows_are_pinned() {
    let trace = golden_trace();
    let mut actual = Vec::new();
    for spec in ScenarioSpec::registry() {
        for scheme in Scheme::ALL {
            let stats = run_cell(&spec, scheme, &trace, TimingModel::SingleQueue);
            actual.push(row_line(spec.name, scheme, &stats));
        }
    }
    // Blessing output: the full matrix, ready to paste into GOLDEN.
    for line in &actual {
        println!("{line:?},");
    }
    let mut diff = String::new();
    for i in 0..actual.len().max(GOLDEN.len()) {
        let want = GOLDEN.get(i).copied().unwrap_or("<missing row>");
        let got = actual.get(i).map(String::as_str).unwrap_or("<missing row>");
        if want != got {
            diff.push_str(&format!("- {want}\n+ {got}\n"));
        }
    }
    assert!(
        diff.is_empty(),
        "scenario matrix drifted from the golden run \
         (bless with --nocapture if deliberate):\n{diff}"
    );
}

/// The `baseline` preset is the identity: its FlexLevel cell reproduces
/// the `tests/golden_sim.rs` fixture byte-for-byte, with the whole fault
/// and environment panel at zero.
#[test]
fn baseline_rows_cross_check_the_golden_fixture() {
    let spec = ScenarioSpec::find("baseline").expect("baseline registered");
    let stats = run_cell(
        &spec,
        Scheme::FlexLevel,
        &golden_trace(),
        TimingModel::SingleQueue,
    );
    assert_eq!(
        (stats.host_reads, stats.host_writes, stats.buffer_read_hits),
        (2064, 3936, 137)
    );
    assert_eq!(
        (stats.flash_reads, stats.flash_programs, stats.erases),
        (12941, 20308, 299)
    );
    assert_eq!((stats.gc_runs, stats.gc_migrated_pages), (299, 4865));
    assert_eq!((stats.promotions, stats.reduced_reads), (142, 677));
    assert_eq!(
        (
            stats.retry_reads,
            stats.uncorrectable_reads,
            stats.die_resets
        ),
        (0, 0, 0)
    );
    assert_eq!(
        (stats.scrub_runs, stats.scrub_reads, stats.scrub_refreshes),
        (0, 0, 0)
    );
}

/// Every matrix cell is bit-identical no matter how many worker threads
/// the surrounding harness runs cells under — the environment draws are
/// keyed by the scenario seed alone, never by execution interleaving.
#[test]
fn matrix_cells_are_thread_invariant() {
    let trace = golden_trace();
    let cells: Vec<(ScenarioSpec, Scheme)> = ScenarioSpec::registry()
        .into_iter()
        .flat_map(|spec| Scheme::ALL.map(|scheme| (spec.clone(), scheme)))
        .collect();
    let reference: Vec<SimStats> = cells
        .iter()
        .map(|(spec, scheme)| run_cell(spec, *scheme, &trace, TimingModel::SingleQueue))
        .collect();
    for threads in [1u32, 2, 8] {
        let replicas = parallel_map(cells.clone(), threads, |_, (spec, scheme)| {
            run_cell(&spec, scheme, &trace, TimingModel::SingleQueue)
        });
        for (i, (got, want)) in replicas.iter().zip(&reference).enumerate() {
            assert_eq!(
                got,
                want,
                "cell {}/{} diverged under {threads} threads",
                cells[i].0.name,
                cells[i].1.label()
            );
        }
    }
}

/// Both timing backends resolve every cell to the same logical counters:
/// the environment lives in the shared logical layer, so only
/// clock-domain metrics may differ between them.
#[test]
fn matrix_cells_agree_across_timing_models() {
    let trace = golden_trace();
    let logical = |s: &SimStats| {
        (
            (s.host_reads, s.host_writes, s.buffer_read_hits),
            (s.flash_reads, s.flash_programs, s.erases),
            (s.gc_runs, s.gc_migrated_pages, s.reduced_reads),
            (s.promotions, s.demotions),
            s.reads_by_sensing_level.clone(),
            (s.retry_reads, s.recovered_reads, s.uncorrectable_reads),
            s.retry_depth_histogram.clone(),
            (s.program_failures, s.retired_blocks, s.die_resets),
            (s.scrub_runs, s.scrub_reads, s.scrub_refreshes),
        )
    };
    for spec in ScenarioSpec::registry() {
        for scheme in Scheme::ALL {
            let single = run_cell(&spec, scheme, &trace, TimingModel::SingleQueue);
            let piped = run_cell(&spec, scheme, &trace, TimingModel::Pipelined);
            assert_eq!(
                logical(&single),
                logical(&piped),
                "cell {}/{} diverged between timing models",
                spec.name,
                scheme.label()
            );
        }
    }
}

/// Satellite: the read-disturb ↔ patrol-scrub interaction. On a hot-LPN
/// workload (tiny footprint, so pages absorb many reads between
/// rewrites), disabling the scrubber lets disturb accumulate to the cap
/// and must show a strictly higher observed UBER than the scrubbed run
/// — pinned with exact counters at the fixed seed.
#[test]
fn scrub_caps_read_disturb_uber() {
    let trace = WorkloadSpec::fin2()
        .with_requests(6_000)
        .with_footprint(400)
        .generate(&mut StdRng::seed_from_u64(0xD157));
    let spec = ScenarioSpec::find("read-disturb-hot").expect("preset registered");
    let run = |scrub_interval: u64| {
        let mut config = cell_config(&spec, Scheme::LdpcInSsd, TimingModel::SingleQueue);
        config.faults.scrub_interval = scrub_interval;
        let mut sim = SsdSimulator::new(config);
        sim.run(&trace).expect("trace fits").clone()
    };
    let scrubbed = run(500);
    let unscrubbed = run(0);
    assert!(scrubbed.scrub_runs > 0, "scrubber must run in the fixture");
    assert_eq!(unscrubbed.scrub_runs, 0, "scrubber must be off");
    let info_bits = EccConfig::paper_ldpc().info_bits;
    let (with_scrub, without) = (
        scrubbed.observed_uber(info_bits),
        unscrubbed.observed_uber(info_bits),
    );
    println!(
        "scrubbed: uber={with_scrub:.3e} unc={} retry={} refreshes={}",
        scrubbed.uncorrectable_reads, scrubbed.retry_reads, scrubbed.scrub_refreshes
    );
    println!(
        "unscrubbed: uber={without:.3e} unc={} retry={}",
        unscrubbed.uncorrectable_reads, unscrubbed.retry_reads
    );
    assert!(
        without > with_scrub,
        "unscrubbed UBER {without:.3e} must exceed scrubbed {with_scrub:.3e}"
    );
    // Exact pins at the fixed seed (bless with --nocapture).
    assert_eq!(
        (
            scrubbed.uncorrectable_reads,
            scrubbed.retry_reads,
            scrubbed.scrub_refreshes,
        ),
        (0, 19, 280),
        "scrubbed counters drifted"
    );
    assert_eq!(
        (unscrubbed.uncorrectable_reads, unscrubbed.retry_reads),
        (1, 27),
        "unscrubbed counters drifted"
    );
}
