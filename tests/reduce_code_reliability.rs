//! Integration of ReduceCode (core crate) with the Monte-Carlo BER engine
//! (reliability crate): the reduced-state bit error behaviour the paper's
//! Tables 3–4 rest on.

use flash_model::{Hours, LevelConfig, VthLevel};
use flexlevel::{NunmaConfig, ReduceCode};
use rand::{rngs::StdRng, SeedableRng};
use reliability::{
    run_sharded, BerSimulation, GrayMlcCodec, InterferenceModel, ProgramModel, RetentionModel,
    RetentionStress, StressConfig,
};

fn retention_stress(pe: u32, time: Hours) -> StressConfig {
    StressConfig::retention_only(RetentionModel::paper(), RetentionStress::new(pe, time))
}

/// ReduceCode-through-the-channel: a pair of stressed reduced cells loses
/// close to one bit per level slip (the Table 1 design goal), so the bit
/// error rate tracks the cell error rate at ≈ 2/3 ratio
/// (1 slip ≈ 1 bit of 3 bits per 2 cells ⇒ ber ≈ cell_rate × 2 / 3... the
/// engine reports both, letting us check the coupling directly).
#[test]
fn reduce_code_bit_errors_track_cell_errors() {
    let cfg = NunmaConfig::nunma1().level_config();
    let codec = ReduceCode;
    let sim = BerSimulation::new(
        &cfg,
        &codec,
        ProgramModel::default(),
        retention_stress(6000, Hours::months(1.0)),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let report = sim.run(400_000, &mut rng);
    assert!(report.cell_errors > 50, "need statistics: {report:?}");
    // bits-per-cell-error: each misread cell flips ~1 bit of the 3-bit
    // symbol; symbols have 2 cells. bit_errors / cell_errors ≈ 1.0–1.2.
    let ratio = report.bit_errors as f64 / report.cell_errors as f64;
    assert!(
        (0.8..=1.3).contains(&ratio),
        "bit errors per slipped cell = {ratio}"
    );
}

/// The NUNMA motivation measured through the real codec: under the basic
/// symmetric reduced state, retention errors concentrate on level 2
/// (paper §4.2: 78% at level 2, 15% at level 1).
#[test]
fn retention_errors_concentrate_on_top_reduced_level() {
    let cfg = LevelConfig::reduced_symmetric();
    let codec = ReduceCode;
    let sim = BerSimulation::new(
        &cfg,
        &codec,
        ProgramModel::default(),
        retention_stress(6000, Hours::weeks(1.0)),
    );
    let mut rng = StdRng::seed_from_u64(2);
    let report = sim.run(600_000, &mut rng);
    let l2 = report.error_share(VthLevel::L2);
    let l1 = report.error_share(VthLevel::L1);
    let l0 = report.error_share(VthLevel::ERASED);
    assert!(
        l2 > 0.55,
        "level 2 must dominate retention errors (paper: 78%), got {l2:.2}"
    );
    assert!(
        l1 > 0.01 && l1 < 0.45,
        "level 1 moderate share, got {l1:.2}"
    );
    assert!(l0 < 0.05, "erased level nearly error-free, got {l0:.2}");
}

/// NUNMA ordering measured with the real ReduceCode codec rather than the
/// level probe: NUNMA 3 < NUNMA 2 < NUNMA 1 in retention BER.
#[test]
fn nunma_rows_strictly_ordered_through_codec() {
    let codec = ReduceCode;
    let mut bers = Vec::new();
    for (label, cfg) in NunmaConfig::paper_rows() {
        let level_cfg = cfg.level_config();
        let sim = BerSimulation::new(
            &level_cfg,
            &codec,
            ProgramModel::default(),
            retention_stress(6000, Hours::months(1.0)),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let report = sim.run(600_000, &mut rng);
        bers.push((label, report.ber()));
    }
    assert!(
        bers[0].1 > bers[1].1 && bers[1].1 > bers[2].1,
        "NUNMA rows out of order: {bers:?}"
    );
}

/// Under C2C interference the ordering flips: higher verify voltages
/// (NUNMA 3) leave less interference margin (Figure 5's second finding).
///
/// C2C error rates on reduced cells sit near 3e-5, so resolving the
/// paper's +50 % gap needs millions of trials — this is a job for the
/// sharded Monte-Carlo engine rather than a bare trial loop.
#[test]
fn c2c_ordering_reverses() {
    let codec = ReduceCode;
    let mut bers = Vec::new();
    for (_, cfg) in NunmaConfig::paper_rows() {
        let level_cfg = cfg.level_config();
        let sim = BerSimulation::new(
            &level_cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::c2c_only(InterferenceModel::default()),
        );
        bers.push(run_sharded(&sim, 6_000_000, 0, 4).cell_error_rate());
    }
    // NUNMA3's C2C error rate must exceed NUNMA1's (paper: +50%).
    assert!(
        bers[2] > bers[0],
        "NUNMA3 C2C {} must exceed NUNMA1 {}",
        bers[2],
        bers[0]
    );
}

/// A reduced cell pair under NUNMA 3 dramatically outperforms a pair of
/// baseline MLC cells under identical stress — the whole device-level
/// case for LevelAdjust, measured end to end through both codecs.
#[test]
fn reduced_pair_beats_baseline_pair() {
    let stress = retention_stress(6000, Hours::months(1.0));
    let program = ProgramModel::default();
    let mut rng = StdRng::seed_from_u64(5);

    let baseline_cfg = LevelConfig::normal_mlc();
    let gray = GrayMlcCodec;
    let baseline = BerSimulation::new(&baseline_cfg, &gray, program, stress).run(400_000, &mut rng);

    let reduced_cfg = NunmaConfig::nunma3().level_config();
    let codec = ReduceCode;
    let reduced = BerSimulation::new(&reduced_cfg, &codec, program, stress).run(400_000, &mut rng);

    assert!(
        reduced.ber() * 5.0 < baseline.ber(),
        "NUNMA3+ReduceCode ({:.2e}) must be ≥5x below baseline ({:.2e})",
        reduced.ber(),
        baseline.ber()
    );
}
