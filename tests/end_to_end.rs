//! End-to-end integration: device physics → LDPC sensing → SSD policy.
//!
//! These tests chain every crate of the workspace the way the paper's
//! evaluation does, checking the cross-layer contracts that no single
//! crate can verify alone.

use flash_model::{Hours, LevelConfig};
use flexlevel::NunmaScheme;
use ldpc::SensingSchedule;
use rand::{rngs::StdRng, SeedableRng};
use reliability::{analytic, InterferenceModel, ProgramModel, RetentionModel};
use ssd::{Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

/// The contract FlexLevel is built on: the deployed NUNMA-3 reduced state
/// never triggers extra sensing levels, at any point of the paper's
/// stress grid, while the worn baseline does.
#[test]
fn nunma3_never_needs_soft_sensing_baseline_does() {
    let schedule = SensingSchedule::paper_anchor();
    let program = ProgramModel::default();
    let c2c = InterferenceModel::default();
    let retention = RetentionModel::paper();
    let reduced = NunmaScheme::Nunma3.config().level_config();
    let baseline = LevelConfig::normal_mlc();

    let mut baseline_triggers = 0;
    for pe in [2000u32, 3000, 4000, 5000, 6000] {
        for time in [
            Hours::days(1.0),
            Hours::days(2.0),
            Hours::weeks(1.0),
            Hours::months(1.0),
        ] {
            let stress = Some((&retention, pe, time));
            let r = analytic::estimate(&reduced, &program, Some(&c2c), stress, 1.5).ber;
            assert_eq!(
                schedule.required_levels(r),
                0,
                "NUNMA3 must stay hard-decision at pe={pe}, t={time}"
            );
            let b = analytic::estimate(&baseline, &program, Some(&c2c), stress, 2.0).ber;
            baseline_triggers += u32::from(schedule.required_levels(b) > 0);
        }
    }
    assert!(
        baseline_triggers >= 8,
        "the worn baseline must need soft sensing on much of the grid, got {baseline_triggers}/20"
    );
}

/// Figure 6(a)'s ordering must emerge from the full simulation stack on a
/// read-dominated workload.
#[test]
fn scheme_ordering_on_read_heavy_workload() {
    let trace = WorkloadSpec::web1()
        .with_requests(8_000)
        .with_footprint(2_500)
        .generate(&mut StdRng::seed_from_u64(3));
    let mut means = Vec::new();
    for scheme in Scheme::ALL {
        let mut sim = SsdSimulator::new(SsdConfig::scaled(scheme, 64));
        let stats = sim.run(&trace).expect("trace fits");
        means.push((scheme, stats.mean_response().as_f64()));
    }
    let get = |s: Scheme| means.iter().find(|(x, _)| *x == s).unwrap().1;
    assert!(
        get(Scheme::Baseline) > get(Scheme::LdpcInSsd),
        "baseline must be slowest"
    );
    assert!(
        get(Scheme::LdpcInSsd) > get(Scheme::FlexLevel),
        "FlexLevel must beat LDPC-in-SSD"
    );
}

/// Figure 6(b)'s trend: the FlexLevel advantage over LDPC-in-SSD grows
/// with device wear.
#[test]
fn flexlevel_gain_grows_with_wear() {
    let trace = WorkloadSpec::fin2()
        .with_requests(8_000)
        .with_footprint(2_000)
        .generate(&mut StdRng::seed_from_u64(4));
    let mut reductions = Vec::new();
    for pe in [4000u32, 6000] {
        let ldpc = {
            let mut sim =
                SsdSimulator::new(SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_base_pe(pe));
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        let flex = {
            let mut sim =
                SsdSimulator::new(SsdConfig::scaled(Scheme::FlexLevel, 64).with_base_pe(pe));
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        reductions.push(1.0 - flex / ldpc);
    }
    assert!(
        reductions[1] > reductions[0],
        "reduction at 6000 P/E ({:.3}) must exceed 4000 P/E ({:.3})",
        reductions[1],
        reductions[0]
    );
}

/// Figure 7's endurance story: FlexLevel costs extra programs/erases but
/// the projected lifetime loss stays moderate.
#[test]
fn endurance_cost_is_bounded() {
    let trace = WorkloadSpec::win1()
        .with_requests(8_000)
        .with_footprint(2_000)
        .generate(&mut StdRng::seed_from_u64(5));
    let ldpc = {
        let mut sim = SsdSimulator::new(SsdConfig::scaled(Scheme::LdpcInSsd, 64));
        sim.run(&trace).unwrap().clone()
    };
    let flex = {
        let mut sim = SsdSimulator::new(SsdConfig::scaled(Scheme::FlexLevel, 64));
        sim.run(&trace).unwrap().clone()
    };
    assert!(flex.flash_programs >= ldpc.flash_programs);
    let erase_increase = flex.erases as f64 / ldpc.erases.max(1) as f64;
    assert!(
        erase_increase < 2.0,
        "erase increase {erase_increase} should stay well under 2x"
    );
    let lifetime = ssd::LifetimeModel::paper().relative_lifetime(erase_increase.max(1.0));
    assert!(
        lifetime > 0.7,
        "projected lifetime {lifetime} must stay moderate (paper: 94%)"
    );
}

/// The capacity contract: the paper's configuration loses ≈6% of the
/// device, and the simulator's FlexLevel pool never exceeds its bound.
#[test]
fn pool_respects_capacity_bound() {
    let trace = WorkloadSpec::fin2()
        .with_requests(12_000)
        .with_footprint(2_500)
        .generate(&mut StdRng::seed_from_u64(6));
    let config = SsdConfig::scaled(Scheme::FlexLevel, 64);
    let pool_pages = config.access_eval.pool_pages;
    let ppb = config.geometry.pages_per_block() as u64;
    let mut sim = SsdSimulator::new(config);
    sim.run(&trace).unwrap();
    // Reduced blocks × reduced capacity must stay within the pool bound
    // (plus one partially filled frontier block).
    let reduced_capacity = sim.ftl().reduced_blocks() as u64 * (ppb * 3 / 4);
    assert!(
        reduced_capacity <= pool_pages + ppb,
        "reduced capacity {reduced_capacity} exceeds pool bound {pool_pages}"
    );
}
