//! Property and fixture suite for the N-level cell generalization of
//! `flash-model`.
//!
//! Three guarantees are pinned:
//!
//! 1. **Gray adjacency** — for every supported bits-per-cell the
//!    level↔bits mapping is a bijection and adjacent Vth levels differ
//!    in exactly one bit, so a one-level sensing slip costs one raw bit
//!    error regardless of cell technology.
//! 2. **Level-count monotonicity** — at a fixed stress point the raw
//!    BER strictly increases with level count (SLC < MLC < TLC), the
//!    physical ordering the FlexLevel trade-off rests on.
//! 3. **MLC bit-identity** — the generalized path reproduces the
//!    pre-refactor MLC analytic BER bit-for-bit at three pinned
//!    (PE, retention) stress points, proving the refactor moved zero
//!    behavior for the original design point.

use flash_model::gray::{nlevel_bits, nlevel_from_bits};
use flash_model::{CellTech, Hours, LevelConfig, VthLevel};
use proptest::prelude::*;
use reliability::analytic::estimate;
use reliability::{ProgramModel, RetentionModel};

proptest! {
    /// Bijection: decoding the encoded bits recovers the level, for
    /// every level expressible at each supported bits-per-cell.
    #[test]
    fn nlevel_gray_mapping_is_a_bijection(
        bits_per_cell in 1u32..=3,
        raw_index in 0u8..8,
    ) {
        let levels = 1u8 << bits_per_cell;
        let level = VthLevel::new(raw_index % levels);
        let bits = nlevel_bits(level, bits_per_cell);
        prop_assert!(u32::from(bits) < (1 << bits_per_cell));
        prop_assert_eq!(nlevel_from_bits(bits, bits_per_cell), level);
    }

    /// Gray adjacency: consecutive levels differ in exactly one bit.
    #[test]
    fn adjacent_levels_differ_in_one_bit(
        bits_per_cell in 1u32..=3,
        raw_index in 0u8..7,
    ) {
        let levels = 1u8 << bits_per_cell;
        prop_assume!(raw_index + 1 < levels);
        let a = nlevel_bits(VthLevel::new(raw_index), bits_per_cell);
        let b = nlevel_bits(VthLevel::new(raw_index + 1), bits_per_cell);
        prop_assert_eq!(
            (a ^ b).count_ones(), 1,
            "levels {} and {} must be Gray-adjacent (got {:#05b} vs {:#05b})",
            raw_index, raw_index + 1, a, b
        );
    }

    /// More levels in the same Vth window → strictly higher raw BER, at
    /// any stress point in the calibrated operating range.
    #[test]
    fn raw_ber_is_monotone_in_level_count(
        pe in 1000u32..8000,
        hours in 1u32..1000,
    ) {
        let ber_of = |tech: CellTech| {
            estimate(
                &tech.level_config(),
                &ProgramModel::default(),
                None,
                Some((&RetentionModel::paper(), pe, Hours(f64::from(hours)))),
                f64::from(tech.bits_per_cell()),
            )
            .ber
        };
        let (slc, mlc, tlc) = (ber_of(CellTech::Slc), ber_of(CellTech::Mlc), ber_of(CellTech::Tlc));
        prop_assert!(slc < mlc, "SLC {slc} must be cleaner than MLC {mlc}");
        prop_assert!(mlc < tlc, "MLC {mlc} must be cleaner than TLC {tlc}");
    }

    /// Dropping the top level (reduced mode) is a reliability win for
    /// every technology across the calibrated operating envelope. (Near
    /// channel saturation the win evaporates: the cell error rate
    /// approaches the random limit for both configs while reduced mode
    /// amortizes it over fewer bits — log₂7 < 3 for TLC — so the bound
    /// is deliberately restricted to the region the simulator runs in.)
    #[test]
    fn reduced_mode_wins_in_the_operating_envelope(pe in 1000u32..5000, hours in 1u32..400) {
        for tech in [CellTech::Mlc, CellTech::Tlc] {
            let stress = Some((&RetentionModel::paper(), pe, Hours(f64::from(hours))));
            let normal = estimate(
                &tech.level_config(),
                &ProgramModel::default(),
                None,
                stress,
                f64::from(tech.bits_per_cell()),
            )
            .ber;
            let reduced = estimate(
                &tech.reduced_level_config(),
                &ProgramModel::default(),
                None,
                stress,
                tech.reduced_bits_per_cell(),
            )
            .ber;
            prop_assert!(
                reduced < normal,
                "{tech:?}: reduced {reduced} must beat normal {normal}"
            );
        }
    }
}

/// The MLC path is bit-identical to the pre-refactor model: three
/// stress points captured from the code before `CellTech` existed.
#[test]
fn mlc_path_matches_pre_refactor_fixtures() {
    // (pe, hours, expected IEEE-754 bits of the raw BER)
    const FIXTURES: &[(u32, f64, u64)] = &[
        (3000, 24.0, 0x3F610EB3C2318C0C),  // 2.0822058591405453e-3
        (4000, 168.0, 0x3F8A2F5812CCD7FF), // 1.2785614083991701e-2
        (6000, 720.0, 0x3FA3C340267F18F2), // 3.859901876380602e-2
    ];
    for &(pe, hours, expected_bits) in FIXTURES {
        let report = estimate(
            &CellTech::Mlc.level_config(),
            &ProgramModel::default(),
            None,
            Some((&RetentionModel::paper(), pe, Hours(hours))),
            f64::from(CellTech::Mlc.bits_per_cell()),
        );
        assert_eq!(
            report.ber.to_bits(),
            expected_bits,
            "MLC BER drifted at pe={pe} h={hours}: got {:e} ({:#X})",
            report.ber,
            report.ber.to_bits()
        );
    }
}

/// `CellTech::Mlc.level_config()` is the legacy `normal_mlc` object, not
/// merely a numerically close packing.
#[test]
fn mlc_level_config_is_the_legacy_object() {
    let legacy = LevelConfig::normal_mlc();
    let via_tech = CellTech::Mlc.level_config();
    assert_eq!(via_tech.level_count(), legacy.level_count());
    assert_eq!(via_tech.read_refs(), legacy.read_refs());
}

/// Level counts across the technology ladder.
#[test]
fn level_counts_follow_bits_per_cell() {
    assert_eq!(CellTech::Slc.level_count(), 2);
    assert_eq!(CellTech::Mlc.level_count(), 4);
    assert_eq!(CellTech::Tlc.level_count(), 8);
    assert_eq!(CellTech::Slc.reduced_level_config().level_count(), 2);
    assert_eq!(CellTech::Mlc.reduced_level_config().level_count(), 3);
    assert_eq!(CellTech::Tlc.reduced_level_config().level_count(), 7);
}
