//! Differential tests: the behavioural cell arrays must agree with the
//! logical codecs and the bitline layout arithmetic.

use flash_model::{gray, Bit, CellMode, MlcBlock, NormalPage, ReducedPage, WordlineLayout};
use flexlevel::{ReduceCode, ReducedWordline};
use rand::{rngs::StdRng, Rng, SeedableRng};
use reliability::SymbolCodec;

fn random_bits<R: Rng>(n: usize, rng: &mut R) -> Vec<Bit> {
    (0..n).map(|_| Bit::from(rng.gen_bool(0.5))).collect()
}

/// Programming a normal block page by page must land every cell on the
/// Gray level of its (lower, upper) bit pair.
#[test]
fn mlc_block_agrees_with_gray_codec() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut block = MlcBlock::new(2, 32);
    let n = block.page_bits();
    for wl in 0..block.wordlines() {
        let pages: Vec<(NormalPage, Vec<Bit>)> = NormalPage::ALL
            .iter()
            .map(|&p| (p, random_bits(n, &mut rng)))
            .collect();
        for (page, bits) in &pages {
            block.program_page(wl, *page, bits).unwrap();
        }
        // Differential check against gray::encode per cell.
        for (page, bits) in &pages {
            assert_eq!(&block.read_page(wl, *page).unwrap(), bits);
        }
        for bl in 0..block.bitlines() {
            let cell = block.cell(wl, bl);
            let level = cell.level().expect("fully programmed");
            let read = gray::decode(level);
            assert_eq!(read.lower, cell.read_lower());
            assert_eq!(read.upper, cell.read_upper());
        }
    }
}

/// The reduced wordline's three pages must round-trip arbitrary data and
/// stay consistent with ReduceCode symbol decoding.
#[test]
fn reduced_wordline_agrees_with_reduce_code() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..20 {
        let mut wl = ReducedWordline::new(8);
        let n = wl.page_bits();
        let lower = random_bits(n, &mut rng);
        let middle = random_bits(n, &mut rng);
        let upper = random_bits(n, &mut rng);
        wl.program_page(ReducedPage::Lower, &lower).unwrap();
        wl.program_page(ReducedPage::Middle, &middle).unwrap();
        wl.program_page(ReducedPage::Upper, &upper).unwrap();
        assert_eq!(wl.read_page(ReducedPage::Lower), lower);
        assert_eq!(wl.read_page(ReducedPage::Middle), middle);
        assert_eq!(wl.read_page(ReducedPage::Upper), upper);
    }
}

/// Page-size arithmetic: the behavioural wordlines must realise exactly
/// the densities the bitline layout predicts.
#[test]
fn arrays_match_layout_arithmetic() {
    let layout = WordlineLayout::new(64).unwrap();
    // Normal: MlcBlock wordline of 64 bitlines ⇒ 4 pages of 32 bits.
    let block = MlcBlock::new(1, 64);
    assert_eq!(block.page_bits() as u32, layout.page_bits(CellMode::Normal));
    // Reduced: 16 pairs per group ⇒ 3 pages of 32 bits.
    let wl = ReducedWordline::new(layout.pairs_per_group() as usize);
    assert_eq!(wl.page_bits() as u32, layout.page_bits(CellMode::Reduced));
    assert_eq!(
        wl.wordline_bits() as u32,
        layout.wordline_bits(CellMode::Reduced)
    );
    assert_eq!(
        4 * block.page_bits() as u32,
        layout.wordline_bits(CellMode::Normal)
    );
}

/// Distorting a programmed reduced wordline by one level in one cell
/// flips at most two data bits across all three pages — the page-level
/// consequence of the ReduceCode design (usually exactly one).
#[test]
fn reduced_wordline_distortion_damage_bounded() {
    // Work at the symbol level: every symbol, every single-cell slip.
    let mut worst = 0u32;
    for value in 0..8u16 {
        let (a, b) = ReduceCode::encode_value(value);
        for (da, db) in [
            (a.index() as i8 - 1, b.index() as i8),
            (a.index() as i8 + 1, b.index() as i8),
            (a.index() as i8, b.index() as i8 - 1),
            (a.index() as i8, b.index() as i8 + 1),
        ] {
            if !(0..=2).contains(&da) || !(0..=2).contains(&db) {
                continue;
            }
            let read = ReduceCode::decode_levels(
                flash_model::VthLevel::new(da as u8),
                flash_model::VthLevel::new(db as u8),
            );
            worst = worst.max((value ^ read).count_ones());
        }
    }
    assert!(worst <= 2, "worst single-slip damage {worst} bits");
    // And the average is close to one (checked exactly in unit tests).
    assert_eq!(ReduceCode.bits_per_symbol(), 3);
}
