//! Vendored mini benchmark harness with a criterion-compatible API.
//!
//! The build environment cannot reach crates.io, so this stub implements
//! the subset of `criterion` the bench suite uses: [`Criterion`],
//! benchmark groups with `sample_size`/`throughput`, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Statistics are deliberately simple — a fixed warmup plus
//! `sample_size` timed iterations, reporting min/mean/max wall-clock —
//! which is enough for the relative comparisons the experiment suite
//! makes. No HTML reports, no outlier analysis.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted but ignored here).
    #[must_use]
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_benchmark(&id.to_string(), 10, None, f);
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Finishes the group (prints nothing extra in this stub).
    pub fn finish(&mut self) {}
}

/// Identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id such as `replay/fin2`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter).
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup to populate caches and lazy statics.
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("nonempty");
    let max = bencher.samples.iter().max().expect("nonempty");
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mib_s:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / mean.as_secs_f64();
            format!("  {elem_s:10.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{label:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}{rate}  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::new("spin", "fast"), |b| {
            b.iter(|| {
                runs += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        // 1 warmup + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
