//! Vendored no-op stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward
//! declarations — nothing serializes at runtime yet, and the build
//! environment cannot reach crates.io. This stub keeps the annotations
//! compiling: the derive macros expand to nothing and blanket
//! implementations make every type satisfy the traits if a bound ever
//! asks for them. Swap back to real serde by restoring the registry
//! dependency in the workspace `Cargo.toml`; no call sites change.

#![warn(missing_docs)]

/// Marker replacement for `serde::Serialize`.
pub trait Serialize {}

/// Marker replacement for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker replacement for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
