//! Vendored mini property-testing harness with a proptest-compatible API.
//!
//! The build environment cannot reach crates.io, so this stub implements
//! the subset of `proptest` the workspace's property tests use:
//!
//! * the [`proptest!`] macro (`fn name(arg in strategy, ...) { body }`);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`] and [`TestCaseError`];
//! * range strategies for integers and floats, [`bool::ANY`], tuple
//!   strategies, `prop::collection::{vec, hash_set}`, [`Just`], and a
//!   tiny `"[a-z]{1,12}"`-style regex strategy for `&str` literals.
//!
//! Cases are generated deterministically (seeded by test name and case
//! index), so failures reproduce across runs. `PROPTEST_CASES` overrides
//! the default of 64 cases per property.

#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated; the test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
);

/// String-literal strategies: a tiny regex dialect supporting exactly
/// `[<chars>]{min,max}` with `a-z`-style ranges (e.g. `"[a-z]{1,12}"`).
/// Unsupported patterns fall back to short alphanumeric strings.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_charclass_repeat(self).unwrap_or_else(|| {
            (
                "abcdefghijklmnopqrstuvwxyz0123456789".chars().collect(),
                0,
                8,
            )
        });
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_charclass_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut look = it.clone();
            look.next();
            if let Some(&hi) = look.peek() {
                it.next();
                it.next();
                for x in c..=hi {
                    chars.push(x);
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() {
        None
    } else {
        Some((chars, min, max))
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    /// If the element domain is too small to reach the drawn size, the
    /// set is returned with as many distinct elements as were found.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.gen_range(self.size.min..=self.size.max);
            let mut set = HashSet::with_capacity(target);
            for _ in 0..target.max(1) * 100 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

/// Drives one property: generates cases until the configured number pass,
/// panicking on the first failure. Called by the [`proptest!`] expansion.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> (Result<(), TestCaseError>, String),
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let name_hash = fnv1a(name.as_bytes());
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut index = 0u64;
    while accepted < cases {
        let mut seed_state = name_hash ^ index;
        let mut rng = StdRng::seed_from_u64(rand::splitmix64(&mut seed_state));
        let (result, inputs) = case(&mut rng);
        index += 1;
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= 4096,
                    "[{name}] too many rejected cases (last: {why})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("[{name}] property failed at case #{index} with {inputs}: {msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Defines deterministic property tests over sampled inputs.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the example is consumed by the macro; it is the
// macro's real call syntax, not a doctest-local unit test.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                #[allow(unreachable_code)]
                let body =
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    };
                (body(), inputs)
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+),
                        l,
                        r
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::fail(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };

    #[doc(inline)]
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, f in -1.0f64..1.0, b in prop::bool::ANY) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-1.0..1.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn vecs_and_sets_respect_sizes(
            v in prop::collection::vec((0u64..32, prop::bool::ANY), 2..10),
            s in prop::collection::hash_set(0usize..1000, 1..=4),
        ) {
            prop_assert!((2..10).contains(&v.len()));
            prop_assert!((1..=4).contains(&s.len()));
        }

        #[test]
        fn string_pattern_obeys_charclass(name in "[a-z]{1,12}") {
            prop_assert!((1..=12).contains(&name.len()));
            prop_assert!(name.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn assume_retries(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn failures_panic_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::run_cases("always_fails", |rng| {
                let x = crate::Strategy::sample(&(0u32..10), rng);
                (
                    Err(crate::TestCaseError::fail("boom")),
                    format!("x = {x:?}"),
                )
            });
        });
        let err = result.expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("boom") && msg.contains("x ="), "msg: {msg}");
    }

    #[test]
    fn same_name_same_cases() {
        let mut first = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            first.push(crate::Strategy::sample(&(0u64..1_000_000), rng));
            (Ok(()), String::new())
        });
        let mut second = Vec::new();
        crate::run_cases("determinism_probe", |rng| {
            second.push(crate::Strategy::sample(&(0u64..1_000_000), rng));
            (Ok(()), String::new())
        });
        assert_eq!(first, second);
    }
}
