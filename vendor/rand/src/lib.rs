//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this stub implementing exactly the surface the FlexLevel code
//! uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`) and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, but with the same determinism
//! contract: a given seed produces one fixed stream on every platform.
//! Nothing in the workspace depends on upstream's exact stream values.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Raw seed bytes accepted by [`from_seed`](SeedableRng::from_seed).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// exactly like upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            for (b, v) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (public so sibling stubs can derive seed streams).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), matching upstream's precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform sampling from an unbiased `[0, span)` range (Lemire rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types usable as the element of a [`Rng::gen_range`] range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                (low as i128 + uniform_u64(rng, span) as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                low + (high - low) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (xoshiro256++ in this stub).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for checkpoint
        /// serialization. Feed it back through
        /// [`from_state`](Self::from_state) to resume the stream exactly
        /// where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from state captured by
        /// [`state`](Self::state). An all-zero state (which xoshiro
        /// cannot escape) is replaced by the same fallback constants as
        /// `from_seed`.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0; 4] {
                return StdRng {
                    s: [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ],
                };
            }
            StdRng { s }
        }

        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.step().to_le_bytes();
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..10);
            assert!((3..10).contains(&x));
            seen[(x - 3) as usize] = true;
            let y = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = sample(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
