//! Vendored, dependency-free subset of the `bytes` crate API.
//!
//! Implements exactly the surface the trace codec uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors. Backed by plain `Vec<u8>`/slices — the
//! zero-copy refcounting of the real crate is not reproduced (and not
//! needed by any current call site).

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
///
/// All `get_*` accessors panic when the source has fewer bytes remaining
/// than the value needs, mirroring the real crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"hdr");
        buf.put_u8(7);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f64_le(3.5);
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64_le(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.get_u8(), 3);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}
