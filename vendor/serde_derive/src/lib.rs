//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The stub `serde` crate provides blanket implementations of its marker
//! traits, so these derives have nothing to emit — they only need to
//! exist for `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! attributes to parse.

use proc_macro::TokenStream;

/// Expands to nothing; the stub serde has a blanket `Serialize` impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub serde has a blanket `Deserialize` impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
