//! Compact binary trace serialization.
//!
//! Traces of a few hundred thousand requests are regenerated cheaply, but
//! experiment pipelines often want to snapshot the exact trace a result
//! came from. The format is a fixed 24-byte little-endian record per
//! request under a small header — ~5× smaller than JSON and allocation-
//! free to scan.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::trace::{IoOp, IoRequest, Trace};

/// Magic prefix of the binary trace format.
const MAGIC: &[u8; 4] = b"FXT1";

/// Errors decoding a binary trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than a header or truncated mid-record.
    Truncated,
    /// Missing or wrong magic prefix.
    BadMagic,
    /// Unknown op code in a record.
    BadOp(u8),
    /// Name bytes were not valid UTF-8.
    BadName,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "trace data truncated"),
            DecodeError::BadMagic => write!(f, "not a FXT1 trace"),
            DecodeError::BadOp(op) => write!(f, "unknown op code {op}"),
            DecodeError::BadName => write!(f, "trace name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes a trace into the `FXT1` binary format.
pub fn encode(trace: &Trace) -> Bytes {
    let name = trace.name.as_bytes();
    let mut buf = BytesMut::with_capacity(4 + 2 + name.len() + 8 + 8 + trace.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name);
    buf.put_u64_le(trace.footprint_pages);
    buf.put_u64_le(trace.requests.len() as u64);
    for r in &trace.requests {
        buf.put_f64_le(r.arrival_us);
        buf.put_u64_le(r.lpn);
        buf.put_u32_le(r.pages);
        buf.put_u8(match r.op {
            IoOp::Read => 0,
            IoOp::Write => 1,
        });
        buf.put_slice(&[0u8; 3]); // record padding to 24 bytes
    }
    buf.freeze()
}

/// Parses a trace from the `FXT1` binary format.
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated input, a bad magic prefix, an
/// unknown op code or a non-UTF-8 name.
pub fn decode(mut data: &[u8]) -> Result<Trace, DecodeError> {
    if data.len() < 6 {
        return Err(DecodeError::Truncated);
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let name_len = data.get_u16_le() as usize;
    if data.remaining() < name_len + 16 {
        return Err(DecodeError::Truncated);
    }
    let name = std::str::from_utf8(&data[..name_len])
        .map_err(|_| DecodeError::BadName)?
        .to_owned();
    data.advance(name_len);
    let footprint_pages = data.get_u64_le();
    let count = data.get_u64_le() as usize;
    if data.remaining() < count * 24 {
        return Err(DecodeError::Truncated);
    }
    let mut requests = Vec::with_capacity(count);
    for _ in 0..count {
        let arrival_us = data.get_f64_le();
        let lpn = data.get_u64_le();
        let pages = data.get_u32_le();
        let op = match data.get_u8() {
            0 => IoOp::Read,
            1 => IoOp::Write,
            other => return Err(DecodeError::BadOp(other)),
        };
        data.advance(3);
        requests.push(IoRequest {
            arrival_us,
            lpn,
            pages,
            op,
        });
    }
    Ok(Trace {
        name,
        footprint_pages,
        requests,
    })
}

/// Writes a trace to a file in the `FXT1` format.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save<P: AsRef<std::path::Path>>(trace: &Trace, path: P) -> std::io::Result<()> {
    std::fs::write(path, encode(trace))
}

/// Reads a trace from a `FXT1` file.
///
/// # Errors
///
/// Propagates filesystem errors; decoding failures surface as
/// `InvalidData`.
pub fn load<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Trace> {
    let data = std::fs::read(path)?;
    decode(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn file_roundtrip() {
        let trace = WorkloadSpec::win2()
            .with_requests(500)
            .generate(&mut StdRng::seed_from_u64(9));
        let path = std::env::temp_dir().join("flexlevel_trace_roundtrip.fxt");
        save(&trace, &path).unwrap();
        let loaded = load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, trace);
    }

    #[test]
    fn load_rejects_garbage_file() {
        let path = std::env::temp_dir().join("flexlevel_trace_garbage.fxt");
        std::fs::write(&path, b"not a trace").unwrap();
        let err = load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn roundtrip() {
        let spec = WorkloadSpec::fin2().with_requests(1_000);
        let trace = spec.generate(&mut StdRng::seed_from_u64(1));
        let encoded = encode(&trace);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, trace);
    }

    #[test]
    fn empty_trace_roundtrip() {
        let trace = Trace {
            name: "empty".into(),
            footprint_pages: 42,
            requests: vec![],
        };
        assert_eq!(decode(&encode(&trace)).unwrap(), trace);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode(b"NOPE\x00\x00\x00\x00"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let trace = WorkloadSpec::fin2()
            .with_requests(10)
            .generate(&mut StdRng::seed_from_u64(2));
        let encoded = encode(&trace);
        for cut in [0, 3, 10, encoded.len() - 1] {
            assert_eq!(
                decode(&encoded[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn rejects_bad_op() {
        let trace = Trace {
            name: "x".into(),
            footprint_pages: 10,
            requests: vec![IoRequest {
                arrival_us: 0.0,
                lpn: 0,
                pages: 1,
                op: IoOp::Read,
            }],
        };
        let mut bytes = encode(&trace).to_vec();
        // Corrupt the op byte (offset: 4 magic + 2 len + 1 name + 16 header
        // + 20 into the record).
        let op_offset = 4 + 2 + 1 + 16 + 20;
        bytes[op_offset] = 9;
        assert_eq!(decode(&bytes), Err(DecodeError::BadOp(9)));
    }

    #[test]
    fn record_size_is_compact() {
        let trace = WorkloadSpec::web1()
            .with_requests(1_000)
            .generate(&mut StdRng::seed_from_u64(3));
        let encoded = encode(&trace);
        // 24 bytes per request plus a small header.
        assert!(encoded.len() < 24 * 1_000 + 64);
    }
}
