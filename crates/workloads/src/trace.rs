//! Block-level I/O trace representation.
//!
//! The FlexLevel evaluation replays block traces (fin-2, web-1/2, prj-1/2,
//! win-1/2) through the simulated SSD. Requests are page-granular: the
//! simulator's FTL maps one logical page to one physical flash page.

use serde::{Deserialize, Serialize};

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// Host read.
    Read,
    /// Host write.
    Write,
}

/// One host I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Arrival time in microseconds from trace start.
    pub arrival_us: f64,
    /// First logical page touched.
    pub lpn: u64,
    /// Number of consecutive pages touched (≥ 1).
    pub pages: u32,
    /// Read or write.
    pub op: IoOp,
}

impl IoRequest {
    /// Iterates over the logical pages this request touches.
    pub fn lpns(&self) -> impl Iterator<Item = u64> + '_ {
        self.lpn..self.lpn + self.pages as u64
    }
}

/// A complete trace plus the footprint it was generated against.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use workloads::WorkloadSpec;
///
/// let trace = WorkloadSpec::web1()
///     .with_requests(1_000)
///     .generate(&mut StdRng::seed_from_u64(1));
/// let profile = trace.profile();
/// assert!(profile.read_fraction > 0.95); // search engines mostly read
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Workload label (e.g. `"fin-2"`).
    pub name: String,
    /// Logical address space the trace touches, in pages.
    pub footprint_pages: u64,
    /// The requests, sorted by arrival time.
    pub requests: Vec<IoRequest>,
}

impl Trace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// `true` if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Fraction of requests that are reads.
    pub fn read_fraction(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests.iter().filter(|r| r.op == IoOp::Read).count() as f64
            / self.requests.len() as f64
    }

    /// Total pages read and written `(read_pages, written_pages)`.
    pub fn page_counts(&self) -> (u64, u64) {
        let mut reads = 0;
        let mut writes = 0;
        for r in &self.requests {
            match r.op {
                IoOp::Read => reads += r.pages as u64,
                IoOp::Write => writes += r.pages as u64,
            }
        }
        (reads, writes)
    }

    /// Duration between first and last arrival, in microseconds.
    pub fn duration_us(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) => last.arrival_us - first.arrival_us,
            _ => 0.0,
        }
    }

    /// Validates internal consistency: arrivals sorted, pages within the
    /// footprint, request lengths positive.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut prev = f64::NEG_INFINITY;
        for (i, r) in self.requests.iter().enumerate() {
            if r.arrival_us < prev {
                return Err(TraceError::UnsortedArrivals { index: i });
            }
            prev = r.arrival_us;
            if r.pages == 0 {
                return Err(TraceError::EmptyRequest { index: i });
            }
            if r.lpn + r.pages as u64 > self.footprint_pages {
                return Err(TraceError::OutOfFootprint { index: i });
            }
        }
        Ok(())
    }
}

/// Aggregate statistics of a trace (for reports and the CLI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Total requests.
    pub requests: usize,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Pages read / written.
    pub read_pages: u64,
    /// Pages written.
    pub written_pages: u64,
    /// Distinct logical pages touched.
    pub unique_pages: u64,
    /// Mean request length in pages.
    pub mean_request_pages: f64,
    /// Mean interarrival gap in microseconds.
    pub mean_interarrival_us: f64,
    /// Fraction of page accesses landing on the hottest decile of
    /// touched pages (popularity skew).
    pub top_decile_share: f64,
}

impl Trace {
    /// Computes the aggregate profile of this trace.
    pub fn profile(&self) -> TraceProfile {
        let (read_pages, written_pages) = self.page_counts();
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut total_pages = 0u64;
        for r in &self.requests {
            for lpn in r.lpns() {
                *counts.entry(lpn).or_insert(0) += 1;
                total_pages += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let decile = (freqs.len() / 10).max(1);
        let top: u64 = freqs.iter().take(decile).sum();
        let mean_interarrival_us = if self.requests.len() > 1 {
            self.duration_us() / (self.requests.len() - 1) as f64
        } else {
            0.0
        };
        TraceProfile {
            requests: self.requests.len(),
            read_fraction: self.read_fraction(),
            read_pages,
            written_pages,
            unique_pages: counts.len() as u64,
            mean_request_pages: if self.requests.is_empty() {
                0.0
            } else {
                total_pages as f64 / self.requests.len() as f64
            },
            mean_interarrival_us,
            top_decile_share: if total_pages == 0 {
                0.0
            } else {
                top as f64 / total_pages as f64
            },
        }
    }
}

/// Trace consistency violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// Request `index` arrives before its predecessor.
    UnsortedArrivals {
        /// Offending request index.
        index: usize,
    },
    /// Request `index` has zero length.
    EmptyRequest {
        /// Offending request index.
        index: usize,
    },
    /// Request `index` touches pages beyond the footprint.
    OutOfFootprint {
        /// Offending request index.
        index: usize,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::UnsortedArrivals { index } => {
                write!(f, "request {index} arrives before its predecessor")
            }
            TraceError::EmptyRequest { index } => write!(f, "request {index} has zero length"),
            TraceError::OutOfFootprint { index } => {
                write!(f, "request {index} exceeds the trace footprint")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            name: "t".into(),
            footprint_pages: 100,
            requests: vec![
                IoRequest {
                    arrival_us: 0.0,
                    lpn: 0,
                    pages: 4,
                    op: IoOp::Read,
                },
                IoRequest {
                    arrival_us: 10.0,
                    lpn: 50,
                    pages: 2,
                    op: IoOp::Write,
                },
                IoRequest {
                    arrival_us: 30.0,
                    lpn: 4,
                    pages: 1,
                    op: IoOp::Read,
                },
            ],
        }
    }

    #[test]
    fn stats() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.read_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.page_counts(), (5, 2));
        assert_eq!(t.duration_us(), 30.0);
    }

    #[test]
    fn lpn_iteration() {
        let r = IoRequest {
            arrival_us: 0.0,
            lpn: 7,
            pages: 3,
            op: IoOp::Write,
        };
        let lpns: Vec<u64> = r.lpns().collect();
        assert_eq!(lpns, vec![7, 8, 9]);
    }

    #[test]
    fn validation_passes_for_good_trace() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validation_catches_unsorted() {
        let mut t = sample();
        t.requests[2].arrival_us = 5.0;
        assert_eq!(t.validate(), Err(TraceError::UnsortedArrivals { index: 2 }));
    }

    #[test]
    fn validation_catches_zero_length() {
        let mut t = sample();
        t.requests[1].pages = 0;
        assert_eq!(t.validate(), Err(TraceError::EmptyRequest { index: 1 }));
    }

    #[test]
    fn validation_catches_footprint_overflow() {
        let mut t = sample();
        t.requests[1].lpn = 99;
        t.requests[1].pages = 5;
        assert_eq!(t.validate(), Err(TraceError::OutOfFootprint { index: 1 }));
    }

    #[test]
    fn profile_of_sample() {
        let p = sample().profile();
        assert_eq!(p.requests, 3);
        assert!((p.read_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.read_pages, 5);
        assert_eq!(p.written_pages, 2);
        assert_eq!(p.unique_pages, 7); // pages 0..=4 plus 50, 51
        assert!((p.mean_request_pages - 7.0 / 3.0).abs() < 1e-12);
        assert!((p.mean_interarrival_us - 15.0).abs() < 1e-12);
        assert!(p.top_decile_share > 0.0 && p.top_decile_share <= 1.0);
    }

    #[test]
    fn profile_detects_skew() {
        use crate::spec::WorkloadSpec;
        use rand::{rngs::StdRng, SeedableRng};
        let skewed = WorkloadSpec::fin2()
            .with_requests(20_000)
            .with_footprint(5_000)
            .generate(&mut StdRng::seed_from_u64(1))
            .profile();
        let mut uniform_spec = WorkloadSpec::fin2();
        uniform_spec.zipf_theta = 0.0;
        let uniform = uniform_spec
            .with_requests(20_000)
            .with_footprint(5_000)
            .generate(&mut StdRng::seed_from_u64(1))
            .profile();
        assert!(
            skewed.top_decile_share > uniform.top_decile_share + 0.2,
            "skewed {} vs uniform {}",
            skewed.top_decile_share,
            uniform.top_decile_share
        );
    }

    #[test]
    fn empty_trace() {
        let t = Trace {
            name: "empty".into(),
            footprint_pages: 10,
            requests: vec![],
        };
        assert!(t.is_empty());
        assert_eq!(t.read_fraction(), 0.0);
        assert_eq!(t.duration_us(), 0.0);
        assert_eq!(t.validate(), Ok(()));
    }
}
