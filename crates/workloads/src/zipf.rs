//! Zipf-distributed page sampling via inverse-CDF approximation.
//!
//! Real block traces concentrate most accesses on a small hot set — the
//! property AccessEval's HLO identifier exploits. We model popularity as a
//! Zipf law `P(rank k) ∝ k^(−θ)` using the continuous inverse-CDF
//! approximation, which is O(1) per sample for any footprint size (exact
//! Zipf tables over millions of ranks would be prohibitive).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Zipf(θ) sampler over ranks `0 .. n`.
///
/// θ = 0 degenerates to uniform; θ ≈ 1 matches typical storage-trace skew.
///
/// ```
/// use workloads::ZipfSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = ZipfSampler::new(1000, 0.99);
/// let mut rng = StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: u64, theta: f64) -> ZipfSampler {
        assert!(n > 0, "Zipf needs a positive rank count");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "invalid Zipf theta {theta}"
        );
        ZipfSampler { n, theta }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Samples a rank in `0 .. n`; rank 0 is the most popular.
    ///
    /// Rank `k` corresponds to the continuous interval `[k+1, k+2)` of the
    /// density `x^(−θ)` over `[1, n+1)`, so every rank receives a full
    /// unit of integration mass (θ = 0 is exactly uniform).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.rank_for(rng.gen::<f64>())
    }

    /// Maps one uniform variate `u ∈ [0, 1)` to a rank in `0 .. n` —
    /// the inverse-CDF kernel behind [`sample`](Self::sample), exposed so
    /// generators driving their own deterministic bit streams (e.g. the
    /// open-loop arrival sources) can sample without a [`Rng`].
    pub fn rank_for(&self, u: f64) -> u64 {
        let u = u.max(f64::MIN_POSITIVE);
        let m = (self.n + 1) as f64;
        let k = if (self.theta - 1.0).abs() < 1e-9 {
            // θ = 1: continuous CDF is ln(k)/ln(m).
            m.powf(u)
        } else {
            // General θ: CDF ∝ (k^(1−θ) − 1) / (m^(1−θ) − 1).
            let e = 1.0 - self.theta;
            ((m.powf(e) - 1.0) * u + 1.0).powf(1.0 / e)
        };
        (k.floor() as u64).saturating_sub(1).min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(theta: f64, n: u64, samples: u64) -> Vec<u64> {
        let zipf = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_when_theta_zero() {
        let counts = frequencies(0.0, 10, 100_000);
        let expected = 10_000.0;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() / expected < 0.1,
                "rank {rank}: {c}"
            );
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let counts = frequencies(0.99, 1000, 200_000);
        // Head dominance: top 10% of ranks should draw well over half the
        // accesses at θ ≈ 1.
        let head: u64 = counts[..100].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.5,
            "head share {}",
            head as f64 / total as f64
        );
        // And popularity decreases with rank (coarse check over deciles).
        let first: u64 = counts[..100].iter().sum();
        let last: u64 = counts[900..].iter().sum();
        assert!(first > 10 * last.max(1));
    }

    #[test]
    fn theta_one_special_case() {
        let counts = frequencies(1.0, 100, 100_000);
        assert!(counts[0] > counts[50]);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn all_samples_in_range() {
        let zipf = ZipfSampler::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(zipf.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn single_rank() {
        let zipf = ZipfSampler::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(zipf.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "positive rank count")]
    fn zero_ranks_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Zipf theta")]
    fn negative_theta_rejected() {
        let _ = ZipfSampler::new(10, -1.0);
    }
}
