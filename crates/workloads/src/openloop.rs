//! Open-loop, multi-tenant request sources.
//!
//! The closed-trace replay in [`Trace`] models *one* client that has already
//! decided every arrival time. Serving experiments need the opposite regime:
//! several tenants, each an **open-loop** generator that keeps submitting at
//! its own rate regardless of completions, so queueing and tail latency can
//! actually build up. This module provides:
//!
//! * [`RequestSource`] — the trait the simulator pulls requests from. The
//!   closed trace replay is one impl ([`TraceSource`]); the open-loop
//!   generator is another ([`OpenLoopSource`]).
//! * [`TenantWorkload`] + [`Interarrival`] — a per-tenant profile: arrival
//!   process, read mix, Zipf working set over an LPN range, request sizes.
//! * [`OpenLoopSource`] — merges the per-tenant streams into one
//!   arrival-ordered sequence. Every tenant owns a private SplitMix64
//!   stream derived from the base seed, so the merged sequence is
//!   bit-identical regardless of tenant count elsewhere or thread count in
//!   the consumer.

use crate::trace::{IoOp, IoRequest, Trace};
use crate::zipf::ZipfSampler;

/// One request tagged with the tenant that issued it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantRequest {
    /// Issuing tenant index (0-based).
    pub tenant: u32,
    /// The request itself; `arrival_us` is on the merged global clock.
    pub request: IoRequest,
}

/// A pull-based stream of arrival-ordered requests.
///
/// The simulator drains a source to completion; sources must yield requests
/// in non-decreasing `arrival_us` order and report the logical footprint the
/// device must be preloaded with before serving starts.
pub trait RequestSource {
    /// Next request in arrival order, or `None` when the stream is drained.
    fn next_request(&mut self) -> Option<TenantRequest>;

    /// Logical address space the stream touches, in pages.
    fn footprint_pages(&self) -> u64;

    /// Number of tenants this source multiplexes (≥ 1).
    fn tenants(&self) -> u32;
}

/// Closed-trace replay as a [`RequestSource`]: every request belongs to
/// tenant 0 and arrival times come verbatim from the trace.
#[derive(Debug)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    next: usize,
}

impl<'a> TraceSource<'a> {
    /// Wraps a trace for replay.
    pub fn new(trace: &'a Trace) -> TraceSource<'a> {
        TraceSource { trace, next: 0 }
    }

    /// Wraps a trace for replay starting at request index `next` — the
    /// resume path after a checkpoint restore. An index at or past the
    /// end yields an immediately-drained source.
    pub fn starting_at(trace: &'a Trace, next: usize) -> TraceSource<'a> {
        TraceSource { trace, next }
    }
}

impl RequestSource for TraceSource<'_> {
    fn next_request(&mut self) -> Option<TenantRequest> {
        let request = *self.trace.requests.get(self.next)?;
        self.next += 1;
        Some(TenantRequest { tenant: 0, request })
    }

    fn footprint_pages(&self) -> u64 {
        self.trace.footprint_pages
    }

    fn tenants(&self) -> u32 {
        1
    }
}

/// Arrival process for one tenant's open-loop stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Interarrival {
    /// Fixed-rate arrivals: exactly this many microseconds apart.
    Fixed(f64),
    /// Poisson arrivals with this mean interarrival in microseconds
    /// (exponential gaps).
    Poisson(f64),
}

impl Interarrival {
    /// Convenience: arrival process from a rate in requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `requests_per_sec` is not positive and finite.
    pub fn poisson_rate(requests_per_sec: f64) -> Interarrival {
        assert!(
            requests_per_sec.is_finite() && requests_per_sec > 0.0,
            "invalid arrival rate {requests_per_sec}"
        );
        Interarrival::Poisson(1_000_000.0 / requests_per_sec)
    }

    fn next_gap(&self, u: f64) -> f64 {
        match *self {
            Interarrival::Fixed(gap) => gap,
            Interarrival::Poisson(mean) => -u.max(f64::MIN_POSITIVE).ln() * mean,
        }
    }
}

/// One tenant's workload profile for [`OpenLoopSource`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantWorkload {
    /// First LPN of this tenant's working set. Ranges may be disjoint
    /// (per-tenant namespaces) or overlapping (shared data).
    pub first_lpn: u64,
    /// Size of the working set in pages (≥ 1).
    pub working_set_pages: u64,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_fraction: f64,
    /// Zipf skew over the working set (0 = uniform).
    pub zipf_theta: f64,
    /// Mean request length in pages (geometric, capped at 16).
    pub mean_request_pages: f64,
    /// Arrival process.
    pub interarrival: Interarrival,
    /// Number of requests this tenant submits before its stream drains.
    pub requests: u64,
}

impl TenantWorkload {
    /// A read-heavy profile over `working_set_pages` pages starting at
    /// `first_lpn`, with Poisson arrivals at `requests_per_sec`.
    pub fn new(first_lpn: u64, working_set_pages: u64, requests_per_sec: f64) -> TenantWorkload {
        TenantWorkload {
            first_lpn,
            working_set_pages,
            read_fraction: 0.8,
            zipf_theta: 0.9,
            mean_request_pages: 2.0,
            interarrival: Interarrival::poisson_rate(requests_per_sec),
            requests: 1_000,
        }
    }

    /// Sets the read fraction.
    pub fn with_read_fraction(mut self, read_fraction: f64) -> TenantWorkload {
        self.read_fraction = read_fraction;
        self
    }

    /// Sets the Zipf skew.
    pub fn with_zipf_theta(mut self, zipf_theta: f64) -> TenantWorkload {
        self.zipf_theta = zipf_theta;
        self
    }

    /// Sets the mean request length in pages.
    pub fn with_mean_request_pages(mut self, mean: f64) -> TenantWorkload {
        self.mean_request_pages = mean;
        self
    }

    /// Sets the arrival process.
    pub fn with_interarrival(mut self, interarrival: Interarrival) -> TenantWorkload {
        self.interarrival = interarrival;
        self
    }

    /// Sets the number of requests the tenant submits.
    pub fn with_requests(mut self, requests: u64) -> TenantWorkload {
        self.requests = requests;
        self
    }

    fn validate(&self, tenant: usize) {
        assert!(
            self.working_set_pages > 0,
            "tenant {tenant}: empty working set"
        );
        assert!(
            (0.0..=1.0).contains(&self.read_fraction),
            "tenant {tenant}: read fraction {} outside [0, 1]",
            self.read_fraction
        );
        assert!(
            self.mean_request_pages >= 1.0,
            "tenant {tenant}: mean request pages {} below 1",
            self.mean_request_pages
        );
        match self.interarrival {
            Interarrival::Fixed(gap) | Interarrival::Poisson(gap) => assert!(
                gap.is_finite() && gap > 0.0,
                "tenant {tenant}: invalid interarrival {gap}"
            ),
        }
    }
}

/// SplitMix64 step — the same generator `ssd::stats` uses for its reservoir,
/// chosen here so per-tenant streams are cheap, seedable and platform-stable.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform f64 in `[0, 1)` from one SplitMix64 output (53-bit mantissa).
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

struct TenantStream {
    profile: TenantWorkload,
    zipf: ZipfSampler,
    rng: u64,
    clock_us: f64,
    emitted: u64,
    pending: Option<IoRequest>,
}

impl TenantStream {
    fn refill(&mut self) {
        if self.pending.is_some() || self.emitted >= self.profile.requests {
            return;
        }
        self.emitted += 1;
        // Draw order is fixed (gap, op, rank, then length) so streams stay
        // bit-identical when profiles change only in parameter values.
        self.clock_us += self.profile.interarrival.next_gap(unit_f64(&mut self.rng));
        let op = if unit_f64(&mut self.rng) < self.profile.read_fraction {
            IoOp::Read
        } else {
            IoOp::Write
        };
        let rank = self.zipf.rank_for(unit_f64(&mut self.rng));
        // Scatter ranks across the working set so hot pages are not all
        // physically adjacent (same multiplicative hash as `spec::generate`).
        let offset = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.profile.working_set_pages;
        let lpn = self.profile.first_lpn + offset;
        let geometric_p = 1.0 / self.profile.mean_request_pages;
        let mut pages = 1u32;
        while pages < 16 && unit_f64(&mut self.rng) > geometric_p {
            pages += 1;
        }
        let remaining = self.profile.working_set_pages - offset;
        let pages = pages.min(remaining.min(16) as u32).max(1);
        self.pending = Some(IoRequest {
            arrival_us: self.clock_us,
            lpn,
            pages,
            op,
        });
    }
}

/// Deterministic multi-tenant open-loop generator.
///
/// Each tenant advances a private SplitMix64 stream (seed derived from the
/// base seed by tenant index), so adding, removing or re-rating one tenant
/// never perturbs another tenant's request sequence — only the interleaving.
/// Streams are merged by arrival time; ties go to the lowest tenant index.
///
/// ```
/// use workloads::{Interarrival, OpenLoopSource, RequestSource, TenantWorkload};
///
/// let tenants = vec![
///     TenantWorkload::new(0, 4_096, 20_000.0).with_requests(100),
///     TenantWorkload::new(4_096, 4_096, 5_000.0).with_requests(100),
/// ];
/// let mut source = OpenLoopSource::new(tenants, 42);
/// assert_eq!(source.tenants(), 2);
/// let first = source.next_request().unwrap();
/// assert!(first.request.arrival_us >= 0.0);
/// ```
pub struct OpenLoopSource {
    streams: Vec<TenantStream>,
    footprint_pages: u64,
}

impl std::fmt::Debug for OpenLoopSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenLoopSource")
            .field("tenants", &self.streams.len())
            .field("footprint_pages", &self.footprint_pages)
            .finish()
    }
}

impl OpenLoopSource {
    /// Builds a source over the given tenant profiles.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty or any profile is invalid (empty working
    /// set, read fraction outside `[0, 1]`, non-positive interarrival).
    pub fn new(tenants: Vec<TenantWorkload>, seed: u64) -> OpenLoopSource {
        assert!(!tenants.is_empty(), "open-loop source needs >= 1 tenant");
        let mut footprint_pages = 0;
        let mut chain = seed;
        let streams = tenants
            .into_iter()
            .enumerate()
            .map(|(i, profile)| {
                profile.validate(i);
                footprint_pages =
                    footprint_pages.max(profile.first_lpn + profile.working_set_pages);
                let rng = splitmix64(&mut chain);
                TenantStream {
                    zipf: ZipfSampler::new(profile.working_set_pages, profile.zipf_theta),
                    profile,
                    rng,
                    clock_us: 0.0,
                    emitted: 0,
                    pending: None,
                }
            })
            .collect();
        OpenLoopSource {
            streams,
            footprint_pages,
        }
    }

    /// Total requests this source will emit across all tenants.
    pub fn total_requests(&self) -> u64 {
        self.streams.iter().map(|s| s.profile.requests).sum()
    }
}

impl RequestSource for OpenLoopSource {
    fn next_request(&mut self) -> Option<TenantRequest> {
        for stream in &mut self.streams {
            stream.refill();
        }
        let mut winner: Option<(usize, f64)> = None;
        for (i, stream) in self.streams.iter().enumerate() {
            let Some(pending) = &stream.pending else {
                continue;
            };
            // Strict `<` keeps ties on the lowest tenant index.
            let earlier = winner.is_none_or(|(_, best)| {
                pending.arrival_us.total_cmp(&best) == std::cmp::Ordering::Less
            });
            if earlier {
                winner = Some((i, pending.arrival_us));
            }
        }
        let (i, _) = winner?;
        let request = self.streams[i].pending.take()?;
        Some(TenantRequest {
            tenant: i as u32,
            request,
        })
    }

    fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    fn tenants(&self) -> u32 {
        self.streams.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_tenants() -> Vec<TenantWorkload> {
        vec![
            TenantWorkload::new(0, 2_048, 10_000.0).with_requests(500),
            TenantWorkload::new(2_048, 2_048, 30_000.0)
                .with_requests(500)
                .with_read_fraction(0.5),
        ]
    }

    fn drain(source: &mut OpenLoopSource) -> Vec<TenantRequest> {
        std::iter::from_fn(|| source.next_request()).collect()
    }

    #[test]
    fn emits_exactly_requested_counts() {
        let mut source = OpenLoopSource::new(two_tenants(), 7);
        let all = drain(&mut source);
        assert_eq!(all.len(), 1_000);
        let t0 = all.iter().filter(|r| r.tenant == 0).count();
        assert_eq!(t0, 500);
        assert!(source.next_request().is_none());
    }

    #[test]
    fn arrivals_are_sorted_and_in_range() {
        let mut source = OpenLoopSource::new(two_tenants(), 7);
        let all = drain(&mut source);
        let footprint = source.footprint_pages();
        let mut last = 0.0f64;
        for r in &all {
            assert!(r.request.arrival_us >= last, "arrival order violated");
            last = r.request.arrival_us;
            assert!(r.request.lpn + r.request.pages as u64 <= footprint);
            assert!(r.request.pages >= 1 && r.request.pages <= 16);
            if r.tenant == 0 {
                assert!(r.request.lpn < 2_048);
            } else {
                assert!(r.request.lpn >= 2_048);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = drain(&mut OpenLoopSource::new(two_tenants(), 99));
        let b = drain(&mut OpenLoopSource::new(two_tenants(), 99));
        assert_eq!(a, b);
        let c = drain(&mut OpenLoopSource::new(two_tenants(), 100));
        assert_ne!(a, c);
    }

    #[test]
    fn tenant_streams_are_independent_of_neighbors() {
        // Re-rating tenant 1 must not change tenant 0's request sequence
        // (only the interleaving).
        let base = drain(&mut OpenLoopSource::new(two_tenants(), 7));
        let mut hot = two_tenants();
        hot[1] = hot[1].with_interarrival(Interarrival::poisson_rate(300_000.0));
        let loaded = drain(&mut OpenLoopSource::new(hot, 7));
        let t0_base: Vec<_> = base.iter().filter(|r| r.tenant == 0).collect();
        let t0_loaded: Vec<_> = loaded.iter().filter(|r| r.tenant == 0).collect();
        assert_eq!(t0_base, t0_loaded);
    }

    #[test]
    fn fixed_interarrival_is_exact() {
        let tenants = vec![TenantWorkload::new(0, 64, 1.0)
            .with_interarrival(Interarrival::Fixed(50.0))
            .with_requests(10)];
        let mut source = OpenLoopSource::new(tenants, 1);
        let all = drain(&mut source);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.request.arrival_us, 50.0 * (i + 1) as f64);
        }
    }

    #[test]
    fn zipf_skew_concentrates_accesses() {
        let tenants = vec![TenantWorkload::new(0, 10_000, 50_000.0)
            .with_zipf_theta(0.99)
            .with_requests(20_000)];
        let mut source = OpenLoopSource::new(tenants, 3);
        let mut counts = std::collections::HashMap::new();
        while let Some(r) = source.next_request() {
            *counts.entry(r.request.lpn).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = freqs.iter().take(freqs.len() / 10).sum();
        let total: u64 = freqs.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.5,
            "head share {}",
            head as f64 / total as f64
        );
    }

    #[test]
    fn trace_source_replays_verbatim() {
        use crate::WorkloadSpec;
        use rand::{rngs::StdRng, SeedableRng};
        let trace = WorkloadSpec::web1()
            .with_requests(200)
            .generate(&mut StdRng::seed_from_u64(5));
        let mut source = TraceSource::new(&trace);
        assert_eq!(source.tenants(), 1);
        assert_eq!(source.footprint_pages(), trace.footprint_pages);
        let mut seen = 0;
        while let Some(r) = source.next_request() {
            assert_eq!(r.tenant, 0);
            assert_eq!(r.request, trace.requests[seen]);
            seen += 1;
        }
        assert_eq!(seen, trace.requests.len());
    }

    #[test]
    #[should_panic(expected = "needs >= 1 tenant")]
    fn empty_tenant_list_rejected() {
        let _ = OpenLoopSource::new(Vec::new(), 1);
    }

    #[test]
    #[should_panic(expected = "read fraction")]
    fn bad_read_fraction_rejected() {
        let _ = OpenLoopSource::new(
            vec![TenantWorkload::new(0, 64, 1.0).with_read_fraction(1.5)],
            1,
        );
    }
}
