//! Synthetic workload specifications modelled on the paper's seven traces.
//!
//! The original evaluation replays fin-2 (OLTP), web-1/web-2 (search
//! engine), prj-1/prj-2 (research project servers) and win-1/win-2 (PC)
//! block traces. Those traces are not redistributable, so this module
//! generates synthetic equivalents with matching first-order statistics —
//! read/write mix, popularity skew, sequentiality, request size and
//! arrival intensity — which are the only properties the FTL and
//! AccessEval policies observe. The per-workload parameters follow the
//! published characterisations of the UMass (Financial/WebSearch) and
//! MSR-Cambridge (proj) trace families.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::trace::{IoOp, IoRequest, Trace};
use crate::zipf::ZipfSampler;

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload label.
    pub name: String,
    /// Fraction of requests that are reads.
    pub read_fraction: f64,
    /// Zipf skew of page popularity (0 = uniform).
    pub zipf_theta: f64,
    /// Logical footprint in pages.
    pub footprint_pages: u64,
    /// Fraction of requests continuing sequentially from the previous one.
    pub sequential_fraction: f64,
    /// Mean request length in pages (geometric distribution).
    pub mean_request_pages: f64,
    /// Mean exponential interarrival gap in microseconds.
    pub mean_interarrival_us: f64,
    /// Number of requests to generate.
    pub requests: u64,
    /// Fraction of writes that target the *read-hot* region of the
    /// address space (1.0 = reads and writes share one popularity
    /// ranking; 0.0 = disjoint hot sets). Real traces show substantial
    /// read/write asymmetry — OLTP index pages are read-hot but rarely
    /// rewritten — which is precisely the data AccessEval targets.
    pub read_write_overlap: f64,
}

impl WorkloadSpec {
    /// fin-2: the OLTP (UMass Financial2) profile — read-mostly, small
    /// random requests, strong skew, intense arrival rate.
    pub fn fin2() -> WorkloadSpec {
        WorkloadSpec {
            name: "fin-2".into(),
            read_fraction: 0.82,
            zipf_theta: 1.0,
            footprint_pages: 1 << 17,
            sequential_fraction: 0.05,
            mean_request_pages: 1.2,
            mean_interarrival_us: 1200.0,
            requests: 200_000,
            read_write_overlap: 0.4,
        }
    }

    /// web-1: search-engine (UMass WebSearch) profile — almost pure reads.
    pub fn web1() -> WorkloadSpec {
        WorkloadSpec {
            name: "web-1".into(),
            read_fraction: 0.99,
            zipf_theta: 0.9,
            footprint_pages: 1 << 18,
            sequential_fraction: 0.1,
            mean_request_pages: 2.0,
            mean_interarrival_us: 1500.0,
            requests: 200_000,
            read_write_overlap: 0.5,
        }
    }

    /// web-2: second search-engine volume, slightly less skewed.
    pub fn web2() -> WorkloadSpec {
        WorkloadSpec {
            name: "web-2".into(),
            read_fraction: 0.99,
            zipf_theta: 0.85,
            footprint_pages: 1 << 18,
            sequential_fraction: 0.1,
            mean_request_pages: 2.0,
            mean_interarrival_us: 1600.0,
            requests: 200_000,
            read_write_overlap: 0.5,
        }
    }

    /// prj-1: research-project file server (MSR proj) — write-heavy with
    /// long sequential runs.
    pub fn prj1() -> WorkloadSpec {
        WorkloadSpec {
            name: "prj-1".into(),
            read_fraction: 0.35,
            zipf_theta: 0.8,
            footprint_pages: 1 << 18,
            sequential_fraction: 0.4,
            mean_request_pages: 4.0,
            mean_interarrival_us: 3000.0,
            requests: 200_000,
            read_write_overlap: 0.6,
        }
    }

    /// prj-2: second project volume — read-mostly with sequential scans.
    pub fn prj2() -> WorkloadSpec {
        WorkloadSpec {
            name: "prj-2".into(),
            read_fraction: 0.75,
            zipf_theta: 0.8,
            footprint_pages: 1 << 18,
            sequential_fraction: 0.35,
            mean_request_pages: 3.0,
            mean_interarrival_us: 2200.0,
            requests: 200_000,
            read_write_overlap: 0.6,
        }
    }

    /// win-1: desktop PC profile — mixed read/write, moderate skew.
    pub fn win1() -> WorkloadSpec {
        WorkloadSpec {
            name: "win-1".into(),
            read_fraction: 0.60,
            zipf_theta: 0.95,
            footprint_pages: 1 << 17,
            sequential_fraction: 0.3,
            mean_request_pages: 2.5,
            mean_interarrival_us: 2500.0,
            requests: 200_000,
            read_write_overlap: 0.5,
        }
    }

    /// win-2: second PC profile.
    pub fn win2() -> WorkloadSpec {
        WorkloadSpec {
            name: "win-2".into(),
            read_fraction: 0.65,
            zipf_theta: 0.9,
            footprint_pages: 1 << 17,
            sequential_fraction: 0.25,
            mean_request_pages: 2.0,
            mean_interarrival_us: 2400.0,
            requests: 200_000,
            read_write_overlap: 0.5,
        }
    }

    /// All seven evaluation workloads in the paper's order.
    pub fn paper_suite() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::fin2(),
            WorkloadSpec::web1(),
            WorkloadSpec::web2(),
            WorkloadSpec::prj1(),
            WorkloadSpec::prj2(),
            WorkloadSpec::win1(),
            WorkloadSpec::win2(),
        ]
    }

    /// Rescales the footprint (for scaled-down simulated devices).
    #[must_use]
    pub fn with_footprint(mut self, pages: u64) -> WorkloadSpec {
        self.footprint_pages = pages.max(1);
        self
    }

    /// Rescales the request count.
    #[must_use]
    pub fn with_requests(mut self, requests: u64) -> WorkloadSpec {
        self.requests = requests;
        self
    }

    /// Scales the arrival intensity (`factor > 1` slows arrivals down).
    /// Experiments use this to keep even the slowest scheme below
    /// saturation on scaled-down devices.
    #[must_use]
    pub fn with_interarrival_scale(mut self, factor: f64) -> WorkloadSpec {
        self.mean_interarrival_us *= factor;
        self
    }

    /// Generates the synthetic trace deterministically from `seed`.
    ///
    /// Popularity ranks are scattered across the address space with a
    /// multiplicative hash so the hot set is not spatially contiguous.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Trace {
        let zipf = ZipfSampler::new(self.footprint_pages, self.zipf_theta);
        let mut requests = Vec::with_capacity(self.requests as usize);
        let mut clock = 0.0f64;
        let mut cursor: Option<(u64, u32)> = None;
        let geometric_p = 1.0 / self.mean_request_pages.max(1.0);
        for _ in 0..self.requests {
            clock += -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() * self.mean_interarrival_us;
            // Request length: geometric with the configured mean, capped.
            let mut pages = 1u32;
            while pages < 16 && rng.gen::<f64>() > geometric_p {
                pages += 1;
            }
            let op = if rng.gen::<f64>() < self.read_fraction {
                IoOp::Read
            } else {
                IoOp::Write
            };
            let lpn = match cursor {
                Some((prev_lpn, prev_pages)) if rng.gen::<f64>() < self.sequential_fraction => {
                    (prev_lpn + prev_pages as u64) % self.footprint_pages
                }
                _ => {
                    let rank = zipf.sample(rng);
                    // Multiplicative scatter keeps the hot set spread out.
                    // Writes draw from a second scatter with probability
                    // (1 − read_write_overlap), giving read-hot pages that
                    // are not also write-hot (read/write asymmetry).
                    let scatter =
                        if op == IoOp::Write && rng.gen::<f64>() >= self.read_write_overlap {
                            0xD1B5_4A32_D192_ED03
                        } else {
                            0x9E37_79B9_7F4A_7C15
                        };
                    rank.wrapping_mul(scatter) % self.footprint_pages
                }
            };
            let pages = pages
                .min((self.footprint_pages - lpn).min(16) as u32)
                .max(1);
            requests.push(IoRequest {
                arrival_us: clock,
                lpn,
                pages,
                op,
            });
            cursor = Some((lpn, pages));
        }
        Trace {
            name: self.name.clone(),
            footprint_pages: self.footprint_pages,
            requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn suite_has_seven_workloads() {
        let suite = WorkloadSpec::paper_suite();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["fin-2", "web-1", "web-2", "prj-1", "prj-2", "win-1", "win-2"]
        );
    }

    #[test]
    fn generated_traces_validate() {
        for spec in WorkloadSpec::paper_suite() {
            let spec = spec.with_requests(5_000).with_footprint(10_000);
            let mut rng = StdRng::seed_from_u64(1);
            let trace = spec.generate(&mut rng);
            assert_eq!(trace.len(), 5_000);
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn read_fractions_match_spec() {
        for spec in WorkloadSpec::paper_suite() {
            let spec = spec.with_requests(20_000);
            let mut rng = StdRng::seed_from_u64(2);
            let trace = spec.generate(&mut rng);
            assert!(
                (trace.read_fraction() - spec.read_fraction).abs() < 0.02,
                "{}: got {} want {}",
                spec.name,
                trace.read_fraction(),
                spec.read_fraction
            );
        }
    }

    #[test]
    fn web_workloads_are_read_dominated() {
        // The Figure 7 explanation relies on web-1/web-2 having very few
        // writes ("their original write numbers are low").
        for spec in [WorkloadSpec::web1(), WorkloadSpec::web2()] {
            assert!(spec.read_fraction >= 0.99);
        }
        assert!(
            WorkloadSpec::prj1().read_fraction < 0.5,
            "prj-1 write-heavy"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::fin2().with_requests(1_000);
        let a = spec.generate(&mut StdRng::seed_from_u64(7));
        let b = spec.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = spec.generate(&mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn skew_produces_hot_pages() {
        let spec = WorkloadSpec::fin2()
            .with_requests(50_000)
            .with_footprint(10_000);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = spec.generate(&mut rng);
        let mut counts = std::collections::HashMap::new();
        for r in &trace.requests {
            *counts.entry(r.lpn).or_insert(0u64) += 1;
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = sorted.iter().take(sorted.len() / 10).sum();
        let total: u64 = sorted.iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "OLTP trace must concentrate accesses: top decile {}",
            top_decile as f64 / total as f64
        );
    }

    #[test]
    fn sequential_fraction_creates_runs() {
        let spec = WorkloadSpec::prj1().with_requests(20_000);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = spec.generate(&mut rng);
        let sequential = trace
            .requests
            .windows(2)
            .filter(|w| w[1].lpn == (w[0].lpn + w[0].pages as u64) % spec.footprint_pages)
            .count();
        let fraction = sequential as f64 / (trace.len() - 1) as f64;
        assert!(
            (fraction - spec.sequential_fraction).abs() < 0.05,
            "sequential fraction {fraction}"
        );
    }

    #[test]
    fn arrival_times_sorted_and_exponential() {
        let spec = WorkloadSpec::win1().with_requests(20_000);
        let mut rng = StdRng::seed_from_u64(5);
        let trace = spec.generate(&mut rng);
        let mut prev = 0.0;
        let mut total_gap = 0.0;
        for r in &trace.requests {
            assert!(r.arrival_us >= prev);
            total_gap += r.arrival_us - prev;
            prev = r.arrival_us;
        }
        let mean_gap = total_gap / trace.len() as f64;
        assert!(
            (mean_gap - spec.mean_interarrival_us).abs() / spec.mean_interarrival_us < 0.05,
            "mean interarrival {mean_gap}"
        );
    }

    #[test]
    fn request_lengths_near_mean() {
        let spec = WorkloadSpec::prj1().with_requests(20_000);
        let mut rng = StdRng::seed_from_u64(6);
        let trace = spec.generate(&mut rng);
        let mean = trace.requests.iter().map(|r| r.pages as f64).sum::<f64>() / trace.len() as f64;
        assert!(
            (mean - spec.mean_request_pages).abs() < 0.8,
            "mean request pages {mean} vs {}",
            spec.mean_request_pages
        );
    }
}
