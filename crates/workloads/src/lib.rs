//! Synthetic block-level I/O workloads for the FlexLevel evaluation.
//!
//! The paper (Guo et al., DAC 2015) evaluates on seven block traces:
//! fin-2 (OLTP), web-1/web-2 (search engine), prj-1/prj-2 (research
//! project servers) and win-1/win-2 (PC workloads). The original traces
//! are not redistributable, so this crate generates synthetic equivalents
//! whose first-order statistics — read/write mix, Zipf popularity skew,
//! sequentiality, request sizes and Poisson arrival intensity — match the
//! published characterisations of those trace families. The FTL and
//! AccessEval policies only observe these statistics, so the synthetic
//! traces exercise the same code paths (see `DESIGN.md` §4 for the full
//! substitution argument).
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use workloads::WorkloadSpec;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let trace = WorkloadSpec::fin2().with_requests(10_000).generate(&mut rng);
//! assert_eq!(trace.len(), 10_000);
//! assert!(trace.read_fraction() > 0.8); // OLTP is read-mostly
//! trace.validate().expect("generated traces are consistent");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod openloop;
pub mod spec;
pub mod trace;
pub mod zipf;

pub use codec::{decode, encode, load, save, DecodeError};
pub use openloop::{
    Interarrival, OpenLoopSource, RequestSource, TenantRequest, TenantWorkload, TraceSource,
};
pub use spec::WorkloadSpec;
pub use trace::{IoOp, IoRequest, Trace, TraceError, TraceProfile};
pub use zipf::ZipfSampler;
