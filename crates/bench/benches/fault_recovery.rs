//! Fault-recovery cost benchmark: what the error-recovery machinery —
//! retry ladder, grown-bad-block retirement, patrol scrub — costs the
//! simulator and the modelled device.
//!
//! Replays one trace three ways: faults off (the golden path), faults on
//! at the calibrated rates (`scale 1`), and an accelerated-aging run
//! (`scale 25`). For each it reports wall-clock replay speed, the mean
//! modelled response time, and the full recovery panel, then writes a
//! machine-readable `BENCH_faults.json` (hand-formatted — the build has
//! no serde_json) so recovery overhead can be tracked PR over PR.
//!
//! Env knobs: `BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `BENCH_FAULTS_OUT` overrides the JSON path.
//!
//! Run: `cargo bench -p bench --bench fault_recovery`

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use reliability::EccConfig;
use ssd::{FaultConfig, Scheme, SimStats, SsdConfig, SsdSimulator};
use workloads::{Trace, WorkloadSpec};

const BLOCKS: u32 = 64;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Mixed read/write trace with GC pressure, so program faults and the
/// patrol scrubber see realistic block churn.
fn bench_trace(requests: u64) -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, BLOCKS);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::prj1()
        .with_requests(requests)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(0xFA17))
}

/// The benchmarked fault variants: label + configuration.
fn variants() -> Vec<(&'static str, Option<FaultConfig>)> {
    vec![
        ("faults-off", None),
        ("calibrated", Some(FaultConfig::enabled())),
        (
            "accelerated-25x",
            Some(FaultConfig::enabled().with_scale(25.0)),
        ),
    ]
}

fn config_for(faults: &Option<FaultConfig>) -> SsdConfig {
    let mut config = SsdConfig::scaled(Scheme::FlexLevel, BLOCKS)
        .with_base_pe(6000)
        .with_seed(7);
    if let Some(f) = faults {
        config = config.with_faults(f.clone());
    }
    config
}

fn run_variant(faults: &Option<FaultConfig>, trace: &Trace) -> SimStats {
    let mut sim = SsdSimulator::new(config_for(faults));
    sim.run(trace).expect("trace fits the device").clone()
}

struct VariantResult {
    label: &'static str,
    /// Wall-clock host requests simulated per second (replay speed).
    sim_rps: f64,
    mean_response_us: f64,
    stats: SimStats,
}

/// Best-of-`reps` wall-clock replay speed plus the recovery counters.
fn measure(
    label: &'static str,
    faults: &Option<FaultConfig>,
    trace: &Trace,
    reps: usize,
) -> VariantResult {
    let stats = run_variant(faults, trace); // warmup + modelled numbers
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run_variant(faults, trace));
        best = best.min(start.elapsed().as_secs_f64());
    }
    VariantResult {
        label,
        sim_rps: trace.len() as f64 / best,
        mean_response_us: stats.mean_response().as_f64(),
        stats,
    }
}

fn write_json(path: &str, quick: bool, requests: u64, results: &[VariantResult]) {
    let info_bits = EccConfig::paper_ldpc().info_bits;
    let mut points = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        let s = &r.stats;
        // Per-depth retry counts, depth 0 (clean decode) through the
        // deepest rung the ladder reached in this variant.
        let depths: Vec<String> = s.retry_depth_histogram[..=s.max_retry_depth()]
            .iter()
            .map(|n| n.to_string())
            .collect();
        points.push_str(&format!(
            concat!(
                "    {{\"variant\": \"{}\", \"sim_rps\": {:.3}, ",
                "\"mean_response_us\": {:.3}, \"flash_reads\": {}, ",
                "\"retry_reads\": {}, \"recovered_reads\": {}, ",
                "\"uncorrectable_reads\": {}, \"max_retry_depth\": {}, ",
                "\"retry_depth_histogram\": [{}], ",
                "\"program_failures\": {}, \"retired_blocks\": {}, ",
                "\"die_resets\": {}, \"scrub_runs\": {}, \"scrub_reads\": {}, ",
                "\"scrub_refreshes\": {}, \"recovery_latency_us\": {:.3}, ",
                "\"observed_uber\": {:.6e}}}"
            ),
            r.label,
            r.sim_rps,
            r.mean_response_us,
            s.flash_reads,
            s.retry_reads,
            s.recovered_reads,
            s.uncorrectable_reads,
            s.max_retry_depth(),
            depths.join(", "),
            s.program_failures,
            s.retired_blocks,
            s.die_resets,
            s.scrub_runs,
            s.scrub_reads,
            s.scrub_refreshes,
            s.recovery_latency_us,
            s.observed_uber(info_bits)
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fault_recovery\",\n",
            "  \"quick\": {},\n",
            "  \"requests\": {},\n",
            "  \"blocks\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick, requests, BLOCKS, points
    );
    std::fs::write(path, json).expect("write BENCH_faults.json");
    println!("\nwrote {path}");
}

fn bench_fault_recovery(c: &mut Criterion) {
    let (requests, reps, samples) = if quick_mode() {
        (2_000u64, 2, 3)
    } else {
        (12_000u64, 3, 5)
    };
    let trace = bench_trace(requests);

    // Criterion view: one full trace replay per iteration per variant.
    let mut group = c.benchmark_group("fault_recovery");
    group.sample_size(samples);
    for (label, faults) in variants() {
        group.bench_function(BenchmarkId::new("replay", label), |b| {
            b.iter(|| std::hint::black_box(run_variant(&faults, &trace)))
        });
    }
    group.finish();

    // Machine-readable view.
    let results: Vec<VariantResult> = variants()
        .iter()
        .map(|(label, faults)| measure(label, faults, &trace, reps))
        .collect();
    println!("\n== {requests} requests, best of {reps} reps");
    for r in &results {
        let s = &r.stats;
        println!(
            concat!(
                "{:>16}: replay {:>9.0} req/s   mean {:>9.1} us   ",
                "retries {:>5} ({} rec / {} unc)   retired {}   scrub {}/{}"
            ),
            r.label,
            r.sim_rps,
            r.mean_response_us,
            s.retry_reads,
            s.recovered_reads,
            s.uncorrectable_reads,
            s.retired_blocks,
            s.scrub_reads,
            s.scrub_refreshes
        );
    }
    let path =
        std::env::var("BENCH_FAULTS_OUT").unwrap_or_else(|_| "BENCH_faults.json".to_string());
    write_json(&path, quick_mode(), requests, &results);
}

criterion_group!(benches, bench_fault_recovery);

fn main() {
    benches();
}
