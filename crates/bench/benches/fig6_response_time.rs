//! Criterion bench behind Figure 6: end-to-end SSD simulation throughput
//! for each storage scheme on a small OLTP trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_response_time");
    group.sample_size(10);
    let trace = WorkloadSpec::fin2()
        .with_requests(5_000)
        .with_footprint(2_000)
        .generate(&mut StdRng::seed_from_u64(1));

    for scheme in Scheme::ALL {
        group.bench_function(BenchmarkId::new("replay", scheme.label()), |b| {
            b.iter(|| {
                let mut sim = SsdSimulator::new(SsdConfig::scaled(scheme, 64));
                let stats = sim.run(&trace).expect("trace fits");
                std::hint::black_box(stats.mean_response())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
