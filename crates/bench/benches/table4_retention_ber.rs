//! Criterion bench behind Table 4: retention BER measurement throughput,
//! Monte-Carlo vs the fast analytic path the SSD simulator queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_model::{Hours, LevelConfig};
use flexlevel::NunmaScheme;
use rand::{rngs::StdRng, SeedableRng};
use reliability::{
    analytic, BerSimulation, GrayMlcCodec, ProgramModel, RetentionModel, RetentionStress,
    StressConfig,
};

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_retention_ber");
    group.sample_size(10);
    let retention = RetentionModel::paper();
    let program = ProgramModel::default();

    for (pe, label) in [(2000u32, "2000"), (6000, "6000")] {
        group.bench_function(BenchmarkId::new("monte_carlo", label), |b| {
            let cfg = LevelConfig::normal_mlc();
            let codec = GrayMlcCodec;
            let sim = BerSimulation::new(
                &cfg,
                &codec,
                program,
                StressConfig::retention_only(
                    retention,
                    RetentionStress::new(pe, Hours::weeks(1.0)),
                ),
            );
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                std::hint::black_box(sim.run(20_000, &mut rng).ber())
            });
        });

        group.bench_function(BenchmarkId::new("analytic", label), |b| {
            let cfg = LevelConfig::normal_mlc();
            b.iter(|| {
                std::hint::black_box(
                    analytic::estimate(
                        &cfg,
                        &program,
                        None,
                        Some((&retention, pe, Hours::weeks(1.0))),
                        2.0,
                    )
                    .ber,
                )
            });
        });
    }

    group.bench_function("analytic_nunma3_grid", |b| {
        let cfg = NunmaScheme::Nunma3.config().level_config();
        b.iter(|| {
            let mut total = 0.0;
            for stress in RetentionStress::paper_grid() {
                total += analytic::estimate(
                    &cfg,
                    &program,
                    None,
                    Some((&retention, stress.pe_cycles, stress.time)),
                    1.5,
                )
                .ber;
            }
            std::hint::black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
