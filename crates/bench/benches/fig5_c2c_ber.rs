//! Criterion bench behind Figure 5: Monte-Carlo C2C BER measurement
//! throughput for the baseline and the NUNMA reduced-state configs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flash_model::LevelConfig;
use flexlevel::NunmaConfig;
use rand::{rngs::StdRng, SeedableRng};
use reliability::{
    BerSimulation, GrayMlcCodec, InterferenceModel, LevelProbeCodec, ProgramModel, StressConfig,
};

const SYMBOLS: u64 = 20_000;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_c2c_ber");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("c2c_mc", "baseline"), |b| {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(
            &cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::c2c_only(InterferenceModel::default()),
        );
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(sim.run(SYMBOLS, &mut rng).ber())
        });
    });

    for (label, nunma) in NunmaConfig::paper_rows() {
        let cfg = nunma.level_config();
        group.bench_function(BenchmarkId::new("c2c_mc", label), |b| {
            let probe = LevelProbeCodec::new(3);
            let sim = BerSimulation::new(
                &cfg,
                &probe,
                ProgramModel::default(),
                StressConfig::c2c_only(InterferenceModel::default()),
            );
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                std::hint::black_box(sim.run(SYMBOLS, &mut rng).cell_error_rate())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
