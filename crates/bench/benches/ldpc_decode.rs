//! LDPC codec microbenchmarks: encode and min-sum decode throughput for
//! the paper's rate-8/9 code (one 4 KB block per operation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldpc::{encode, random_info, DecoderGraph, MinSumDecoder, QcLdpcCode};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_ldpc(c: &mut Criterion) {
    let code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::cached(&code);
    let decoder = MinSumDecoder::new();
    let mut rng = StdRng::seed_from_u64(1);
    let info = random_info(&code, &mut rng);
    let codeword = encode(&code, &info).expect("info length matches");

    let mut group = c.benchmark_group("ldpc");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(code.info_bits() as u64 / 8));

    group.bench_function("encode_4kb", |b| {
        b.iter(|| std::hint::black_box(encode(&code, &info).unwrap()))
    });

    for (label, p) in [("clean", 0.0), ("ber_2e-3", 2e-3), ("ber_8e-3", 8e-3)] {
        // Hard-decision LLRs with BSC flips at probability p.
        let llrs: Vec<f32> = codeword
            .iter()
            .map(|&bit| {
                let observed = bit ^ (rng.gen_bool(p) as u8);
                if observed == 0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect();
        group.bench_function(BenchmarkId::new("min_sum_decode", label), |b| {
            b.iter(|| std::hint::black_box(decoder.decode(&graph, &llrs).iterations))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ldpc);
criterion_main!(benches);
