//! Criterion bench behind Figure 7: endurance accounting on a
//! write-heavy trace (programs/erases/GC) under FlexLevel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_endurance");
    group.sample_size(10);
    let trace = WorkloadSpec::prj1() // write-heavy: exercises GC/erase paths
        .with_requests(5_000)
        .with_footprint(2_000)
        .generate(&mut StdRng::seed_from_u64(2));

    for scheme in [Scheme::LdpcInSsd, Scheme::FlexLevel] {
        group.bench_function(BenchmarkId::new("endurance", scheme.label()), |b| {
            b.iter(|| {
                let mut sim = SsdSimulator::new(SsdConfig::scaled(scheme, 64));
                let stats = sim.run(&trace).expect("trace fits");
                std::hint::black_box((stats.flash_programs, stats.erases))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
