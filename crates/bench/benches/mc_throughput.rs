//! Throughput smoke bench for the deterministic Monte-Carlo engine:
//! the same retention-BER sweep at 1 worker vs the machine's pool. The
//! two configurations produce bit-identical reports (asserted once up
//! front), so any throughput gap is pure engine overhead or speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flash_model::{Hours, LevelConfig};
use reliability::{
    run_sharded, BerSimulation, GrayMlcCodec, ProgramModel, RetentionModel, RetentionStress,
    StressConfig,
};

const SYMBOLS: u64 = 100_000;

fn bench_mc(c: &mut Criterion) {
    let cfg = LevelConfig::normal_mlc();
    let codec = GrayMlcCodec;
    let sim = BerSimulation::new(
        &cfg,
        &codec,
        ProgramModel::default(),
        StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(6000, Hours::months(1.0)),
        ),
    );
    assert_eq!(
        run_sharded(&sim, SYMBOLS, 1, 1),
        run_sharded(&sim, SYMBOLS, 0, 1),
        "engine determinism contract"
    );

    let mut group = c.benchmark_group("mc_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SYMBOLS));
    let auto = reliability::resolve_threads(0);
    for (label, threads) in [("serial", 1u32), ("pool", auto.max(2))] {
        group.bench_function(BenchmarkId::new("retention_ber", label), |b| {
            b.iter(|| std::hint::black_box(run_sharded(&sim, SYMBOLS, threads, 1).ber()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mc);
criterion_main!(benches);
