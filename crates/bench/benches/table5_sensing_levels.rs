//! Criterion bench behind Table 5: sensing-schedule lookup cost (the
//! per-read hot path of the SSD simulator) and channel calibration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use flash_model::{Hours, LevelConfig};
use ldpc::{ChannelStress, MlcReadChannel, SensingSchedule, SoftSensingConfig};

fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_sensing_levels");
    group.sample_size(10);

    group.bench_function("schedule_lookup", |b| {
        let schedule = SensingSchedule::paper_anchor();
        let bers: Vec<f64> = (0..1000).map(|i| i as f64 * 2e-5).collect();
        b.iter(|| {
            let mut total = 0u32;
            for &ber in &bers {
                total += schedule.required_levels(ber);
            }
            std::hint::black_box(total)
        });
    });

    group.bench_function("channel_calibration_10k", |b| {
        let cfg = LevelConfig::normal_mlc();
        b.iter(|| {
            let ch = MlcReadChannel::build_lower_page(
                &cfg,
                ChannelStress::retention(5000, Hours::weeks(1.0)),
                SoftSensingConfig::soft(4),
                10_000,
                7,
            );
            std::hint::black_box(ch.raw_ber())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
