//! Timing-model comparison: lumped single-queue replay vs the pipelined
//! discrete-event model, as host requests/sec of the full simulator.
//!
//! Two numbers per workload: *simulator* throughput (wall-clock req/sec
//! of the replay loop — the cost of the event machinery itself) and
//! *modelled* throughput (`SimStats::throughput_rps`, requests per
//! simulated second — what the extra die/decoder parallelism buys the
//! modelled device). Prints criterion-style timings, then writes a
//! machine-readable `BENCH_sim.json` (hand-formatted — the build has no
//! serde_json) so both trajectories can be tracked PR over PR.
//!
//! Env knobs: `BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `BENCH_SIM_OUT` overrides the JSON path.
//!
//! Run: `cargo bench -p bench --bench sim_timing`

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SimStats, SsdConfig, SsdSimulator, TimingModel};
use workloads::{Trace, WorkloadSpec};

const BLOCKS: u32 = 64;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A read-heavy trace with tight inter-arrivals, so the modelled device
/// saturates and die-level parallelism is the bottleneck resource.
fn bench_trace(requests: u64) -> Trace {
    let config = SsdConfig::scaled(Scheme::Baseline, BLOCKS);
    let footprint = config.geometry.logical_pages() / 2;
    WorkloadSpec::web1()
        .with_requests(requests)
        .with_footprint(footprint)
        .with_interarrival_scale(0.05)
        .generate(&mut StdRng::seed_from_u64(0xB00C))
}

fn config_for(model: TimingModel) -> SsdConfig {
    SsdConfig::scaled(Scheme::FlexLevel, BLOCKS)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(model)
        .with_dies_per_channel(4)
        .with_decoder_slots(2)
}

fn run_model(model: TimingModel, trace: &Trace) -> SimStats {
    let mut sim = SsdSimulator::new(config_for(model));
    sim.run(trace).expect("trace fits the device").clone()
}

struct ModelResult {
    model: TimingModel,
    /// Wall-clock host requests simulated per second (replay speed).
    sim_rps: f64,
    /// Modelled device throughput, requests per simulated second.
    modelled_rps: f64,
    makespan_us: f64,
    /// Modelled p50 / p99 response latency (µs).
    p50_us: f64,
    p99_us: f64,
    /// Recovery-ladder depth histogram (index = rungs climbed; all
    /// zeros when fault injection is off, as in this bench).
    retry_depth_hist: Vec<u64>,
}

/// Best-of-`reps` wall-clock replay speed plus the modelled throughput.
fn measure(model: TimingModel, trace: &Trace, reps: usize) -> ModelResult {
    let stats = run_model(model, trace); // warmup + modelled numbers
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run_model(model, trace));
        best = best.min(start.elapsed().as_secs_f64());
    }
    ModelResult {
        model,
        sim_rps: trace.len() as f64 / best,
        modelled_rps: stats.throughput_rps(),
        makespan_us: stats.makespan_us,
        p50_us: stats.response_percentile(0.50).as_f64(),
        p99_us: stats.response_percentile(0.99).as_f64(),
        retry_depth_hist: stats.retry_depth_histogram.clone(),
    }
}

/// Renders a `u64` slice as a JSON array literal.
fn json_u64s(values: &[u64]) -> String {
    let cells: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", cells.join(", "))
}

fn write_json(path: &str, quick: bool, requests: u64, results: &[ModelResult]) {
    let mut points = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        points.push_str(&format!(
            concat!(
                "    {{\"model\": \"{}\", \"sim_rps\": {:.3}, ",
                "\"modelled_rps\": {:.3}, \"makespan_us\": {:.3}, ",
                "\"p50_us\": {:.3}, \"p99_us\": {:.3}, ",
                "\"retry_depth_hist\": {}}}"
            ),
            r.model.label(),
            r.sim_rps,
            r.modelled_rps,
            r.makespan_us,
            r.p50_us,
            r.p99_us,
            json_u64s(&r.retry_depth_hist)
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sim_timing\",\n",
            "  \"quick\": {},\n",
            "  \"requests\": {},\n",
            "  \"blocks\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick, requests, BLOCKS, points
    );
    std::fs::write(path, json).expect("write BENCH_sim.json");
    println!("\nwrote {path}");
}

fn bench_sim_timing(c: &mut Criterion) {
    let (requests, reps, samples) = if quick_mode() {
        (2_000u64, 2, 3)
    } else {
        (12_000u64, 3, 5)
    };
    let trace = bench_trace(requests);

    // Criterion view: one full trace replay per iteration per model.
    let mut group = c.benchmark_group("sim_timing");
    group.sample_size(samples);
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        group.bench_function(BenchmarkId::new("replay", model.label()), |b| {
            b.iter(|| std::hint::black_box(run_model(model, &trace)))
        });
    }
    group.finish();

    // Machine-readable view.
    let results: Vec<ModelResult> = [TimingModel::SingleQueue, TimingModel::Pipelined]
        .iter()
        .map(|&m| measure(m, &trace, reps))
        .collect();
    println!("\n== {requests} requests, best of {reps} reps");
    for r in &results {
        println!(
            "{:>12}: replay {:>10.0} req/s   modelled {:>10.0} req/s   makespan {:>12.0} us",
            r.model.label(),
            r.sim_rps,
            r.modelled_rps,
            r.makespan_us
        );
    }
    let path = std::env::var("BENCH_SIM_OUT").unwrap_or_else(|_| "BENCH_sim.json".to_string());
    write_json(&path, quick_mode(), requests, &results);
}

criterion_group!(benches, bench_sim_timing);

fn main() {
    benches();
}
