//! Decoder engine comparison: scalar f32 min-sum vs the quantized i8
//! path, scalar and batched, plus the PR 7 kernel × schedule matrix
//! (i8 SoA vs bit-plane, flooding vs layered) across batch widths, on
//! the paper's rate-8/9 code.
//!
//! Prints criterion-style timings and then writes a machine-readable
//! `BENCH_decoder.json` (hand-formatted — the build has no serde_json)
//! so the decoder's perf trajectory can be tracked PR over PR. The
//! headline numbers are codewords/sec of the batched quantized decoder
//! vs the scalar f32 baseline at a 2Xnm-grade BER, and of the bit-sliced
//! layered engine vs the i8 flooding engine at batch 64
//! (`speedup_sliced_vs_i8_flood_batch64` — the PR 7 acceptance metric).
//!
//! Env knobs: `BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `BENCH_DECODER_OUT` overrides the JSON path.
//!
//! Run: `cargo bench -p bench --bench decoder_batch`

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ldpc::{
    encode, random_info, DecodeKernel, DecoderGraph, DecoderWorkspace, LlrQuantizer, MinSumDecoder,
    QcLdpcCode, QuantizedMinSumDecoder, Schedule,
};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Batch width of the legacy `quantized_batch_cps` trajectory metric.
const BATCH: usize = 16;

/// Batch widths of the kernel × schedule matrix.
const MATRIX_BATCHES: [usize; 3] = [8, 16, 64];

/// The kernel × schedule engines under test. `i8_flood` is the PR 4
/// reference engine every other cell is measured against.
const ENGINES: [(&str, Schedule, DecodeKernel); 4] = [
    ("i8_flood", Schedule::Flooding, DecodeKernel::I8Soa),
    ("bitplane_flood", Schedule::Flooding, DecodeKernel::BitPlane),
    ("i8_layered", Schedule::Layered, DecodeKernel::I8Soa),
    (
        "bitplane_layered",
        Schedule::Layered,
        DecodeKernel::BitPlane,
    ),
];

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A workload: `frames` BSC-corrupted codewords of the paper code at flip
/// probability `ber`, as f32 LLRs, quantized LLRs, and the quantized
/// frames packed structure-of-arrays at every matrix batch width.
struct Workload {
    label: &'static str,
    ber: f64,
    f32_frames: Vec<Vec<f32>>,
    q_frames: Vec<Vec<i8>>,
    /// `(batch_width, SoA groups)` per entry of [`MATRIX_BATCHES`].
    q_batches: Vec<(usize, Vec<Vec<i8>>)>,
}

fn pack_soa(n: usize, frames: &[Vec<i8>], batch: usize) -> Vec<Vec<i8>> {
    frames
        .chunks(batch)
        .map(|chunk| {
            let mut soa = vec![0i8; n * chunk.len()];
            for (lane, frame) in chunk.iter().enumerate() {
                for (bit, &q) in frame.iter().enumerate() {
                    soa[bit * chunk.len() + lane] = q;
                }
            }
            soa
        })
        .collect()
}

fn build_workload(code: &QcLdpcCode, label: &'static str, ber: f64, frames: usize) -> Workload {
    let quantizer = LlrQuantizer::default();
    let mut rng = StdRng::seed_from_u64(0xD0DE + ber.to_bits());
    let n = code.codeword_bits();
    let mut f32_frames = Vec::with_capacity(frames);
    let mut q_frames = Vec::with_capacity(frames);
    for _ in 0..frames {
        let cw = encode(code, &random_info(code, &mut rng)).expect("valid info");
        let llrs: Vec<f32> = cw
            .iter()
            .map(|&bit| {
                let observed = bit ^ u8::from(rng.gen_bool(ber));
                if observed == 0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect();
        q_frames.push(quantizer.quantize_table(&llrs));
        f32_frames.push(llrs);
    }
    let q_batches = MATRIX_BATCHES
        .iter()
        .map(|&batch| (batch, pack_soa(n, &q_frames, batch)))
        .collect();
    Workload {
        label,
        ber,
        f32_frames,
        q_frames,
        q_batches,
    }
}

/// Wall-clock codewords/sec of `decode_all` over `reps` repetitions
/// (best rep wins, to shave scheduler noise).
fn throughput(frames: usize, reps: usize, mut decode_all: impl FnMut()) -> f64 {
    decode_all(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        decode_all();
        best = best.min(start.elapsed().as_secs_f64());
    }
    frames as f64 / best
}

/// One engine × batch-width cell of the kernel matrix.
struct KernelCell {
    engine: &'static str,
    batch: usize,
    cps: f64,
}

struct PointResult {
    label: &'static str,
    ber: f64,
    scalar_f32_cps: f64,
    quantized_scalar_cps: f64,
    quantized_batch_cps: f64,
    kernel_matrix: Vec<KernelCell>,
}

impl PointResult {
    fn speedup_batch_vs_f32(&self) -> f64 {
        self.quantized_batch_cps / self.scalar_f32_cps
    }

    fn matrix_cps(&self, engine: &str, batch: usize) -> f64 {
        self.kernel_matrix
            .iter()
            .find(|c| c.engine == engine && c.batch == batch)
            .map(|c| c.cps)
            .expect("cell measured")
    }

    /// The PR 7 acceptance metric: bit-sliced layered engine vs the i8
    /// flooding reference at batch 64.
    fn speedup_sliced_vs_i8_flood_batch64(&self) -> f64 {
        self.matrix_cps("bitplane_layered", 64) / self.matrix_cps("i8_flood", 64)
    }
}

fn measure_point(
    code: &QcLdpcCode,
    graph: &DecoderGraph,
    w: &Workload,
    reps: usize,
) -> PointResult {
    let f32_decoder = MinSumDecoder::new();
    let q_decoder = QuantizedMinSumDecoder::new().with_kernel(DecodeKernel::I8Soa);
    let mut ws = DecoderWorkspace::new();
    let frames = w.f32_frames.len();
    let scalar_f32_cps = throughput(frames, reps, || {
        for llrs in &w.f32_frames {
            std::hint::black_box(f32_decoder.decode_with(graph, llrs, &mut ws).iterations);
        }
    });
    let quantized_scalar_cps = throughput(frames, reps, || {
        for qllrs in &w.q_frames {
            std::hint::black_box(q_decoder.decode(graph, qllrs, &mut ws).iterations);
        }
    });
    let n = code.codeword_bits();
    let batch16 = &w
        .q_batches
        .iter()
        .find(|(b, _)| *b == BATCH)
        .expect("batch 16 packed")
        .1;
    let quantized_batch_cps = throughput(frames, reps, || {
        for soa in batch16 {
            let lanes = soa.len() / n;
            let out = q_decoder.decode_batch(graph, soa, lanes, &mut ws);
            std::hint::black_box(out.iterations(lanes - 1));
        }
    });
    let mut kernel_matrix = Vec::new();
    for &(engine, schedule, kernel) in &ENGINES {
        let decoder = QuantizedMinSumDecoder::new()
            .with_schedule(schedule)
            .with_kernel(kernel);
        for (batch, groups) in &w.q_batches {
            let cps = throughput(frames, reps, || {
                for soa in groups {
                    let lanes = soa.len() / n;
                    let out = decoder.decode_batch(graph, soa, lanes, &mut ws);
                    std::hint::black_box(out.iterations(lanes - 1));
                }
            });
            kernel_matrix.push(KernelCell {
                engine,
                batch: *batch,
                cps,
            });
        }
    }
    PointResult {
        label: w.label,
        ber: w.ber,
        scalar_f32_cps,
        quantized_scalar_cps,
        quantized_batch_cps,
        kernel_matrix,
    }
}

fn write_json(path: &str, quick: bool, code: &QcLdpcCode, results: &[PointResult]) {
    let mut points = String::new();
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            points.push_str(",\n");
        }
        let mut matrix = String::new();
        for (j, cell) in r.kernel_matrix.iter().enumerate() {
            if j > 0 {
                matrix.push_str(",\n");
            }
            matrix.push_str(&format!(
                "      {{\"engine\": \"{}\", \"batch\": {}, \"cps\": {:.3}}}",
                cell.engine, cell.batch, cell.cps
            ));
        }
        points.push_str(&format!(
            concat!(
                "    {{\"label\": \"{}\", \"ber\": {}, ",
                "\"scalar_f32_cps\": {:.3}, \"quantized_scalar_cps\": {:.3}, ",
                "\"quantized_batch_cps\": {:.3}, \"speedup_batch_vs_f32\": {:.3},\n",
                "    \"speedup_sliced_vs_i8_flood_batch64\": {:.3},\n",
                "    \"kernel_matrix\": [\n{}\n    ]}}"
            ),
            r.label,
            r.ber,
            r.scalar_f32_cps,
            r.quantized_scalar_cps,
            r.quantized_batch_cps,
            r.speedup_batch_vs_f32(),
            r.speedup_sliced_vs_i8_flood_batch64(),
            matrix
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"decoder_batch\",\n",
            "  \"quick\": {},\n",
            "  \"code\": {{\"n\": {}, \"k\": {}}},\n",
            "  \"batch\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick,
        code.codeword_bits(),
        code.info_bits(),
        BATCH,
        points
    );
    std::fs::write(path, json).expect("write BENCH_decoder.json");
    println!("\nwrote {path}");
}

fn bench_decoder_batch(c: &mut Criterion) {
    let code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::cached(&code);
    let (frames, reps, samples) = if quick_mode() {
        (64, 2, 3)
    } else {
        (128, 3, 5)
    };
    let workloads = [
        build_workload(&code, "clean", 0.0, frames),
        build_workload(&code, "ber_8e-3", 8e-3, frames),
    ];

    // Criterion view: one timed sweep of all frames per engine per point;
    // the kernel matrix is shown at its widest batch.
    let mut group = c.benchmark_group("decoder_batch");
    group.sample_size(samples);
    let f32_decoder = MinSumDecoder::new();
    let mut ws = DecoderWorkspace::new();
    let n = code.codeword_bits();
    for w in &workloads {
        group.bench_function(BenchmarkId::new("scalar_f32", w.label), |b| {
            b.iter(|| {
                for llrs in &w.f32_frames {
                    std::hint::black_box(f32_decoder.decode_with(&graph, llrs, &mut ws).iterations);
                }
            })
        });
        for &(engine, schedule, kernel) in &ENGINES {
            let decoder = QuantizedMinSumDecoder::new()
                .with_schedule(schedule)
                .with_kernel(kernel);
            let groups = &w
                .q_batches
                .iter()
                .find(|(b, _)| *b == 64)
                .expect("batch 64 packed")
                .1;
            group.bench_function(
                BenchmarkId::new(format!("{engine}_batch64"), w.label),
                |b| {
                    b.iter(|| {
                        for soa in groups.iter() {
                            let lanes = soa.len() / n;
                            let out = decoder.decode_batch(&graph, soa, lanes, &mut ws);
                            std::hint::black_box(out.iterations(lanes - 1));
                        }
                    })
                },
            );
        }
    }
    group.finish();

    // Machine-readable view.
    let results: Vec<PointResult> = workloads
        .iter()
        .map(|w| measure_point(&code, &graph, w, reps))
        .collect();
    println!("\n== codewords/sec (best of {reps} reps over {frames} frames)");
    for r in &results {
        println!(
            "{:>10}: scalar_f32 {:>9.1}  quantized_scalar {:>9.1}  quantized_batch{} {:>9.1}  (batch vs f32: {:.2}x)",
            r.label,
            r.scalar_f32_cps,
            r.quantized_scalar_cps,
            BATCH,
            r.quantized_batch_cps,
            r.speedup_batch_vs_f32()
        );
        for &batch in &MATRIX_BATCHES {
            let cells: Vec<String> = ENGINES
                .iter()
                .map(|&(engine, _, _)| format!("{engine} {:>9.1}", r.matrix_cps(engine, batch)))
                .collect();
            println!("            batch {batch:>2}: {}", cells.join("  "));
        }
        println!(
            "            sliced layered vs i8 flood @64: {:.2}x",
            r.speedup_sliced_vs_i8_flood_batch64()
        );
    }
    let path =
        std::env::var("BENCH_DECODER_OUT").unwrap_or_else(|_| "BENCH_decoder.json".to_string());
    write_json(&path, quick_mode(), &code, &results);
}

criterion_group!(benches, bench_decoder_batch);

fn main() {
    benches();
}
