//! Multi-tenant serving benchmark: wall-clock throughput of the
//! generator-driven scheduler and the modelled per-tenant tail latency
//! it produces.
//!
//! One point per (tenant count × timing backend): *sim_rps* is the
//! wall-clock host requests pushed through the open-loop source, the
//! QoS admission layer and the timing backend per second — the cost of
//! the serving machinery itself; *victim_p99_us* / *worst_p99_us* are
//! tenant 0's and the worst tenant's modelled p99 response, tracking how
//! tail isolation behaves as tenants pile onto the shared device. Prints
//! criterion-style timings, then writes a machine-readable
//! `BENCH_serve.json` (hand-formatted — the build has no serde_json).
//!
//! Env knobs: `BENCH_QUICK=1` shrinks the workload for CI smoke runs;
//! `BENCH_SERVE_OUT` overrides the JSON path.
//!
//! Run: `cargo bench -p bench --bench serve`

use std::time::Instant;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ssd::{Scheme, ServeOptions, SimStats, SsdConfig, SsdSimulator, TenantQos, TimingModel};
use workloads::{OpenLoopSource, TenantWorkload};

const BLOCKS: u32 = 64;
const SEED: u64 = 0x5E4E;

fn quick_mode() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn config_for(model: TimingModel) -> SsdConfig {
    SsdConfig::scaled(Scheme::FlexLevel, BLOCKS)
        .with_base_pe(6000)
        .with_seed(7)
        .with_timing_model(model)
        .with_dies_per_channel(4)
        .with_decoder_slots(2)
}

/// `tenants` equal-rate profiles over disjoint working sets; the
/// aggregate arrival rate stays fixed so adding tenants raises
/// interleaving pressure, not offered load.
fn profiles(tenants: u32, requests_per_tenant: u64) -> Vec<TenantWorkload> {
    let working_set = 2_048 / u64::from(tenants);
    let rate = 2_400.0 / f64::from(tenants);
    (0..tenants)
        .map(|t| {
            TenantWorkload::new(u64::from(t) * working_set, working_set, rate)
                .with_requests(requests_per_tenant)
        })
        .collect()
}

fn run_serve(model: TimingModel, tenants: u32, requests_per_tenant: u64) -> SimStats {
    let mut sim = SsdSimulator::new(config_for(model));
    let mut source = OpenLoopSource::new(profiles(tenants, requests_per_tenant), SEED);
    let options = ServeOptions::uniform(
        tenants,
        TenantQos::default()
            .with_queue_depth(32)
            .with_slo_us(2_000.0),
    );
    sim.serve(&mut source, &options)
        .expect("serving run succeeds")
        .clone()
}

struct ServePoint {
    model: TimingModel,
    tenants: u32,
    /// Wall-clock host requests served per second (scheduler speed).
    sim_rps: f64,
    /// Tenant 0's modelled p99 response in µs.
    victim_p99_us: f64,
    /// Worst per-tenant modelled p99 response in µs.
    worst_p99_us: f64,
    /// Run-wide modelled p50 / p99 response in µs.
    p50_us: f64,
    p99_us: f64,
    /// Recovery-ladder depth histogram (index = rungs climbed; all
    /// zeros when fault injection is off, as in this bench).
    retry_depth_hist: Vec<u64>,
}

/// Renders a `u64` slice as a JSON array literal.
fn json_u64s(values: &[u64]) -> String {
    let cells: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", cells.join(", "))
}

/// Best-of-`reps` wall-clock serving speed plus the modelled tails.
fn measure(model: TimingModel, tenants: u32, requests: u64, reps: usize) -> ServePoint {
    let stats = run_serve(model, tenants, requests); // warmup + modelled numbers
    let total = requests * u64::from(tenants);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(run_serve(model, tenants, requests));
        best = best.min(start.elapsed().as_secs_f64());
    }
    let worst = stats
        .tenants
        .iter()
        .map(|t| t.p99().as_f64())
        .fold(0.0f64, f64::max);
    ServePoint {
        model,
        tenants,
        sim_rps: total as f64 / best,
        victim_p99_us: stats.tenants[0].p99().as_f64(),
        worst_p99_us: worst,
        p50_us: stats.response_percentile(0.50).as_f64(),
        p99_us: stats.response_percentile(0.99).as_f64(),
        retry_depth_hist: stats.retry_depth_histogram.clone(),
    }
}

fn write_json(path: &str, quick: bool, requests: u64, points: &[ServePoint]) {
    let mut rows = String::new();
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            concat!(
                "    {{\"model\": \"{}\", \"tenants\": {}, \"sim_rps\": {:.3}, ",
                "\"victim_p99_us\": {:.3}, \"worst_p99_us\": {:.3}, ",
                "\"p50_us\": {:.3}, \"p99_us\": {:.3}, ",
                "\"retry_depth_hist\": {}}}"
            ),
            p.model.label(),
            p.tenants,
            p.sim_rps,
            p.victim_p99_us,
            p.worst_p99_us,
            p.p50_us,
            p.p99_us,
            json_u64s(&p.retry_depth_hist)
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve\",\n",
            "  \"quick\": {},\n",
            "  \"requests_per_tenant\": {},\n",
            "  \"blocks\": {},\n",
            "  \"points\": [\n{}\n  ]\n",
            "}}\n"
        ),
        quick, requests, BLOCKS, rows
    );
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
}

fn bench_serve(c: &mut Criterion) {
    let (requests, reps, samples) = if quick_mode() {
        (1_000u64, 2, 3)
    } else {
        (6_000u64, 3, 5)
    };
    let tenant_counts = [1u32, 2, 4];

    // Criterion view: one full serving run per iteration per point.
    let mut group = c.benchmark_group("serve");
    group.sample_size(samples);
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        for &tenants in &tenant_counts {
            group.bench_function(
                BenchmarkId::new(model.label(), format!("{tenants}t")),
                |b| b.iter(|| std::hint::black_box(run_serve(model, tenants, requests))),
            );
        }
    }
    group.finish();

    // Machine-readable view.
    let mut points = Vec::new();
    for model in [TimingModel::SingleQueue, TimingModel::Pipelined] {
        for &tenants in &tenant_counts {
            points.push(measure(model, tenants, requests, reps));
        }
    }
    println!("\n== {requests} requests/tenant, best of {reps} reps");
    for p in &points {
        println!(
            "{:>12} x{}: serve {:>10.0} req/s   victim p99 {:>9.1} us   worst p99 {:>9.1} us",
            p.model.label(),
            p.tenants,
            p.sim_rps,
            p.victim_p99_us,
            p.worst_p99_us
        );
    }
    let path = std::env::var("BENCH_SERVE_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    write_json(&path, quick_mode(), requests, &points);
}

criterion_group!(benches, bench_serve);

fn main() {
    benches();
}
