//! Shared experiment harness for regenerating every table and figure of
//! the FlexLevel paper (see `DESIGN.md` §6 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured results).
//!
//! Binaries (`cargo run --release -p bench --bin <name>`):
//!
//! * `exp_fig5` — C2C BER of reduced-state cells (Figure 5)
//! * `exp_table4` — retention BER grid (Table 4)
//! * `exp_table5` — required extra LDPC sensing levels (Table 5)
//! * `exp_fig6a` — normalized response time, 7 workloads × 4 schemes
//! * `exp_fig6b` — response-time reduction vs P/E count
//! * `exp_fig7` — write/erase/lifetime impact

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use ssd::{Scheme, SimStats, SsdConfig, SsdSimulator, TimingModel};
use workloads::{Trace, WorkloadSpec};

/// Device size (blocks) used by the system-level experiments. 128 blocks
/// = 128 MB raw keeps a full 7-workload × 4-scheme sweep fast while
/// leaving plenty of GC activity.
pub const EXPERIMENT_BLOCKS: u32 = 128;

/// Requests per workload in the system-level experiments.
pub const EXPERIMENT_REQUESTS: u64 = 30_000;

/// Generates the paper's seven workloads scaled to the experiment device.
///
/// The footprint is sized to ~70 % of the scaled device's logical space,
/// preserving the paper's "device mostly full" regime.
pub fn scaled_suite(seed: u64) -> Vec<Trace> {
    let config = SsdConfig::scaled(Scheme::Baseline, EXPERIMENT_BLOCKS);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    WorkloadSpec::paper_suite()
        .into_iter()
        .map(|spec| {
            let mut rng = StdRng::seed_from_u64(seed ^ fxhash(spec.name.as_bytes()));
            spec.with_requests(EXPERIMENT_REQUESTS)
                .with_footprint(footprint)
                // Keep the worst scheme (baseline at 6000 P/E, ≈1 ms/page
                // reads) below saturation so mean response time reflects
                // service quality rather than unbounded queue growth.
                .with_interarrival_scale(2.2)
                .generate(&mut rng)
        })
        .collect()
}

/// Timing model selected by the `FLEXLEVEL_TIMING` environment variable:
/// `pipelined` (or `pipeline`) picks the discrete-event model, anything
/// else — including unset — keeps the default lumped single-queue model,
/// so existing experiment outputs and golden fixtures are unaffected.
pub fn timing_model_from_env() -> TimingModel {
    match std::env::var("FLEXLEVEL_TIMING") {
        Ok(v) if v.eq_ignore_ascii_case("pipelined") || v.eq_ignore_ascii_case("pipeline") => {
            TimingModel::Pipelined
        }
        _ => TimingModel::SingleQueue,
    }
}

/// Runs one scheme over one trace at the given wear level, under the
/// timing model selected by `FLEXLEVEL_TIMING` (single-queue unless set
/// to `pipelined`).
pub fn run_scheme(scheme: Scheme, trace: &Trace, base_pe: u32) -> SimStats {
    let config = SsdConfig::scaled(scheme, EXPERIMENT_BLOCKS)
        .with_base_pe(base_pe)
        .with_timing_model(timing_model_from_env());
    let mut sim = SsdSimulator::new(config);
    sim.run(trace)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", scheme.label(), trace.name))
        .clone()
}

/// Runs every `trace × scheme` combination concurrently on the shared
/// thread pool and returns one row of [`SimStats`] per trace, in scheme
/// order. Each simulation is an independent, internally-seeded run, so
/// the fan-out is embarrassingly parallel and the results match the
/// serial [`run_scheme`] loop exactly for any thread count (0 = auto,
/// honouring `FLEXLEVEL_THREADS`).
pub fn run_matrix(
    traces: &[Trace],
    schemes: &[Scheme],
    base_pe: u32,
    threads: u32,
) -> Vec<Vec<SimStats>> {
    let jobs: Vec<(usize, Scheme)> = (0..traces.len())
        .flat_map(|t| schemes.iter().map(move |&s| (t, s)))
        .collect();
    let flat = reliability::parallel_map(jobs, threads, |_, (t, scheme)| {
        run_scheme(scheme, &traces[t], base_pe)
    });
    flat.chunks(schemes.len().max(1))
        .map(<[SimStats]>::to_vec)
        .collect()
}

/// Deterministic tiny hash for per-workload seeds.
fn fxhash(bytes: &[u8]) -> u64 {
    bytes.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// Formats a ratio as a percent-change string (e.g. `-33.0%`).
pub fn pct_change(new: f64, reference: f64) -> String {
    format!("{:+.1}%", (new / reference - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_deterministic_and_fits() {
        let a = scaled_suite(1);
        let b = scaled_suite(1);
        assert_eq!(a.len(), 7);
        assert_eq!(a[0], b[0]);
        let config = SsdConfig::scaled(Scheme::Baseline, EXPERIMENT_BLOCKS);
        for trace in &a {
            assert!(trace.footprint_pages <= config.geometry.logical_pages());
            trace.validate().unwrap();
        }
    }

    #[test]
    fn run_matrix_matches_serial_loop() {
        let footprint = SsdConfig::scaled(Scheme::Baseline, EXPERIMENT_BLOCKS)
            .geometry
            .logical_pages()
            / 2;
        let mut rng = StdRng::seed_from_u64(3);
        let traces: Vec<Trace> = WorkloadSpec::paper_suite()
            .into_iter()
            .take(2)
            .map(|spec| {
                spec.with_requests(400)
                    .with_footprint(footprint)
                    .generate(&mut rng)
            })
            .collect();
        let schemes = [Scheme::Baseline, Scheme::FlexLevel];
        let matrix = run_matrix(&traces, &schemes, 6000, 4);
        assert_eq!(matrix.len(), traces.len());
        for (row, trace) in matrix.iter().zip(&traces) {
            assert_eq!(row.len(), schemes.len());
            for (stats, &scheme) in row.iter().zip(&schemes) {
                assert_eq!(*stats, run_scheme(scheme, trace, 6000));
            }
        }
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(0.67, 1.0), "-33.0%");
        assert_eq!(pct_change(1.15, 1.0), "+15.0%");
    }
}
