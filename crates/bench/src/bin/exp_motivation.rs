//! The paper's introduction argument, §1–§2: hard-decision BCH stops
//! scaling as the raw BER approaches 1e-2, forcing soft-decision LDPC —
//! whose sensing overhead then motivates FlexLevel.
//!
//! Three exhibits, all computed (not asserted):
//!
//! 1. The BCH strength `t` and parity overhead needed to reach the
//!    1e-15 UBER target as raw BER grows (Equation 1 applied to a 2 KB
//!    BCH chunk) — the overhead diverges.
//! 2. The *real* BCH decoder (GF(2^15), Berlekamp–Massey) correcting a
//!    3Xnm-grade error rate and failing at a 2Xnm-grade one.
//! 3. The *real* rate-8/9 LDPC decoder succeeding at the same 2Xnm-grade
//!    stress given soft sensing — at the latency cost FlexLevel removes.
//!
//! Run: `cargo run --release -p bench --bin exp_motivation`

use bch::{BchCode, BchDecode};
use flash_model::{Hours, LevelConfig, NandTiming};
use ldpc::{
    decode_success_rate, ChannelStress, DecoderGraph, MinSumDecoder, MlcReadChannel, PageKind,
    QcLdpcCode, SoftSensingConfig,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use reliability::{EccConfig, PAPER_UBER_TARGET};

/// Required BCH strength for a 2 KB chunk at raw BER `p`: solves the
/// self-consistent fixed point (codeword length grows with `t`).
fn required_bch_t(p: f64) -> u64 {
    let info = 2048 * 8u64;
    let mut t = 1u64;
    for _ in 0..64 {
        let ecc = EccConfig {
            info_bits: info,
            codeword_bits: info + 15 * t,
        };
        let needed = ecc
            .required_correction(p, PAPER_UBER_TARGET)
            .expect("correctable");
        if needed <= t {
            return needed.max(1);
        }
        t = needed;
    }
    t
}

fn main() {
    println!("Motivation — why 2Xnm NAND needs soft-decision LDPC\n");

    // Exhibit 1: BCH overhead divergence.
    println!("required BCH strength for UBER 1e-15 on a 2 KB chunk:");
    println!(
        "{:>10} {:>8} {:>14} {:>10}",
        "raw BER", "t", "parity bits", "overhead"
    );
    for p in [1e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2] {
        let t = required_bch_t(p);
        let parity = 15 * t;
        println!(
            "{:>10.0e} {:>8} {:>14} {:>9.1}%",
            p,
            t,
            parity,
            parity as f64 / (2048.0 * 8.0) * 100.0
        );
    }
    println!(
        "(GF(2^15) shortens to at most {} info bits per chunk —",
        (1 << 15) - 1
    );
    println!(" beyond t ≈ 870 the 2 KB chunk no longer fits the code at all)");

    // Exhibit 2: the real BCH decoder at two error-rate generations.
    println!("\nreal BCH decoder, t = 40 over GF(2^15), 2 KB chunks, 10 trials each:");
    let code = BchCode::nand_2kb(40).expect("t=40 fits");
    let mut rng = StdRng::seed_from_u64(9);
    for (p, label) in [(1e-3, "3Xnm-grade BER 1e-3"), (8e-3, "2Xnm-grade BER 8e-3")] {
        let mut corrected = 0;
        for _ in 0..10 {
            let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
            let mut word = code.encode(&info);
            for bit in word.iter_mut() {
                if rng.gen_bool(p) {
                    *bit ^= 1;
                }
            }
            match code.decode(&mut word) {
                BchDecode::Clean | BchDecode::Corrected(_)
                    if word[..code.info_bits()] == info[..] =>
                {
                    corrected += 1
                }
                _ => {}
            }
        }
        println!("  {label}: {corrected}/10 chunks recovered");
    }

    // Exhibit 3: LDPC with soft sensing at a 2Xnm-grade stress point.
    println!("\nreal rate-8/9 LDPC decoder at 6000 P/E, 1 month retention:");
    let ldpc_code = QcLdpcCode::paper_code();
    let graph = DecoderGraph::cached(&ldpc_code);
    let decoder = MinSumDecoder::new();
    let cfg = LevelConfig::normal_mlc();
    let timing = NandTiming::paper_mlc();
    for extra in [0u32, 4, 6] {
        let channel = MlcReadChannel::build_cached(
            &cfg,
            PageKind::Lower,
            ChannelStress::retention(6000, Hours::months(1.0)),
            SoftSensingConfig::soft(extra),
            60_000,
            33 + extra as u64,
        );
        let (success, _) = decode_success_rate(&ldpc_code, &graph, &decoder, &channel, 8, &mut rng);
        println!(
            "  {extra} extra sensing levels: {:>3.0}% frames decode, read costs {}",
            success * 100.0,
            timing.read_transfer_latency(extra)
        );
    }
    println!("\n=> LDPC rescues the bit error rate BCH cannot, but at up to 7x the");
    println!("   read latency — the overhead FlexLevel's Vth-level reduction removes.");
}
