//! Table 5: required extra LDPC soft sensing levels of the baseline MLC
//! cell over the P/E × retention grid.
//!
//! Two methods, printed side by side:
//!
//! 1. **Schedule path** (the paper's method): measure the baseline raw
//!    BER at each grid point (Monte-Carlo, retention model) and look up
//!    the sensing schedule — the same 4e-3-anchored mapping §6.1
//!    describes.
//! 2. **Decoder path** (`--decode`): run the *real* rate-8/9 min-sum
//!    decoder over Monte-Carlo-corrupted codewords at each precision and
//!    report the smallest level count that decodes every trial frame.
//!    Slower (~minutes) but derives the ladder from first principles.
//!
//! Run: `cargo run --release -p bench --bin exp_table5 [-- --decode]`

use flash_model::{Hours, LevelConfig};
use ldpc::{
    minimum_levels, ChannelStress, MinSumDecoder, MlcReadChannel, PageKind, QcLdpcCode,
    SoftSensingConfig,
};
use rand::{rngs::StdRng, SeedableRng};
use reliability::{
    default_shards, run_sharded, BerSimulation, GrayMlcCodec, ProgramModel, RetentionModel,
    RetentionStress, StressConfig,
};

/// Paper Table 5 values: rows = P/E {3000..6000}, cols = {0d,1d,2d,1w,1mo}.
const PAPER: [[u32; 5]; 4] = [
    [0, 0, 0, 0, 1],
    [0, 0, 0, 1, 4],
    [0, 0, 1, 2, 4],
    [0, 1, 2, 4, 6],
];

const TIMES: [(f64, &str); 5] = [
    (0.0, "0 day"),
    (24.0, "1 day"),
    (48.0, "2 days"),
    (168.0, "1 week"),
    (720.0, "1 month"),
];

fn measured_ber(pe: u32, hours: f64) -> f64 {
    let cfg = LevelConfig::normal_mlc();
    let codec = GrayMlcCodec;
    // Retention-only, the same sourcing as the paper's Table 4 → Table 5
    // derivation.
    let stress = if hours == 0.0 {
        StressConfig::default()
    } else {
        StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(pe, Hours(hours)),
        )
    };
    let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), stress);
    run_sharded(&sim, 2_000_000, default_shards(), 70 + pe as u64).ber()
}

fn schedule_path() {
    println!("\n— schedule path (measured baseline BER -> derived sensing schedule) —");
    println!("value format: measured (paper)\n");
    let schedule = ssd::device::derived_schedule();
    print!("{:>6} |", "P/E");
    for (_, label) in TIMES {
        print!(" {label:>14} |");
    }
    println!();
    for (row, pe) in [3000u32, 4000, 5000, 6000].iter().enumerate() {
        print!("{pe:>6} |");
        for (col, (hours, _)) in TIMES.iter().enumerate() {
            let ber = measured_ber(*pe, *hours);
            let levels = schedule.required_levels(ber);
            print!(" {:>9} ({:>2}) |", levels, PAPER[row][col]);
        }
        println!();
    }
}

fn decoder_path() {
    println!("\n— decoder path (real min-sum decoder over the MC channel) —");
    println!("minimum extra levels at which 10/10 frames decode\n");
    let code = QcLdpcCode::paper_code();
    let decoder = MinSumDecoder::new();
    let config = LevelConfig::normal_mlc();
    let mut rng = StdRng::seed_from_u64(5);
    print!("{:>6} |", "P/E");
    for (_, label) in TIMES.iter().skip(1) {
        print!(" {label:>8} |");
    }
    println!();
    for pe in [3000u32, 4000, 5000, 6000] {
        print!("{pe:>6} |");
        for (hours, _) in TIMES.iter().skip(1) {
            let ladder = minimum_levels(
                &code,
                &decoder,
                7,
                10,
                1.0,
                |extra| {
                    MlcReadChannel::build_cached(
                        &config,
                        PageKind::Lower,
                        ChannelStress::retention(pe, Hours(*hours)),
                        SoftSensingConfig::soft(extra),
                        60_000,
                        90 + extra as u64,
                    )
                },
                &mut rng,
            );
            let answer = ladder
                .iter()
                .find(|m| m.success_rate >= 1.0)
                .map(|m| m.extra_levels.to_string())
                .unwrap_or_else(|| {
                    format!(">{}", ladder.last().map(|m| m.extra_levels).unwrap_or(7))
                });
            print!(" {answer:>8} |");
        }
        println!();
    }
}

fn main() {
    println!("Table 5 — required extra LDPC soft sensing levels (baseline MLC)");
    schedule_path();
    if std::env::args().any(|a| a == "--decode") {
        decoder_path();
    } else {
        println!("\n(pass -- --decode to also derive the ladder with the real decoder)");
    }
}
