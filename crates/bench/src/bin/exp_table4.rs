//! Table 4: retention BER of the baseline MLC cell and the three NUNMA
//! configurations over the P/E × storage-time grid.
//!
//! Monte-Carlo ground truth with the paper's Equation (3) retention model
//! and the calibrated device parameters (see
//! `crates/core/examples/calibrate_table4.rs` for the fit).
//!
//! Run: `cargo run --release -p bench --bin exp_table4`

use flash_model::{Hours, LevelConfig};
use flexlevel::NunmaConfig;
use reliability::{
    default_shards, run_sharded, BerSimulation, GrayMlcCodec, LevelProbeCodec, ProgramModel,
    RetentionModel, RetentionStress, StressConfig,
};

const SYMBOLS: u64 = 2_000_000;

/// Paper Table 4 reference values: (pe, hours, baseline, n1, n2, n3).
const PAPER: &[(u32, f64, [f64; 4])] = &[
    (2000, 24.0, [0.000638, 0.000370, 0.000167, 0.000120]),
    (2000, 48.0, [0.000715, 0.000453, 0.000173, 0.000133]),
    (2000, 168.0, [0.00103, 0.000827, 0.000243, 0.000167]),
    (2000, 720.0, [0.00184, 0.00149, 0.000330, 0.000181]),
    (3000, 24.0, [0.00146, 0.000677, 0.000343, 0.000237]),
    (3000, 48.0, [0.00169, 0.000860, 0.000367, 0.000257]),
    (3000, 168.0, [0.00260, 0.00143, 0.000570, 0.000293]),
    (3000, 720.0, [0.00459, 0.00249, 0.000807, 0.000390]),
    (4000, 24.0, [0.00229, 0.00117, 0.000443, 0.000327]),
    (4000, 48.0, [0.00284, 0.00149, 0.000633, 0.000343]),
    (4000, 168.0, [0.00456, 0.00240, 0.000820, 0.000457]),
    (4000, 720.0, [0.00778, 0.00402, 0.00150, 0.000633]),
    (5000, 24.0, [0.00359, 0.00177, 0.000690, 0.000460]),
    (5000, 48.0, [0.00457, 0.00233, 0.000853, 0.000540]),
    (5000, 168.0, [0.00699, 0.00349, 0.00123, 0.000713]),
    (5000, 720.0, [0.0120, 0.00545, 0.00227, 0.00109]),
    (6000, 24.0, [0.00484, 0.00218, 0.00100, 0.000623]),
    (6000, 48.0, [0.00613, 0.00288, 0.00131, 0.000627]),
    (6000, 168.0, [0.00961, 0.00446, 0.00192, 0.000973]),
    (6000, 720.0, [0.0161, 0.00672, 0.00324, 0.00151]),
];

fn measure(config: &LevelConfig, bits_per_cell: f64, pe: u32, hours: f64, seed: u64) -> f64 {
    let stress = StressConfig::retention_only(
        RetentionModel::paper(),
        RetentionStress::new(pe, Hours(hours)),
    );
    let program = ProgramModel::default();
    if config.level_count() == 4 {
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(config, &codec, program, stress);
        run_sharded(&sim, SYMBOLS, default_shards(), seed).ber()
    } else {
        let probe = LevelProbeCodec::new(config.level_count() as u8);
        let sim = BerSimulation::new(config, &probe, program, stress);
        run_sharded(&sim, SYMBOLS, default_shards(), seed).cell_error_rate() / bits_per_cell
    }
}

fn main() {
    println!("Table 4 — retention BER (measured | paper), {SYMBOLS} cells/point\n");
    let configs: Vec<(&str, LevelConfig, f64)> = {
        let mut v = vec![("Baseline", LevelConfig::normal_mlc(), 2.0)];
        for (label, cfg) in NunmaConfig::paper_rows() {
            v.push((label, cfg.level_config(), 1.5));
        }
        v
    };

    println!(
        "{:>5} {:>7} | {:>23} | {:>23} | {:>23} | {:>23}",
        "P/E", "time", "Baseline", "NUNMA 1", "NUNMA 2", "NUNMA 3"
    );
    let mut reductions = [0.0f64; 3];
    for &(pe, hours, paper) in PAPER {
        let time_label = match hours as u32 {
            24 => "1 day",
            48 => "2 days",
            168 => "1 week",
            720 => "1 month",
            _ => "?",
        };
        let mut cells = Vec::new();
        for (i, (_, cfg, bits)) in configs.iter().enumerate() {
            let ber = measure(cfg, *bits, pe, hours, 60 + i as u64);
            cells.push(ber);
        }
        for i in 0..3 {
            reductions[i] += (cells[0] / cells[i + 1].max(1e-12)).ln();
        }
        println!(
            "{:>5} {:>7} | {:>10.3e} ({:>8.2e}) | {:>10.3e} ({:>8.2e}) | {:>10.3e} ({:>8.2e}) | {:>10.3e} ({:>8.2e})",
            pe, time_label,
            cells[0], paper[0],
            cells[1], paper[1],
            cells[2], paper[2],
            cells[3], paper[3],
        );
    }
    println!(
        "\ngeometric-mean reduction vs baseline: NUNMA1 {:.1}x, NUNMA2 {:.1}x, NUNMA3 {:.1}x",
        (reductions[0] / PAPER.len() as f64).exp(),
        (reductions[1] / PAPER.len() as f64).exp(),
        (reductions[2] / PAPER.len() as f64).exp(),
    );
    println!("paper: 2x, 5x, 9x average reductions");
}
