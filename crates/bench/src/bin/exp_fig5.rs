//! Figure 5: BER of reduced-state cells after cell-to-cell interference.
//!
//! Monte-Carlo simulation of C2C interference on the baseline MLC cell
//! and the three NUNMA configurations. The paper reports up to 6×
//! reduction for NUNMA 1 vs the baseline, with NUNMA 3 ~50 % above
//! NUNMA 1 and ~20 % above NUNMA 2 (higher verify voltages eat into the
//! interference margin).
//!
//! Run: `cargo run --release -p bench --bin exp_fig5`

use flash_model::LevelConfig;
use flexlevel::NunmaConfig;
use reliability::{
    default_shards, run_sharded, BerSimulation, GrayMlcCodec, InterferenceModel, LevelProbeCodec,
    ProgramModel, StressConfig,
};

const SYMBOLS: u64 = 4_000_000;

fn main() {
    println!("Figure 5 — C2C interference BER of reduced-state cells");
    println!("({SYMBOLS} Monte-Carlo cells per configuration)\n");
    let c2c = InterferenceModel::default();
    let program = ProgramModel::default();

    // Baseline: normal MLC cell with the Gray codec (2 bits/cell).
    let baseline_cfg = LevelConfig::normal_mlc();
    let codec = GrayMlcCodec;
    let sim = BerSimulation::new(&baseline_cfg, &codec, program, StressConfig::c2c_only(c2c));
    let baseline = run_sharded(&sim, SYMBOLS, default_shards(), 50);
    let baseline_ber = baseline.ber();
    println!("{:<12} {:>12} {:>18}", "scheme", "C2C BER", "vs baseline");
    println!("{:<12} {:>12.3e} {:>18}", "baseline", baseline_ber, "1.00x");

    let mut rows = Vec::new();
    for (label, cfg) in NunmaConfig::paper_rows() {
        let level_cfg = cfg.level_config();
        let probe = LevelProbeCodec::new(3);
        let sim = BerSimulation::new(&level_cfg, &probe, program, StressConfig::c2c_only(c2c));
        let report = run_sharded(&sim, SYMBOLS, default_shards(), 51);
        // ReduceCode stores 1.5 bits/cell; one level slip ≈ one bit error.
        let ber = report.cell_error_rate() / 1.5;
        rows.push((label, ber));
        println!(
            "{:<12} {:>12.3e} {:>17.2}x",
            label,
            ber,
            baseline_ber / ber.max(1e-12)
        );
    }

    println!("\npaper: NUNMA1 up to 6x below baseline; NUNMA3 ≈1.5x NUNMA1, ≈1.2x NUNMA2");
    let n1 = rows[0].1.max(1e-12);
    let n2 = rows[1].1.max(1e-12);
    let n3 = rows[2].1;
    println!(
        "measured: NUNMA3/NUNMA1 = {:.2}, NUNMA3/NUNMA2 = {:.2}",
        n3 / n1,
        n3 / n2
    );
}
