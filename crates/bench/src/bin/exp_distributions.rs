//! Threshold-voltage distribution visualisation — the Figure 1(b)/
//! Figure 4 story rendered as ASCII histograms from the Monte-Carlo
//! models: programmed distributions, where the read references cut them,
//! and how retention drags them left while NUNMA's raised verify
//! voltages buy margin.
//!
//! Run: `cargo run --release -p bench --bin exp_distributions`

use flash_model::{Hours, LevelConfig, VthLevel};
use flexlevel::NunmaConfig;
use rand::{rngs::StdRng, SeedableRng};
use reliability::{ProgramModel, RetentionModel};

const BINS: usize = 72;
const LO: f64 = 0.0;
const HI: f64 = 4.2;
const SAMPLES: u32 = 40_000;

fn histogram(config: &LevelConfig, stress: Option<(u32, Hours)>, seed: u64) -> Vec<[u32; BINS]> {
    let program = ProgramModel::default();
    let retention = RetentionModel::paper();
    let mut rng = StdRng::seed_from_u64(seed);
    config
        .levels()
        .map(|level| {
            let mut bins = [0u32; BINS];
            for _ in 0..SAMPLES {
                let initial = program.program(config, level, &mut rng);
                let vth = match stress {
                    Some((pe, t)) => {
                        initial
                            - retention.sample_shift(initial, config.erased_mean(), pe, t, &mut rng)
                    }
                    None => initial,
                };
                let bin = ((vth.as_f64() - LO) / (HI - LO) * BINS as f64) as i64;
                if (0..BINS as i64).contains(&bin) {
                    bins[bin as usize] += 1;
                }
            }
            bins
        })
        .collect()
}

fn render(config: &LevelConfig, histograms: &[[u32; BINS]]) {
    const GLYPHS: [char; 4] = ['#', '*', 'o', '+'];
    let peak = histograms
        .iter()
        .flat_map(|h| h.iter())
        .copied()
        .max()
        .unwrap_or(1) as f64;
    const ROWS: usize = 8;
    for row in (1..=ROWS).rev() {
        let cutoff = peak * row as f64 / ROWS as f64;
        let mut line = String::new();
        for bin in 0..BINS {
            let glyph = histograms
                .iter()
                .enumerate()
                .filter(|(_, h)| h[bin] as f64 >= cutoff)
                .map(|(i, _)| GLYPHS[i.min(3)])
                .next_back();
            line.push(glyph.unwrap_or(' '));
        }
        println!("  |{line}");
    }
    // Axis with read-reference markers.
    let mut axis = vec![b'-'; BINS];
    for r in config.read_refs() {
        let bin = ((r.as_f64() - LO) / (HI - LO) * BINS as f64) as usize;
        if bin < BINS {
            axis[bin] = b'^';
        }
    }
    println!("  +{}", String::from_utf8(axis).expect("ascii"));
    println!(
        "   {:.1}V{:>pad$.1}V   (^ = read reference; {} per level)",
        LO,
        HI,
        SAMPLES,
        pad = BINS - 5
    );
}

fn main() {
    println!("Vth distributions (glyphs: # L0, * L1, o L2, + L3)\n");

    let baseline = LevelConfig::normal_mlc();
    println!("baseline MLC, freshly programmed (Fig 1(b) top, before noise):");
    render(&baseline, &histogram(&baseline, None, 1));

    println!("\nbaseline MLC after 6000 P/E + 1 month retention (left-sagged tails");
    println!("crossing the references = the errors that force soft sensing):");
    render(
        &baseline,
        &histogram(&baseline, Some((6000, Hours::months(1.0))), 2),
    );

    let basic = LevelConfig::reduced_symmetric();
    println!("\nreduced state, symmetric margins (Fig 4(a)): three levels, wide gaps:");
    render(&basic, &histogram(&basic, None, 3));

    let nunma3 = NunmaConfig::nunma3().level_config();
    println!("\nreduced state, NUNMA 3 (Fig 4(c)): distributions pushed right of the");
    println!("references — retention margin where it is needed most:");
    render(&nunma3, &histogram(&nunma3, None, 4));

    println!("\nNUNMA 3 after 6000 P/E + 1 month (still clear of the references):");
    render(
        &nunma3,
        &histogram(&nunma3, Some((6000, Hours::months(1.0))), 5),
    );

    // Quantify the margins the pictures show.
    println!("\nretention margins (nominal placement − lower reference):");
    for (label, cfg) in [
        ("baseline L3", baseline.clone()),
        ("NUNMA 3  L2", nunma3.clone()),
    ] {
        let level = cfg.top_level();
        let margin = cfg.retention_margin(level).expect("programmed level");
        println!("  {label}: {margin}");
    }
    let _ = VthLevel::ERASED;
}
