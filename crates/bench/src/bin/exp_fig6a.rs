//! Figure 6(a): normalized overall average response time of the four
//! storage systems across the seven evaluation workloads.
//!
//! Paper claims (at 6000 P/E): LevelAdjust+AccessEval cuts overall
//! response time by 66 % vs the baseline and 33 % vs LDPC-in-SSD on
//! average; LevelAdjust-only lands 27 % *above* LDPC-in-SSD due to
//! over-provisioning loss.
//!
//! Run: `cargo run --release -p bench --bin exp_fig6a`

use bench::{pct_change, run_matrix, scaled_suite};
use ssd::Scheme;

fn main() {
    println!("Figure 6(a) — normalized average response time (base P/E 6000)\n");
    let traces = scaled_suite(1);
    println!(
        "{:<8} {:>10} {:>12} {:>17} {:>23}",
        "workload", "baseline", "LDPC-in-SSD", "LevelAdjust-only", "LevelAdjust+AccessEval"
    );

    // All 7 traces × 4 schemes run concurrently; results are identical
    // to the serial loop for any thread count.
    let matrix = run_matrix(&traces, &Scheme::ALL, 6000, 0);
    let mut sums = [0.0f64; 4];
    for (trace, stats_row) in traces.iter().zip(&matrix) {
        let row: Vec<f64> = stats_row
            .iter()
            .map(|s| s.mean_response().as_f64())
            .collect();
        let base = row[0];
        for (i, v) in row.iter().enumerate() {
            sums[i] += v / base;
        }
        println!(
            "{:<8} {:>10.2} {:>12.2} {:>17.2} {:>23.2}",
            trace.name,
            1.0,
            row[1] / base,
            row[2] / base,
            row[3] / base
        );
    }
    let n = traces.len() as f64;
    println!(
        "\n{:<8} {:>10.2} {:>12.2} {:>17.2} {:>23.2}",
        "mean",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n,
        sums[3] / n
    );
    let mean_ldpc = sums[1] / n;
    let mean_la = sums[2] / n;
    let mean_flex = sums[3] / n;
    println!(
        "\nFlexLevel vs baseline    : {} (paper: -66%)",
        pct_change(mean_flex, 1.0)
    );
    println!(
        "FlexLevel vs LDPC-in-SSD : {} (paper: -33%)",
        pct_change(mean_flex, mean_ldpc)
    );
    println!(
        "LevelAdjust-only vs LDPC : {} (paper: +27%)",
        pct_change(mean_la, mean_ldpc)
    );
}
