//! NUNMA design-space search: automates §6.1's "explored to find out the
//! optimal device parameters" beyond the paper's three hand-picked rows.
//!
//! Prints the verify-margin surface (worst-of retention/C2C BER), the
//! Table 3 rows' standings, and the grid optimum.
//!
//! Run: `cargo run --release -p bench --bin exp_nunma_search`

use flash_model::Volts;
use flexlevel::{nunma_search, NunmaConfig, SearchOptions};

fn main() {
    println!("NUNMA design-space search (objective: worst of retention/C2C BER");
    println!("over P/E 4000/1wk and 6000/1mo; Table 3 read refs and Vpp fixed)\n");

    let options = SearchOptions {
        step: Volts(0.02),
        ..SearchOptions::default()
    };
    let results = nunma_search::search(&options);

    // Surface: rows = level-1 margin, cols = level-2 margin.
    println!("objective surface (rows: margin1, cols: margin2, entries: log10 BER):");
    let margins: Vec<f64> = (0..=10).map(|i| i as f64 * 0.02).collect();
    print!("{:>7} |", "m1\\m2");
    for &m2 in &margins {
        print!(" {:>5.0}mV", m2 * 1000.0);
    }
    println!();
    for &m1 in &margins {
        print!("{:>5.0}mV |", m1 * 1000.0);
        for &m2 in &margins {
            let hit = results.iter().find(|c| {
                (c.config.retention_margin1().as_f64() - m1).abs() < 1e-9
                    && (c.config.retention_margin2().as_f64() - m2).abs() < 1e-9
            });
            match hit {
                Some(c) => print!(" {:>6.1}", c.objective.max(1e-12).log10()),
                None => print!(" {:>6}", "-"),
            }
        }
        println!();
    }

    println!("\nTable 3 rows under the same objective:");
    for (label, config) in NunmaConfig::paper_rows() {
        let c = nunma_search::evaluate(config, &options);
        println!(
            "  {label}: retention {:.3e}, C2C {:.3e}, objective {:.3e}",
            c.retention_ber, c.c2c_ber, c.objective
        );
    }

    let best = &results[0];
    println!(
        "\ngrid optimum: verify1 = {}, verify2 = {} (margins {:.0} mV / {:.0} mV)",
        best.config.verify1,
        best.config.verify2,
        best.config.retention_margin1().as_f64() * 1000.0,
        best.config.retention_margin2().as_f64() * 1000.0
    );
    println!(
        "  retention {:.3e}, C2C {:.3e}, objective {:.3e}",
        best.retention_ber, best.c2c_ber, best.objective
    );
    println!("\n(the optimum extends the paper's NUNMA direction: larger margins,");
    println!(" level 2 favoured — see EXPERIMENTS.md for the model-difference note)");
}
