//! Figure 6(b): average response-time reduction of
//! LevelAdjust+AccessEval relative to LDPC-in-SSD as the device wears
//! from 4000 to 6000 P/E cycles.
//!
//! Paper: the reduction grows from 21 % at 4000 P/E to 33 % at 6000 P/E —
//! soft sensing gets more expensive as the device ages, so removing it
//! pays more.
//!
//! Run: `cargo run --release -p bench --bin exp_fig6b`

use bench::{run_scheme, scaled_suite};
use ssd::Scheme;

fn main() {
    println!("Figure 6(b) — FlexLevel response-time reduction vs LDPC-in-SSD by wear\n");
    let traces = scaled_suite(1);
    println!("{:>6} {:>22} {:>22}", "P/E", "mean reduction", "paper");
    let paper = [(4000u32, "21%"), (5000, "~27%"), (6000, "33%")];
    for (pe, paper_label) in paper {
        let mut total = 0.0;
        for trace in &traces {
            let ldpc = run_scheme(Scheme::LdpcInSsd, trace, pe)
                .mean_response()
                .as_f64();
            let flex = run_scheme(Scheme::FlexLevel, trace, pe)
                .mean_response()
                .as_f64();
            total += 1.0 - flex / ldpc;
        }
        let mean = total / traces.len() as f64;
        println!("{:>6} {:>21.1}% {:>22}", pe, mean * 100.0, paper_label);
    }
}
