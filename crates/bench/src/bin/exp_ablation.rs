//! Ablations over FlexLevel's design choices (DESIGN.md §6 extension).
//!
//! 1. **ReducedCell pool size** — §5's claim that AccessEval "can balance
//!    the performance improvement and capacity loss based on application
//!    needs": sweeping the pool bound trades device capacity for read
//!    latency.
//! 2. **NUNMA scheme** — why FlexLevel deploys NUNMA 3: weaker rows leave
//!    reduced pages needing soft sensing at high stress.
//! 3. **Write buffer size** — the FlashSim modification the paper made.
//!
//! Run: `cargo run --release -p bench --bin exp_ablation`

use bench::EXPERIMENT_BLOCKS;
use flexlevel::NunmaScheme;
use rand::{rngs::StdRng, SeedableRng};
use ssd::{Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

fn trace(spec: WorkloadSpec, seed: u64) -> workloads::Trace {
    let config = SsdConfig::scaled(Scheme::FlexLevel, EXPERIMENT_BLOCKS);
    spec.with_requests(30_000)
        .with_footprint(config.geometry.logical_pages() * 7 / 10)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(seed))
}

fn main() {
    // --- 1. Pool size sweep -------------------------------------------
    // web-1's read-hot set is far larger than fin-2's, so pool size
    // actually binds: this is the §5 capacity/performance dial.
    let web = trace(WorkloadSpec::web1(), 78);
    println!(
        "pool size vs response time and capacity loss ({}):",
        web.name
    );
    println!(
        "{:>12} {:>14} {:>15} {:>12}",
        "pool (raw %)", "mean response", "capacity loss", "promotions"
    );
    let base = SsdConfig::scaled(Scheme::FlexLevel, EXPERIMENT_BLOCKS);
    for percent in [0u64, 6, 12, 25, 50] {
        let stats = if percent == 0 {
            // No pool at all = plain LDPC-in-SSD.
            let mut sim =
                SsdSimulator::new(SsdConfig::scaled(Scheme::LdpcInSsd, EXPERIMENT_BLOCKS));
            sim.run(&web).expect("trace fits").clone()
        } else {
            let pool_pages = base.geometry.total_pages() * percent / 100;
            let mut config = base.clone();
            config.access_eval = config.access_eval.with_pool_pages(pool_pages);
            let mut sim = SsdSimulator::new(config);
            sim.run(&web).expect("trace fits").clone()
        };
        let loss = percent as f64 * 0.25;
        println!(
            "{:>11}% {:>14} {:>14.1}% {:>12}",
            percent,
            stats.mean_response().to_string(),
            loss,
            stats.promotions
        );
    }
    println!("(the paper's operating point is 25% raw = 64 GB of 256 GB, ≈6% loss)");

    let trace = trace(WorkloadSpec::fin2(), 77);
    println!(
        "\nremaining ablations on {} ({} requests, P/E 6000)",
        trace.name,
        trace.len()
    );

    // --- 2. NUNMA scheme ablation --------------------------------------
    println!("\nNUNMA scheme deployed in reduced pages:");
    println!(
        "{:>10} {:>14} {:>16}",
        "scheme", "mean response", "reduced reads"
    );
    for nunma in [
        NunmaScheme::Nunma1,
        NunmaScheme::Nunma2,
        NunmaScheme::Nunma3,
    ] {
        let mut config = SsdConfig::scaled(Scheme::FlexLevel, EXPERIMENT_BLOCKS);
        config.nunma = nunma;
        let mut sim = SsdSimulator::new(config);
        let stats = sim.run(&trace).expect("trace fits").clone();
        println!(
            "{:>10} {:>14} {:>16}",
            nunma.label(),
            stats.mean_response().to_string(),
            stats.reduced_reads
        );
    }

    // --- 3. GC policy ----------------------------------------------------
    println!("\nGC victim policy (wear leveling is free at equal valid counts):");
    println!(
        "{:>12} {:>14} {:>10} {:>14}",
        "policy", "mean response", "erases", "erase spread"
    );
    for (label, policy) in [
        ("greedy", ssd::GcPolicy::Greedy),
        ("wear-aware", ssd::GcPolicy::WearAware),
    ] {
        let mut config = SsdConfig::scaled(Scheme::FlexLevel, EXPERIMENT_BLOCKS);
        config.gc_policy = policy;
        let mut sim = SsdSimulator::new(config);
        let stats = sim.run(&trace).expect("trace fits").clone();
        let (lo, hi) = sim.ftl().erase_spread();
        println!(
            "{:>12} {:>14} {:>10} {:>11}..{}",
            label,
            stats.mean_response().to_string(),
            stats.erases,
            lo,
            hi
        );
    }

    // --- 4. Buffer size sweep ------------------------------------------
    println!("\nwrite-back buffer size:");
    println!(
        "{:>14} {:>14} {:>14}",
        "buffer (pages)", "mean response", "buffer hits"
    );
    for pages in [4u64, 16, 64, 256] {
        let mut config = SsdConfig::scaled(Scheme::FlexLevel, EXPERIMENT_BLOCKS);
        config.buffer_pages = pages;
        let mut sim = SsdSimulator::new(config);
        let stats = sim.run(&trace).expect("trace fits").clone();
        println!(
            "{:>14} {:>14} {:>14}",
            pages,
            stats.mean_response().to_string(),
            stats.buffer_read_hits
        );
    }
}
