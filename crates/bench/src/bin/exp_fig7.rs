//! Figure 7: endurance impact of LevelAdjust+AccessEval vs LDPC-in-SSD
//! at 6000 P/E — (a) write count increase, (b) erase count increase,
//! (c) projected lifetime.
//!
//! Paper: +15 % writes and +13 % erases on average (largest relative
//! write increase on web-1/web-2, whose absolute write counts are tiny),
//! but only −6 % lifetime because the mechanism engages beyond 4000 P/E.
//!
//! Run: `cargo run --release -p bench --bin exp_fig7`

use bench::{run_matrix, scaled_suite};
use ssd::{LifetimeModel, Scheme};

fn main() {
    println!("Figure 7 — endurance impact at 6000 P/E (FlexLevel vs LDPC-in-SSD)\n");
    let traces = scaled_suite(1);
    let lifetime = LifetimeModel::paper();
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "workload", "write incr", "erase incr", "programs", "erases", "lifetime"
    );
    // Both schemes run over all traces concurrently (14 independent sims).
    let matrix = run_matrix(&traces, &[Scheme::LdpcInSsd, Scheme::FlexLevel], 6000, 0);
    let mut write_sum = 0.0;
    let mut erase_sum = 0.0;
    let mut life_sum = 0.0;
    for (trace, row) in traces.iter().zip(&matrix) {
        let (ldpc, flex) = (&row[0], &row[1]);
        let write_incr = flex.flash_programs as f64 / ldpc.flash_programs.max(1) as f64;
        // Read-only workloads erase (almost) nothing under either scheme;
        // report a neutral ratio instead of dividing by zero.
        let erase_incr = if ldpc.erases == 0 {
            if flex.erases == 0 {
                1.0
            } else {
                flex.erases as f64
            }
        } else {
            flex.erases as f64 / ldpc.erases as f64
        };
        let life = lifetime.relative_lifetime(erase_incr.max(1.0));
        write_sum += write_incr;
        erase_sum += erase_incr;
        life_sum += life;
        println!(
            "{:<8} {:>11.1}% {:>11.1}% {:>12} {:>12} {:>9.1}%",
            trace.name,
            (write_incr - 1.0) * 100.0,
            (erase_incr - 1.0) * 100.0,
            flex.flash_programs,
            flex.erases,
            life * 100.0
        );
    }
    let n = traces.len() as f64;
    println!(
        "\nmean: writes {:+.1}% (paper +15%), erases {:+.1}% (paper +13%), lifetime {:.1}% (paper ≈94%)",
        (write_sum / n - 1.0) * 100.0,
        (erase_sum / n - 1.0) * 100.0,
        life_sum / n * 100.0
    );
}
