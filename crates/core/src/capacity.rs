//! Capacity-loss accounting for LevelAdjust (paper §4.3, §5).
//!
//! Reduced-state cells store 3 bits per 2 cells instead of 4 — a 25 %
//! density loss on whatever raw capacity operates in reduced mode. The
//! ReducedCell pool bounds that exposure: with the paper's 64 GB pool on a
//! 256 GB device the worst-case device-level loss is
//! `64 × 25 % / 256 = 6.25 % ≈ 6 %`.

use serde::{Deserialize, Serialize};

/// Fraction of raw capacity lost by cells operating in reduced mode.
pub const REDUCED_MODE_LOSS: f64 = 0.25;

/// Capacity accounting for a FlexLevel deployment.
///
/// ```
/// use flexlevel::CapacityModel;
///
/// // The paper's 64 GB pool on a 256 GB device: ≈6% loss.
/// let m = CapacityModel::paper();
/// assert!((m.loss_fraction() - 0.0625).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Total raw device bytes.
    pub device_bytes: u64,
    /// Raw bytes eligible for reduced-mode operation (the pool bound).
    pub pool_bytes: u64,
}

impl CapacityModel {
    /// The paper's evaluation setup: 256 GB device, 64 GB pool.
    pub fn paper() -> CapacityModel {
        CapacityModel {
            device_bytes: 256 * (1 << 30),
            pool_bytes: 64 * (1 << 30),
        }
    }

    /// Creates a model, clamping the pool to the device size.
    pub fn new(device_bytes: u64, pool_bytes: u64) -> CapacityModel {
        CapacityModel {
            device_bytes,
            pool_bytes: pool_bytes.min(device_bytes),
        }
    }

    /// Bytes of storage lost when the pool fully operates in reduced mode.
    pub fn lost_bytes(&self) -> u64 {
        (self.pool_bytes as f64 * REDUCED_MODE_LOSS) as u64
    }

    /// Device-level capacity-loss fraction with the pool fully reduced.
    pub fn loss_fraction(&self) -> f64 {
        if self.device_bytes == 0 {
            return 0.0;
        }
        self.lost_bytes() as f64 / self.device_bytes as f64
    }

    /// Capacity-loss fraction if LevelAdjust were applied to the whole
    /// device (the "LevelAdjust-only" configuration) — always 25 %.
    pub fn unrestricted_loss_fraction(&self) -> f64 {
        REDUCED_MODE_LOSS
    }

    /// Logical bytes the pool region can store in reduced mode.
    pub fn pool_logical_bytes(&self) -> u64 {
        self.pool_bytes - self.lost_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers() {
        let m = CapacityModel::paper();
        // 64 GB × 25% = 16 GB lost of 256 GB ⇒ 6.25 % ≈ the paper's "6 %".
        assert_eq!(m.lost_bytes(), 16 * (1 << 30));
        assert!((m.loss_fraction() - 0.0625).abs() < 1e-12);
        assert!(m.loss_fraction() < 0.07);
        assert_eq!(m.unrestricted_loss_fraction(), 0.25);
    }

    #[test]
    fn accesseval_reduces_loss_from_25_to_6_percent() {
        // The abstract's claim in one assertion.
        let unrestricted = CapacityModel::new(256 << 30, 256 << 30);
        let pooled = CapacityModel::paper();
        assert!((unrestricted.loss_fraction() - 0.25).abs() < 1e-12);
        assert!(pooled.loss_fraction() < 0.07);
    }

    #[test]
    fn pool_clamped_to_device() {
        let m = CapacityModel::new(100, 200);
        assert_eq!(m.pool_bytes, 100);
    }

    #[test]
    fn pool_logical_bytes() {
        let m = CapacityModel::paper();
        assert_eq!(m.pool_logical_bytes(), 48 * (1 << 30));
    }

    #[test]
    fn zero_device_degenerate() {
        let m = CapacityModel::new(0, 0);
        assert_eq!(m.loss_fraction(), 0.0);
    }
}
