//! NUNMA design-space exploration.
//!
//! The paper hand-picks three verify-voltage configurations (Table 3) and
//! declares NUNMA 3 the winner. This module automates §6.1's goal — "find
//! out the optimal configuration" — by searching the verify-voltage plane
//! for the allocation minimising the worst combined (retention + C2C)
//! BER across a stress grid, subject to the physical constraints the
//! paper states: verify voltages must sit above their read references and
//! leave room for the ISPP pulse below the next boundary.

use flash_model::{Hours, LevelConfig, Volts};
use reliability::{analytic, InterferenceModel, ProgramModel, RetentionModel};
use serde::{Deserialize, Serialize};

use crate::nunma::NunmaConfig;

/// One evaluated point of the search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NunmaCandidate {
    /// The candidate configuration.
    pub config: NunmaConfig,
    /// Worst-case retention BER across the stress grid.
    pub retention_ber: f64,
    /// C2C interference BER (stress-independent).
    pub c2c_ber: f64,
    /// The optimisation objective: the worse of the two.
    pub objective: f64,
}

/// Search options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Verify-voltage grid step.
    pub step: Volts,
    /// Maximum margin above each read reference to explore.
    pub max_margin: Volts,
    /// Stress grid points (P/E, storage time) for the retention objective.
    pub stress: [(u32, Hours); 2],
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            step: Volts(0.01),
            max_margin: Volts(0.20),
            stress: [(4000, Hours::weeks(1.0)), (6000, Hours::months(1.0))],
        }
    }
}

/// Evaluates one candidate configuration.
pub fn evaluate(config: NunmaConfig, options: &SearchOptions) -> NunmaCandidate {
    let level_config: LevelConfig = config.level_config();
    let program = ProgramModel::default();
    let retention = RetentionModel::paper();
    let c2c = InterferenceModel::default();
    let retention_ber = options
        .stress
        .iter()
        .map(|&(pe, t)| {
            analytic::estimate(
                &level_config,
                &program,
                None,
                Some((&retention, pe, t)),
                1.5,
            )
            .ber
        })
        .fold(0.0f64, f64::max);
    let c2c_ber = analytic::estimate(&level_config, &program, Some(&c2c), None, 1.5).ber;
    NunmaCandidate {
        config,
        retention_ber,
        c2c_ber,
        objective: retention_ber.max(c2c_ber),
    }
}

/// Grid search over the two verify margins; returns candidates sorted by
/// objective (best first).
///
/// Candidate evaluations are independent, so they run on the shared
/// thread pool ([`reliability::parallel_map`]); the candidate order and
/// the stable sort keep the result identical for any thread count.
pub fn search(options: &SearchOptions) -> Vec<NunmaCandidate> {
    let base = NunmaConfig::nunma1(); // read references and Vpp from Table 3
    let mut candidates = Vec::new();
    let steps = (options.max_margin.as_f64() / options.step.as_f64()).round() as u32;
    for m1 in 0..=steps {
        for m2 in 0..=steps {
            let candidate = NunmaConfig {
                vpp: base.vpp,
                verify1: base.read_ref1 + options.step * m1 as f64,
                verify2: base.read_ref2 + options.step * m2 as f64,
                read_ref1: base.read_ref1,
                read_ref2: base.read_ref2,
            };
            // Physical constraint: a programmed level-1 distribution
            // (verify1 + Vpp plus tails) must stay clear of read_ref2.
            if (candidate.verify1 + candidate.vpp).as_f64() > candidate.read_ref2.as_f64() - 0.1 {
                continue;
            }
            candidates.push(candidate);
        }
    }
    let mut results =
        reliability::parallel_map(candidates, 0, |_, candidate| evaluate(candidate, options));
    results.sort_by(|a, b| a.objective.partial_cmp(&b.objective).expect("finite BER"));
    results
}

/// The best configuration found by [`search`] with default options.
pub fn optimal() -> NunmaCandidate {
    search(&SearchOptions::default())
        .into_iter()
        .next()
        .expect("the search grid is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_returns_sorted_candidates() {
        let options = SearchOptions {
            step: Volts(0.05),
            ..SearchOptions::default()
        };
        let results = search(&options);
        assert!(results.len() > 4);
        for w in results.windows(2) {
            assert!(w[0].objective <= w[1].objective);
        }
    }

    #[test]
    fn optimal_is_non_uniform() {
        // The search must rediscover the paper's §4.2 insight: the top
        // level deserves the bigger retention margin.
        let best = optimal();
        assert!(
            best.config.retention_margin2() >= best.config.retention_margin1(),
            "optimal allocation {best:?} should favour level 2"
        );
    }

    #[test]
    fn optimal_beats_or_matches_nunma1() {
        let options = SearchOptions::default();
        let best = optimal();
        let nunma1 = evaluate(NunmaConfig::nunma1(), &options);
        assert!(best.objective <= nunma1.objective);
    }

    #[test]
    fn nunma3_best_of_table3_and_optimum_extends_its_direction() {
        // Validates the paper's choice among its own candidates: NUNMA 3
        // wins Table 3 under the combined objective — and the
        // unconstrained grid optimum continues in the same direction
        // (margins at least as large, still favouring level 2).
        let options = SearchOptions::default();
        let rows: Vec<NunmaCandidate> = NunmaConfig::paper_rows()
            .iter()
            .map(|(_, c)| evaluate(*c, &options))
            .collect();
        assert!(
            rows[2].objective <= rows[0].objective && rows[2].objective <= rows[1].objective,
            "NUNMA3 must win Table 3: {rows:?}"
        );
        let best = optimal();
        let nunma3 = NunmaConfig::nunma3();
        assert!(best.config.retention_margin2() >= nunma3.retention_margin2() - Volts(0.001));
        assert!(best.objective <= rows[2].objective);
    }

    #[test]
    fn candidates_respect_pulse_constraint() {
        let options = SearchOptions {
            step: Volts(0.05),
            ..SearchOptions::default()
        };
        for c in search(&options) {
            assert!(
                (c.config.verify1 + c.config.vpp).as_f64()
                    <= c.config.read_ref2.as_f64() - 0.1 + 1e-9
            );
        }
    }
}
