//! NUNMA: non-uniform noise margin adjustment (paper §4.2, Table 3).
//!
//! A reduced-state (3-level) cell has two programmed levels. Retention
//! charge loss grows with a level's height above the erased state, so the
//! top level fails first; NUNMA counters this by raising the program verify
//! voltages — more for level 2 than level 1 — which shifts each programmed
//! distribution upward *without* moving the read references. Retention
//! margins widen at the cost of cell-to-cell interference margin, a good
//! trade precisely because retention errors dominate at high P/E counts.
//!
//! Table 3 of the paper explores three configurations; NUNMA 3 (the most
//! aggressive) keeps both C2C and retention BER below the 4 × 10⁻³ limit
//! that triggers extra LDPC sensing levels, and is the configuration
//! FlexLevel deploys in reduced-state cells.

use flash_model::{LevelConfig, Volts};
use serde::{Deserialize, Serialize};

/// One reduced-state voltage configuration (a row of Table 3).
///
/// ```
/// use flexlevel::NunmaConfig;
///
/// // NUNMA 3 allocates the top level a 150 mV retention margin.
/// let n3 = NunmaConfig::nunma3();
/// assert!(n3.is_non_uniform());
/// assert!((n3.retention_margin2().as_f64() - 0.15).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NunmaConfig {
    /// ISPP program pulse `Vpp`.
    pub vpp: Volts,
    /// Program verify voltage of level 1.
    pub verify1: Volts,
    /// Program verify voltage of level 2.
    pub verify2: Volts,
    /// Read reference between levels 0 and 1.
    pub read_ref1: Volts,
    /// Read reference between levels 1 and 2.
    pub read_ref2: Volts,
}

impl NunmaConfig {
    /// Table 3, row "NUNMA 1": verify voltages just above the references
    /// (uniform small margins).
    pub fn nunma1() -> NunmaConfig {
        NunmaConfig {
            vpp: Volts(0.15),
            verify1: Volts(2.71),
            verify2: Volts(3.61),
            read_ref1: Volts(2.65),
            read_ref2: Volts(3.55),
        }
    }

    /// Table 3, row "NUNMA 2": slightly non-uniform (level 2 gets a 100 mV
    /// retention margin, level 1 stays at 50 mV).
    pub fn nunma2() -> NunmaConfig {
        NunmaConfig {
            vpp: Volts(0.15),
            verify1: Volts(2.70),
            verify2: Volts(3.65),
            read_ref1: Volts(2.65),
            read_ref2: Volts(3.55),
        }
    }

    /// Table 3, row "NUNMA 3": the aggressive allocation FlexLevel deploys
    /// (100 mV / 150 mV retention margins).
    pub fn nunma3() -> NunmaConfig {
        NunmaConfig {
            vpp: Volts(0.15),
            verify1: Volts(2.75),
            verify2: Volts(3.70),
            read_ref1: Volts(2.65),
            read_ref2: Volts(3.55),
        }
    }

    /// All three Table 3 rows with their paper labels.
    pub fn paper_rows() -> [(&'static str, NunmaConfig); 3] {
        [
            ("NUNMA 1", NunmaConfig::nunma1()),
            ("NUNMA 2", NunmaConfig::nunma2()),
            ("NUNMA 3", NunmaConfig::nunma3()),
        ]
    }

    /// Converts this configuration into a three-level [`LevelConfig`] for
    /// the reliability models.
    ///
    /// # Panics
    ///
    /// Panics only if the Table 3 voltages were edited into an inconsistent
    /// state (verify below read reference).
    pub fn level_config(&self) -> LevelConfig {
        LevelConfig::new(
            vec![self.read_ref1, self.read_ref2],
            vec![self.verify1, self.verify2],
            Volts(1.1),
            self.vpp,
        )
        .expect("NUNMA voltages are consistent")
    }

    /// Retention noise margin of level 1 (verify − lower read reference).
    pub fn retention_margin1(&self) -> Volts {
        self.verify1 - self.read_ref1
    }

    /// Retention noise margin of level 2.
    pub fn retention_margin2(&self) -> Volts {
        self.verify2 - self.read_ref2
    }

    /// `true` if the allocation is non-uniform (level 2 margin exceeds
    /// level 1 margin) — the defining property of NUNMA over the basic
    /// LevelAdjust.
    pub fn is_non_uniform(&self) -> bool {
        self.retention_margin2() > self.retention_margin1()
    }
}

/// Which reduced-state voltage scheme a FlexLevel deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NunmaScheme {
    /// Table 3 row 1.
    Nunma1,
    /// Table 3 row 2.
    Nunma2,
    /// Table 3 row 3 (the paper's deployed configuration).
    Nunma3,
}

impl NunmaScheme {
    /// The voltage configuration of this scheme.
    pub fn config(self) -> NunmaConfig {
        match self {
            NunmaScheme::Nunma1 => NunmaConfig::nunma1(),
            NunmaScheme::Nunma2 => NunmaConfig::nunma2(),
            NunmaScheme::Nunma3 => NunmaConfig::nunma3(),
        }
    }

    /// Paper label of this scheme.
    pub fn label(self) -> &'static str {
        match self {
            NunmaScheme::Nunma1 => "NUNMA 1",
            NunmaScheme::Nunma2 => "NUNMA 2",
            NunmaScheme::Nunma3 => "NUNMA 3",
        }
    }
}

impl Default for NunmaScheme {
    /// The paper deploys NUNMA 3 in its AccessEval evaluation (§6.2).
    fn default() -> NunmaScheme {
        NunmaScheme::Nunma3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_model::VthLevel;

    #[test]
    fn table3_values() {
        let n1 = NunmaConfig::nunma1();
        assert_eq!(n1.vpp, Volts(0.15));
        assert_eq!(n1.verify1, Volts(2.71));
        assert_eq!(n1.verify2, Volts(3.61));
        assert_eq!(n1.read_ref1, Volts(2.65));
        assert_eq!(n1.read_ref2, Volts(3.55));
        let n2 = NunmaConfig::nunma2();
        assert_eq!(n2.verify1, Volts(2.70));
        assert_eq!(n2.verify2, Volts(3.65));
        let n3 = NunmaConfig::nunma3();
        assert_eq!(n3.verify1, Volts(2.75));
        assert_eq!(n3.verify2, Volts(3.70));
        // All rows share the read references.
        for (_, cfg) in NunmaConfig::paper_rows() {
            assert_eq!(cfg.read_ref1, Volts(2.65));
            assert_eq!(cfg.read_ref2, Volts(3.55));
        }
    }

    #[test]
    fn margins_ordered_across_rows() {
        let m1 = NunmaConfig::nunma1().retention_margin2();
        let m2 = NunmaConfig::nunma2().retention_margin2();
        let m3 = NunmaConfig::nunma3().retention_margin2();
        assert!(m1 < m2 && m2 < m3, "level-2 margins must grow 1 → 3");
    }

    #[test]
    fn non_uniformity() {
        // NUNMA 1 is (nearly) uniform; 2 and 3 favour level 2.
        assert!(!NunmaConfig::nunma1().is_non_uniform());
        assert!(NunmaConfig::nunma2().is_non_uniform());
        assert!(NunmaConfig::nunma3().is_non_uniform());
    }

    #[test]
    fn level_config_is_three_level() {
        for (_, cfg) in NunmaConfig::paper_rows() {
            let lc = cfg.level_config();
            assert_eq!(lc.level_count(), 3);
            assert_eq!(lc.verify_voltage(VthLevel::L1), Some(cfg.verify1));
            assert_eq!(lc.verify_voltage(VthLevel::L2), Some(cfg.verify2));
        }
    }

    #[test]
    fn nunma_retention_ber_beats_baseline() {
        // The device-level premise of LevelAdjust: every NUNMA row has a
        // lower retention BER than the baseline MLC cell, and the rows are
        // strictly ordered 1 > 2 > 3, at every Table 4 stress point.
        use flash_model::Hours;
        use reliability::{analytic, ProgramModel, RetentionModel};

        let baseline = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let retention = RetentionModel::paper();
        for pe in [2000u32, 4000, 6000] {
            for time in [Hours::days(1.0), Hours::months(1.0)] {
                let stress = Some((&retention, pe, time));
                let base = analytic::estimate(&baseline, &program, None, stress, 2.0).ber;
                let rows: Vec<f64> = NunmaConfig::paper_rows()
                    .iter()
                    .map(|(_, cfg)| {
                        analytic::estimate(&cfg.level_config(), &program, None, stress, 1.5).ber
                    })
                    .collect();
                assert!(
                    base > rows[0] && rows[0] > rows[1] && rows[1] > rows[2],
                    "ordering violated at pe={pe} t={time}: base={base:.3e} rows={rows:?}"
                );
            }
        }
    }

    #[test]
    fn scheme_accessors() {
        assert_eq!(NunmaScheme::default(), NunmaScheme::Nunma3);
        assert_eq!(NunmaScheme::Nunma1.label(), "NUNMA 1");
        assert_eq!(NunmaScheme::Nunma2.config(), NunmaConfig::nunma2());
    }
}
