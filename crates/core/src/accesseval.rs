//! AccessEval: identifying and placing high-LDPC-overhead data (paper §5).
//!
//! LevelAdjust costs 25 % of the capacity of whatever it is applied to, so
//! FlexLevel applies it only where it pays. AccessEval consists of:
//!
//! * the **HLO identifier** — scores each datum's LDPC overhead as
//!   `L_f × L_sensing` (read-frequency level × soft-sensing-level bucket;
//!   the paper uses N = M = 2 levels of each) and flags data whose score
//!   exceeds a threshold;
//! * the **ReducedCell pool** — an LRU-ordered, capacity-bounded set of
//!   logical pages currently stored in reduced-state cells (the paper caps
//!   it at 64 GB of the 256 GB device, bounding capacity loss at ≈6 %);
//! * the **AccessEval controller** — turns identifier verdicts into
//!   migrations: promote HLO data into reduced pages, demote the
//!   least-recently-accessed data back to normal pages when the pool
//!   fills.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// Configuration of the AccessEval policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvalConfig {
    /// Number of read-frequency levels `N` (paper: 2).
    pub freq_levels: u32,
    /// Number of sensing-overhead buckets `M` (paper: 2).
    pub sensing_buckets: u32,
    /// A datum is HLO when `L_f × L_sensing` **exceeds** this value.
    /// With N = M = 2 the products are {1, 2, 4}; the default threshold 2
    /// selects data that is both hot *and* expensive to sense.
    pub overhead_threshold: u32,
    /// ReducedCell pool capacity in pages.
    pub pool_pages: u64,
    /// Read count at which a page reaches the top frequency level.
    pub hot_read_threshold: u32,
    /// Reads between aging passes (counters halve), keeping frequency
    /// levels reflective of the recent access pattern.
    pub aging_period: u64,
}

impl AccessEvalConfig {
    /// The paper's §6.2 settings for a device with `page_bytes`-sized
    /// pages: `L_f = L_sensing = 2`, 64 GB pool. The hot threshold and
    /// aging cadence implement the bloom-filter-style hot-data
    /// identification of \[13\]: a page must sustain several reads per
    /// aging window to stay "hot", which keeps migrations targeted at the
    /// genuinely read-hot working set instead of the long Zipf tail.
    pub fn paper(page_bytes: u64) -> AccessEvalConfig {
        AccessEvalConfig {
            freq_levels: 2,
            sensing_buckets: 2,
            overhead_threshold: 2,
            pool_pages: 64 * (1 << 30) / page_bytes,
            hot_read_threshold: 8,
            aging_period: 8192,
        }
    }

    /// Same policy scaled to a pool of `pool_pages` pages (for scaled-down
    /// simulated devices).
    pub fn with_pool_pages(mut self, pool_pages: u64) -> AccessEvalConfig {
        self.pool_pages = pool_pages;
        self
    }
}

impl Default for AccessEvalConfig {
    fn default() -> AccessEvalConfig {
        AccessEvalConfig::paper(16 * 1024)
    }
}

/// Scores LDPC overhead from read frequency and sensing cost.
#[derive(Debug, Clone)]
pub struct HloIdentifier {
    config: AccessEvalConfig,
    read_counts: HashMap<u64, u32>,
    reads_since_aging: u64,
}

impl HloIdentifier {
    /// Creates an identifier with the given policy.
    pub fn new(config: AccessEvalConfig) -> HloIdentifier {
        HloIdentifier {
            config,
            read_counts: HashMap::new(),
            reads_since_aging: 0,
        }
    }

    /// Records a read of `lpn` and returns its current frequency level
    /// (1 ..= `freq_levels`).
    pub fn record_read(&mut self, lpn: u64) -> u32 {
        let count = self.read_counts.entry(lpn).or_insert(0);
        *count = count.saturating_add(1);
        let count = *count;
        let level = self.freq_level_for_count(count);
        self.reads_since_aging += 1;
        if self.reads_since_aging >= self.config.aging_period {
            self.age();
        }
        level
    }

    /// Current frequency level of `lpn` without recording a read.
    pub fn freq_level(&self, lpn: u64) -> u32 {
        self.freq_level_for_count(self.read_counts.get(&lpn).copied().unwrap_or(0))
    }

    fn freq_level_for_count(&self, count: u32) -> u32 {
        // Level k needs count ≥ hot_read_threshold^(k-1) scaled linearly:
        // with N=2 this is simply "hot" vs "cold" at the threshold.
        let n = self.config.freq_levels;
        if n <= 1 {
            return 1;
        }
        let step = self.config.hot_read_threshold.max(1);
        (1 + count / step).min(n)
    }

    /// Buckets an observed sensing cost (`extra_levels` out of
    /// `max_levels`) into 1 ..= `sensing_buckets` by dividing the level
    /// range evenly: with the paper's M = 2 over a 6-level schedule,
    /// bucket 2 means the *upper half* (≥ 4 extra levels) — the reads
    /// whose latency actually hurts.
    pub fn sensing_bucket(&self, extra_levels: u32, max_levels: u32) -> u32 {
        let m = self.config.sensing_buckets;
        if m <= 1 || max_levels == 0 {
            return 1;
        }
        (1 + extra_levels * m / (max_levels + 1)).min(m)
    }

    /// LDPC overhead score `L_f × L_sensing`.
    pub fn overhead(&self, freq_level: u32, sensing_bucket: u32) -> u32 {
        freq_level * sensing_bucket
    }

    /// Full evaluation: record the read and decide whether `lpn` is HLO
    /// at the observed sensing cost.
    pub fn evaluate(&mut self, lpn: u64, extra_levels: u32, max_levels: u32) -> bool {
        let freq = self.record_read(lpn);
        let sensing = self.sensing_bucket(extra_levels, max_levels);
        self.overhead(freq, sensing) > self.config.overhead_threshold
    }

    /// Forgets a page (overwritten or trimmed).
    pub fn invalidate(&mut self, lpn: u64) {
        self.read_counts.remove(&lpn);
    }

    /// Ages all counters (halves them), dropping cold entries.
    pub fn age(&mut self) {
        self.reads_since_aging = 0;
        self.read_counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
    }

    /// Number of tracked pages.
    pub fn tracked_pages(&self) -> usize {
        self.read_counts.len()
    }
}

/// The ReducedCell pool: LRU-ordered set of pages stored in reduced-state
/// cells.
#[derive(Debug, Clone)]
pub struct ReducedCellPool {
    capacity: u64,
    next_seq: u64,
    by_lpn: HashMap<u64, u64>,
    by_seq: BTreeMap<u64, u64>,
}

/// Size of one ReducedCell pool metadata entry (paper §5: 4 bytes).
pub const POOL_ENTRY_BYTES: u64 = 4;

impl ReducedCellPool {
    /// Creates a pool holding at most `capacity` pages.
    pub fn new(capacity: u64) -> ReducedCellPool {
        ReducedCellPool {
            capacity,
            next_seq: 0,
            by_lpn: HashMap::new(),
            by_seq: BTreeMap::new(),
        }
    }

    /// Pages currently in the pool.
    pub fn len(&self) -> u64 {
        self.by_lpn.len() as u64
    }

    /// `true` when no pages are pooled.
    pub fn is_empty(&self) -> bool {
        self.by_lpn.is_empty()
    }

    /// Maximum pages the pool may hold.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// `true` if `lpn` is stored in reduced-state cells.
    pub fn contains(&self, lpn: u64) -> bool {
        self.by_lpn.contains_key(&lpn)
    }

    /// Marks `lpn` as recently accessed.
    pub fn touch(&mut self, lpn: u64) {
        if let Some(old_seq) = self.by_lpn.get(&lpn).copied() {
            self.by_seq.remove(&old_seq);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.by_seq.insert(seq, lpn);
            self.by_lpn.insert(lpn, seq);
        }
    }

    /// Inserts `lpn`, returning the evicted least-recently-used page if
    /// the pool was full. Inserting an existing page just touches it.
    pub fn insert(&mut self, lpn: u64) -> Option<u64> {
        if self.contains(lpn) {
            self.touch(lpn);
            return None;
        }
        let evicted = if self.len() >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_seq.insert(seq, lpn);
        self.by_lpn.insert(lpn, seq);
        evicted
    }

    /// Removes and returns the least-recently-used page.
    pub fn pop_lru(&mut self) -> Option<u64> {
        let (&seq, &lpn) = self.by_seq.iter().next()?;
        self.by_seq.remove(&seq);
        self.by_lpn.remove(&lpn);
        Some(lpn)
    }

    /// Removes a specific page (overwrite/trim).
    pub fn remove(&mut self, lpn: u64) -> bool {
        if let Some(seq) = self.by_lpn.remove(&lpn) {
            self.by_seq.remove(&seq);
            true
        } else {
            false
        }
    }

    /// Metadata footprint of the pool at full occupancy (paper §5: 4-byte
    /// entries; 32 GB of 16 KB reduced pages ⇒ 8 MB).
    pub fn metadata_bytes(&self) -> u64 {
        self.capacity * POOL_ENTRY_BYTES
    }
}

/// A migration the FTL must perform on behalf of AccessEval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Migration {
    /// Rewrite `lpn` into reduced-state pages.
    PromoteToReduced {
        /// The logical page to promote.
        lpn: u64,
    },
    /// Rewrite `lpn` back into normal-state pages (pool eviction).
    DemoteToNormal {
        /// The logical page to demote.
        lpn: u64,
    },
}

impl Migration {
    /// The logical page being migrated.
    pub fn lpn(&self) -> u64 {
        match *self {
            Migration::PromoteToReduced { lpn } | Migration::DemoteToNormal { lpn } => lpn,
        }
    }
}

/// Counters describing the controller's behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvalStats {
    /// Reads evaluated.
    pub reads: u64,
    /// Reads that hit data already in reduced-state pages.
    pub reduced_hits: u64,
    /// Promotions into the pool.
    pub promotions: u64,
    /// Demotions out of the pool (LRU evictions).
    pub demotions: u64,
}

/// Where a page's data currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Normal-state (4-level) pages.
    Normal,
    /// Reduced-state (3-level, ReduceCode) pages.
    Reduced,
}

/// Checkpoint view of an [`AccessEvalController`]'s mutable state,
/// canonicalised for byte-deterministic serialization: read counters
/// sorted by LPN, pool entries in LRU (sequence) order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessEvalSnapshot {
    /// HLO identifier read counters as `(lpn, count)`, sorted by LPN.
    pub read_counts: Vec<(u64, u32)>,
    /// Reads accumulated toward the next aging pass.
    pub reads_since_aging: u64,
    /// ReducedCell pool entries as `(sequence, lpn)` in sequence order.
    pub pool: Vec<(u64, u64)>,
    /// The pool's next LRU sequence number.
    pub pool_next_seq: u64,
    /// Behaviour counters at snapshot time.
    pub stats: AccessEvalStats,
}

/// The AccessEval controller: identifier + pool + migration policy.
///
/// ```
/// use flexlevel::{AccessEvalConfig, AccessEvalController, Migration, Placement};
///
/// let config = AccessEvalConfig::default().with_pool_pages(2);
/// let mut ctrl = AccessEvalController::new(config);
///
/// // A cold read of cheap data stays in normal pages.
/// let migrations = ctrl.on_read(7, 0, 6);
/// assert!(migrations.is_empty());
/// assert_eq!(ctrl.placement(7), Placement::Normal);
///
/// // Hot + expensive data gets promoted.
/// for _ in 0..8 { ctrl.on_read(42, 4, 6); }
/// assert_eq!(ctrl.placement(42), Placement::Reduced);
/// ```
#[derive(Debug, Clone)]
pub struct AccessEvalController {
    identifier: HloIdentifier,
    pool: ReducedCellPool,
    stats: AccessEvalStats,
}

impl AccessEvalController {
    /// Creates a controller with the given policy.
    pub fn new(config: AccessEvalConfig) -> AccessEvalController {
        AccessEvalController {
            pool: ReducedCellPool::new(config.pool_pages),
            identifier: HloIdentifier::new(config),
            stats: AccessEvalStats::default(),
        }
    }

    /// Processes a host read of `lpn` whose LDPC decode needed
    /// `extra_levels` (of a schedule maximum `max_levels`) *if served from
    /// normal pages*. Returns the migrations the FTL must perform.
    pub fn on_read(&mut self, lpn: u64, extra_levels: u32, max_levels: u32) -> Vec<Migration> {
        self.stats.reads += 1;
        if self.pool.contains(lpn) {
            self.stats.reduced_hits += 1;
            self.pool.touch(lpn);
            // Keep the frequency statistics warm for aging decisions.
            self.identifier.record_read(lpn);
            return Vec::new();
        }
        let mut migrations = Vec::new();
        if self.identifier.evaluate(lpn, extra_levels, max_levels) {
            if let Some(evicted) = self.pool.insert(lpn) {
                self.stats.demotions += 1;
                migrations.push(Migration::DemoteToNormal { lpn: evicted });
            }
            self.stats.promotions += 1;
            migrations.push(Migration::PromoteToReduced { lpn });
        }
        migrations
    }

    /// Where `lpn` currently lives.
    pub fn placement(&self, lpn: u64) -> Placement {
        if self.pool.contains(lpn) {
            Placement::Reduced
        } else {
            Placement::Normal
        }
    }

    /// Notifies the controller that `lpn` was overwritten or trimmed.
    /// Returns `true` if the page was occupying pool space.
    pub fn on_invalidate(&mut self, lpn: u64) -> bool {
        self.identifier.invalidate(lpn);
        self.pool.remove(lpn)
    }

    /// Behaviour counters.
    pub fn stats(&self) -> AccessEvalStats {
        self.stats
    }

    /// The ReducedCell pool.
    pub fn pool(&self) -> &ReducedCellPool {
        &self.pool
    }

    /// The HLO identifier.
    pub fn identifier(&self) -> &HloIdentifier {
        &self.identifier
    }

    /// Captures the controller's mutable state for checkpointing.
    pub fn snapshot(&self) -> AccessEvalSnapshot {
        let mut read_counts: Vec<(u64, u32)> = self
            .identifier
            .read_counts
            .iter()
            .map(|(&lpn, &count)| (lpn, count))
            .collect();
        read_counts.sort_unstable_by_key(|&(lpn, _)| lpn);
        AccessEvalSnapshot {
            read_counts,
            reads_since_aging: self.identifier.reads_since_aging,
            pool: self
                .pool
                .by_seq
                .iter()
                .map(|(&seq, &lpn)| (seq, lpn))
                .collect(),
            pool_next_seq: self.pool.next_seq,
            stats: self.stats,
        }
    }

    /// Restores the state captured by [`snapshot`](Self::snapshot) into a
    /// controller built with the *same* configuration, validating the
    /// pool entries (untrusted input fails typed, never panics).
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency found.
    pub fn restore(&mut self, snap: &AccessEvalSnapshot) -> Result<(), &'static str> {
        if snap.pool.len() as u64 > self.pool.capacity {
            return Err("pool snapshot exceeds capacity");
        }
        let mut by_seq = BTreeMap::new();
        let mut by_lpn = HashMap::new();
        for &(seq, lpn) in &snap.pool {
            if seq >= snap.pool_next_seq {
                return Err("pool entry at or after the sequence counter");
            }
            if by_seq.insert(seq, lpn).is_some() {
                return Err("duplicate pool sequence");
            }
            if by_lpn.insert(lpn, seq).is_some() {
                return Err("duplicate pooled page");
            }
        }
        self.pool.by_seq = by_seq;
        self.pool.by_lpn = by_lpn;
        self.pool.next_seq = snap.pool_next_seq;
        self.identifier.read_counts = snap.read_counts.iter().copied().collect();
        self.identifier.reads_since_aging = snap.reads_since_aging;
        self.stats = snap.stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(pool: u64) -> AccessEvalConfig {
        AccessEvalConfig {
            freq_levels: 2,
            sensing_buckets: 2,
            overhead_threshold: 2,
            pool_pages: pool,
            hot_read_threshold: 4,
            aging_period: 1 << 20,
        }
    }

    #[test]
    fn paper_config_pool_size() {
        let cfg = AccessEvalConfig::paper(16 * 1024);
        // 64 GB of 16 KB pages.
        assert_eq!(cfg.pool_pages, 4 * 1024 * 1024);
        assert_eq!(cfg.freq_levels, 2);
        assert_eq!(cfg.sensing_buckets, 2);
    }

    #[test]
    fn metadata_budget_matches_paper() {
        // Paper §5: 32 GB of reduced pages at 16 KB/page and 4 B/entry
        // costs 8 MB of metadata.
        let pool = ReducedCellPool::new(32 * (1u64 << 30) / (16 * 1024));
        assert_eq!(pool.metadata_bytes(), 8 * (1 << 20));
    }

    #[test]
    fn freq_levels_grow_with_reads() {
        let mut id = HloIdentifier::new(small_config(8));
        assert_eq!(id.freq_level(1), 1);
        for _ in 0..3 {
            id.record_read(1);
        }
        assert_eq!(id.freq_level(1), 1, "below threshold stays cold");
        id.record_read(1);
        assert_eq!(id.freq_level(1), 2, "threshold reached");
    }

    #[test]
    fn sensing_buckets() {
        let id = HloIdentifier::new(small_config(8));
        assert_eq!(id.sensing_bucket(0, 6), 1, "hard decision is cheap");
        assert_eq!(id.sensing_bucket(1, 6), 1, "lower half stays bucket 1");
        assert_eq!(id.sensing_bucket(3, 6), 1);
        assert_eq!(id.sensing_bucket(4, 6), 2, "upper half is expensive");
        assert_eq!(id.sensing_bucket(6, 6), 2);
        // Degenerate cases.
        assert_eq!(id.sensing_bucket(3, 0), 1);
    }

    #[test]
    fn overhead_is_product() {
        let id = HloIdentifier::new(small_config(8));
        assert_eq!(id.overhead(2, 2), 4);
        assert_eq!(id.overhead(1, 2), 2);
        assert_eq!(id.overhead(2, 1), 2);
        assert_eq!(id.overhead(1, 1), 1);
    }

    #[test]
    fn only_hot_and_expensive_is_hlo() {
        let mut id = HloIdentifier::new(small_config(8));
        // Cold + expensive: overhead 1×2 = 2, not > 2.
        assert!(!id.evaluate(1, 4, 6));
        // Hot + cheap: overhead 2×1 = 2, not > 2.
        for _ in 0..10 {
            id.record_read(2);
        }
        assert!(!id.evaluate(2, 0, 6));
        // Hot + expensive: overhead 4 > 2.
        for _ in 0..10 {
            id.record_read(3);
        }
        assert!(id.evaluate(3, 4, 6));
    }

    #[test]
    fn aging_halves_counters() {
        let mut id = HloIdentifier::new(small_config(8));
        for _ in 0..8 {
            id.record_read(1);
        }
        id.record_read(2);
        assert_eq!(id.tracked_pages(), 2);
        id.age();
        assert_eq!(id.freq_level(1), 2, "8/2 = 4 still hot");
        assert_eq!(id.tracked_pages(), 1, "1/2 = 0 dropped");
        id.age();
        assert_eq!(id.freq_level(1), 1, "4/2 = 2 cooled off");
    }

    #[test]
    fn pool_lru_eviction_order() {
        let mut pool = ReducedCellPool::new(2);
        assert!(pool.is_empty());
        assert_eq!(pool.insert(1), None);
        assert_eq!(pool.insert(2), None);
        // Touch 1 so 2 becomes LRU.
        pool.touch(1);
        assert_eq!(pool.insert(3), Some(2));
        assert!(pool.contains(1));
        assert!(pool.contains(3));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_reinsert_touches() {
        let mut pool = ReducedCellPool::new(2);
        pool.insert(1);
        pool.insert(2);
        // Re-inserting 1 must not evict, only refresh recency.
        assert_eq!(pool.insert(1), None);
        assert_eq!(pool.insert(3), Some(2));
    }

    #[test]
    fn pool_remove() {
        let mut pool = ReducedCellPool::new(2);
        pool.insert(1);
        assert!(pool.remove(1));
        assert!(!pool.remove(1));
        assert!(pool.is_empty());
    }

    #[test]
    fn touch_of_absent_page_is_noop() {
        let mut pool = ReducedCellPool::new(2);
        pool.touch(99);
        assert!(pool.is_empty());
    }

    #[test]
    fn controller_promotes_hot_expensive_data() {
        let mut ctrl = AccessEvalController::new(small_config(4));
        // Warm up LPN 5 past the hot threshold with expensive reads.
        let mut promoted = false;
        for _ in 0..8 {
            let migs = ctrl.on_read(5, 4, 6);
            if migs
                .iter()
                .any(|m| matches!(m, Migration::PromoteToReduced { lpn: 5 }))
            {
                promoted = true;
            }
        }
        assert!(promoted);
        assert_eq!(ctrl.placement(5), Placement::Reduced);
        assert_eq!(ctrl.stats().promotions, 1);
        // Subsequent reads hit the pool and need no migration.
        assert!(ctrl.on_read(5, 4, 6).is_empty());
        assert!(ctrl.stats().reduced_hits >= 1);
    }

    #[test]
    fn controller_demotes_lru_when_full() {
        let mut ctrl = AccessEvalController::new(small_config(1));
        for _ in 0..8 {
            ctrl.on_read(1, 4, 6);
        }
        assert_eq!(ctrl.placement(1), Placement::Reduced);
        for _ in 0..8 {
            ctrl.on_read(2, 4, 6);
        }
        // Pool holds one page: promoting 2 demoted 1.
        assert_eq!(ctrl.placement(2), Placement::Reduced);
        assert_eq!(ctrl.placement(1), Placement::Normal);
        assert_eq!(ctrl.stats().demotions, 1);
    }

    #[test]
    fn controller_invalidate_frees_pool_space() {
        let mut ctrl = AccessEvalController::new(small_config(1));
        for _ in 0..8 {
            ctrl.on_read(1, 4, 6);
        }
        assert!(ctrl.on_invalidate(1));
        assert_eq!(ctrl.placement(1), Placement::Normal);
        assert!(!ctrl.on_invalidate(1), "second invalidate is a no-op");
    }

    #[test]
    fn snapshot_round_trips_controller_state() {
        let mut ctrl = AccessEvalController::new(small_config(4));
        for lpn in 0..6 {
            for _ in 0..8 {
                ctrl.on_read(lpn, 4, 6);
            }
        }
        let snap = ctrl.snapshot();
        assert!(snap.read_counts.windows(2).all(|w| w[0].0 < w[1].0));
        let mut restored = AccessEvalController::new(small_config(4));
        restored.restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
        // The restored controller behaves identically going forward.
        for _ in 0..8 {
            assert_eq!(ctrl.on_read(9, 4, 6), restored.on_read(9, 4, 6));
        }
        assert_eq!(ctrl.stats(), restored.stats());
        // Corrupted snapshots fail typed.
        let mut bad = snap.clone();
        bad.pool.push((bad.pool_next_seq + 7, 12345));
        assert!(AccessEvalController::new(small_config(4))
            .restore(&bad)
            .is_err());
    }

    #[test]
    fn cheap_reads_never_migrate() {
        let mut ctrl = AccessEvalController::new(small_config(4));
        for lpn in 0..100 {
            assert!(ctrl.on_read(lpn, 0, 6).is_empty());
        }
        assert_eq!(ctrl.stats().promotions, 0);
        assert!(ctrl.pool().is_empty());
    }
}
