//! LevelAdjust: the reduced-state program algorithm and mode switching
//! (paper §4.1, Table 2, Figure 3).
//!
//! Under the ReduceCode bitline structure the original MLC two-step
//! program no longer applies; LevelAdjust defines its own two-step
//! algorithm over cell *pairs*:
//!
//! 1. **First step** — the two LSBs (the lower page for even pairs, the
//!    middle page for odd pairs) move each cell of the pair to level 0 or
//!    1 directly (`Vth` transitions `0→1` per Table 2's first four rows).
//! 2. **Second step** — the MSB (upper page, all bitlines selected). MSB 0
//!    stops the transition; MSB 1 drives the pair to its final Table 1
//!    combination (`0→2` / `1→2` transitions per Table 2's last four rows).
//!
//! The state machine here verifies the algorithm lands every symbol on
//! exactly the ReduceCode (Table 1) level pair.

use flash_model::{Bit, CellMode, VthLevel};
use serde::{Deserialize, Serialize};

use crate::reduce_code::ReduceCode;

/// Program-sequence state of one reduced-state cell pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PairProgramState {
    /// Erased; both cells at level 0.
    #[default]
    Erased,
    /// First step done: LSBs stored, cells at levels 0/1.
    LsbsProgrammed {
        /// LSB controlling cell I (bit 1 of the symbol).
        lsb1: Bit,
        /// LSB controlling cell II (bit 0 of the symbol).
        lsb0: Bit,
    },
    /// Both steps done; the pair holds a final level combination.
    Programmed {
        /// Level of cell I.
        first: VthLevel,
        /// Level of cell II.
        second: VthLevel,
    },
}

/// Errors from out-of-order reduced-pair programming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairProgramError {
    /// LSBs programmed twice without an erase.
    LsbsAlreadyProgrammed,
    /// MSB programmed before the LSBs.
    MsbBeforeLsbs,
    /// MSB programmed twice without an erase.
    MsbAlreadyProgrammed,
}

impl std::fmt::Display for PairProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PairProgramError::LsbsAlreadyProgrammed => {
                write!(f, "LSB page already programmed since last erase")
            }
            PairProgramError::MsbBeforeLsbs => {
                write!(f, "MSB page programmed before the LSB page")
            }
            PairProgramError::MsbAlreadyProgrammed => {
                write!(f, "MSB page already programmed since last erase")
            }
        }
    }
}

impl std::error::Error for PairProgramError {}

/// A reduced-state cell pair driven by the Table 2 program algorithm.
///
/// ```
/// use flexlevel::{ReducedCellPair, ReduceCode};
/// use flash_model::{Bit, VthLevel};
///
/// # fn main() -> Result<(), flexlevel::PairProgramError> {
/// let mut pair = ReducedCellPair::new();
/// // Store value 0b101: LSBs (0, 1), MSB 1.
/// pair.program_lsbs(Bit::ZERO, Bit::ONE)?;
/// pair.program_msb(Bit::ONE)?;
/// assert_eq!(pair.levels(), Some((VthLevel::ERASED, VthLevel::L2)));
/// assert_eq!(pair.read_value(), 0b101);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReducedCellPair {
    state: PairProgramState,
}

impl ReducedCellPair {
    /// A fresh, erased pair.
    pub fn new() -> ReducedCellPair {
        ReducedCellPair {
            state: PairProgramState::Erased,
        }
    }

    /// Current program state.
    pub fn state(&self) -> PairProgramState {
        self.state
    }

    /// Erase: both cells back to level 0.
    pub fn erase(&mut self) {
        self.state = PairProgramState::Erased;
    }

    /// First program step: stores the two LSBs (`lsb1` drives cell I,
    /// `lsb0` drives cell II — Table 2 rows 1–4: the cell moves `0→1`
    /// exactly when its LSB is 1).
    ///
    /// # Errors
    ///
    /// [`PairProgramError::LsbsAlreadyProgrammed`] if already past the
    /// first step.
    pub fn program_lsbs(&mut self, lsb1: Bit, lsb0: Bit) -> Result<(), PairProgramError> {
        match self.state {
            PairProgramState::Erased => {
                self.state = PairProgramState::LsbsProgrammed { lsb1, lsb0 };
                Ok(())
            }
            _ => Err(PairProgramError::LsbsAlreadyProgrammed),
        }
    }

    /// Second program step: stores the MSB (Table 2 rows 5–8). MSB 0 stops
    /// the `Vth` transition; MSB 1 drives the pair to its final ReduceCode
    /// combination.
    ///
    /// # Errors
    ///
    /// [`PairProgramError::MsbBeforeLsbs`] or
    /// [`PairProgramError::MsbAlreadyProgrammed`] on ordering violations.
    pub fn program_msb(&mut self, msb: Bit) -> Result<(), PairProgramError> {
        let PairProgramState::LsbsProgrammed { lsb1, lsb0 } = self.state else {
            return Err(match self.state {
                PairProgramState::Erased => PairProgramError::MsbBeforeLsbs,
                _ => PairProgramError::MsbAlreadyProgrammed,
            });
        };
        let value = (u16::from(u8::from(msb)) << 2)
            | (u16::from(u8::from(lsb1)) << 1)
            | u16::from(u8::from(lsb0));
        let (first, second) = if msb.is_one() {
            // Table 2, MSB = 1 rows: 00→(2,2), 01→(0,2), 10→(2,0), 11→(2,1).
            match (lsb1.is_one(), lsb0.is_one()) {
                (false, false) => (VthLevel::L2, VthLevel::L2),
                (false, true) => (VthLevel::ERASED, VthLevel::L2),
                (true, false) => (VthLevel::L2, VthLevel::ERASED),
                (true, true) => (VthLevel::L2, VthLevel::L1),
            }
        } else {
            // MSB = 0: Vth transition stops; levels stay where the first
            // step put them (the LSB bits as levels 0/1).
            (VthLevel::new(u8::from(lsb1)), VthLevel::new(u8::from(lsb0)))
        };
        debug_assert_eq!(
            (first, second),
            ReduceCode::encode_value(value),
            "Table 2 must land on the Table 1 combination for {value:03b}"
        );
        self.state = PairProgramState::Programmed { first, second };
        Ok(())
    }

    /// The final level combination, once fully programmed.
    pub fn levels(&self) -> Option<(VthLevel, VthLevel)> {
        match self.state {
            PairProgramState::Programmed { first, second } => Some((first, second)),
            _ => None,
        }
    }

    /// Reads the stored 3-bit value through ReduceCode. Partially
    /// programmed pairs read through their current physical levels
    /// (erased pairs read 0b000 = levels (0,0)).
    pub fn read_value(&self) -> u16 {
        let (first, second) = match self.state {
            PairProgramState::Erased => (VthLevel::ERASED, VthLevel::ERASED),
            PairProgramState::LsbsProgrammed { lsb1, lsb0 } => {
                (VthLevel::new(u8::from(lsb1)), VthLevel::new(u8::from(lsb0)))
            }
            PairProgramState::Programmed { first, second } => (first, second),
        };
        ReduceCode::decode_levels(first, second)
    }
}

/// Mode bookkeeping for a block that can switch between normal MLC and
/// reduced (LevelAdjust) operation.
///
/// A block's mode can only change through an erase — flash cells cannot be
/// re-encoded in place — which is exactly how the AccessEval controller
/// migrates data between modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeSwitch {
    mode: CellMode,
    erased: bool,
}

impl ModeSwitch {
    /// A freshly erased block in normal mode.
    pub fn new() -> ModeSwitch {
        ModeSwitch {
            mode: CellMode::Normal,
            erased: true,
        }
    }

    /// Current operating mode.
    pub fn mode(&self) -> CellMode {
        self.mode
    }

    /// `true` while the block is erased (mode changes allowed).
    pub fn is_erased(&self) -> bool {
        self.erased
    }

    /// Marks the block programmed (locks the mode until erase).
    pub fn mark_programmed(&mut self) {
        self.erased = false;
    }

    /// Erases the block, unlocking mode changes.
    pub fn erase(&mut self) {
        self.erased = true;
    }

    /// Switches the operating mode. Only legal on an erased block.
    ///
    /// # Errors
    ///
    /// Returns `Err(ModeLockedError)` if the block holds programmed data.
    pub fn set_mode(&mut self, mode: CellMode) -> Result<(), ModeLockedError> {
        if !self.erased {
            return Err(ModeLockedError);
        }
        self.mode = mode;
        Ok(())
    }
}

impl Default for ModeSwitch {
    fn default() -> ModeSwitch {
        ModeSwitch::new()
    }
}

/// Error: attempted to change a block's cell mode while it holds data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeLockedError;

impl std::fmt::Display for ModeLockedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell mode can only change on an erased block")
    }
}

impl std::error::Error for ModeLockedError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(value: u16) -> ReducedCellPair {
        let mut pair = ReducedCellPair::new();
        let msb = Bit::from(value & 0b100 != 0);
        let lsb1 = Bit::from(value & 0b010 != 0);
        let lsb0 = Bit::from(value & 0b001 != 0);
        pair.program_lsbs(lsb1, lsb0).unwrap();
        pair.program_msb(msb).unwrap();
        pair
    }

    #[test]
    fn all_symbols_land_on_table1() {
        for value in 0..8u16 {
            let pair = program(value);
            assert_eq!(
                pair.levels(),
                Some(ReduceCode::encode_value(value)),
                "value {value:03b}"
            );
            assert_eq!(pair.read_value(), value);
        }
    }

    #[test]
    fn table2_vth_transitions() {
        // Spot-check the ΔVth columns of Table 2.
        // 1st program "11": both cells 0→1.
        let mut pair = ReducedCellPair::new();
        pair.program_lsbs(Bit::ONE, Bit::ONE).unwrap();
        assert_eq!(
            pair.state(),
            PairProgramState::LsbsProgrammed {
                lsb1: Bit::ONE,
                lsb0: Bit::ONE
            }
        );
        // 2nd program MSB=1 on "11": cell I 1→2, cell II stays 1 → (2,1).
        pair.program_msb(Bit::ONE).unwrap();
        assert_eq!(pair.levels(), Some((VthLevel::L2, VthLevel::L1)));

        // 2nd program MSB=1 on "00": both 0→2.
        let mut pair = ReducedCellPair::new();
        pair.program_lsbs(Bit::ZERO, Bit::ZERO).unwrap();
        pair.program_msb(Bit::ONE).unwrap();
        assert_eq!(pair.levels(), Some((VthLevel::L2, VthLevel::L2)));
    }

    #[test]
    fn msb_zero_stops_transition() {
        // MSB = 0 keeps the first-step levels.
        let mut pair = ReducedCellPair::new();
        pair.program_lsbs(Bit::ONE, Bit::ZERO).unwrap();
        pair.program_msb(Bit::ZERO).unwrap();
        assert_eq!(pair.levels(), Some((VthLevel::L1, VthLevel::ERASED)));
    }

    #[test]
    fn ordering_enforced() {
        let mut pair = ReducedCellPair::new();
        assert_eq!(
            pair.program_msb(Bit::ONE),
            Err(PairProgramError::MsbBeforeLsbs)
        );
        pair.program_lsbs(Bit::ONE, Bit::ONE).unwrap();
        assert_eq!(
            pair.program_lsbs(Bit::ZERO, Bit::ZERO),
            Err(PairProgramError::LsbsAlreadyProgrammed)
        );
        pair.program_msb(Bit::ZERO).unwrap();
        assert_eq!(
            pair.program_msb(Bit::ONE),
            Err(PairProgramError::MsbAlreadyProgrammed)
        );
        pair.erase();
        assert_eq!(pair.state(), PairProgramState::Erased);
        assert!(pair.program_lsbs(Bit::ZERO, Bit::ONE).is_ok());
    }

    #[test]
    fn partial_reads() {
        let mut pair = ReducedCellPair::new();
        assert_eq!(pair.read_value(), 0b000);
        pair.program_lsbs(Bit::ONE, Bit::ONE).unwrap();
        // Levels (1,1) decode as 011 before the MSB lands.
        assert_eq!(pair.read_value(), 0b011);
        assert_eq!(pair.levels(), None);
    }

    #[test]
    fn mode_switch_requires_erase() {
        let mut sw = ModeSwitch::new();
        assert_eq!(sw.mode(), CellMode::Normal);
        assert!(sw.set_mode(CellMode::Reduced).is_ok());
        assert_eq!(sw.mode(), CellMode::Reduced);
        sw.mark_programmed();
        assert_eq!(sw.set_mode(CellMode::Normal), Err(ModeLockedError));
        assert_eq!(sw.mode(), CellMode::Reduced, "mode unchanged on failure");
        sw.erase();
        assert!(sw.set_mode(CellMode::Normal).is_ok());
    }

    #[test]
    fn error_messages() {
        assert!(ModeLockedError.to_string().contains("erased"));
        assert!(PairProgramError::MsbBeforeLsbs
            .to_string()
            .contains("before"));
    }
}
