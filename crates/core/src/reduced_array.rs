//! Behavioural reduced-state wordline: the ReduceCode bitline structure
//! of Figure 3 driven through real page operations.
//!
//! Two neighbouring even cells (or two neighbouring odd cells) form a
//! pair storing 3 bits. The two LSBs of all even pairs form the **lower
//! page**, the two LSBs of all odd pairs the **middle page**, and the
//! MSBs of *all* pairs the **upper page** — so a wordline holds three
//! pages of identical size (versus four in normal mode: the 25 % density
//! loss made concrete at page level).

use flash_model::{Bit, ReducedPage};
use serde::{Deserialize, Serialize};

use crate::level_adjust::{PairProgramError, ReducedCellPair};

/// Errors from reduced-wordline page operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReducedArrayError {
    /// Page data length does not match the wordline's page size.
    WrongPageLength {
        /// Bits provided.
        provided: usize,
        /// Bits expected.
        expected: usize,
    },
    /// A pair rejected the program (ordering violation).
    Program(PairProgramError),
}

impl From<PairProgramError> for ReducedArrayError {
    fn from(e: PairProgramError) -> ReducedArrayError {
        ReducedArrayError::Program(e)
    }
}

impl std::fmt::Display for ReducedArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReducedArrayError::WrongPageLength { provided, expected } => {
                write!(f, "page data has {provided} bits, expected {expected}")
            }
            ReducedArrayError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReducedArrayError {}

/// One wordline operating in reduced (ReduceCode) mode.
///
/// ```
/// use flash_model::{Bit, ReducedPage};
/// use flexlevel::ReducedWordline;
///
/// # fn main() -> Result<(), flexlevel::ReducedArrayError> {
/// // 4 pairs per parity group ⇒ pages of 8 bits.
/// let mut wl = ReducedWordline::new(4);
/// let page = vec![Bit::ONE; 8];
/// wl.program_page(ReducedPage::Lower, &page)?;
/// wl.program_page(ReducedPage::Middle, &page)?;
/// wl.program_page(ReducedPage::Upper, &page)?;
/// assert_eq!(wl.read_page(ReducedPage::Lower), page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReducedWordline {
    /// Pairs per parity group; even pairs then odd pairs.
    pairs_per_group: usize,
    pairs: Vec<ReducedCellPair>,
}

impl ReducedWordline {
    /// Creates an erased wordline with `pairs_per_group` ReduceCode pairs
    /// in each parity group (even and odd).
    ///
    /// # Panics
    ///
    /// Panics if `pairs_per_group` is zero.
    pub fn new(pairs_per_group: usize) -> ReducedWordline {
        assert!(pairs_per_group > 0, "empty wordline");
        ReducedWordline {
            pairs_per_group,
            pairs: vec![ReducedCellPair::new(); 2 * pairs_per_group],
        }
    }

    /// Bits per page (lower, middle and upper pages are all equal:
    /// `2 × pairs_per_group`).
    pub fn page_bits(&self) -> usize {
        2 * self.pairs_per_group
    }

    /// Total data bits on the wordline (3 pages).
    pub fn wordline_bits(&self) -> usize {
        3 * self.page_bits()
    }

    /// Erases the wordline.
    pub fn erase(&mut self) {
        for pair in &mut self.pairs {
            pair.erase();
        }
    }

    fn group(&self, page: ReducedPage) -> std::ops::Range<usize> {
        match page {
            ReducedPage::Lower => 0..self.pairs_per_group,
            ReducedPage::Middle => self.pairs_per_group..2 * self.pairs_per_group,
            ReducedPage::Upper => 0..2 * self.pairs_per_group,
        }
    }

    /// Programs one page. The lower and middle pages carry two LSBs per
    /// pair of their parity group; the upper page carries one MSB per
    /// pair of *both* groups (all bitlines selected, paper §4.1).
    ///
    /// # Errors
    ///
    /// [`ReducedArrayError`] on a wrong page length or ordering violation
    /// (MSB before LSBs, double program). Validation happens before any
    /// pair is mutated.
    pub fn program_page(
        &mut self,
        page: ReducedPage,
        bits: &[Bit],
    ) -> Result<(), ReducedArrayError> {
        if bits.len() != self.page_bits() {
            return Err(ReducedArrayError::WrongPageLength {
                provided: bits.len(),
                expected: self.page_bits(),
            });
        }
        let range = self.group(page);
        // Dry-run validation for atomicity.
        for idx in range.clone() {
            let mut probe = self.pairs[idx];
            match page {
                ReducedPage::Upper => probe.program_msb(Bit::ZERO)?,
                _ => probe.program_lsbs(Bit::ZERO, Bit::ZERO)?,
            };
        }
        match page {
            ReducedPage::Upper => {
                // One MSB per pair; upper page spans both groups but is
                // half as dense per pair... no: page_bits = 2·group pairs
                // = total pairs. One bit per pair.
                for (idx, &bit) in range.zip(bits) {
                    self.pairs[idx].program_msb(bit)?;
                }
            }
            _ => {
                // Two LSBs per pair.
                for (slot, idx) in range.enumerate() {
                    let lsb1 = bits[2 * slot];
                    let lsb0 = bits[2 * slot + 1];
                    self.pairs[idx].program_lsbs(lsb1, lsb0)?;
                }
            }
        }
        Ok(())
    }

    /// Reads one page back through ReduceCode.
    pub fn read_page(&self, page: ReducedPage) -> Vec<Bit> {
        let range = self.group(page);
        match page {
            ReducedPage::Upper => range
                .map(|idx| Bit::from(self.pairs[idx].read_value() & 0b100 != 0))
                .collect(),
            _ => range
                .flat_map(|idx| {
                    let v = self.pairs[idx].read_value();
                    [Bit::from(v & 0b010 != 0), Bit::from(v & 0b001 != 0)]
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &[u8]) -> Vec<Bit> {
        pattern.iter().map(|&b| Bit::from(b != 0)).collect()
    }

    #[test]
    fn page_accounting_matches_bitline_layout() {
        let wl = ReducedWordline::new(8);
        assert_eq!(wl.page_bits(), 16);
        // 3 pages of 16 bits over 32 cells = 1.5 bits/cell = 75% density.
        assert_eq!(wl.wordline_bits(), 48);
    }

    #[test]
    fn full_wordline_roundtrip() {
        let mut wl = ReducedWordline::new(4);
        let lower = bits(&[1, 0, 1, 1, 0, 0, 1, 0]);
        let middle = bits(&[0, 1, 1, 0, 1, 0, 0, 1]);
        let upper = bits(&[1, 0, 0, 1, 1, 1, 0, 0]);
        wl.program_page(ReducedPage::Lower, &lower).unwrap();
        wl.program_page(ReducedPage::Middle, &middle).unwrap();
        wl.program_page(ReducedPage::Upper, &upper).unwrap();
        assert_eq!(wl.read_page(ReducedPage::Lower), lower);
        assert_eq!(wl.read_page(ReducedPage::Middle), middle);
        assert_eq!(wl.read_page(ReducedPage::Upper), upper);
    }

    #[test]
    fn upper_needs_both_lsb_pages() {
        let mut wl = ReducedWordline::new(2);
        wl.program_page(ReducedPage::Lower, &bits(&[1, 0, 0, 1]))
            .unwrap();
        // Middle page not programmed yet: upper must fail atomically.
        let err = wl
            .program_page(ReducedPage::Upper, &bits(&[1, 1, 1, 1]))
            .unwrap_err();
        assert_eq!(
            err,
            ReducedArrayError::Program(PairProgramError::MsbBeforeLsbs)
        );
        // Lower page still intact.
        assert_eq!(wl.read_page(ReducedPage::Lower), bits(&[1, 0, 0, 1]));
    }

    #[test]
    fn double_program_rejected() {
        let mut wl = ReducedWordline::new(2);
        wl.program_page(ReducedPage::Lower, &bits(&[1, 0, 0, 1]))
            .unwrap();
        assert!(matches!(
            wl.program_page(ReducedPage::Lower, &bits(&[0, 0, 0, 0])),
            Err(ReducedArrayError::Program(
                PairProgramError::LsbsAlreadyProgrammed
            ))
        ));
    }

    #[test]
    fn wrong_length_rejected() {
        let mut wl = ReducedWordline::new(2);
        assert_eq!(
            wl.program_page(ReducedPage::Lower, &bits(&[1, 0])),
            Err(ReducedArrayError::WrongPageLength {
                provided: 2,
                expected: 4
            })
        );
    }

    #[test]
    fn erased_reads_zero_symbols() {
        // Erased pairs are at (0,0) = value 000 ⇒ all pages read 0.
        let wl = ReducedWordline::new(2);
        assert!(wl.read_page(ReducedPage::Lower).iter().all(|b| !b.is_one()));
        assert!(wl.read_page(ReducedPage::Upper).iter().all(|b| !b.is_one()));
    }

    #[test]
    fn erase_allows_reprogramming() {
        let mut wl = ReducedWordline::new(2);
        wl.program_page(ReducedPage::Lower, &bits(&[1, 1, 0, 0]))
            .unwrap();
        wl.program_page(ReducedPage::Middle, &bits(&[0, 0, 1, 1]))
            .unwrap();
        wl.program_page(ReducedPage::Upper, &bits(&[1, 0, 1, 0]))
            .unwrap();
        wl.erase();
        wl.program_page(ReducedPage::Lower, &bits(&[0, 1, 0, 1]))
            .unwrap();
        assert_eq!(wl.read_page(ReducedPage::Lower), bits(&[0, 1, 0, 1]));
    }

    #[test]
    fn exhaustive_symbol_roundtrip_through_pages() {
        // Every 3-bit value through the page interface: pair i of the
        // even group gets LSBs from the lower page and its MSB from the
        // upper page.
        for value in 0..8u16 {
            let mut wl = ReducedWordline::new(1);
            let lower = bits(&[(value >> 1) as u8 & 1, value as u8 & 1]);
            let middle = bits(&[0, 0]);
            let upper = bits(&[(value >> 2) as u8 & 1, 0]);
            wl.program_page(ReducedPage::Lower, &lower).unwrap();
            wl.program_page(ReducedPage::Middle, &middle).unwrap();
            wl.program_page(ReducedPage::Upper, &upper).unwrap();
            assert_eq!(wl.read_page(ReducedPage::Lower), lower, "value {value:03b}");
            assert_eq!(wl.read_page(ReducedPage::Upper), upper, "value {value:03b}");
        }
    }
}
