//! ReduceCode: 3 bits in two 3-level cells (paper §4.1, Table 1).
//!
//! A reduced-state cell has three `Vth` levels, so a *pair* of cells spans
//! nine level combinations — enough for 3 bits using eight of them. Like
//! Gray code, the mapping is chosen so a single-level distortion in either
//! cell usually flips exactly one data bit.
//!
//! Table 1 of the paper:
//!
//! | value | VthI | VthII |   | value | VthI | VthII |
//! |-------|------|-------|---|-------|------|-------|
//! | 000   | 0    | 0     |   | 100   | 2    | 2     |
//! | 001   | 0    | 1     |   | 101   | 0    | 2     |
//! | 010   | 1    | 0     |   | 110   | 2    | 0     |
//! | 011   | 1    | 1     |   | 111   | 2    | 1     |
//!
//! The ninth combination `(1, 2)` never appears in programmed data; on
//! read it is decoded as `101` (= `(0, 2)`), the choice that minimises the
//! total bit errors over all one-level distortions that can land there.

use flash_model::VthLevel;
use reliability::SymbolCodec;
use serde::{Deserialize, Serialize};

/// Bit layout of a ReduceCode symbol: bit 2 is the MSB (upper page), bits
/// 1 and 0 are the two LSBs (lower/middle page) controlling cell I and
/// cell II respectively in the first program step.
pub const REDUCE_CODE_BITS: u32 = 3;

/// Table 1: `TABLE[value] = (VthI, VthII)`.
const ENCODE_TABLE: [(u8, u8); 8] = [
    (0, 0), // 000
    (0, 1), // 001
    (1, 0), // 010
    (1, 1), // 011
    (2, 2), // 100
    (0, 2), // 101
    (2, 0), // 110
    (2, 1), // 111
];

/// The ReduceCode codec for reduced-state cell pairs.
///
/// Implements [`SymbolCodec`] so the Monte-Carlo BER engine of the
/// `reliability` crate can measure reduced-state bit error rates directly.
///
/// ```
/// use flexlevel::ReduceCode;
/// use reliability::SymbolCodec;
/// use flash_model::VthLevel;
///
/// let codec = ReduceCode;
/// let mut cells = [VthLevel::ERASED; 2];
/// codec.encode(0b101, &mut cells);
/// assert_eq!(cells, [VthLevel::ERASED, VthLevel::L2]);
/// assert_eq!(codec.decode(&cells), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReduceCode;

impl ReduceCode {
    /// Decodes a level pair, mapping the unused `(1, 2)` combination to
    /// `101` (see module docs).
    pub fn decode_levels(first: VthLevel, second: VthLevel) -> u16 {
        let pair = (first.index(), second.index());
        for (value, &t) in ENCODE_TABLE.iter().enumerate() {
            if t == pair {
                return value as u16;
            }
        }
        debug_assert_eq!(pair, (1, 2), "only (1,2) is outside Table 1");
        0b101
    }

    /// Encodes a 3-bit value into its level pair.
    ///
    /// # Panics
    ///
    /// Panics if `value >= 8`.
    pub fn encode_value(value: u16) -> (VthLevel, VthLevel) {
        assert!(value < 8, "ReduceCode symbol out of range: {value}");
        let (a, b) = ENCODE_TABLE[value as usize];
        (VthLevel::new(a), VthLevel::new(b))
    }
}

impl SymbolCodec for ReduceCode {
    fn bits_per_symbol(&self) -> u32 {
        REDUCE_CODE_BITS
    }

    fn cells_per_symbol(&self) -> usize {
        2
    }

    fn encode(&self, value: u16, out: &mut [VthLevel]) {
        let (a, b) = ReduceCode::encode_value(value);
        out[0] = a;
        out[1] = b;
    }

    fn decode(&self, levels: &[VthLevel]) -> u16 {
        ReduceCode::decode_levels(levels[0], levels[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mapping() {
        // Every row of the paper's Table 1.
        let rows = [
            (0b000, 0, 0),
            (0b001, 0, 1),
            (0b010, 1, 0),
            (0b011, 1, 1),
            (0b100, 2, 2),
            (0b101, 0, 2),
            (0b110, 2, 0),
            (0b111, 2, 1),
        ];
        for (value, a, b) in rows {
            let (l1, l2) = ReduceCode::encode_value(value);
            assert_eq!((l1.index(), l2.index()), (a, b), "value {value:03b}");
            assert_eq!(ReduceCode::decode_levels(l1, l2), value);
        }
    }

    #[test]
    fn roundtrip_via_trait() {
        let codec = ReduceCode;
        let mut cells = [VthLevel::ERASED; 2];
        for v in 0..codec.symbol_count() {
            codec.encode(v, &mut cells);
            assert_eq!(codec.decode(&cells), v);
        }
        assert_eq!(codec.symbol_count(), 8);
        assert_eq!(codec.bits_per_symbol(), 3);
        assert_eq!(codec.cells_per_symbol(), 2);
    }

    #[test]
    fn unused_combination_decodes_to_101() {
        assert_eq!(ReduceCode::decode_levels(VthLevel::L1, VthLevel::L2), 0b101);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_wide_symbols() {
        let _ = ReduceCode::encode_value(8);
    }

    #[test]
    fn paper_example_one_level_distortion() {
        // Paper §4.1: value 101 = (0, 2); if the 2nd cell slips 2 → 1 the
        // word reads as (0, 1) = 001 — exactly one bit error.
        let read = ReduceCode::decode_levels(VthLevel::ERASED, VthLevel::L1);
        assert_eq!(read, 0b001);
        assert_eq!((0b101u16 ^ read).count_ones(), 1);
    }

    #[test]
    fn one_level_distortions_cause_mostly_one_bit_error() {
        // Enumerate every programmed symbol and every single-cell ±1 level
        // distortion; measure the bit-error distribution. Table 1 achieves
        // exactly one bit error on 18 of 20 valid-to-valid transitions (the
        // (2,2) ↔ (2,1) pair costs 2), and the (1,2) repair choice keeps
        // the remaining three transitions at 0/1/2 bits.
        let mut histogram = [0u32; 4];
        let mut transitions = 0;
        for value in 0..8u16 {
            let (a, b) = ReduceCode::encode_value(value);
            let mut distorted = Vec::new();
            for delta in [-1i8, 1] {
                let na = a.index() as i8 + delta;
                if (0..=2).contains(&na) {
                    distorted.push((VthLevel::new(na as u8), b));
                }
                let nb = b.index() as i8 + delta;
                if (0..=2).contains(&nb) {
                    distorted.push((a, VthLevel::new(nb as u8)));
                }
            }
            for (da, db) in distorted {
                let read = ReduceCode::decode_levels(da, db);
                let errs = (value ^ read).count_ones() as usize;
                histogram[errs.min(3)] += 1;
                transitions += 1;
            }
        }
        // 8 symbols × (up to 4) single-level moves = 21 transitions
        // (corner levels have fewer moves).
        assert_eq!(transitions, 21);
        let one_bit = histogram[1];
        let multi_bit = histogram[2] + histogram[3];
        assert!(
            one_bit >= 17,
            "at least 17/21 transitions must cost one bit, got {histogram:?}"
        );
        assert!(
            multi_bit <= 3,
            "multi-bit transitions must be rare: {histogram:?}"
        );
        assert_eq!(histogram[3], 0, "no distortion may cost 3 bits");
        // Average cost stays close to 1 bit per level slip — the property
        // the paper claims for ReduceCode.
        let total_bits: u32 = histogram
            .iter()
            .enumerate()
            .map(|(bits, &n)| bits as u32 * n)
            .sum();
        assert!(
            (total_bits as f64 / transitions as f64) < 1.2,
            "average bit cost too high: {histogram:?}"
        );
    }

    #[test]
    fn density_is_three_bits_per_two_cells() {
        let codec = ReduceCode;
        let bits_per_cell = codec.bits_per_symbol() as f64 / codec.cells_per_symbol() as f64;
        assert_eq!(bits_per_cell, 1.5);
        // 25% less than a normal MLC pair (4 bits / 2 cells).
        assert_eq!(bits_per_cell / 2.0, 0.75);
    }
}
