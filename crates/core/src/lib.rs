//! FlexLevel: selective threshold-voltage level reduction for LDPC latency
//! reduction in NAND flash.
//!
//! This crate is the primary contribution of the reproduction of Guo et
//! al., *FlexLevel: a Novel NAND Flash Storage System Design for LDPC
//! Latency Reduction* (DAC 2015). Soft-decision LDPC makes NAND reads up
//! to 7× slower when the raw bit error rate is high; FlexLevel removes the
//! need for soft sensing on exactly the data that would pay that cost:
//!
//! * [`nunma`] — the reduced-state (3-level) voltage schedules of Table 3.
//!   Dropping one `Vth` level widens every noise margin; NUNMA biases the
//!   margins toward retention loss, the dominant error source at high P/E.
//! * [`reduce_code`] — [`ReduceCode`]: 3 bits per 2-cell pair (Table 1),
//!   keeping 75 % of normal density with Gray-like single-bit error
//!   behaviour under level distortions.
//! * [`level_adjust`] — the two-step reduced-state program algorithm
//!   (Table 2) and the erase-gated mode switch between normal and reduced
//!   operation.
//! * [`accesseval`] — the FTL policy (§5): score LDPC overhead as
//!   `L_f × L_sensing`, keep only high-overhead data in the bounded,
//!   LRU-managed ReducedCell pool.
//! * [`capacity`] — the capacity accounting behind the paper's headline
//!   "6 % capacity loss".
//!
//! # Example
//!
//! ```
//! use flexlevel::{FlexLevelConfig, NunmaScheme, ReduceCode};
//! use reliability::SymbolCodec;
//!
//! let config = FlexLevelConfig::paper();
//! assert_eq!(config.nunma, NunmaScheme::Nunma3);
//! // Reduced pages keep 75% density…
//! assert_eq!(ReduceCode.bits_per_symbol(), 3);
//! // …and the bounded pool keeps device-level loss near 6%.
//! assert!(config.capacity().loss_fraction() < 0.07);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accesseval;
pub mod capacity;
pub mod level_adjust;
pub mod nunma;
pub mod nunma_search;
pub mod reduce_code;
pub mod reduced_array;

pub use accesseval::{
    AccessEvalConfig, AccessEvalController, AccessEvalSnapshot, AccessEvalStats, HloIdentifier,
    Migration, Placement, ReducedCellPool, POOL_ENTRY_BYTES,
};
pub use capacity::{CapacityModel, REDUCED_MODE_LOSS};
pub use level_adjust::{
    ModeLockedError, ModeSwitch, PairProgramError, PairProgramState, ReducedCellPair,
};
pub use nunma::{NunmaConfig, NunmaScheme};
pub use nunma_search::{NunmaCandidate, SearchOptions};
pub use reduce_code::{ReduceCode, REDUCE_CODE_BITS};
pub use reduced_array::{ReducedArrayError, ReducedWordline};

use serde::{Deserialize, Serialize};

/// Top-level FlexLevel deployment configuration (paper §6.2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexLevelConfig {
    /// Reduced-state voltage scheme (the paper deploys NUNMA 3).
    pub nunma: NunmaScheme,
    /// AccessEval policy parameters.
    pub access_eval: AccessEvalConfig,
    /// Raw device bytes.
    pub device_bytes: u64,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl FlexLevelConfig {
    /// The paper's evaluation configuration: 256 GB device, 16 KB pages,
    /// 64 GB ReducedCell pool, NUNMA 3, `L_f = L_sensing = 2`.
    pub fn paper() -> FlexLevelConfig {
        FlexLevelConfig {
            nunma: NunmaScheme::Nunma3,
            access_eval: AccessEvalConfig::paper(16 * 1024),
            device_bytes: 256 * (1 << 30),
            page_bytes: 16 * 1024,
        }
    }

    /// The capacity model implied by this configuration.
    pub fn capacity(&self) -> CapacityModel {
        CapacityModel::new(
            self.device_bytes,
            self.access_eval.pool_pages * self.page_bytes,
        )
    }
}

impl Default for FlexLevelConfig {
    fn default() -> FlexLevelConfig {
        FlexLevelConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_consistency() {
        let cfg = FlexLevelConfig::paper();
        assert_eq!(cfg.nunma, NunmaScheme::Nunma3);
        let cap = cfg.capacity();
        assert_eq!(cap.pool_bytes, 64 * (1 << 30));
        assert!((cap.loss_fraction() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(FlexLevelConfig::default(), FlexLevelConfig::paper());
    }
}
