//! Table 4 calibration: fit the two free model parameters — the baseline
//! MLC verify offset and the post-verify disturb spread — against the
//! paper's published retention BER grid.
//!
//! Everything else is pinned by the paper: the NUNMA voltages (Table 3),
//! the retention constants (Eq. 3), the erased distribution (N(1.1, 0.35))
//! and the ISPP pulse (0.15 V). Only the baseline's verify margins (the
//! paper never states them) and the per-cell disturb spread remain free.
//!
//! Run: `cargo run --release -p flexlevel --example calibrate_table4`

use flash_model::{Hours, LevelConfig, Volts};
use flexlevel::NunmaConfig;
use reliability::{analytic, ProgramModel, RetentionModel};

/// Paper Table 4: (pe, hours, baseline, nunma1, nunma2, nunma3).
const TABLE4: &[(u32, f64, f64, f64, f64, f64)] = &[
    (2000, 24.0, 0.000638, 0.000370, 0.000167, 0.000120),
    (2000, 48.0, 0.000715, 0.000453, 0.000173, 0.000133),
    (2000, 168.0, 0.00103, 0.000827, 0.000243, 0.000167),
    (2000, 720.0, 0.00184, 0.00149, 0.000330, 0.000181),
    (3000, 24.0, 0.00146, 0.000677, 0.000343, 0.000237),
    (3000, 48.0, 0.00169, 0.000860, 0.000367, 0.000257),
    (3000, 168.0, 0.00260, 0.00143, 0.000570, 0.000293),
    (3000, 720.0, 0.00459, 0.00249, 0.000807, 0.000390),
    (4000, 24.0, 0.00229, 0.00117, 0.000443, 0.000327),
    (4000, 48.0, 0.00284, 0.00149, 0.000633, 0.000343),
    (4000, 168.0, 0.00456, 0.00240, 0.000820, 0.000457),
    (4000, 720.0, 0.00778, 0.00402, 0.00150, 0.000633),
    (5000, 24.0, 0.00359, 0.00177, 0.000690, 0.000460),
    (5000, 48.0, 0.00457, 0.00233, 0.000853, 0.000540),
    (5000, 168.0, 0.00699, 0.00349, 0.00123, 0.000713),
    (5000, 720.0, 0.0120, 0.00545, 0.00227, 0.00109),
    (6000, 24.0, 0.00484, 0.00218, 0.00100, 0.000623),
    (6000, 48.0, 0.00613, 0.00288, 0.00131, 0.000627),
    (6000, 168.0, 0.00961, 0.00446, 0.00192, 0.000973),
    (6000, 720.0, 0.0161, 0.00672, 0.00324, 0.00151),
];

fn baseline_with_offset(m0: f64) -> LevelConfig {
    LevelConfig::new(
        vec![Volts(2.40), Volts(3.00), Volts(3.60)],
        vec![Volts(2.40 + m0), Volts(3.00 + m0), Volts(3.60 + m0)],
        Volts(1.1),
        Volts(0.15),
    )
    .expect("candidate baseline config is valid")
}

/// Column weights: the baseline column anchors Table 5 and Figure 6, so it
/// dominates the fit; the NUNMA columns contribute at lower weight.
const COLUMN_WEIGHTS: [f64; 4] = [4.0, 1.5, 1.0, 0.5];

/// Sum of squared log10 errors of a candidate (offset, sigma) against the
/// paper grid, returning (loss, per-column losses). Candidates that break
/// the paper's strict ordering (baseline > NUNMA1 > NUNMA2 > NUNMA3 at
/// every grid point) are rejected with infinite loss.
fn loss(m0: f64, sigma: f64) -> (f64, [f64; 4]) {
    let program = ProgramModel {
        placement_sigma: Volts(sigma),
    };
    let retention = RetentionModel::paper();
    let baseline = baseline_with_offset(m0);
    let nunma: Vec<LevelConfig> = [
        NunmaConfig::nunma1(),
        NunmaConfig::nunma2(),
        NunmaConfig::nunma3(),
    ]
    .iter()
    .map(|c| c.level_config())
    .collect();

    let mut total = 0.0;
    let mut per_col = [0.0f64; 4];
    for &(pe, hours, b, n1, n2, n3) in TABLE4 {
        let stress = Some((&retention, pe, Hours(hours)));
        let configs = [
            (&baseline, b, 2.0),
            (&nunma[0], n1, 1.5),
            (&nunma[1], n2, 1.5),
            (&nunma[2], n3, 1.5),
        ];
        let mut row = [0.0f64; 4];
        for (col, (cfg, paper, bits)) in configs.into_iter().enumerate() {
            let got = analytic::estimate(cfg, &program, None, stress, bits).ber;
            row[col] = got;
            let err = ((got.max(1e-9)).log10() - paper.log10()).powi(2);
            per_col[col] += COLUMN_WEIGHTS[col] * err;
            total += COLUMN_WEIGHTS[col] * err;
        }
        // The paper's ordering must hold everywhere.
        if !(row[0] > row[1] && row[1] > row[2] && row[2] > row[3]) {
            return (f64::INFINITY, per_col);
        }
    }
    (total, per_col)
}

fn main() {
    let mut best = (f64::INFINITY, 0.0, 0.0);
    for m0_mv in (5..=55).step_by(5) {
        for sigma_mv in (10..=80).step_by(5) {
            let m0 = m0_mv as f64 / 1000.0;
            let sigma = sigma_mv as f64 / 1000.0;
            let (l, _) = loss(m0, sigma);
            if l < best.0 {
                best = (l, m0, sigma);
            }
        }
    }
    // Refine around the winner.
    let (mut bl, mut bm, mut bs) = best;
    for dm in -4..=4 {
        for ds in -4..=4 {
            let m0 = best.1 + dm as f64 / 1000.0;
            let sigma = best.2 + ds as f64 / 1000.0;
            if m0 <= 0.0 || sigma <= 0.0 {
                continue;
            }
            let (l, _) = loss(m0, sigma);
            if l < bl {
                bl = l;
                bm = m0;
                bs = sigma;
            }
        }
    }
    let (_, per_col) = loss(bm, bs);
    println!("best: m0 = {bm:.3} V, sigma = {bs:.3} V, loss = {bl:.2}");
    println!(
        "per-column loss (log10² sum over 20 points): baseline {:.2}, NUNMA1 {:.2}, NUNMA2 {:.2}, NUNMA3 {:.2}",
        per_col[0], per_col[1], per_col[2], per_col[3]
    );

    // Print the fitted grid next to the paper's.
    let program = ProgramModel {
        placement_sigma: Volts(bs),
    };
    let retention = RetentionModel::paper();
    let baseline = baseline_with_offset(bm);
    let nunma: Vec<LevelConfig> = [
        NunmaConfig::nunma1(),
        NunmaConfig::nunma2(),
        NunmaConfig::nunma3(),
    ]
    .iter()
    .map(|c| c.level_config())
    .collect();
    println!("\npe    hours  | baseline (paper)      | NUNMA1 (paper)        | NUNMA2 (paper)        | NUNMA3 (paper)");
    for &(pe, hours, b, n1, n2, n3) in TABLE4 {
        let stress = Some((&retention, pe, Hours(hours)));
        let vb = analytic::estimate(&baseline, &program, None, stress, 2.0).ber;
        let v1 = analytic::estimate(&nunma[0], &program, None, stress, 1.5).ber;
        let v2 = analytic::estimate(&nunma[1], &program, None, stress, 1.5).ber;
        let v3 = analytic::estimate(&nunma[2], &program, None, stress, 1.5).ber;
        println!(
            "{pe:5} {hours:6.0} | {vb:9.3e} ({b:9.3e}) | {v1:9.3e} ({n1:9.3e}) | {v2:9.3e} ({n2:9.3e}) | {v3:9.3e} ({n3:9.3e})"
        );
    }
}
