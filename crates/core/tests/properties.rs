//! Property-based tests of the FlexLevel mechanisms.

use flash_model::{Bit, VthLevel};
use flexlevel::{
    AccessEvalConfig, AccessEvalController, HloIdentifier, Placement, ReduceCode, ReducedCellPair,
    ReducedCellPool,
};
use proptest::prelude::*;
use reliability::SymbolCodec;

fn config(pool: u64) -> AccessEvalConfig {
    AccessEvalConfig {
        freq_levels: 2,
        sensing_buckets: 2,
        overhead_threshold: 2,
        pool_pages: pool,
        hot_read_threshold: 4,
        aging_period: 1 << 20,
    }
}

proptest! {
    /// The Table 2 program algorithm always lands on the Table 1 level
    /// combination, for every 3-bit value, and the readback matches.
    #[test]
    fn program_algorithm_matches_reduce_code(value in 0u16..8) {
        let mut pair = ReducedCellPair::new();
        pair.program_lsbs(
            Bit::from(value & 0b010 != 0),
            Bit::from(value & 0b001 != 0),
        ).unwrap();
        pair.program_msb(Bit::from(value & 0b100 != 0)).unwrap();
        prop_assert_eq!(pair.levels(), Some(ReduceCode::encode_value(value)));
        prop_assert_eq!(pair.read_value(), value);
    }

    /// ReduceCode decode is total over the 9 level combinations and maps
    /// every combination to a valid 3-bit value.
    #[test]
    fn reduce_code_decode_total(a in 0u8..3, b in 0u8..3) {
        let v = ReduceCode::decode_levels(VthLevel::new(a), VthLevel::new(b));
        prop_assert!(v < 8);
        // All valid combinations round-trip.
        let (ea, eb) = ReduceCode::encode_value(v);
        if (ea.index(), eb.index()) == (a, b) {
            prop_assert_eq!(ReduceCode.decode(&[ea, eb]), v);
        }
    }

    /// Every one of the 8 used level-pair combinations round-trips its
    /// 3 bits exactly, through both the raw table API and the trait.
    #[test]
    fn reduce_code_roundtrips_all_values(value in 0u16..8) {
        let (a, b) = ReduceCode::encode_value(value);
        prop_assert!(a.index() < 3 && b.index() < 3);
        prop_assert!((a.index(), b.index()) != (1, 2), "unused combination");
        prop_assert_eq!(ReduceCode::decode_levels(a, b), value);
        let codec = ReduceCode;
        let mut cells = [VthLevel::ERASED; 2];
        codec.encode(value, &mut cells);
        prop_assert_eq!(cells, [a, b]);
        prop_assert_eq!(codec.decode(&cells), value);
    }

    /// Table 1's Gray-like property: a ±1-level distortion in either cell
    /// flips exactly one decoded bit — except for the three transitions
    /// the 8-of-9 mapping cannot protect. Those are pinned exactly:
    /// landing on the unused (1,2) pair decodes as 101, so 101=(0,2)→(1,2)
    /// is free and 011=(1,1)→(1,2) costs two bits; and 100=(2,2) ↔
    /// 111=(2,1) cost two bits in both directions.
    #[test]
    fn reduce_code_distortion_flips_one_bit(
        value in 0u16..8,
        second_cell in prop::bool::ANY,
        up in prop::bool::ANY,
    ) {
        let (a, b) = ReduceCode::encode_value(value);
        let delta = if up { 1i8 } else { -1 };
        let (da, db) = if second_cell {
            (a.index() as i8, b.index() as i8 + delta)
        } else {
            (a.index() as i8 + delta, b.index() as i8)
        };
        prop_assume!((0..=2).contains(&da) && (0..=2).contains(&db));
        let read = ReduceCode::decode_levels(VthLevel::new(da as u8), VthLevel::new(db as u8));
        let flipped = (value ^ read).count_ones();
        let expected = match (value, (da, db)) {
            (0b101, (1, 2)) => 0,          // repaired: (1,2) decodes as 101
            (0b011, (1, 2)) => 2,          // collides with the repair choice
            (0b100, (2, 1)) | (0b111, (2, 2)) => 2, // (2,2) ↔ (2,1)
            _ => 1,
        };
        prop_assert_eq!(
            flipped, expected,
            "{:03b} at ({},{}) read back as {:03b} after slip to ({},{})",
            value, a.index(), b.index(), read, da, db
        );
    }

    /// HLO scoring: the overhead product is monotone in both factors and
    /// the HLO verdict is monotone in the sensing cost.
    #[test]
    fn hlo_monotone_in_sensing(reads in 0u32..20, e1 in 0u32..7, e2 in 0u32..7) {
        let mut id = HloIdentifier::new(config(8));
        for _ in 0..reads {
            id.record_read(1);
        }
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let f = id.freq_level(1);
        let s_lo = id.sensing_bucket(lo, 6);
        let s_hi = id.sensing_bucket(hi, 6);
        prop_assert!(s_lo <= s_hi);
        prop_assert!(id.overhead(f, s_lo) <= id.overhead(f, s_hi));
    }

    /// The controller's placement is consistent with its pool: an LPN is
    /// Reduced iff the pool contains it, under any read sequence.
    #[test]
    fn controller_placement_consistent(
        reads in prop::collection::vec((0u64..32, 0u32..7), 1..200),
    ) {
        let mut ctrl = AccessEvalController::new(config(4));
        for (lpn, levels) in reads {
            let _ = ctrl.on_read(lpn, levels, 6);
            prop_assert!(ctrl.pool().len() <= 4);
        }
        for lpn in 0..32u64 {
            let pooled = ctrl.pool().contains(lpn);
            let placement = ctrl.placement(lpn);
            prop_assert_eq!(pooled, placement == Placement::Reduced);
        }
        let stats = ctrl.stats();
        prop_assert!(stats.demotions <= stats.promotions);
    }

    /// Pool LRU: after touching a resident page, it survives exactly
    /// `capacity - 1` further distinct insertions.
    #[test]
    fn pool_touch_extends_residency(cap in 2u64..10) {
        let mut pool = ReducedCellPool::new(cap);
        for lpn in 0..cap {
            pool.insert(lpn);
        }
        pool.touch(0);
        // Insert cap-1 new pages: 0 must survive all of them…
        for lpn in 100..100 + cap - 1 {
            pool.insert(lpn);
            prop_assert!(pool.contains(0));
        }
        // …and be evicted by the next one.
        pool.insert(999);
        prop_assert!(!pool.contains(0));
    }
}
