//! Contract tests of the deterministic Monte-Carlo engine, exercised
//! through the real BER workload rather than toy closures:
//!
//! 1. **Determinism** — the measurement is bit-identical for any worker
//!    count (1, 2, 8), across several seeds.
//! 2. **Statistics** — a Bernoulli stream with known p lands inside its
//!    binomial confidence interval, so sharding does not bias sampling.
//! 3. **Throughput** — the parallel path actually speeds the sweep up on
//!    multi-core hosts (assertion gated on available parallelism, since
//!    CI runners may expose a single core).

use std::time::Instant;

use flash_model::{Hours, LevelConfig};
use rand::Rng;
use reliability::mc::{self, McOptions};
use reliability::{
    run_sharded, BerSimulation, GrayMlcCodec, ProgramModel, RetentionModel, RetentionStress,
    StressConfig,
};

// The simulation borrows its config and codec, so a helper function
// cannot return one; a macro binds all three locals in the caller.
macro_rules! make_sim {
    ($cfg:ident, $codec:ident, $sim:ident) => {
        let $cfg = LevelConfig::normal_mlc();
        let $codec = GrayMlcCodec;
        let $sim = BerSimulation::new(
            &$cfg,
            &$codec,
            ProgramModel::default(),
            StressConfig::retention_only(
                RetentionModel::paper(),
                RetentionStress::new(6000, Hours::months(1.0)),
            ),
        );
    };
}

#[test]
fn ber_measurement_identical_for_any_thread_count() {
    make_sim!(cfg, codec, sim);
    for seed in [11u64, 42, 20_26] {
        let serial = run_sharded(&sim, 150_000, 1, seed);
        assert_ne!(serial.bit_errors, 0, "stress must produce errors");
        for threads in [2u32, 8] {
            let parallel = run_sharded(&sim, 150_000, threads, seed);
            assert_eq!(serial, parallel, "seed {seed}, {threads} threads");
        }
    }
}

#[test]
fn different_seeds_give_independent_measurements() {
    make_sim!(cfg, codec, sim);
    let a = run_sharded(&sim, 150_000, 8, 1);
    let b = run_sharded(&sim, 150_000, 8, 2);
    assert_ne!(a, b);
    // Independent streams of the same process still estimate the same
    // rate: the two BERs agree within a loose factor.
    assert!(a.ber() > 0.0 && b.ber() > 0.0);
    assert!(a.ber() / b.ber() < 3.0 && b.ber() / a.ber() < 3.0);
}

#[test]
fn bernoulli_stream_matches_known_probability() {
    // 2M Bernoulli(0.05) trials sharded over the pool. The binomial
    // standard deviation is sqrt(n·p·(1-p)) ≈ 308; accept ±6σ so the
    // test fails only on real bias, with probability ~1e-9 by chance.
    const N: u64 = 2_000_000;
    const P: f64 = 0.05;
    let options = McOptions::default().with_threads(4);
    let successes: u64 = mc::run_trials(N, 9, &options, |_, trials, rng| {
        (0..trials).filter(|_| rng.gen_bool(P)).count() as u64
    })
    .into_iter()
    .sum();
    let mean = N as f64 * P;
    let sigma = (N as f64 * P * (1.0 - P)).sqrt();
    let deviation = (successes as f64 - mean).abs();
    assert!(
        deviation < 6.0 * sigma,
        "successes {successes} deviates {deviation:.0} (> 6σ = {:.0}) from {mean:.0}",
        6.0 * sigma
    );
}

#[test]
fn uniform_sampling_is_unbiased_across_shards() {
    // Mean of U(0,1000) per shard must hover around 500 in every shard —
    // catches a broken per-shard seed (e.g. all-zero states).
    let options = McOptions {
        threads: 4,
        min_shard_trials: 50_000,
        max_shards: 8,
    };
    let means = mc::run_trials(400_000, 7, &options, |_, trials, rng| {
        (0..trials).map(|_| rng.gen_range(0.0..1000.0)).sum::<f64>() / trials as f64
    });
    assert_eq!(means.len(), 8);
    for (shard, mean) in means.iter().enumerate() {
        assert!(
            (480.0..520.0).contains(mean),
            "shard {shard} mean {mean} off-center"
        );
    }
}

#[test]
fn throughput_smoke() {
    // The engine must not make the serial path slower than a plain loop
    // by more than bookkeeping noise, and on multi-core hosts the pool
    // must deliver real speedup. 400k symbols ≈ 1 s serial in debug.
    make_sim!(cfg, codec, sim);
    const SYMBOLS: u64 = 400_000;

    let t0 = Instant::now();
    let serial = run_sharded(&sim, SYMBOLS, 1, 3);
    let serial_time = t0.elapsed();

    let t1 = Instant::now();
    let parallel = run_sharded(&sim, SYMBOLS, 0, 3);
    let parallel_time = t1.elapsed();

    assert_eq!(serial, parallel);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("mc throughput: serial {serial_time:?}, parallel {parallel_time:?} on {cores} cores");
    if cores >= 4 {
        // Generous bound (2x on 4+ cores would be ~1.33x of serial/1.5):
        // the point is to catch a pool that serialises on a lock, not to
        // benchmark precisely inside a noisy test.
        assert!(
            parallel_time.as_secs_f64() < serial_time.as_secs_f64() / 1.5,
            "no speedup: serial {serial_time:?} vs parallel {parallel_time:?}"
        );
    }
}
