//! Read-reference calibration (read retry).
//!
//! Retention loss drags every programmed distribution downward together,
//! so a controller that re-reads with *shifted* reference voltages
//! recovers most of the margin — this is the "read retry" mechanism of
//! real NAND (Cai et al., DATE'13 observe that verify and read references
//! are adjustable in the field). The FlexLevel paper's evaluation keys
//! its sensing schedule on retention BER *after* such calibration; this
//! module makes that assumption concrete and testable:
//!
//! * [`optimal_shift`] — the uniform downward reference shift minimising
//!   the analytic BER at a stress point (golden-section search);
//! * [`RetryTable`] — a discrete read-retry table (a few fixed shift
//!   levels, like real parts), with the best entry per stress point;
//! * [`calibrated_ber`] — the BER after applying the best retry level,
//!   the quantity a schedule-driven controller actually experiences.

use flash_model::{Hours, LevelConfig, Volts};
use serde::{Deserialize, Serialize};

use crate::analytic;
use crate::program::ProgramModel;
use crate::retention::RetentionModel;

/// Shifts every read reference of `config` down by `shift` (verify
/// voltages are program-time parameters and stay put; a shifted-reference
/// read can classify cells the original references would misread).
///
/// Returns `None` if the shift would invert the reference order or push a
/// reference below the erased mean (no sensible read possible).
pub fn shifted_config(config: &LevelConfig, shift: Volts) -> Option<LevelConfig> {
    let refs: Vec<Volts> = config.read_refs().iter().map(|&r| r - shift).collect();
    if refs.first()?.as_f64() <= config.erased_mean().as_f64() {
        return None;
    }
    // Verify voltages must remain >= their read references for the
    // constructor; they describe program-time placement which happened at
    // the unshifted references, so this always holds for downward shifts.
    let verify: Vec<Volts> = config
        .levels()
        .filter_map(|l| config.verify_voltage(l))
        .collect();
    LevelConfig::new(refs, verify, config.erased_mean(), config.program_pulse())
        .ok()
        .map(|c| c.with_erased_sigma(config.erased_sigma()))
}

/// Analytic retention BER of `config` read with references shifted down
/// by `shift`.
pub fn ber_at_shift(
    config: &LevelConfig,
    program: &ProgramModel,
    retention: &RetentionModel,
    pe_cycles: u32,
    age: Hours,
    shift: Volts,
    bits_per_cell: f64,
) -> f64 {
    match shifted_config(config, shift) {
        Some(shifted) => {
            analytic::estimate(
                &shifted,
                program,
                None,
                Some((retention, pe_cycles, age)),
                bits_per_cell,
            )
            .ber
        }
        None => 1.0, // unreadable configuration
    }
}

/// Finds the uniform reference shift in `[0, max_shift]` minimising the
/// retention BER (golden-section search; the objective is unimodal in
/// practice: too little shift leaves retention errors, too much causes
/// upward misreads against the erased distribution).
pub fn optimal_shift(
    config: &LevelConfig,
    program: &ProgramModel,
    retention: &RetentionModel,
    pe_cycles: u32,
    age: Hours,
    max_shift: Volts,
) -> (Volts, f64) {
    let f = |s: f64| ber_at_shift(config, program, retention, pe_cycles, age, Volts(s), 2.0);
    let (mut lo, mut hi) = (0.0f64, max_shift.as_f64().max(0.0));
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut m1 = hi - PHI * (hi - lo);
    let mut m2 = lo + PHI * (hi - lo);
    let (mut f1, mut f2) = (f(m1), f(m2));
    for _ in 0..40 {
        if f1 <= f2 {
            hi = m2;
            m2 = m1;
            f2 = f1;
            m1 = hi - PHI * (hi - lo);
            f1 = f(m1);
        } else {
            lo = m1;
            m1 = m2;
            f1 = f2;
            m2 = lo + PHI * (hi - lo);
            f2 = f(m2);
        }
    }
    let best = (lo + hi) / 2.0;
    (Volts(best), f(best))
}

/// A discrete read-retry table: the fixed reference shifts a controller
/// can select among (real parts expose a handful of retry levels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryTable {
    shifts: Vec<Volts>,
}

impl RetryTable {
    /// A typical 8-entry table: 0 to 70 mV downward in 10 mV steps.
    pub fn typical() -> RetryTable {
        RetryTable {
            shifts: (0..8).map(|i| Volts(i as f64 * 0.01)).collect(),
        }
    }

    /// Builds a table from explicit shifts.
    ///
    /// # Panics
    ///
    /// Panics if `shifts` is empty.
    pub fn new(shifts: Vec<Volts>) -> RetryTable {
        assert!(!shifts.is_empty(), "retry table needs at least one entry");
        RetryTable { shifts }
    }

    /// The table entries.
    pub fn shifts(&self) -> &[Volts] {
        &self.shifts
    }

    /// The best entry (index, shift, BER) at a stress point.
    pub fn best_entry(
        &self,
        config: &LevelConfig,
        program: &ProgramModel,
        retention: &RetentionModel,
        pe_cycles: u32,
        age: Hours,
    ) -> (usize, Volts, f64) {
        let mut best = (0usize, self.shifts[0], f64::INFINITY);
        for (i, &shift) in self.shifts.iter().enumerate() {
            let ber = ber_at_shift(config, program, retention, pe_cycles, age, shift, 2.0);
            if ber < best.2 {
                best = (i, shift, ber);
            }
        }
        best
    }
}

/// Retention BER after the best entry of the typical retry table — the
/// error rate a calibrating controller actually sees.
pub fn calibrated_ber(
    config: &LevelConfig,
    program: &ProgramModel,
    retention: &RetentionModel,
    pe_cycles: u32,
    age: Hours,
) -> f64 {
    RetryTable::typical()
        .best_entry(config, program, retention, pe_cycles, age)
        .2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LevelConfig, ProgramModel, RetentionModel) {
        (
            LevelConfig::normal_mlc(),
            ProgramModel::default(),
            RetentionModel::paper(),
        )
    }

    #[test]
    fn shifted_config_moves_references_down() {
        let (cfg, _, _) = setup();
        let shifted = shifted_config(&cfg, Volts(0.05)).unwrap();
        for (orig, new) in cfg.read_refs().iter().zip(shifted.read_refs()) {
            assert!((orig.as_f64() - new.as_f64() - 0.05).abs() < 1e-12);
        }
        // Absurd shifts are rejected.
        assert_eq!(shifted_config(&cfg, Volts(2.0)), None);
    }

    #[test]
    fn retry_recovers_margin_at_high_stress() {
        // At 6000 P/E and a month of retention the distributions have
        // sagged; a calibrated read must beat the nominal one clearly.
        let (cfg, program, retention) = setup();
        let nominal = ber_at_shift(
            &cfg,
            &program,
            &retention,
            6000,
            Hours::months(1.0),
            Volts::ZERO,
            2.0,
        );
        let calibrated = calibrated_ber(&cfg, &program, &retention, 6000, Hours::months(1.0));
        assert!(
            calibrated < nominal / 2.0,
            "calibrated {calibrated:.3e} vs nominal {nominal:.3e}"
        );
    }

    #[test]
    fn optimal_shift_is_near_the_mean_retention_loss() {
        // The best uniform shift should track μd of the mid/high levels.
        let (cfg, program, retention) = setup();
        let (shift, ber) = optimal_shift(
            &cfg,
            &program,
            &retention,
            6000,
            Hours::months(1.0),
            Volts(0.15),
        );
        let mu_top = retention
            .mu(Volts(3.7), Volts(1.1), 6000, Hours::months(1.0))
            .as_f64();
        assert!(
            shift.as_f64() > 0.2 * mu_top,
            "shift {shift} vs μd {mu_top}"
        );
        assert!(
            shift.as_f64() < 2.5 * mu_top,
            "shift {shift} vs μd {mu_top}"
        );
        assert!(ber < 1e-2);
    }

    #[test]
    fn fresh_data_needs_no_shift() {
        let (cfg, program, retention) = setup();
        let (_, best_shift, _) =
            RetryTable::typical().best_entry(&cfg, &program, &retention, 2000, Hours(0.01));
        assert!(
            best_shift.as_f64() <= 0.011,
            "fresh data wants ~zero shift, got {best_shift}"
        );
    }

    #[test]
    fn continuous_beats_discrete_table() {
        let (cfg, program, retention) = setup();
        let stress = (5000u32, Hours::weeks(1.0));
        let (_, cont) = optimal_shift(&cfg, &program, &retention, stress.0, stress.1, Volts(0.15));
        let disc = calibrated_ber(&cfg, &program, &retention, stress.0, stress.1);
        assert!(
            cont <= disc * 1.01,
            "continuous {cont:.3e} vs table {disc:.3e}"
        );
    }

    #[test]
    fn optimal_shift_beats_every_table_entry() {
        // The golden-section optimum must be at least as good as each of
        // the 8 discrete retry levels, not merely the best one.
        let (cfg, program, retention) = setup();
        let stress = (6000u32, Hours::months(1.0));
        let (_, opt_ber) =
            optimal_shift(&cfg, &program, &retention, stress.0, stress.1, Volts(0.15));
        for &shift in RetryTable::typical().shifts() {
            let entry = ber_at_shift(&cfg, &program, &retention, stress.0, stress.1, shift, 2.0);
            assert!(
                opt_ber <= entry * 1.01,
                "optimal {opt_ber:.3e} worse than table shift {shift}: {entry:.3e}"
            );
        }
    }

    #[test]
    fn shifted_config_rejection_boundary_is_the_erased_mean() {
        // The exact legality frontier: the lowest read reference may
        // approach but never cross the erased distribution's mean.
        let (cfg, _, _) = setup();
        let margin = cfg.read_refs()[0] - cfg.erased_mean();
        let legal = Volts(margin.as_f64() - 1e-6);
        let illegal = Volts(margin.as_f64() + 1e-6);
        let shifted = shifted_config(&cfg, legal).expect("shift inside the margin is readable");
        assert!(shifted.read_refs()[0].as_f64() > cfg.erased_mean().as_f64());
        assert_eq!(shifted_config(&cfg, illegal), None);
        // And an unreadable shift reports BER 1.0 rather than panicking.
        let (_, program, retention) = setup();
        let ber = ber_at_shift(&cfg, &program, &retention, 3000, Hours(1.0), illegal, 2.0);
        assert_eq!(ber, 1.0);
    }

    #[test]
    fn typical_table_shape() {
        let t = RetryTable::typical();
        assert_eq!(t.shifts().len(), 8);
        assert_eq!(t.shifts()[0], Volts::ZERO);
        assert!(t.shifts().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_table_rejected() {
        let _ = RetryTable::new(vec![]);
    }
}
