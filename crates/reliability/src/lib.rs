//! NAND flash reliability models: noise, bit error rates and UBER.
//!
//! Implements the device-physics side of the FlexLevel reproduction
//! (Guo et al., DAC 2015):
//!
//! * [`ProgramModel`] — ISPP programming placement (uniform within one
//!   pulse above the verify voltage) and the erased Gaussian;
//! * [`InterferenceModel`] — cell-to-cell capacitive coupling, Equation (2)
//!   with the even/odd-structure ratios γx = 0.07, γy = 0.09, γxy = 0.005;
//! * [`RetentionModel`] — charge-loss over storage time, Equation (3) with
//!   Ks = 0.333, Kd = 4e-4, Km = 2e-6, t0 = 1 h;
//! * [`BerSimulation`] — the Monte-Carlo engine that programs, stresses and
//!   reads populations of cells to measure raw BER (Figure 5 / Table 4);
//! * [`analytic`] — fast numerical-integration BER estimates for the SSD
//!   simulator's per-read queries, cross-validated against the Monte-Carlo
//!   path;
//! * [`EccConfig`] — the UBER formula, Equation (1), with the paper's
//!   rate-8/9, 4 KB-block LDPC shape and 1e-15 target.
//!
//! # Example: retention BER of the baseline MLC cell
//!
//! ```
//! use flash_model::{Hours, LevelConfig};
//! use reliability::{
//!     estimate_mlc_ber, RetentionModel, RetentionStress, StressConfig,
//! };
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let report = estimate_mlc_ber(
//!     &LevelConfig::normal_mlc(),
//!     StressConfig::retention_only(
//!         RetentionModel::paper(),
//!         RetentionStress::new(5000, Hours::days(1.0)),
//!     ),
//!     100_000,
//!     &mut rng,
//! );
//! println!("raw BER = {:.2e}", report.ber());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
pub mod ber;
pub mod c2c;
pub mod codec;
pub mod math;
pub mod mc;
pub mod program;
pub mod read_retry;
pub mod retention;
pub mod sweep;
pub mod uber;

pub use analytic::{page_ber, transition_matrix, AnalyticBer};
pub use ber::{estimate_mlc_ber, BerReport, BerSimulation, StressConfig};
pub use c2c::{CouplingRatios, InterferenceModel, NeighborCounts};
pub use codec::{GrayMlcCodec, LevelProbeCodec, SymbolCodec, MAX_CELLS_PER_SYMBOL};
pub use mc::{parallel_map, resolve_threads, McOptions, THREADS_ENV};
pub use program::{ProgramModel, DEFAULT_PLACEMENT_SIGMA};
pub use read_retry::{calibrated_ber, optimal_shift, shifted_config, RetryTable};
pub use retention::{RetentionModel, RetentionStress};
pub use sweep::{default_shards, run_sharded, run_with_options};
pub use uber::{EccConfig, PAPER_UBER_TARGET};
