//! Uncorrectable bit error rate (paper Equation 1).
//!
//! For a rate-`n/m` ECC correcting up to `k` bit errors per `m`-bit
//! codeword, the UBER at raw cell BER `p` is
//!
//! ```text
//! uber(k) = (1 - Σ_{i=0}^{k} C(m,i) p^i (1-p)^(m-i)) / n
//! ```
//!
//! i.e. the probability of more than `k` errors landing in one codeword,
//! normalised per information bit. The paper targets `UBER ≤ 1e-15` with a
//! rate-8/9 LDPC over 4 KB data blocks.

use serde::{Deserialize, Serialize};

use crate::math::binomial_survival;

/// An ECC configuration for UBER evaluation.
///
/// ```
/// use reliability::{EccConfig, PAPER_UBER_TARGET};
///
/// let ecc = EccConfig::paper_ldpc();
/// // Raising the raw BER from 1e-3 to 1e-2 demands a much larger
/// // correction budget for the same 1e-15 UBER target.
/// let easy = ecc.required_correction(1e-3, PAPER_UBER_TARGET).unwrap();
/// let hard = ecc.required_correction(1e-2, PAPER_UBER_TARGET).unwrap();
/// assert!(hard > 2 * easy);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EccConfig {
    /// Information bits per codeword (`n`).
    pub info_bits: u64,
    /// Total codeword bits (`m`).
    pub codeword_bits: u64,
}

impl EccConfig {
    /// The paper's code: rate-8/9 LDPC over a 4 KB data block —
    /// 32 768 information bits in a 36 864-bit codeword.
    pub fn paper_ldpc() -> EccConfig {
        EccConfig {
            info_bits: 4096 * 8,
            codeword_bits: 4096 * 8 * 9 / 8,
        }
    }

    /// Code rate `n / m`.
    pub fn rate(&self) -> f64 {
        self.info_bits as f64 / self.codeword_bits as f64
    }

    /// Parity bits per codeword.
    pub fn parity_bits(&self) -> u64 {
        self.codeword_bits - self.info_bits
    }

    /// UBER when the decoder corrects up to `k` errors per codeword at raw
    /// BER `p` (Equation 1).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn uber(&self, k: u64, p: f64) -> f64 {
        binomial_survival(self.codeword_bits, k.min(self.codeword_bits), p) / self.info_bits as f64
    }

    /// Smallest correctable-error budget `k` that meets `target_uber` at
    /// raw BER `p`, or `None` if even correcting every bit fails (never in
    /// practice).
    pub fn required_correction(&self, p: f64, target_uber: f64) -> Option<u64> {
        // Exponential-then-binary search keeps this fast for large m.
        let mut lo = 0u64;
        let mut hi = 1u64;
        while self.uber(hi, p) > target_uber {
            lo = hi;
            hi *= 2;
            if hi >= self.codeword_bits {
                hi = self.codeword_bits;
                if self.uber(hi, p) > target_uber {
                    return None;
                }
                break;
            }
        }
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.uber(mid, p) <= target_uber {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(hi)
    }
}

/// The UBER target used throughout the paper's evaluation (§6.1).
pub const PAPER_UBER_TARGET: f64 = 1e-15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_code_shape() {
        let ecc = EccConfig::paper_ldpc();
        assert_eq!(ecc.info_bits, 32_768);
        assert_eq!(ecc.codeword_bits, 36_864);
        assert!((ecc.rate() - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(ecc.parity_bits(), 4_096);
    }

    #[test]
    fn uber_decreases_with_correction_strength() {
        let ecc = EccConfig::paper_ldpc();
        let p = 2e-3;
        let mut prev = 1.0;
        for k in [0u64, 50, 100, 150, 200] {
            let u = ecc.uber(k, p);
            assert!(u <= prev);
            prev = u;
        }
    }

    #[test]
    fn uber_increases_with_raw_ber() {
        let ecc = EccConfig::paper_ldpc();
        let k = 120;
        assert!(ecc.uber(k, 1e-3) < ecc.uber(k, 3e-3));
        assert!(ecc.uber(k, 3e-3) < ecc.uber(k, 1e-2));
    }

    #[test]
    fn required_correction_meets_target() {
        let ecc = EccConfig::paper_ldpc();
        for p in [1e-4, 1e-3, 4e-3, 1e-2] {
            let k = ecc.required_correction(p, PAPER_UBER_TARGET).unwrap();
            assert!(ecc.uber(k, p) <= PAPER_UBER_TARGET);
            if k > 0 {
                assert!(
                    ecc.uber(k - 1, p) > PAPER_UBER_TARGET,
                    "k must be minimal at p={p}"
                );
            }
        }
    }

    #[test]
    fn required_correction_grows_with_ber() {
        let ecc = EccConfig::paper_ldpc();
        let k1 = ecc.required_correction(1e-3, PAPER_UBER_TARGET).unwrap();
        let k2 = ecc.required_correction(1e-2, PAPER_UBER_TARGET).unwrap();
        assert!(k2 > k1);
        // Sanity: at BER 1e-2 a 36864-bit codeword sees ~369 errors on
        // average; the budget must exceed that mean by a comfortable margin.
        assert!(k2 > 369);
        assert!(k2 < 1000);
    }

    #[test]
    fn zero_ber_needs_no_correction() {
        let ecc = EccConfig::paper_ldpc();
        assert_eq!(ecc.required_correction(0.0, PAPER_UBER_TARGET), Some(0));
        assert_eq!(ecc.uber(0, 0.0), 0.0);
    }
}
