//! Symbol codecs: how data bits map onto the `Vth` levels of one or more
//! cells.
//!
//! The Monte-Carlo BER engine is codec-agnostic: it programs the levels a
//! codec produces, distorts them with noise and asks the codec how many
//! *bit* errors the level distortions caused. Normal MLC cells use
//! [`GrayMlcCodec`] (1 cell, 2 bits); the `flexlevel` crate implements the
//! same trait for ReduceCode (2 cells, 3 bits).

use flash_model::{gray, MlcBits, VthLevel};

/// Maximum cells per symbol across all codecs (ReduceCode pairs two cells).
pub const MAX_CELLS_PER_SYMBOL: usize = 2;

/// Maps data symbols to cell levels and back.
///
/// Implementations must be involutive on valid symbols:
/// `decode(encode(v)) == v` for every `v < 2^bits_per_symbol()`.
pub trait SymbolCodec {
    /// Bits carried by one symbol.
    fn bits_per_symbol(&self) -> u32;

    /// Cells occupied by one symbol (1 or 2).
    fn cells_per_symbol(&self) -> usize;

    /// Encodes `value` (must be `< 2^bits_per_symbol()`) into cell levels,
    /// writing `cells_per_symbol()` entries of `out`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `value` is out of range or `out` is
    /// shorter than `cells_per_symbol()`.
    fn encode(&self, value: u16, out: &mut [VthLevel]);

    /// Decodes the (possibly distorted) levels back into a symbol value.
    fn decode(&self, levels: &[VthLevel]) -> u16;

    /// Number of distinct symbol values.
    fn symbol_count(&self) -> u16 {
        1 << self.bits_per_symbol()
    }

    /// Bit errors caused by reading `read` where `programmed` was stored.
    fn bit_errors(&self, programmed: u16, read: u16) -> u32 {
        (programmed ^ read).count_ones()
    }
}

/// The standard Gray mapping of a normal-state MLC cell: 2 bits per cell,
/// `11, 10, 00, 01` → levels 0–3.
///
/// Symbol layout: bit 0 = lower-page (LSB), bit 1 = upper-page (MSB).
///
/// ```
/// use reliability::{GrayMlcCodec, SymbolCodec};
/// use flash_model::VthLevel;
///
/// let codec = GrayMlcCodec;
/// let mut levels = [VthLevel::ERASED; 1];
/// codec.encode(0b11, &mut levels);
/// assert_eq!(levels[0], VthLevel::ERASED);
/// assert_eq!(codec.decode(&levels), 0b11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GrayMlcCodec;

impl SymbolCodec for GrayMlcCodec {
    fn bits_per_symbol(&self) -> u32 {
        2
    }

    fn cells_per_symbol(&self) -> usize {
        1
    }

    fn encode(&self, value: u16, out: &mut [VthLevel]) {
        assert!(value < 4, "Gray MLC symbol out of range: {value}");
        let lower = (value & 1) != 0;
        let upper = (value & 2) != 0;
        out[0] = gray::encode(MlcBits::new(lower.into(), upper.into()));
    }

    fn decode(&self, levels: &[VthLevel]) -> u16 {
        let bits = gray::decode(levels[0]);
        u16::from(u8::from(bits.lower)) | (u16::from(u8::from(bits.upper)) << 1)
    }
}

/// A measurement codec that stores the symbol value directly as a level.
///
/// Used to measure *cell* error rates of a configuration with any level
/// count (e.g. the 3-level reduced state before ReduceCode exists at this
/// layer), with uniform level usage. `bit_errors` reports the XOR popcount
/// of the level indices, which equals 1 for the adjacent-level slips that
/// dominate in practice.
///
/// ```
/// use reliability::{LevelProbeCodec, SymbolCodec};
/// use flash_model::VthLevel;
///
/// let probe = LevelProbeCodec::new(3);
/// assert_eq!(probe.symbol_count(), 3);
/// let mut out = [VthLevel::ERASED; 1];
/// probe.encode(2, &mut out);
/// assert_eq!(out[0], VthLevel::L2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelProbeCodec {
    levels: u8,
}

impl LevelProbeCodec {
    /// A probe for a configuration with `levels` levels (2–4).
    ///
    /// # Panics
    ///
    /// Panics if `levels` is outside `2..=4`.
    pub fn new(levels: u8) -> LevelProbeCodec {
        assert!(
            (2..=4).contains(&levels),
            "probe level count {levels} outside 2..=4"
        );
        LevelProbeCodec { levels }
    }
}

impl SymbolCodec for LevelProbeCodec {
    fn bits_per_symbol(&self) -> u32 {
        2
    }

    fn cells_per_symbol(&self) -> usize {
        1
    }

    fn symbol_count(&self) -> u16 {
        self.levels as u16
    }

    fn encode(&self, value: u16, out: &mut [VthLevel]) {
        assert!(
            value < self.levels as u16,
            "probe symbol {value} out of range for {} levels",
            self.levels
        );
        out[0] = VthLevel::new(value as u8);
    }

    fn decode(&self, levels: &[VthLevel]) -> u16 {
        levels[0].index() as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_roundtrip() {
        let codec = GrayMlcCodec;
        let mut out = [VthLevel::ERASED; 1];
        for v in 0..codec.symbol_count() {
            codec.encode(v, &mut out);
            assert_eq!(codec.decode(&out), v, "symbol {v}");
        }
    }

    #[test]
    fn gray_one_level_slip_is_one_bit() {
        let codec = GrayMlcCodec;
        let mut out = [VthLevel::ERASED; 1];
        for v in 0..4u16 {
            codec.encode(v, &mut out);
            let level = out[0];
            for neighbor in [level.index().checked_sub(1), level.index().checked_add(1)] {
                let Some(n) = neighbor else { continue };
                if n > 3 {
                    continue;
                }
                let read = codec.decode(&[VthLevel::new(n)]);
                assert_eq!(
                    codec.bit_errors(v, read),
                    1,
                    "one-level slip from L{} must flip exactly one bit",
                    level.index()
                );
            }
        }
    }

    #[test]
    fn symbol_count() {
        assert_eq!(GrayMlcCodec.symbol_count(), 4);
        assert_eq!(GrayMlcCodec.bits_per_symbol(), 2);
        assert_eq!(GrayMlcCodec.cells_per_symbol(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gray_rejects_large_symbols() {
        let mut out = [VthLevel::ERASED; 1];
        GrayMlcCodec.encode(4, &mut out);
    }

    #[test]
    fn bit_errors_is_hamming_distance() {
        let c = GrayMlcCodec;
        assert_eq!(c.bit_errors(0b00, 0b11), 2);
        assert_eq!(c.bit_errors(0b01, 0b01), 0);
        assert_eq!(c.bit_errors(0b10, 0b00), 1);
    }

    #[test]
    fn probe_roundtrip_all_level_counts() {
        for levels in 2..=4u8 {
            let probe = LevelProbeCodec::new(levels);
            assert_eq!(probe.symbol_count(), levels as u16);
            let mut out = [VthLevel::ERASED; 1];
            for v in 0..levels as u16 {
                probe.encode(v, &mut out);
                assert_eq!(probe.decode(&out), v);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn probe_rejects_out_of_range_symbols() {
        let probe = LevelProbeCodec::new(3);
        let mut out = [VthLevel::ERASED; 1];
        probe.encode(3, &mut out);
    }

    #[test]
    #[should_panic(expected = "outside 2..=4")]
    fn probe_rejects_bad_level_count() {
        let _ = LevelProbeCodec::new(5);
    }
}
