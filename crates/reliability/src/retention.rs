//! Retention (charge-loss) noise model (paper Equation 3).
//!
//! Electron detrapping and stress-induced leakage drain charge from the
//! floating gate over storage time, lowering `Vth`. The shift follows a
//! Gaussian `N(μd, σd²)` whose moments grow with the programmed level's
//! height above the erased state (`x − x0`), the accumulated P/E cycle
//! count `N` and the storage time `t`:
//!
//! ```text
//! μd  = Ks (x − x0) Kd N^0.4 ln(1 + t/t0)
//! σd² = Ks (x − x0) Km N^0.5 ln(1 + t/t0)
//! ```
//!
//! with the paper's constants `Ks = 0.333`, `Kd = 4e-4`, `Km = 2e-6`,
//! `t0 = 1 h` (from Dong et al.). Higher levels lose charge faster — the
//! level dependence NUNMA exploits by giving the top level the largest
//! retention margin.

use flash_model::{Hours, Volts};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::math::sample_normal;

/// Retention model constants (Equation 3).
///
/// ```
/// use flash_model::{Hours, Volts};
/// use reliability::RetentionModel;
///
/// let model = RetentionModel::paper();
/// // A cell programmed to 3.7 V loses more charge after a month at
/// // 6000 P/E than after a day at 2000 P/E.
/// let mild = model.mu(Volts(3.7), Volts(1.1), 2000, Hours::days(1.0));
/// let harsh = model.mu(Volts(3.7), Volts(1.1), 6000, Hours::months(1.0));
/// assert!(harsh > mild);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Proportionality constant `Ks` (paper: 0.333).
    pub ks: f64,
    /// Mean-shift constant `Kd` (paper: 4e-4).
    pub kd: f64,
    /// Variance constant `Km` (paper: 2e-6).
    pub km: f64,
    /// Normalising time constant `t0` in hours (paper: 1 h).
    pub t0: Hours,
}

impl RetentionModel {
    /// The paper's constants.
    pub fn paper() -> RetentionModel {
        RetentionModel {
            ks: 0.333,
            kd: 4e-4,
            km: 2e-6,
            t0: Hours(1.0),
        }
    }

    /// Mean `μd` of the downward `Vth` shift for a cell whose initial
    /// threshold is `x`, with erased reference `x0`, after `pe_cycles`
    /// program/erase cycles and `time` of storage.
    ///
    /// Cells at or below the erased reference (`x ≤ x0`) do not lose
    /// charge in this model.
    pub fn mu(&self, x: Volts, x0: Volts, pe_cycles: u32, time: Hours) -> Volts {
        let height = (x - x0).as_f64().max(0.0);
        let n = pe_cycles as f64;
        Volts(
            self.ks
                * height
                * self.kd
                * n.powf(0.4)
                * (1.0 + time.as_f64() / self.t0.as_f64()).ln(),
        )
    }

    /// Variance `σd²` of the shift (same arguments as [`mu`](Self::mu)).
    pub fn sigma_sq(&self, x: Volts, x0: Volts, pe_cycles: u32, time: Hours) -> f64 {
        let height = (x - x0).as_f64().max(0.0);
        let n = pe_cycles as f64;
        self.ks * height * self.km * n.powf(0.5) * (1.0 + time.as_f64() / self.t0.as_f64()).ln()
    }

    /// Standard deviation `σd` of the shift.
    pub fn sigma(&self, x: Volts, x0: Volts, pe_cycles: u32, time: Hours) -> Volts {
        Volts(self.sigma_sq(x, x0, pe_cycles, time).sqrt())
    }

    /// Samples the downward shift for one cell. The result is clamped to
    /// be non-negative: retention only ever removes charge.
    pub fn sample_shift<R: Rng + ?Sized>(
        &self,
        x: Volts,
        x0: Volts,
        pe_cycles: u32,
        time: Hours,
        rng: &mut R,
    ) -> Volts {
        if time.as_f64() <= 0.0 || pe_cycles == 0 || x <= x0 {
            return Volts::ZERO;
        }
        let mu = self.mu(x, x0, pe_cycles, time).as_f64();
        let sigma = self.sigma(x, x0, pe_cycles, time).as_f64();
        Volts(sample_normal(rng, mu, sigma).max(0.0))
    }
}

impl Default for RetentionModel {
    fn default() -> RetentionModel {
        RetentionModel::paper()
    }
}

/// A retention stress point: accumulated wear plus storage time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionStress {
    /// Program/erase cycle count `N`.
    pub pe_cycles: u32,
    /// Storage time since programming.
    pub time: Hours,
}

impl RetentionStress {
    /// Constructs a stress point.
    pub fn new(pe_cycles: u32, time: Hours) -> RetentionStress {
        RetentionStress { pe_cycles, time }
    }

    /// The paper's Table 4/5 evaluation grid: P/E ∈ {2000..6000} ×
    /// {1 day, 2 days, 1 week, 1 month}.
    pub fn paper_grid() -> Vec<RetentionStress> {
        let mut grid = Vec::new();
        for pe in [2000u32, 3000, 4000, 5000, 6000] {
            for t in [
                Hours::days(1.0),
                Hours::days(2.0),
                Hours::weeks(1.0),
                Hours::months(1.0),
            ] {
                grid.push(RetentionStress::new(pe, t));
            }
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const X: Volts = Volts(3.7);
    const X0: Volts = Volts(1.1);

    #[test]
    fn paper_constants() {
        let m = RetentionModel::paper();
        assert_eq!(m.ks, 0.333);
        assert_eq!(m.kd, 4e-4);
        assert_eq!(m.km, 2e-6);
        assert_eq!(m.t0, Hours(1.0));
    }

    #[test]
    fn mu_reference_value() {
        // Hand-computed: Ks·(x−x0)·Kd·N^0.4·ln(1+t) for N=2000, t=24h:
        // 0.333 · 2.6 · 4e-4 · 2000^0.4 · ln(25) ≈ 0.0233
        let m = RetentionModel::paper();
        let mu = m.mu(X, X0, 2000, Hours::days(1.0)).as_f64();
        assert!((mu - 0.0233).abs() < 5e-4, "mu = {mu}");
    }

    #[test]
    fn shift_grows_with_wear_time_and_height() {
        let m = RetentionModel::paper();
        let base = m.mu(X, X0, 2000, Hours::days(1.0));
        assert!(m.mu(X, X0, 6000, Hours::days(1.0)) > base, "more wear");
        assert!(m.mu(X, X0, 2000, Hours::months(1.0)) > base, "more time");
        assert!(
            m.mu(X, X0, 2000, Hours::days(1.0)) > m.mu(Volts(2.8), X0, 2000, Hours::days(1.0)),
            "higher level loses more"
        );
        // Same monotonicity for the spread.
        assert!(m.sigma(X, X0, 6000, Hours::days(1.0)) > m.sigma(X, X0, 2000, Hours::days(1.0)));
    }

    #[test]
    fn no_shift_without_stress() {
        let m = RetentionModel::paper();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            m.sample_shift(X, X0, 0, Hours::days(1.0), &mut rng),
            Volts::ZERO
        );
        assert_eq!(
            m.sample_shift(X, X0, 3000, Hours::ZERO, &mut rng),
            Volts::ZERO
        );
        // Erased cells (x <= x0) don't lose charge.
        assert_eq!(
            m.sample_shift(Volts(1.0), X0, 3000, Hours::days(1.0), &mut rng),
            Volts::ZERO
        );
    }

    #[test]
    fn sampled_moments_match_model() {
        let m = RetentionModel::paper();
        let mut rng = StdRng::seed_from_u64(2);
        let (pe, t) = (5000, Hours::weeks(1.0));
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let s = m.sample_shift(X, X0, pe, t, &mut rng).as_f64();
            sum += s;
            sum2 += s * s;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        let want_mu = m.mu(X, X0, pe, t).as_f64();
        let want_var = m.sigma_sq(X, X0, pe, t);
        assert!(
            (mean - want_mu).abs() / want_mu < 0.02,
            "mean {mean} vs {want_mu}"
        );
        assert!(
            (var - want_var).abs() / want_var < 0.05,
            "var {var} vs {want_var}"
        );
    }

    #[test]
    fn shifts_never_negative() {
        let m = RetentionModel::paper();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(m.sample_shift(X, X0, 4000, Hours::days(2.0), &mut rng) >= Volts::ZERO);
        }
    }

    #[test]
    fn paper_grid_shape() {
        let grid = RetentionStress::paper_grid();
        assert_eq!(grid.len(), 20); // 5 P/E points × 4 times
        assert_eq!(grid[0].pe_cycles, 2000);
        assert_eq!(grid[0].time, Hours::days(1.0));
        assert_eq!(grid[19].pe_cycles, 6000);
        assert_eq!(grid[19].time, Hours::months(1.0));
    }
}
