//! Sharded BER measurement on the deterministic Monte-Carlo engine.
//!
//! BER points at the paper's stress grid need 1e6–1e8 trials each to
//! resolve rates near 1e-4 with tight confidence intervals. This module
//! runs a [`BerSimulation`] through [`mc`]: trials are split
//! into machine-independent shards with counter-derived RNG streams and
//! merged in shard order, so the measured BER is **bit-identical for any
//! thread count** — 1 worker and 16 workers produce the same report.
//!
//! [`BerSimulation`]: crate::ber::BerSimulation
//! [`mc`]: crate::mc

use crate::ber::{BerReport, BerSimulation};
use crate::codec::SymbolCodec;
use crate::mc::{self, McOptions};

/// Runs `total_symbols` trials of `simulation` on up to `threads` worker
/// threads (0 = auto: `FLEXLEVEL_THREADS`, then hardware parallelism).
///
/// The result is a pure function of `(simulation, total_symbols,
/// base_seed)`; `threads` affects only wall-clock time.
///
/// ```no_run
/// use flash_model::LevelConfig;
/// use reliability::{run_sharded, BerSimulation, GrayMlcCodec, ProgramModel, StressConfig};
///
/// let cfg = LevelConfig::normal_mlc();
/// let codec = GrayMlcCodec;
/// let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), StressConfig::default());
/// let report = run_sharded(&sim, 1_000_000, 8, 42);
/// println!("ber = {}", report.ber());
/// ```
pub fn run_sharded<C: SymbolCodec + Sync>(
    simulation: &BerSimulation<'_, C>,
    total_symbols: u64,
    threads: u32,
    base_seed: u64,
) -> BerReport {
    run_with_options(
        simulation,
        total_symbols,
        base_seed,
        &McOptions::default().with_threads(threads),
    )
}

/// [`run_sharded`] with explicit engine options. The shard-granularity
/// knobs in `options` are part of the determinism contract: change them
/// and the (equally valid) measurement comes from different streams.
pub fn run_with_options<C: SymbolCodec + Sync>(
    simulation: &BerSimulation<'_, C>,
    total_symbols: u64,
    base_seed: u64,
    options: &McOptions,
) -> BerReport {
    let reports = mc::run_trials(total_symbols, base_seed, options, |_, trials, rng| {
        simulation.run(trials, rng)
    });
    let mut merged: Option<BerReport> = None;
    for report in reports {
        match merged {
            None => merged = Some(report),
            Some(ref mut m) => m.merge(&report),
        }
    }
    merged.unwrap_or_default()
}

/// A sensible worker count for the current machine (one per core, capped;
/// respects `FLEXLEVEL_THREADS`).
pub fn default_shards() -> u32 {
    mc::resolve_threads(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::StressConfig;
    use crate::codec::GrayMlcCodec;
    use crate::program::ProgramModel;
    use crate::retention::{RetentionModel, RetentionStress};
    use flash_model::{Hours, LevelConfig};

    #[test]
    fn sharded_run_counts_all_symbols() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(
            &cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::default(),
        );
        let report = run_sharded(&sim, 100_003, 7, 1);
        assert_eq!(report.symbols, 100_003);
        assert_eq!(report.bits, 200_006);
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let stress = StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(6000, Hours::weeks(1.0)),
        );
        let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), stress);
        let a = run_sharded(&sim, 50_000, 4, 99);
        let b = run_sharded(&sim, 50_000, 4, 99);
        assert_eq!(a, b);
        // A different seed gives a different (but statistically close) result.
        let c = run_sharded(&sim, 50_000, 4, 100);
        assert_ne!(a.bit_errors, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_does_not_change_the_measurement() {
        // The core engine contract, observed through the BER API: the
        // report is bit-identical for every worker count.
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let stress = StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(6000, Hours::months(1.0)),
        );
        let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), stress);
        let serial = run_sharded(&sim, 200_000, 1, 5);
        for threads in [2u32, 8, 16] {
            assert_eq!(serial, run_sharded(&sim, 200_000, threads, 5));
        }
        assert_ne!(serial.bit_errors, 0, "stress must cause errors");
    }

    #[test]
    fn zero_threads_resolves_to_auto() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(
            &cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::default(),
        );
        let report = run_sharded(&sim, 1000, 0, 1);
        assert_eq!(report.symbols, 1000);
        assert_eq!(report, run_sharded(&sim, 1000, 5, 1));
    }

    #[test]
    fn default_shards_positive() {
        assert!(default_shards() >= 1);
    }
}
