//! Parallel Monte-Carlo sharding.
//!
//! BER points at the paper's stress grid need 1e6–1e8 trials each to
//! resolve rates near 1e-4 with tight confidence intervals. This module
//! shards a [`BerSimulation`] across OS threads
//! with crossbeam's scoped threads; every shard gets an independent,
//! deterministic seed so results are reproducible regardless of thread
//! scheduling.
//!
//! [`BerSimulation`]: crate::ber::BerSimulation

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ber::{BerReport, BerSimulation};
use crate::codec::SymbolCodec;

/// Runs `total_symbols` trials split across `shards` threads.
///
/// Shard `i` uses seed `base_seed + i`, so the merged result is a pure
/// function of `(simulation, total_symbols, shards, base_seed)`.
///
/// ```no_run
/// use flash_model::LevelConfig;
/// use reliability::{run_sharded, BerSimulation, GrayMlcCodec, ProgramModel, StressConfig};
///
/// let cfg = LevelConfig::normal_mlc();
/// let codec = GrayMlcCodec;
/// let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), StressConfig::default());
/// let report = run_sharded(&sim, 1_000_000, 8, 42);
/// println!("ber = {}", report.ber());
/// ```
pub fn run_sharded<C: SymbolCodec + Sync>(
    simulation: &BerSimulation<'_, C>,
    total_symbols: u64,
    shards: u32,
    base_seed: u64,
) -> BerReport {
    let shards = shards.max(1);
    let per_shard = total_symbols / shards as u64;
    let remainder = total_symbols % shards as u64;

    let mut results: Vec<Option<BerReport>> = (0..shards).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (i, slot) in results.iter_mut().enumerate() {
            let sim = &simulation;
            scope.spawn(move |_| {
                let n = per_shard + if (i as u64) < remainder { 1 } else { 0 };
                let mut rng = StdRng::seed_from_u64(base_seed.wrapping_add(i as u64));
                *slot = Some(sim.run(n, &mut rng));
            });
        }
    })
    .expect("BER shard thread panicked");

    let mut merged: Option<BerReport> = None;
    for r in results.into_iter().flatten() {
        match merged {
            None => merged = Some(r),
            Some(ref mut m) => m.merge(&r),
        }
    }
    merged.unwrap_or_default()
}

/// A sensible shard count for the current machine (one per core, capped).
pub fn default_shards() -> u32 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(4)
        .min(32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::StressConfig;
    use crate::codec::GrayMlcCodec;
    use crate::program::ProgramModel;
    use crate::retention::{RetentionModel, RetentionStress};
    use flash_model::{Hours, LevelConfig};

    #[test]
    fn sharded_run_counts_all_symbols() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(
            &cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::default(),
        );
        let report = run_sharded(&sim, 100_003, 7, 1);
        assert_eq!(report.symbols, 100_003);
        assert_eq!(report.bits, 200_006);
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let stress = StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(6000, Hours::weeks(1.0)),
        );
        let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), stress);
        let a = run_sharded(&sim, 50_000, 4, 99);
        let b = run_sharded(&sim, 50_000, 4, 99);
        assert_eq!(a, b);
        // A different seed gives a different (but statistically close) result.
        let c = run_sharded(&sim, 50_000, 4, 100);
        assert_ne!(a.bit_errors, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn sharded_matches_expected_rate() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let stress = StressConfig::retention_only(
            RetentionModel::paper(),
            RetentionStress::new(6000, Hours::months(1.0)),
        );
        let sim = BerSimulation::new(&cfg, &codec, ProgramModel::default(), stress);
        let few_shards = run_sharded(&sim, 200_000, 2, 5);
        let many_shards = run_sharded(&sim, 200_000, 16, 5);
        let r1 = few_shards.ber();
        let r2 = many_shards.ber();
        assert!(
            (r1 - r2).abs() / r1 < 0.2,
            "shard count must not bias the estimate: {r1} vs {r2}"
        );
    }

    #[test]
    fn zero_shards_clamped_to_one() {
        let cfg = LevelConfig::normal_mlc();
        let codec = GrayMlcCodec;
        let sim = BerSimulation::new(
            &cfg,
            &codec,
            ProgramModel::default(),
            StressConfig::default(),
        );
        let report = run_sharded(&sim, 1000, 0, 1);
        assert_eq!(report.symbols, 1000);
    }

    #[test]
    fn default_shards_positive() {
        assert!(default_shards() >= 1);
    }
}
