//! Fast analytic (semi-closed-form) BER approximations.
//!
//! The Monte-Carlo engine in [`crate::ber`] is the ground truth for the
//! paper's device experiments, but the SSD simulator needs *millions* of
//! BER queries (one per read, as wear and retention age vary). This module
//! integrates the same noise models numerically — Gaussian tail
//! probabilities averaged over the ISPP placement — which is ~10⁴× faster
//! and accurate to well within the Monte-Carlo noise at the error rates of
//! interest. Agreement between the two paths is enforced by tests.

use flash_model::{Hours, LevelConfig, VthLevel};
use serde::{Deserialize, Serialize};

use crate::c2c::InterferenceModel;
use crate::math::q_function;
use crate::program::ProgramModel;
use crate::retention::RetentionModel;

/// Number of quadrature points across the ISPP placement interval.
const QUAD_POINTS: usize = 48;

/// Per-level and aggregate analytic error probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyticBer {
    /// Probability that a cell programmed to each level misreads.
    pub per_level: Vec<f64>,
    /// Cell error rate averaged over uniformly distributed data.
    pub cell_error_rate: f64,
    /// Approximate raw bit error rate. Adjacent-level slips dominate and
    /// cost one bit under Gray/ReduceCode mappings, so
    /// `ber ≈ cell_error_rate / bits_per_cell`.
    pub ber: f64,
}

/// Moments of the aggregate cell-to-cell interference shift, treating the
/// shift as approximately Gaussian (sum of several independent aggressor
/// contributions).
fn c2c_moments(model: &InterferenceModel, config: &LevelConfig) -> (f64, f64) {
    // One aggressor's ΔVp: 0 if it stays erased (prob 1/L), otherwise
    // verify_j + U(0, Vpp) - erased_mean for a uniformly chosen level j.
    let l = config.level_count() as f64;
    let vpp = config.program_pulse().as_f64();
    let x0 = config.erased_mean().as_f64();
    let mut mean = 0.0;
    let mut second = 0.0;
    for level in config.levels() {
        let (m, s2) = match config.verify_voltage(level) {
            None => (0.0, 0.0),
            Some(v) => {
                let m = v.as_f64() + vpp / 2.0 - x0;
                // variance of U(0, Vpp)
                (m.max(0.0), vpp * vpp / 12.0)
            }
        };
        mean += m / l;
        second += (s2 + m * m) / l;
    }
    let var = second - mean * mean;
    let g = &model.ratios;
    let n = &model.neighbors;
    let f = model.post_verify_fraction;
    let agg_mean =
        mean * (n.x as f64 * g.gamma_x + n.y as f64 * g.gamma_y + n.xy as f64 * g.gamma_xy) * f;
    let agg_var = var
        * (n.x as f64 * g.gamma_x * g.gamma_x
            + n.y as f64 * g.gamma_y * g.gamma_y
            + n.xy as f64 * g.gamma_xy * g.gamma_xy)
        * f
        * f;
    (agg_mean, agg_var)
}

/// Analytic error probability of one level under the given noise sources.
fn level_error_probability(
    config: &LevelConfig,
    program: &ProgramModel,
    level: VthLevel,
    c2c: Option<&InterferenceModel>,
    retention: Option<(&RetentionModel, u32, Hours)>,
) -> f64 {
    let refs = config.read_refs();
    let idx = level.index() as usize;
    let lower_ref = if idx == 0 {
        None
    } else {
        Some(refs[idx - 1].as_f64())
    };
    let upper_ref = refs.get(idx).map(|v| v.as_f64());
    let (c2c_mean, c2c_var) = match c2c {
        Some(m) => c2c_moments(m, config),
        None => (0.0, 0.0),
    };
    let sp2 = program.placement_sigma.as_f64().powi(2);

    match config.verify_voltage(level) {
        None => {
            // Erased level: only upward (interference) errors matter.
            let Some(upper) = upper_ref else { return 0.0 };
            let mu = config.erased_mean().as_f64() + c2c_mean;
            let sigma2 = config.erased_sigma().as_f64().powi(2) + c2c_var;
            q_function((upper - mu) / sigma2.sqrt())
        }
        Some(verify) => {
            // Programmed level: integrate over the ISPP placement x. The
            // post-verify disturb spread `sp2` acts in both directions.
            let vpp = config.program_pulse().as_f64();
            let x0 = config.erased_mean();
            let mut total = 0.0;
            for i in 0..QUAD_POINTS {
                let x = verify.as_f64() + vpp * (i as f64 + 0.5) / QUAD_POINTS as f64;
                let mut p = 0.0;
                // Downward misread: retention loss (plus disturb spread)
                // below the lower reference.
                if let Some(lower) = lower_ref {
                    let (mu, s2) = match retention {
                        Some((model, pe, time)) => (
                            model.mu(flash_model::Volts(x), x0, pe, time).as_f64(),
                            model.sigma_sq(flash_model::Volts(x), x0, pe, time) + sp2,
                        ),
                        None => (0.0, sp2),
                    };
                    if s2 > 0.0 {
                        p += q_function((x - mu - lower) / s2.sqrt());
                    } else if x - mu < lower {
                        p += 1.0;
                    }
                }
                // Upward misread: interference (plus disturb spread) above
                // the upper reference.
                if let Some(upper) = upper_ref {
                    let var = c2c_var + sp2;
                    if var > 0.0 {
                        p += q_function((upper - x - c2c_mean) / var.sqrt());
                    } else if x + c2c_mean >= upper {
                        p += 1.0;
                    }
                }
                total += p.min(1.0);
            }
            total / QUAD_POINTS as f64
        }
    }
}

/// Full level-transition matrix: `T[i][j]` = probability that a cell
/// programmed to level `i` reads back as level `j` under the given noise
/// sources (quadrature over the ISPP placement; Gaussian shift tails).
///
/// Unlike [`estimate`], which counts any misread once, the matrix
/// resolves *where* a cell lands — the input for exact per-page BER and
/// multi-level-slip analysis.
pub fn transition_matrix(
    config: &LevelConfig,
    program: &ProgramModel,
    c2c: Option<&InterferenceModel>,
    retention: Option<(&RetentionModel, u32, Hours)>,
) -> Vec<Vec<f64>> {
    let levels = config.level_count();
    let refs: Vec<f64> = config.read_refs().iter().map(|r| r.as_f64()).collect();
    let (c2c_mean, c2c_var) = match c2c {
        Some(m) => c2c_moments(m, config),
        None => (0.0, 0.0),
    };
    let sp2 = program.placement_sigma.as_f64().powi(2);
    let x0 = config.erased_mean();

    // P(final vth < boundary) for a cell whose pre-shift position is x
    // with total shift ~ N(c2c_mean - mu_ret, c2c_var + sp_extra + s2_ret).
    let below = |x: f64, boundary: f64, mu: f64, var: f64| -> f64 {
        if var > 0.0 {
            1.0 - q_function((boundary - x - mu) / var.sqrt())
        } else if x + mu < boundary {
            1.0
        } else {
            0.0
        }
    };

    let mut matrix = vec![vec![0.0; levels]; levels];
    for (i, level) in config.levels().enumerate() {
        match config.verify_voltage(level) {
            None => {
                // Erased: Gaussian N(mean, sigma²) plus interference.
                let mu = c2c_mean;
                let var = config.erased_sigma().as_f64().powi(2) + c2c_var;
                let x = config.erased_mean().as_f64();
                let mut prev = 0.0;
                for j in 0..levels {
                    let cum = if j == levels - 1 {
                        1.0
                    } else {
                        below(x, refs[j], mu, var)
                    };
                    matrix[i][j] = (cum - prev).max(0.0);
                    prev = cum;
                }
            }
            Some(verify) => {
                let vpp = config.program_pulse().as_f64();
                for q in 0..QUAD_POINTS {
                    let x = verify.as_f64() + vpp * (q as f64 + 0.5) / QUAD_POINTS as f64;
                    let (mu_ret, s2_ret) = match retention {
                        Some((model, pe, time)) => (
                            model.mu(flash_model::Volts(x), x0, pe, time).as_f64(),
                            model.sigma_sq(flash_model::Volts(x), x0, pe, time),
                        ),
                        None => (0.0, 0.0),
                    };
                    let mu = c2c_mean - mu_ret;
                    let var = c2c_var + sp2 + s2_ret;
                    let mut prev = 0.0;
                    for j in 0..levels {
                        let cum = if j == levels - 1 {
                            1.0
                        } else {
                            below(x, refs[j], mu, var)
                        };
                        matrix[i][j] += (cum - prev).max(0.0) / QUAD_POINTS as f64;
                        prev = cum;
                    }
                }
            }
        }
    }
    matrix
}

/// Exact per-page bit error rates `(lower, upper)` of a normal-state MLC
/// cell, from the transition matrix and the Gray page-bit patterns.
///
/// # Panics
///
/// Panics if `config` is not a 4-level configuration.
pub fn page_ber(
    config: &LevelConfig,
    program: &ProgramModel,
    c2c: Option<&InterferenceModel>,
    retention: Option<(&RetentionModel, u32, Hours)>,
) -> (f64, f64) {
    assert_eq!(config.level_count(), 4, "page BER is MLC-specific");
    let t = transition_matrix(config, program, c2c, retention);
    let lower = [1u8, 1, 0, 0];
    let upper = [1u8, 0, 0, 1];
    let mut lower_err = 0.0;
    let mut upper_err = 0.0;
    for i in 0..4 {
        for j in 0..4 {
            if lower[i] != lower[j] {
                lower_err += t[i][j] / 4.0;
            }
            if upper[i] != upper[j] {
                upper_err += t[i][j] / 4.0;
            }
        }
    }
    // Per *page* bit error: condition on the cell's page membership — a
    // lower-page bit error happens when the read level's lower bit
    // differs, averaged over the 4 equally likely programmed levels.
    (lower_err, upper_err)
}

/// Computes analytic per-level and aggregate error rates.
///
/// `bits_per_cell` converts cell errors into bit errors (2 for normal MLC,
/// 1.5 for reduced-state ReduceCode pairs).
///
/// ```
/// use flash_model::{Hours, LevelConfig};
/// use reliability::{analytic, InterferenceModel, ProgramModel, RetentionModel};
///
/// let ber = analytic::estimate(
///     &LevelConfig::normal_mlc(),
///     &ProgramModel::default(),
///     Some(&InterferenceModel::default()),
///     Some((&RetentionModel::paper(), 5000, Hours::weeks(1.0))),
///     2.0,
/// );
/// assert!(ber.ber > 0.0 && ber.ber < 0.1);
/// ```
pub fn estimate(
    config: &LevelConfig,
    program: &ProgramModel,
    c2c: Option<&InterferenceModel>,
    retention: Option<(&RetentionModel, u32, Hours)>,
    bits_per_cell: f64,
) -> AnalyticBer {
    let per_level: Vec<f64> = config
        .levels()
        .map(|l| level_error_probability(config, program, l, c2c, retention))
        .collect();
    let cell_error_rate = per_level.iter().sum::<f64>() / per_level.len() as f64;
    AnalyticBer {
        cell_error_rate,
        ber: cell_error_rate / bits_per_cell,
        per_level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ber::{estimate_mlc_ber, StressConfig};
    use crate::retention::RetentionStress;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn retention_analytic_matches_monte_carlo() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let program = ProgramModel::default();
        for (pe, time) in [(4000u32, Hours::weeks(1.0)), (6000, Hours::months(1.0))] {
            let analytic = estimate(&cfg, &program, None, Some((&model, pe, time)), 2.0);
            let mut rng = StdRng::seed_from_u64(100 + pe as u64);
            let mc = estimate_mlc_ber(
                &cfg,
                StressConfig::retention_only(model, RetentionStress::new(pe, time)),
                400_000,
                &mut rng,
            );
            let ratio = analytic.cell_error_rate / mc.cell_error_rate().max(1e-12);
            assert!(
                (0.5..2.0).contains(&ratio),
                "pe={pe}: analytic {} vs MC {} (ratio {ratio})",
                analytic.cell_error_rate,
                mc.cell_error_rate()
            );
        }
    }

    #[test]
    fn c2c_analytic_matches_monte_carlo_order() {
        let cfg = LevelConfig::normal_mlc();
        let c2c = InterferenceModel::default();
        let program = ProgramModel::default();
        let analytic = estimate(&cfg, &program, Some(&c2c), None, 2.0);
        let mut rng = StdRng::seed_from_u64(55);
        let mc = estimate_mlc_ber(&cfg, StressConfig::c2c_only(c2c), 400_000, &mut rng);
        // The Gaussian aggregate approximation is cruder for C2C, but must
        // land within an order of magnitude.
        let ratio = analytic.cell_error_rate / mc.cell_error_rate().max(1e-12);
        assert!(
            (0.1..10.0).contains(&ratio),
            "analytic {} vs MC {}",
            analytic.cell_error_rate,
            mc.cell_error_rate()
        );
    }

    #[test]
    fn monotone_in_stress() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let program = ProgramModel::default();
        let mut prev = 0.0;
        for pe in [2000u32, 3000, 4000, 5000, 6000] {
            let b = estimate(
                &cfg,
                &program,
                None,
                Some((&model, pe, Hours::weeks(1.0))),
                2.0,
            )
            .ber;
            assert!(b >= prev, "BER must grow with wear");
            prev = b;
        }
    }

    #[test]
    fn per_level_shares_favor_top_level_under_retention() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let program = ProgramModel::default();
        let a = estimate(
            &cfg,
            &program,
            None,
            Some((&model, 6000, Hours::months(1.0))),
            2.0,
        );
        // Erased cells don't lose charge; their static Gaussian tail is the
        // only residual error and it is tiny next to retention errors.
        assert!(a.per_level[0] < a.per_level[3]);
        assert!(a.per_level[3] > a.per_level[1], "top level worst");
    }

    #[test]
    fn disturb_spread_alone_causes_small_floor() {
        // With no retention/C2C stress, the post-verify disturb spread
        // leaves a small error floor on programmed levels.
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let a = estimate(&cfg, &program, None, None, 2.0);
        assert!(a.per_level[1] > 0.0);
        // The floor must stay below the 4e-3 sensing trigger — Table 5's
        // "0 day" column shows zero extra levels at every P/E count.
        assert!(
            a.ber < 4e-3,
            "time-zero BER {} must not trigger soft sensing",
            a.ber
        );
    }

    #[test]
    fn transition_matrix_rows_are_distributions() {
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let model = RetentionModel::paper();
        let t = transition_matrix(
            &cfg,
            &program,
            Some(&InterferenceModel::default()),
            Some((&model, 5000, Hours::weeks(1.0))),
        );
        for (i, row) in t.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // The diagonal dominates at these error rates.
            assert!(row[i] > 0.9, "row {i}: {row:?}");
        }
    }

    #[test]
    fn transition_matrix_agrees_with_estimate() {
        // 1 - diagonal average = cell error rate of `estimate`.
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let model = RetentionModel::paper();
        let stress = Some((&model, 6000, Hours::months(1.0)));
        let t = transition_matrix(&cfg, &program, None, stress);
        let cell_err: f64 = (0..4).map(|i| 1.0 - t[i][i]).sum::<f64>() / 4.0;
        let est = estimate(&cfg, &program, None, stress, 2.0);
        assert!(
            (cell_err - est.cell_error_rate).abs() / est.cell_error_rate < 0.05,
            "matrix {cell_err:.3e} vs estimate {:.3e}",
            est.cell_error_rate
        );
    }

    #[test]
    fn page_bers_sum_to_cell_error_rate() {
        // Every cell misread flips the lower bit, the upper bit or both
        // (Gray: adjacent slips flip exactly one), so
        // lower + upper ≥ cell rate / 2... exactly: sum of page error
        // probabilities equals expected flipped bits per cell / 2 bits.
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let model = RetentionModel::paper();
        let stress = Some((&model, 6000, Hours::months(1.0)));
        let (lower, upper) = page_ber(&cfg, &program, None, stress);
        let est = estimate(&cfg, &program, None, stress, 2.0);
        let mean_page = (lower + upper) / 2.0;
        // Adjacent slips dominate ⇒ mean page BER ≈ cell rate / 2 = ber.
        assert!(
            (mean_page - est.ber).abs() / est.ber < 0.15,
            "mean page {mean_page:.3e} vs ber {:.3e}",
            est.ber
        );
        // Retention-only stress hits the lower page's L2→L1 boundary and
        // the upper page's L3→L2 and L1→L0 boundaries; both nonzero.
        assert!(lower > 0.0 && upper > 0.0);
    }

    #[test]
    fn analytic_page_ber_matches_channel_measurement() {
        // Strong cross-validation: the analytic lower-page BER must match
        // the Monte-Carlo hard-decision BER measured by the LDPC channel
        // (which samples the same reliability models independently).
        // The channel lives in the `ldpc` crate, so here we validate
        // against a direct MC of the same quantity.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let model = RetentionModel::paper();
        let (pe, time) = (5000u32, Hours::weeks(1.0));
        let (analytic_lower, _) = page_ber(&cfg, &program, None, Some((&model, pe, time)));

        let mut rng = StdRng::seed_from_u64(77);
        let boundary = cfg.read_refs()[1];
        let n = 400_000;
        let mut errors = 0u64;
        for _ in 0..n {
            // Uniform level; lower-page bit = level < 2.
            let level = flash_model::VthLevel::new(rng.gen_range(0..4));
            let initial = program.program(&cfg, level, &mut rng);
            let vth = initial - model.sample_shift(initial, cfg.erased_mean(), pe, time, &mut rng);
            let read_bit = vth < boundary;
            let true_bit = level.index() < 2;
            if read_bit != true_bit {
                errors += 1;
            }
        }
        let mc = errors as f64 / n as f64;
        assert!(
            (analytic_lower - mc).abs() / mc.max(1e-9) < 0.25,
            "analytic {analytic_lower:.3e} vs MC {mc:.3e}"
        );
    }

    #[test]
    fn noiseless_program_no_stress_no_programmed_errors() {
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::noiseless();
        let a = estimate(&cfg, &program, None, None, 2.0);
        assert_eq!(a.per_level[1], 0.0);
        assert_eq!(a.per_level[2], 0.0);
        assert_eq!(a.per_level[3], 0.0);
        // The erased Gaussian's upper tail remains.
        assert!(a.per_level[0] > 0.0);
        assert!(a.per_level[0] < 1e-3);
    }
}
