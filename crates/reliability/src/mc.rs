//! Deterministic parallel Monte-Carlo engine.
//!
//! Every headline result of the reproduction (Fig 5 C2C BER, Table 4
//! retention BER, Fig 6 response times, Fig 7 endurance) comes out of
//! Monte-Carlo trial loops or independent simulation sweeps. This module
//! is the shared execution engine for all of them, built around one
//! contract:
//!
//! > **The result is a pure function of `(work, total_trials, base_seed,
//! > shard granularity)` — never of the thread count or the OS
//! > scheduler.**
//!
//! Three mechanisms enforce the contract:
//!
//! 1. **Fixed sharding.** Trials are split into a shard count derived
//!    only from the trial count and the [`McOptions`] granularity knobs —
//!    not from the machine. Threads are a pool that pulls shards off a
//!    shared counter; 1 thread and 64 threads execute the same shards.
//! 2. **Counter-derived RNG streams.** Shard `i` seeds its own
//!    [`StdRng`] from `splitmix64(base_seed) ⊕ splitmix64(i)`-style
//!    mixing ([`shard_seed`]), so streams are decorrelated and
//!    reproducible without any cross-shard state.
//! 3. **Fixed-order reduction.** Per-shard outputs land in a slot table
//!    indexed by shard and are merged in ascending shard order after all
//!    workers join, so floating-point accumulation order is stable.
//!
//! The number of worker threads defaults to the `FLEXLEVEL_THREADS`
//! environment variable, falling back to the machine's parallelism
//! (see [`resolve_threads`]).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "FLEXLEVEL_THREADS";

/// Tuning knobs of the engine. The defaults suit BER-style trial loops
/// where one trial costs well under a microsecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McOptions {
    /// Worker threads; `0` = auto ([`resolve_threads`]). Has **no**
    /// effect on results, only on wall-clock.
    pub threads: u32,
    /// Minimum trials per shard. Affects results (it changes the shard
    /// layout), so it is part of the determinism contract and must be
    /// held fixed when comparing runs.
    pub min_shard_trials: u64,
    /// Upper bound on the shard count. Part of the determinism contract,
    /// like `min_shard_trials`.
    pub max_shards: u32,
}

impl Default for McOptions {
    fn default() -> McOptions {
        McOptions {
            threads: 0,
            min_shard_trials: 8_192,
            max_shards: 256,
        }
    }
}

impl McOptions {
    /// Returns the options with an explicit worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> McOptions {
        self.threads = threads;
        self
    }
}

/// Resolves a requested thread count: a positive request wins, then
/// `FLEXLEVEL_THREADS`, then the machine's available parallelism
/// (capped at 32). Always at least 1.
pub fn resolve_threads(requested: u32) -> u32 {
    if requested > 0 {
        return requested;
    }
    if let Some(n) = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u32>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .min(32)
}

/// Number of shards `total_trials` splits into — a pure function of the
/// trial count and the options, independent of threads and machine.
pub fn shard_count(total_trials: u64, options: &McOptions) -> u32 {
    let by_granularity = total_trials / options.min_shard_trials.max(1);
    by_granularity.clamp(1, options.max_shards.max(1) as u64) as u32
}

/// The deterministic seed of shard `index` under `base_seed`: both
/// inputs pass through SplitMix64 so neighbouring seeds and neighbouring
/// shard indices still yield decorrelated streams.
pub fn shard_seed(base_seed: u64, index: u32) -> u64 {
    let mut a = base_seed;
    let mut b = 0x5851_F42D_4C95_7F2D ^ u64::from(index);
    rand::splitmix64(&mut a) ^ rand::splitmix64(&mut b)
}

/// A fresh [`StdRng`] positioned at the start of shard `index`'s stream.
pub fn shard_rng(base_seed: u64, index: u32) -> StdRng {
    StdRng::seed_from_u64(shard_seed(base_seed, index))
}

/// Runs `total_trials` Monte-Carlo trials of `task`, sharded across a
/// thread pool, and returns the per-shard outputs **in shard order**.
///
/// `task(shard_index, trials, rng)` must derive all randomness from the
/// provided `rng`; under that condition the returned vector is identical
/// for every thread count, including 1.
///
/// ```
/// use reliability::mc::{self, McOptions};
/// use rand::Rng;
///
/// let opts = McOptions { min_shard_trials: 1_000, ..McOptions::default() };
/// let heads: u64 = mc::run_trials(100_000, 7, &opts, |_, trials, rng| {
///     (0..trials).filter(|_| rng.gen_bool(0.5)).count() as u64
/// })
/// .into_iter()
/// .sum();
/// assert!((45_000..55_000).contains(&heads));
/// ```
pub fn run_trials<T, F>(total_trials: u64, base_seed: u64, options: &McOptions, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u64, &mut StdRng) -> T + Sync,
{
    let shards = shard_count(total_trials, options);
    let per_shard = total_trials / u64::from(shards);
    let remainder = total_trials % u64::from(shards);
    let trials_of = |index: u32| per_shard + u64::from(u64::from(index) < remainder);
    let run_shard = |index: u32| {
        let mut rng = shard_rng(base_seed, index);
        task(index, trials_of(index), &mut rng)
    };

    let workers = resolve_threads(options.threads).min(shards);
    if workers <= 1 {
        return (0..shards).map(run_shard).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= shards as usize {
                    break;
                }
                let out = run_shard(index as u32);
                *slots[index].lock().expect("MC result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("MC result slot poisoned")
                .expect("every shard ran")
        })
        .collect()
}

/// Shards dispatched per wave by [`run_trials_until`]. Part of the
/// determinism contract, like `min_shard_trials`: the stop predicate is
/// only consulted at wave boundaries, so the executed shard prefix — and
/// therefore the result — is a pure function of the work and the seed,
/// never of the thread count or scheduler timing.
pub const WAVE_SHARDS: u32 = 8;

/// [`run_trials`] with a deterministic early exit.
///
/// Shards are dispatched in fixed waves of [`WAVE_SHARDS`]; after each
/// wave fully completes, `stop` is evaluated on the ordered prefix of
/// shard outputs collected so far, and a `true` verdict stops dispatch.
/// Because the predicate only ever sees completed whole waves, which
/// shards execute cannot depend on thread interleaving — 1 worker and 64
/// workers run the exact same prefix. The returned vector is that prefix,
/// in shard order; callers that need the executed trial count should have
/// each shard report its own (the engine's trial split is
/// [`run_trials`]'s: `total_trials` over [`shard_count`] shards,
/// remainder to the low shards).
pub fn run_trials_until<T, F, P>(
    total_trials: u64,
    base_seed: u64,
    options: &McOptions,
    task: F,
    stop: P,
) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u64, &mut StdRng) -> T + Sync,
    P: Fn(&[T]) -> bool,
{
    let shards = shard_count(total_trials, options);
    let per_shard = total_trials / u64::from(shards);
    let remainder = total_trials % u64::from(shards);
    let trials_of = |index: u32| per_shard + u64::from(u64::from(index) < remainder);
    let run_shard = |index: u32| {
        let mut rng = shard_rng(base_seed, index);
        task(index, trials_of(index), &mut rng)
    };

    let workers = resolve_threads(options.threads).min(shards);
    let mut results: Vec<T> = Vec::with_capacity(shards as usize);
    let mut wave_start = 0u32;
    while wave_start < shards {
        let wave_end = (wave_start + WAVE_SHARDS).min(shards);
        let wave = wave_end - wave_start;
        if workers <= 1 || wave <= 1 {
            results.extend((wave_start..wave_end).map(run_shard));
        } else {
            let slots: Vec<Mutex<Option<T>>> = (0..wave).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(wave) {
                    scope.spawn(|| loop {
                        let offset = next.fetch_add(1, Ordering::Relaxed);
                        if offset >= slots.len() {
                            break;
                        }
                        let out = run_shard(wave_start + offset as u32);
                        *slots[offset].lock().expect("MC result slot poisoned") = Some(out);
                    });
                }
            });
            results.extend(slots.into_iter().map(|slot| {
                slot.into_inner()
                    .expect("MC result slot poisoned")
                    .expect("every shard ran")
            }));
        }
        wave_start = wave_end;
        if stop(&results) {
            break;
        }
    }
    results
}

/// Runs `total_trials` trials of `per_trial` and collects every returned
/// value into one log-linear [`Histogram`](obs::Histogram).
///
/// Each shard records into its own histogram; shard histograms are
/// merged in ascending shard order after all workers join, so the result
/// is bit-identical for every thread count — the same contract as
/// [`run_trials`], extended to full distributions.
pub fn run_value_histogram<F>(
    total_trials: u64,
    base_seed: u64,
    options: &McOptions,
    per_trial: F,
) -> obs::Histogram
where
    F: Fn(u32, &mut StdRng) -> f64 + Sync,
{
    let shards = run_trials(total_trials, base_seed, options, |index, trials, rng| {
        let mut histogram = obs::Histogram::new();
        for _ in 0..trials {
            histogram.record(per_trial(index, rng));
        }
        histogram
    });
    let mut merged = obs::Histogram::new();
    for shard in &shards {
        merged.merge(shard);
    }
    merged
}

/// Applies `f` to every item of `items` on the thread pool and returns
/// the outputs in input order. The per-item work must be deterministic
/// for the map to be; the engine only guarantees ordering and isolation.
///
/// This is the engine behind independent *sweeps* — evaluating a grid of
/// NUNMA candidates, or replaying several traces × schemes concurrently.
pub fn parallel_map<I, T, F>(items: Vec<I>, threads: u32, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1) as u32);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect();
    }

    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..inputs.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= inputs.len() {
                    break;
                }
                let item = inputs[index]
                    .lock()
                    .expect("MC input slot poisoned")
                    .take()
                    .expect("each item is taken once");
                let out = f(index, item);
                *slots[index].lock().expect("MC result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("MC result slot poisoned")
                .expect("every item ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn opts(threads: u32) -> McOptions {
        McOptions {
            threads,
            min_shard_trials: 500,
            max_shards: 64,
        }
    }

    #[test]
    fn shard_layout_is_machine_independent() {
        let o = McOptions::default();
        assert_eq!(shard_count(0, &o), 1);
        assert_eq!(shard_count(1, &o), 1);
        assert_eq!(shard_count(8_192, &o), 1);
        assert_eq!(shard_count(81_920, &o), 10);
        assert_eq!(shard_count(u64::MAX, &o), 256);
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for shard in 0..64 {
                assert!(seen.insert(shard_seed(base, shard)), "collision");
            }
        }
    }

    #[test]
    fn trial_counts_are_conserved() {
        for total in [0u64, 1, 499, 500, 12_345, 100_000] {
            let counts = run_trials(total, 9, &opts(1), |_, n, _| n);
            assert_eq!(counts.iter().sum::<u64>(), total, "total {total}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let sample = |threads: u32, seed: u64| -> Vec<u64> {
            run_trials(20_000, seed, &opts(threads), |_, n, rng| {
                (0..n).map(|_| rng.gen_range(0u64..1_000_000)).sum()
            })
        };
        for seed in [1u64, 7, 42] {
            let serial = sample(1, seed);
            for threads in [2u32, 3, 8] {
                assert_eq!(serial, sample(threads, seed), "threads {threads}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let sums = |seed| {
            run_trials(5_000, seed, &opts(2), |_, n, rng| {
                (0..n).map(|_| rng.gen_range(0u64..1_000)).sum::<u64>()
            })
        };
        assert_ne!(sums(1), sums(2));
    }

    #[test]
    fn task_sees_its_shard_index() {
        let indices = run_trials(50_000, 3, &opts(4), |i, _, _| i);
        let expected: Vec<u32> = (0..indices.len() as u32).collect();
        assert_eq!(indices, expected);
    }

    #[test]
    fn value_histogram_identical_across_thread_counts() {
        let run = |threads: u32| {
            run_value_histogram(20_000, 11, &opts(threads), |_, rng| {
                rng.gen_range(0.0..500.0)
            })
        };
        let serial = run(1);
        assert_eq!(serial.count(), 20_000);
        for threads in [2u32, 8] {
            assert_eq!(serial, run(threads), "threads {threads}");
        }
    }

    #[test]
    fn until_without_stop_matches_run_trials() {
        let task = |_: u32, n: u64, rng: &mut StdRng| -> u64 {
            (0..n).map(|_| rng.gen_range(0u64..1_000)).sum()
        };
        let full = run_trials(20_000, 13, &opts(2), task);
        let until = run_trials_until(20_000, 13, &opts(2), task, |_| false);
        assert_eq!(full, until);
    }

    #[test]
    fn until_stops_on_whole_wave_boundaries() {
        // 20_000 trials / 500 min per shard → 40 shards, 5 waves of 8.
        let shards = run_trials_until(
            20_000,
            13,
            &opts(4),
            |i, _, _| i,
            |done| done.len() >= 11, // mid-wave target → rounds up to 2 waves
        );
        assert_eq!(shards, (0..2 * WAVE_SHARDS).collect::<Vec<u32>>());
    }

    #[test]
    fn until_prefix_identical_across_thread_counts() {
        let run = |threads: u32| {
            run_trials_until(
                20_000,
                21,
                &opts(threads),
                |_, n, rng| (0..n).map(|_| rng.gen_range(0u64..1_000)).sum::<u64>(),
                |done| done.iter().sum::<u64>() > 4_000_000,
            )
        };
        let serial = run(1);
        assert!(serial.len() < 40, "stop predicate should fire early");
        assert_eq!(serial.len() % WAVE_SHARDS as usize, 0);
        for threads in [2u32, 8] {
            assert_eq!(serial, run(threads), "threads {threads}");
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(items.clone(), 1, |i, x| (i as u64) * 1_000 + x * x);
        let threaded = parallel_map(items, 8, |i, x| (i as u64) * 1_000 + x * x);
        assert_eq!(serial, threaded);
        assert_eq!(serial[3], 3_009);
    }

    #[test]
    fn parallel_map_handles_empty_input() {
        let out: Vec<u64> = parallel_map(Vec::<u64>::new(), 4, |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }
}
