//! Monte-Carlo bit-error-rate engine.
//!
//! Simulates the full life of a population of cells — program, suffer
//! cell-to-cell interference, lose charge over storage time, get read —
//! and counts how many *bits* (and cells, and per-level slips) come back
//! wrong. Figure 5 and Table 4 of the paper are regenerated directly from
//! these counts.

use flash_model::{LevelConfig, VthLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::c2c::InterferenceModel;
use crate::codec::{SymbolCodec, MAX_CELLS_PER_SYMBOL};
use crate::program::ProgramModel;
use crate::retention::{RetentionModel, RetentionStress};

/// Which noise sources act on the cells during a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StressConfig {
    /// Cell-to-cell interference after programming, if enabled.
    pub c2c: Option<InterferenceModel>,
    /// Retention charge loss at a given wear/time point, if enabled.
    pub retention: Option<(RetentionModel, RetentionStress)>,
}

impl StressConfig {
    /// Interference only — the Figure 5 configuration.
    pub fn c2c_only(model: InterferenceModel) -> StressConfig {
        StressConfig {
            c2c: Some(model),
            retention: None,
        }
    }

    /// Retention only — the Table 4 configuration.
    pub fn retention_only(model: RetentionModel, stress: RetentionStress) -> StressConfig {
        StressConfig {
            c2c: None,
            retention: Some((model, stress)),
        }
    }

    /// Both noise sources (used when estimating total raw BER for the
    /// LDPC sensing-level schedule).
    pub fn combined(
        c2c: InterferenceModel,
        retention: RetentionModel,
        stress: RetentionStress,
    ) -> StressConfig {
        StressConfig {
            c2c: Some(c2c),
            retention: Some((retention, stress)),
        }
    }
}

/// Outcome counters of one Monte-Carlo BER run.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BerReport {
    /// Symbols simulated.
    pub symbols: u64,
    /// Data bits simulated (`symbols × bits_per_symbol`).
    pub bits: u64,
    /// Data bits read back incorrectly.
    pub bit_errors: u64,
    /// Cells simulated.
    pub cells: u64,
    /// Cells whose level was misread.
    pub cell_errors: u64,
    /// Misread cells bucketed by the level they were *programmed* to
    /// (index = level). Drives the per-level analysis behind NUNMA
    /// (paper §4.2: 78 % of errors at the top level, 15 % at level 1).
    pub cell_errors_by_level: Vec<u64>,
    /// Cells programmed to each level.
    pub cells_by_level: Vec<u64>,
}

impl BerReport {
    /// Creates an empty report for a configuration with `levels` levels.
    pub fn new(levels: usize) -> BerReport {
        BerReport {
            cell_errors_by_level: vec![0; levels],
            cells_by_level: vec![0; levels],
            ..BerReport::default()
        }
    }

    /// Raw bit error rate (`bit_errors / bits`).
    pub fn ber(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.bit_errors as f64 / self.bits as f64
        }
    }

    /// Cell (symbol-level) error rate.
    pub fn cell_error_rate(&self) -> f64 {
        if self.cells == 0 {
            0.0
        } else {
            self.cell_errors as f64 / self.cells as f64
        }
    }

    /// Fraction of all cell errors attributed to cells programmed to
    /// `level`. Returns 0 when no errors occurred.
    pub fn error_share(&self, level: VthLevel) -> f64 {
        if self.cell_errors == 0 {
            return 0.0;
        }
        self.cell_errors_by_level
            .get(level.index() as usize)
            .map(|&e| e as f64 / self.cell_errors as f64)
            .unwrap_or(0.0)
    }

    /// Merges another report into this one (for parallel sharding).
    ///
    /// # Panics
    ///
    /// Panics if the level counts differ.
    pub fn merge(&mut self, other: &BerReport) {
        assert_eq!(
            self.cell_errors_by_level.len(),
            other.cell_errors_by_level.len(),
            "cannot merge reports with different level counts"
        );
        self.symbols += other.symbols;
        self.bits += other.bits;
        self.bit_errors += other.bit_errors;
        self.cells += other.cells;
        self.cell_errors += other.cell_errors;
        for (a, b) in self
            .cell_errors_by_level
            .iter_mut()
            .zip(&other.cell_errors_by_level)
        {
            *a += b;
        }
        for (a, b) in self.cells_by_level.iter_mut().zip(&other.cells_by_level) {
            *a += b;
        }
    }
}

/// A Monte-Carlo BER simulation of one cell population.
#[derive(Debug, Clone)]
pub struct BerSimulation<'a, C> {
    config: &'a LevelConfig,
    codec: &'a C,
    program: ProgramModel,
    stress: StressConfig,
}

impl<'a, C: SymbolCodec> BerSimulation<'a, C> {
    /// Builds a simulation of `codec` symbols stored in cells configured
    /// by `config`, distorted by `stress`.
    pub fn new(
        config: &'a LevelConfig,
        codec: &'a C,
        program: ProgramModel,
        stress: StressConfig,
    ) -> BerSimulation<'a, C> {
        BerSimulation {
            config,
            codec,
            program,
            stress,
        }
    }

    /// Simulates one cell: program to `target`, apply noise, read back.
    fn stress_cell<R: Rng + ?Sized>(&self, target: VthLevel, rng: &mut R) -> VthLevel {
        let initial = self.program.program(self.config, target, rng);
        let mut vth = initial;
        if let Some(ref c2c) = self.stress.c2c {
            vth += c2c.sample_shift(self.config, &self.program, rng);
        }
        if let Some((ref model, stress)) = self.stress.retention {
            // Charge loss scales with the cell's own initial placement.
            vth -= model.sample_shift(
                initial,
                self.config.erased_mean(),
                stress.pe_cycles,
                stress.time,
                rng,
            );
        }
        self.config.classify(vth)
    }

    /// Runs `symbols` trials with uniformly random data, accumulating a
    /// [`BerReport`].
    pub fn run<R: Rng + ?Sized>(&self, symbols: u64, rng: &mut R) -> BerReport {
        let mut report = BerReport::new(self.config.level_count());
        let cells = self.codec.cells_per_symbol();
        let bits = self.codec.bits_per_symbol();
        let mut programmed = [VthLevel::ERASED; MAX_CELLS_PER_SYMBOL];
        let mut read = [VthLevel::ERASED; MAX_CELLS_PER_SYMBOL];
        for _ in 0..symbols {
            let value = rng.gen_range(0..self.codec.symbol_count());
            self.codec.encode(value, &mut programmed[..cells]);
            for i in 0..cells {
                let target = programmed[i];
                read[i] = self.stress_cell(target, rng);
                report.cells += 1;
                report.cells_by_level[target.index() as usize] += 1;
                if read[i] != target {
                    report.cell_errors += 1;
                    report.cell_errors_by_level[target.index() as usize] += 1;
                }
            }
            let decoded = self.codec.decode(&read[..cells]);
            report.bit_errors += u64::from(self.codec.bit_errors(value, decoded));
            report.symbols += 1;
            report.bits += u64::from(bits);
        }
        report
    }
}

/// Convenience: estimates the raw BER of normal-state MLC cells under the
/// given stress with `symbols` Monte-Carlo trials.
pub fn estimate_mlc_ber<R: Rng + ?Sized>(
    config: &LevelConfig,
    stress: StressConfig,
    symbols: u64,
    rng: &mut R,
) -> BerReport {
    let codec = crate::codec::GrayMlcCodec;
    BerSimulation::new(config, &codec, ProgramModel::default(), stress).run(symbols, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::LevelProbeCodec;
    use flash_model::Hours;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(config: &LevelConfig, stress: StressConfig, n: u64, seed: u64) -> BerReport {
        let mut rng = StdRng::seed_from_u64(seed);
        estimate_mlc_ber(config, stress, n, &mut rng)
    }

    #[test]
    fn no_stress_no_errors_for_programmed_levels() {
        // Without noise sources, only the erased distribution's upper tail
        // can misread; with the baseline config that tail is ~2e-5, so a
        // small run sees essentially no errors.
        let cfg = LevelConfig::normal_mlc();
        let report = run(&cfg, StressConfig::default(), 20_000, 42);
        assert!(report.ber() < 1e-3, "ber {}", report.ber());
        assert_eq!(report.symbols, 20_000);
        assert_eq!(report.bits, 40_000);
        assert_eq!(report.cells, 20_000);
    }

    #[test]
    fn retention_stress_causes_errors_that_grow_with_wear() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let low = run(
            &cfg,
            StressConfig::retention_only(model, RetentionStress::new(2000, Hours::days(1.0))),
            200_000,
            1,
        );
        let high = run(
            &cfg,
            StressConfig::retention_only(model, RetentionStress::new(6000, Hours::months(1.0))),
            200_000,
            1,
        );
        assert!(
            high.ber() > low.ber(),
            "wear+time must raise BER: {} vs {}",
            high.ber(),
            low.ber()
        );
        assert!(high.ber() > 1e-4, "high-stress BER {}", high.ber());
    }

    #[test]
    fn retention_errors_concentrate_at_high_levels() {
        // The observation NUNMA builds on: the top level dominates the
        // retention error mix because it sits highest above x0.
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let report = run(
            &cfg,
            StressConfig::retention_only(model, RetentionStress::new(6000, Hours::months(1.0))),
            400_000,
            7,
        );
        let shares: Vec<f64> = (0..4)
            .map(|i| report.error_share(VthLevel::new(i)))
            .collect();
        // The top level sits highest above x0 and loses charge fastest:
        // its share must dominate every other level's.
        assert!(
            shares[3] > shares[2] && shares[2] > shares[1],
            "retention error shares must grow with level: {shares:?}"
        );
        // Erased cells see no retention errors; only their static Gaussian
        // tail (≈1e-4 of erased cells) can misread, a negligible share.
        assert!(shares[0] < 0.05, "erased share {}", shares[0]);
    }

    #[test]
    fn c2c_stress_causes_upward_errors() {
        let cfg = LevelConfig::normal_mlc();
        let report = run(
            &cfg,
            StressConfig::c2c_only(InterferenceModel::default()),
            200_000,
            3,
        );
        assert!(report.ber() > 0.0, "C2C must cause some errors");
        // The top level has no upper boundary, so it cannot misread upward.
        assert_eq!(report.cell_errors_by_level[3], 0);
    }

    #[test]
    fn reduced_state_beats_baseline_under_same_stress() {
        // The core LevelAdjust claim at cell level. The reduced state needs
        // its non-uniform (NUNMA-3-style) verify voltages to beat the
        // baseline on *retention*; the basic symmetric configuration only
        // wins on interference margin (paper §4.2).
        let base = LevelConfig::normal_mlc();
        let reduced = LevelConfig::new(
            vec![flash_model::Volts(2.65), flash_model::Volts(3.55)],
            vec![flash_model::Volts(2.75), flash_model::Volts(3.70)],
            flash_model::Volts(1.1),
            flash_model::Volts(0.15),
        )
        .unwrap();
        let model = RetentionModel::paper();
        let stress = RetentionStress::new(6000, Hours::weeks(1.0));
        let mut rng = StdRng::seed_from_u64(9);
        // Compare *cell* error rates with uniform level usage in each mode.
        let b = BerSimulation::new(
            &base,
            &LevelProbeCodec::new(4),
            ProgramModel::default(),
            StressConfig::retention_only(model, stress),
        )
        .run(200_000, &mut rng);
        let r = BerSimulation::new(
            &reduced,
            &LevelProbeCodec::new(3),
            ProgramModel::default(),
            StressConfig::retention_only(model, stress),
        )
        .run(200_000, &mut rng);
        assert!(
            r.cell_error_rate() < b.cell_error_rate(),
            "reduced {} must beat baseline {}",
            r.cell_error_rate(),
            b.cell_error_rate()
        );
    }

    #[test]
    fn merge_accumulates() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let stress =
            StressConfig::retention_only(model, RetentionStress::new(5000, Hours::weeks(1.0)));
        let a = run(&cfg, stress, 50_000, 1);
        let b = run(&cfg, stress, 50_000, 2);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.symbols, 100_000);
        assert_eq!(merged.bit_errors, a.bit_errors + b.bit_errors);
        assert_eq!(
            merged.cells_by_level.iter().sum::<u64>(),
            a.cells_by_level.iter().sum::<u64>() + b.cells_by_level.iter().sum::<u64>()
        );
    }

    #[test]
    #[should_panic(expected = "different level counts")]
    fn merge_rejects_mismatched_levels() {
        let mut a = BerReport::new(4);
        let b = BerReport::new(3);
        a.merge(&b);
    }

    #[test]
    fn error_share_sums_to_one_when_errors_exist() {
        let cfg = LevelConfig::normal_mlc();
        let model = RetentionModel::paper();
        let report = run(
            &cfg,
            StressConfig::retention_only(model, RetentionStress::new(6000, Hours::months(1.0))),
            200_000,
            11,
        );
        assert!(report.cell_errors > 0);
        let total: f64 = (0..4).map(|i| report.error_share(VthLevel::new(i))).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
