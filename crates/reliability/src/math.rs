//! Special functions used by the noise and UBER models.
//!
//! The standard library provides no `erf`, `ln Γ` or binomial-tail
//! machinery, so the handful of functions the reliability models need are
//! implemented here: a high-accuracy complementary error function, the
//! Gaussian CDF / Q-function, `ln Γ` (Lanczos), log-binomial coefficients
//! and a numerically careful binomial survival function for Equation (1)
//! of the paper.

/// Complementary error function `erfc(x)`.
///
/// Uses the rational Chebyshev approximation of Numerical Recipes
/// (`erfc ≈ t·exp(-x² + P(t))`), accurate to about `1.2e-7` relative error —
/// far below the Monte-Carlo noise floor of the BER experiments.
///
/// ```
/// use reliability::math::erfc;
///
/// assert!((erfc(0.0) - 1.0).abs() < 1e-7);
/// assert!(erfc(10.0) < 1e-40);
/// ```
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use reliability::math::phi;
///
/// assert!((phi(0.0) - 0.5).abs() < 1e-6);
/// assert!(phi(5.0) > 0.9999);
/// ```
pub fn phi(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Gaussian tail probability `Q(x) = 1 - Φ(x)`.
///
/// Computed through `erfc` directly so it stays accurate deep into the tail
/// (`Q(8) ≈ 6e-16` rather than rounding to zero).
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Natural log of the gamma function, `ln Γ(x)` for `x > 0`.
///
/// Lanczos approximation (g = 5, n = 6), ~1e-10 relative accuracy.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    const COEF: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_9e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

/// `ln C(n, k)`, the log binomial coefficient.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial: k={k} > n={n}");
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Binomial survival function `P(X > k)` for `X ~ Binomial(n, p)`.
///
/// This is the probability that more than `k` bit errors land in an
/// `n`-bit codeword when each bit flips independently with probability `p`
/// — the numerator of the paper's UBER formula (Equation 1).
///
/// Terms are accumulated in log space from `k+1` upward until they become
/// negligible, which stays accurate for the tiny probabilities (1e-15 and
/// below) the UBER target calls for.
pub fn binomial_survival(n: u64, k: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p == 0.0 || k >= n {
        return 0.0;
    }
    if p == 1.0 {
        return 1.0; // all n bits flip, and k < n
    }
    let ln_p = p.ln();
    let ln_q = (-p).ln_1p(); // ln(1 - p), stable for small p
    let mut total = 0.0_f64;
    let mut peak_ln = f64::NEG_INFINITY;
    for i in (k + 1)..=n {
        let ln_term = ln_binomial(n, i) + i as f64 * ln_p + (n - i) as f64 * ln_q;
        peak_ln = peak_ln.max(ln_term);
        total += ln_term.exp();
        // Beyond the distribution mode the terms decay geometrically; stop
        // once they are 40+ orders of magnitude below the peak seen so far.
        if i as f64 > n as f64 * p && ln_term < peak_ln - 92.0 {
            break;
        }
    }
    total.min(1.0)
}

/// Draws a standard normal sample via the Box–Muller transform.
///
/// Takes two independent `U(0,1)` draws; callers feed it from their own
/// seeded RNG so experiments stay reproducible.
pub fn box_muller(u1: f64, u2: f64) -> f64 {
    // Guard against u1 == 0 (ln(0) = -inf).
    let u1 = u1.max(f64::MIN_POSITIVE);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Convenience: samples `N(mean, sigma²)` from an RNG.
pub fn sample_normal<R: rand::Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    mean + sigma * box_muller(rng.gen::<f64>(), rng.gen::<f64>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
            (-1.0, -0.842_700_792_9),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 1e-6,
                "erf({x}) = {} != {want}",
                erf(x)
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        // The rational approximation is accurate to ~1.2e-7.
        for x in [-3.0, -1.0, -0.1, 0.0, 0.1, 1.0, 3.0] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn phi_and_q_are_complementary() {
        for x in [-4.0, -1.0, 0.0, 0.5, 2.0, 4.0] {
            assert!((phi(x) + q_function(x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn q_function_tail_values() {
        // Q(3) ≈ 1.3499e-3, Q(6) ≈ 9.866e-10.
        assert!((q_function(3.0) - 1.3499e-3).abs() / 1.3499e-3 < 1e-3);
        assert!((q_function(6.0) - 9.866e-10).abs() / 9.866e-10 < 1e-2);
        // Deep tail stays positive and monotone.
        assert!(q_function(8.0) > 0.0);
        assert!(q_function(8.0) < q_function(7.0));
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            fact *= n as f64;
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - fact.ln()).abs() < 1e-8,
                "ln Γ({}) = {got}, want {}",
                n + 1,
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert_eq!(ln_binomial(10, 0), 0.0);
        assert_eq!(ln_binomial(10, 10), 0.0);
        assert!((ln_binomial(10, 3) - 120.0_f64.ln()).abs() < 1e-9);
        assert!((ln_binomial(52, 5) - 2_598_960.0_f64.ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "k=5 > n=4")]
    fn ln_binomial_rejects_k_above_n() {
        let _ = ln_binomial(4, 5);
    }

    #[test]
    fn binomial_survival_exact_small() {
        // n=4, p=0.5: P(X > 2) = (C(4,3)+C(4,4))/16 = 5/16.
        let got = binomial_survival(4, 2, 0.5);
        assert!((got - 5.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_survival_edge_cases() {
        assert_eq!(binomial_survival(100, 5, 0.0), 0.0);
        assert_eq!(binomial_survival(100, 100, 0.3), 0.0);
        assert_eq!(binomial_survival(100, 5, 1.0), 1.0);
    }

    #[test]
    fn binomial_survival_tiny_probability() {
        // A 36864-bit codeword at BER 1e-4 (mean ≈ 3.7 errors) with a
        // 30-error budget: the survival probability is tiny but still
        // representable in f64.
        let s = binomial_survival(36_864, 30, 1e-4);
        assert!(s > 0.0, "must not underflow at k=30");
        assert!(s < 1e-10);
        // And it grows with p.
        assert!(binomial_survival(36_864, 30, 1e-3) > s);
        // Far deeper tails legitimately underflow to zero — they are
        // hundreds of orders of magnitude below f64's minimum.
        assert_eq!(binomial_survival(36_864, 3000, 1e-4), 0.0);
    }

    #[test]
    fn binomial_survival_monotone_in_k() {
        let p = 3e-3;
        let mut prev = 1.0;
        for k in [0u64, 10, 50, 100, 200] {
            let s = binomial_survival(36_864, k, p);
            assert!(s <= prev, "survival must fall as k grows");
            prev = s;
        }
    }

    #[test]
    fn sample_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = sample_normal(&mut rng, 2.0, 0.5);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 2.0).abs() < 0.01, "mean {mean}");
        assert!((var - 0.25).abs() < 0.01, "var {var}");
    }
}
