//! Analog programming model: where a cell's threshold voltage actually
//! lands when programmed to a target level.
//!
//! Erased cells follow the Gaussian `N(erased_mean, erased_sigma²)` of the
//! level configuration (paper §6.1: level 0 ~ `N(1.1, 0.35)`). Programmed
//! cells follow the classic ISPP staircase model: the program-and-verify
//! loop stops at the first pulse that pushes `Vth` past the verify voltage,
//! leaving the final value uniformly distributed in
//! `[verify, verify + Vpp)`, plus a small Gaussian placement noise.

use flash_model::{LevelConfig, Volts, VthLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::math::sample_normal;

/// Default post-verify disturb spread, calibrated against the paper's
/// Table 4 (see `crates/core/examples/calibrate_table4.rs`; the fit also
/// sets the baseline verify offsets in `LevelConfig::normal_mlc`).
pub const DEFAULT_PLACEMENT_SIGMA: f64 = 0.015;

/// Stochastic ISPP programming model.
///
/// The verify loop guarantees `Vth ≥ verify` *at program time*; the
/// `placement_sigma` Gaussian models everything that perturbs the cell
/// *after* its own verify passes — program disturb from later pages in
/// the block, random telegraph noise, verify-circuit offset — and is
/// therefore **not** floor-clamped. This post-verify spread is what gives
/// programmed distributions their Gaussian tails (without it, retention
/// BER would fall off a cliff instead of following the smooth curves of
/// the paper's Table 4).
///
/// ```
/// use flash_model::{LevelConfig, VthLevel};
/// use reliability::ProgramModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let cfg = LevelConfig::normal_mlc();
/// let model = ProgramModel::default();
/// let mut rng = StdRng::seed_from_u64(1);
/// let vth = model.program(&cfg, VthLevel::L2, &mut rng);
/// // the cell lands near its verify voltage
/// let verify = cfg.verify_voltage(VthLevel::L2).unwrap();
/// assert!((vth.as_f64() - verify.as_f64()).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramModel {
    /// Gaussian post-verify disturb/RTN spread (standard deviation).
    pub placement_sigma: Volts,
}

impl ProgramModel {
    /// Model with the calibrated default post-verify spread (see the
    /// `flexlevel` crate's Table 4 calibration).
    pub fn new() -> ProgramModel {
        ProgramModel {
            placement_sigma: Volts(DEFAULT_PLACEMENT_SIGMA),
        }
    }

    /// Noise-free ISPP model (uniform placement only); useful for isolating
    /// other noise sources in tests.
    pub fn noiseless() -> ProgramModel {
        ProgramModel {
            placement_sigma: Volts::ZERO,
        }
    }

    /// Samples the initial threshold voltage of a cell programmed to
    /// `level` under `config`.
    ///
    /// The erased level samples from the erased Gaussian; programmed levels
    /// land in `[verify, verify + Vpp)` with the configured placement noise.
    pub fn program<R: Rng + ?Sized>(
        &self,
        config: &LevelConfig,
        level: VthLevel,
        rng: &mut R,
    ) -> Volts {
        match config.verify_voltage(level) {
            None => Volts(sample_normal(
                rng,
                config.erased_mean().as_f64(),
                config.erased_sigma().as_f64(),
            )),
            Some(verify) => {
                let ispp = rng.gen_range(0.0..config.program_pulse().as_f64());
                let noise = if self.placement_sigma > Volts::ZERO {
                    sample_normal(rng, 0.0, self.placement_sigma.as_f64())
                } else {
                    0.0
                };
                // The ISPP placement respects the verify floor, but the
                // post-verify disturb noise does not (see type docs).
                Volts(verify.as_f64() + ispp + noise)
            }
        }
    }

    /// The `Vth` gain of a neighbouring cell during *its* programming —
    /// the `ΔVp` term of the cell-to-cell interference model (Equation 2).
    ///
    /// A neighbour programmed to the erased level gains nothing; one
    /// programmed to level `l` gains roughly the distance from the erased
    /// mean to its final placement.
    pub fn program_shift<R: Rng + ?Sized>(
        &self,
        config: &LevelConfig,
        level: VthLevel,
        rng: &mut R,
    ) -> Volts {
        if level.is_erased() {
            return Volts::ZERO;
        }
        let final_vth = self.program(config, level, rng);
        (final_vth - config.erased_mean()).max(Volts::ZERO)
    }
}

impl Default for ProgramModel {
    fn default() -> ProgramModel {
        ProgramModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn programmed_cells_stay_near_target_window() {
        let cfg = LevelConfig::normal_mlc();
        let model = ProgramModel::new();
        let mut rng = StdRng::seed_from_u64(2);
        let verify = cfg.verify_voltage(VthLevel::L3).unwrap();
        let pulse = cfg.program_pulse();
        let six_sigma = model.placement_sigma * 6.0;
        for _ in 0..10_000 {
            let v = model.program(&cfg, VthLevel::L3, &mut rng);
            assert!(v >= verify - six_sigma, "far below the verify floor: {v}");
            assert!(v <= verify + pulse + six_sigma, "far above the window: {v}");
        }
    }

    #[test]
    fn noiseless_stays_within_one_pulse() {
        let cfg = LevelConfig::normal_mlc();
        let model = ProgramModel::noiseless();
        let mut rng = StdRng::seed_from_u64(3);
        let verify = cfg.verify_voltage(VthLevel::L1).unwrap();
        let pulse = cfg.program_pulse();
        for _ in 0..10_000 {
            let v = model.program(&cfg, VthLevel::L1, &mut rng);
            assert!(v >= verify && v < verify + pulse);
        }
    }

    #[test]
    fn erased_follows_configured_gaussian() {
        let cfg = LevelConfig::normal_mlc();
        let model = ProgramModel::new();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let v = model.program(&cfg, VthLevel::ERASED, &mut rng).as_f64();
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let sigma = (sum2 / n as f64 - mean * mean).sqrt();
        assert!((mean - 1.1).abs() < 0.01, "erased mean {mean}");
        assert!((sigma - 0.35).abs() < 0.01, "erased sigma {sigma}");
    }

    #[test]
    fn fresh_cells_mostly_read_back_correctly() {
        // The post-verify disturb tail leaves a small (<2%) time-zero
        // misread floor; the overwhelming majority must classify right.
        let cfg = LevelConfig::reduced_symmetric();
        let model = ProgramModel::new();
        let mut rng = StdRng::seed_from_u64(5);
        for level in cfg.levels() {
            if level.is_erased() {
                continue; // erased tail may graze the first boundary
            }
            let trials = 10_000;
            let correct = (0..trials)
                .filter(|_| cfg.classify(model.program(&cfg, level, &mut rng)) == level)
                .count();
            assert!(
                correct as f64 / trials as f64 > 0.97,
                "level {level}: only {correct}/{trials} read back correctly"
            );
        }
    }

    #[test]
    fn program_shift_zero_for_erased() {
        let cfg = LevelConfig::normal_mlc();
        let model = ProgramModel::new();
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(
            model.program_shift(&cfg, VthLevel::ERASED, &mut rng),
            Volts::ZERO
        );
        // Higher target level => larger shift on average.
        let avg = |lvl: VthLevel, rng: &mut StdRng| -> f64 {
            (0..5_000)
                .map(|_| model.program_shift(&cfg, lvl, rng).as_f64())
                .sum::<f64>()
                / 5_000.0
        };
        let s1 = avg(VthLevel::L1, &mut rng);
        let s3 = avg(VthLevel::L3, &mut rng);
        assert!(s3 > s1, "L3 shift {s3} must exceed L1 shift {s1}");
    }
}
