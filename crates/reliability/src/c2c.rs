//! Cell-to-cell interference model (paper Equation 2).
//!
//! Programming a floating-gate cell raises the threshold voltage of its
//! already-programmed neighbours through parasitic capacitive coupling:
//!
//! ```text
//! ΔV_c2c = Σ_k ΔVp(k) · γ(k)
//! ```
//!
//! where `ΔVp(k)` is the `Vth` gain of the interfering neighbour in
//! direction `k` during its programming and `γ(k)` the coupling ratio. In
//! the even/odd bitline structure coupling acts in three directions —
//! along the bitline (`γy`), along the wordline (`γx`) and diagonally
//! (`γxy`) — with ratios 0.09, 0.07 and 0.005 respectively (paper §6.1,
//! citing Sun et al.).

use flash_model::{LevelConfig, Volts, VthLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::program::ProgramModel;

/// Capacitive coupling ratios of the even/odd bitline structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CouplingRatios {
    /// Wordline direction (adjacent bitlines), paper value 0.07.
    pub gamma_x: f64,
    /// Bitline direction (adjacent wordlines), paper value 0.09.
    pub gamma_y: f64,
    /// Diagonal, paper value 0.005.
    pub gamma_xy: f64,
}

impl CouplingRatios {
    /// The paper's ratios for the even/odd structure: 0.07 / 0.09 / 0.005.
    pub fn paper_even_odd() -> CouplingRatios {
        CouplingRatios {
            gamma_x: 0.07,
            gamma_y: 0.09,
            gamma_xy: 0.005,
        }
    }

    /// Total coupling seen by a victim whose x/y/diagonal neighbours gain
    /// `dvx`, `dvy`, `dvxy` during their programming.
    pub fn aggregate(&self, dvx: Volts, dvy: Volts, dvxy: Volts) -> Volts {
        dvx * self.gamma_x + dvy * self.gamma_y + dvxy * self.gamma_xy
    }
}

impl Default for CouplingRatios {
    fn default() -> CouplingRatios {
        CouplingRatios::paper_even_odd()
    }
}

/// How many aggressor neighbours act on a victim in each direction.
///
/// In the even/odd structure a victim cell is programmed before: the two
/// adjacent cells on the same wordline (opposite parity, programmed in the
/// other page group's step), one cell on the next wordline (wordlines are
/// programmed in order), and the two diagonal cells of the next wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborCounts {
    /// Aggressors along the wordline.
    pub x: u32,
    /// Aggressors along the bitline.
    pub y: u32,
    /// Diagonal aggressors.
    pub xy: u32,
}

impl NeighborCounts {
    /// The even/odd-structure defaults described above.
    pub fn even_odd_default() -> NeighborCounts {
        NeighborCounts { x: 2, y: 1, xy: 2 }
    }
}

impl Default for NeighborCounts {
    fn default() -> NeighborCounts {
        NeighborCounts::even_odd_default()
    }
}

/// Monte-Carlo cell-to-cell interference model.
///
/// Aggressor data is unknown at victim-programming time, so each aggressor
/// is modelled as programmed to a uniformly random level of the
/// configuration (including staying erased, which contributes no shift).
///
/// ```
/// use flash_model::LevelConfig;
/// use reliability::{InterferenceModel, ProgramModel};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let model = InterferenceModel::default();
/// let cfg = LevelConfig::normal_mlc();
/// let mut rng = StdRng::seed_from_u64(9);
/// let shift = model.sample_shift(&cfg, &ProgramModel::default(), &mut rng);
/// assert!(shift.as_f64() >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Coupling ratios per direction.
    pub ratios: CouplingRatios,
    /// Aggressor counts per direction.
    pub neighbors: NeighborCounts,
    /// Fraction of each aggressor's shift that lands *after* the victim's
    /// final program-verify step. Interference accrued earlier is absorbed
    /// by the ISPP verify loop (the cell keeps getting pulses until it
    /// passes verify *including* whatever coupling it already received),
    /// so only later aggressor activity moves the final distribution.
    /// With the even/odd two-step order roughly half of each neighbour's
    /// total shift arrives post-verify.
    pub post_verify_fraction: f64,
}

impl InterferenceModel {
    /// Builds a model from explicit ratios and neighbour counts with the
    /// default post-verify attenuation.
    pub fn new(ratios: CouplingRatios, neighbors: NeighborCounts) -> InterferenceModel {
        InterferenceModel {
            ratios,
            neighbors,
            post_verify_fraction: 0.5,
        }
    }

    /// Samples the total interference shift experienced by one victim cell,
    /// with aggressor target levels drawn uniformly from `config`'s levels.
    pub fn sample_shift<R: Rng + ?Sized>(
        &self,
        config: &LevelConfig,
        program: &ProgramModel,
        rng: &mut R,
    ) -> Volts {
        let dir_sum = |count: u32, rng: &mut R| -> Volts {
            (0..count)
                .map(|_| {
                    let level = VthLevel::new(rng.gen_range(0..config.level_count() as u8));
                    program.program_shift(config, level, rng)
                })
                .sum()
        };
        let dvx = dir_sum(self.neighbors.x, rng);
        let dvy = dir_sum(self.neighbors.y, rng);
        let dvxy = dir_sum(self.neighbors.xy, rng);
        self.ratios.aggregate(dvx, dvy, dvxy) * self.post_verify_fraction
    }

    /// Expected interference shift (analytic), using each level's nominal
    /// placement as the aggressor gain. Useful for sanity checks and for
    /// fast analytic BER approximations.
    pub fn mean_shift(&self, config: &LevelConfig) -> Volts {
        let levels = config.level_count() as f64;
        let mean_gain: f64 = config
            .levels()
            .map(|l| {
                config
                    .nominal_mean(l)
                    .map(|m| (m - config.erased_mean()).max(Volts::ZERO).as_f64())
                    .unwrap_or(0.0)
            })
            .sum::<f64>()
            / levels;
        let g = &self.ratios;
        let n = &self.neighbors;
        Volts(
            mean_gain
                * (n.x as f64 * g.gamma_x + n.y as f64 * g.gamma_y + n.xy as f64 * g.gamma_xy)
                * self.post_verify_fraction,
        )
    }
}

impl Default for InterferenceModel {
    fn default() -> InterferenceModel {
        InterferenceModel::new(CouplingRatios::default(), NeighborCounts::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_ratios() {
        let r = CouplingRatios::paper_even_odd();
        assert_eq!(r.gamma_x, 0.07);
        assert_eq!(r.gamma_y, 0.09);
        assert_eq!(r.gamma_xy, 0.005);
    }

    #[test]
    fn aggregate_weights_directions() {
        let r = CouplingRatios::paper_even_odd();
        let total = r.aggregate(Volts(1.0), Volts(1.0), Volts(1.0));
        assert!((total.as_f64() - 0.165).abs() < 1e-12);
        // y-direction dominates per volt of aggressor shift
        assert!(
            r.aggregate(Volts::ZERO, Volts(1.0), Volts::ZERO)
                > r.aggregate(Volts(1.0), Volts::ZERO, Volts::ZERO)
        );
    }

    #[test]
    fn sampled_shift_nonnegative_and_bounded() {
        let model = InterferenceModel::default();
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::default();
        let mut rng = StdRng::seed_from_u64(10);
        // Worst case: every aggressor programmed to the top level.
        let max_gain =
            cfg.nominal_mean(cfg.top_level()).unwrap().as_f64() - cfg.erased_mean().as_f64() + 1.0; // generous slack for noise
        let bound = model
            .ratios
            .aggregate(
                Volts(2.0 * max_gain),
                Volts(max_gain),
                Volts(2.0 * max_gain),
            )
            .as_f64();
        for _ in 0..20_000 {
            let s = model.sample_shift(&cfg, &program, &mut rng).as_f64();
            assert!(s >= 0.0);
            assert!(s <= bound, "shift {s} exceeds physical bound {bound}");
        }
    }

    #[test]
    fn monte_carlo_mean_matches_analytic() {
        let model = InterferenceModel::default();
        let cfg = LevelConfig::normal_mlc();
        let program = ProgramModel::noiseless();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let mc_mean: f64 = (0..n)
            .map(|_| model.sample_shift(&cfg, &program, &mut rng).as_f64())
            .sum::<f64>()
            / n as f64;
        let analytic = model.mean_shift(&cfg).as_f64();
        assert!(
            (mc_mean - analytic).abs() / analytic < 0.02,
            "MC {mc_mean} vs analytic {analytic}"
        );
    }

    #[test]
    fn reduced_state_sees_less_interference() {
        // Fewer, lower levels ⇒ smaller expected aggressor gain.
        let model = InterferenceModel::default();
        let normal = model.mean_shift(&LevelConfig::normal_mlc());
        let reduced = model.mean_shift(&LevelConfig::reduced_symmetric());
        assert!(reduced < normal);
    }
}
