//! Even/odd bitline structure and wordline page layout.
//!
//! A wordline crosses every bitline; alternate bitlines (even vs odd) are
//! selected separately, splitting the cells on one wordline into two *page
//! groups* (paper Figure 1(a)).
//!
//! * **Normal mode** — each group contributes a lower page (the LSBs) and an
//!   upper page (the MSBs): 4 pages per wordline, 2 bits per cell.
//! * **Reduced mode (ReduceCode, Figure 3)** — two neighbouring *even* cells
//!   (or two neighbouring *odd* cells) form a pair storing 3 bits. The two
//!   LSBs of all even pairs form the **lower page**, the two LSBs of all odd
//!   pairs the **middle page**, and the MSBs of *all* pairs the **upper
//!   page**: 3 pages per wordline, 1.5 bits per cell.
//!
//! A useful consequence (encoded in [`WordlineLayout`]): the *size in bits*
//! of every page is the same in both modes — a reduced wordline simply holds
//! three pages instead of four, which is how the 25 % density loss
//! materialises at the page level.

use serde::{Deserialize, Serialize};

use crate::level::CellMode;

/// Parity of a bitline: even or odd bitlines are selected separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitlineParity {
    /// Even-numbered bitlines.
    Even,
    /// Odd-numbered bitlines.
    Odd,
}

impl BitlineParity {
    /// Parity of the bitline with the given index.
    #[inline]
    pub fn of(bitline: u32) -> BitlineParity {
        if bitline.is_multiple_of(2) {
            BitlineParity::Even
        } else {
            BitlineParity::Odd
        }
    }

    /// The other parity.
    #[inline]
    pub fn other(self) -> BitlineParity {
        match self {
            BitlineParity::Even => BitlineParity::Odd,
            BitlineParity::Odd => BitlineParity::Even,
        }
    }
}

/// One page position on a *normal-mode* wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NormalPage {
    /// LSBs of the even page group.
    LowerEven,
    /// MSBs of the even page group.
    UpperEven,
    /// LSBs of the odd page group.
    LowerOdd,
    /// MSBs of the odd page group.
    UpperOdd,
}

impl NormalPage {
    /// All four normal-mode pages in program order (lower pages first, as
    /// required by the two-step MLC program sequence).
    pub const ALL: [NormalPage; 4] = [
        NormalPage::LowerEven,
        NormalPage::LowerOdd,
        NormalPage::UpperEven,
        NormalPage::UpperOdd,
    ];

    /// The bitline parity this page lives on.
    #[inline]
    pub fn parity(self) -> BitlineParity {
        match self {
            NormalPage::LowerEven | NormalPage::UpperEven => BitlineParity::Even,
            NormalPage::LowerOdd | NormalPage::UpperOdd => BitlineParity::Odd,
        }
    }

    /// `true` for lower (LSB) pages, programmed in the first step.
    #[inline]
    pub fn is_lower(self) -> bool {
        matches!(self, NormalPage::LowerEven | NormalPage::LowerOdd)
    }
}

/// One page position on a *reduced-mode* (ReduceCode) wordline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReducedPage {
    /// The two LSBs of every even cell pair.
    Lower,
    /// The two LSBs of every odd cell pair.
    Middle,
    /// The MSBs of every cell pair (even and odd).
    Upper,
}

impl ReducedPage {
    /// All three reduced-mode pages in program order: the two LSB pages
    /// first (either order), the upper page last.
    pub const ALL: [ReducedPage; 3] = [ReducedPage::Lower, ReducedPage::Middle, ReducedPage::Upper];

    /// The bitline parity selected while programming this page, or `None`
    /// for the upper page (which selects *all* bitlines — paper §4.1).
    #[inline]
    pub fn parity(self) -> Option<BitlineParity> {
        match self {
            ReducedPage::Lower => Some(BitlineParity::Even),
            ReducedPage::Middle => Some(BitlineParity::Odd),
            ReducedPage::Upper => None,
        }
    }

    /// `true` if this page is programmed in the first program step.
    #[inline]
    pub fn is_first_step(self) -> bool {
        !matches!(self, ReducedPage::Upper)
    }
}

/// Errors constructing a [`WordlineLayout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// Cell count must be a positive multiple of 4 so even and odd groups
    /// pair up evenly under ReduceCode.
    CellCountNotMultipleOfFour(u32),
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::CellCountNotMultipleOfFour(n) => {
                write!(f, "wordline cell count {n} is not a positive multiple of 4")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Describes how the cells of one wordline map onto pages in each mode.
///
/// ```
/// use flash_model::{CellMode, WordlineLayout};
///
/// let wl = WordlineLayout::new(131_072).unwrap(); // 128 Ki cells
/// assert_eq!(wl.pages(CellMode::Normal), 4);
/// assert_eq!(wl.pages(CellMode::Reduced), 3);
/// // page size in bits is mode independent
/// assert_eq!(
///     wl.page_bits(CellMode::Normal),
///     wl.page_bits(CellMode::Reduced),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordlineLayout {
    cells: u32,
}

impl WordlineLayout {
    /// Creates a layout for a wordline crossing `cells` bitlines.
    ///
    /// # Errors
    ///
    /// The count must be a positive multiple of 4: half the cells are even,
    /// half odd, and each half must pair up for ReduceCode.
    pub fn new(cells: u32) -> Result<WordlineLayout, LayoutError> {
        if cells == 0 || !cells.is_multiple_of(4) {
            return Err(LayoutError::CellCountNotMultipleOfFour(cells));
        }
        Ok(WordlineLayout { cells })
    }

    /// A wordline wide enough that one page equals the Table 6 page size
    /// (16 KB = 131 072 bits ⇒ 262 144 cells).
    pub fn paper_wordline() -> WordlineLayout {
        WordlineLayout::new(2 * 16 * 1024 * 8).expect("paper wordline width is a multiple of 4")
    }

    /// Total cells on the wordline.
    #[inline]
    pub fn cells(&self) -> u32 {
        self.cells
    }

    /// Cells per parity group (half of the wordline).
    #[inline]
    pub fn cells_per_group(&self) -> u32 {
        self.cells / 2
    }

    /// ReduceCode cell pairs per parity group.
    #[inline]
    pub fn pairs_per_group(&self) -> u32 {
        self.cells / 4
    }

    /// Number of pages this wordline holds in the given mode.
    #[inline]
    pub fn pages(&self, mode: CellMode) -> u32 {
        match mode {
            CellMode::Normal => 4,
            CellMode::Reduced => 3,
        }
    }

    /// Size of each page in bits — identical in both modes.
    ///
    /// Normal: each page carries one bit per cell of one parity group
    /// (`cells / 2`). Reduced: the lower/middle pages carry 2 bits per pair
    /// of one group (`2 × cells / 4`), the upper page 1 bit per pair of both
    /// groups (`2 × cells / 4`). All equal `cells / 2`.
    #[inline]
    pub fn page_bits(&self, _mode: CellMode) -> u32 {
        self.cells / 2
    }

    /// Total stored bits on the wordline in the given mode.
    #[inline]
    pub fn wordline_bits(&self, mode: CellMode) -> u32 {
        self.pages(mode) * self.page_bits(mode)
    }

    /// Density of the given mode relative to normal mode.
    #[inline]
    pub fn relative_density(&self, mode: CellMode) -> f64 {
        self.wordline_bits(mode) as f64 / self.wordline_bits(CellMode::Normal) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_index() {
        assert_eq!(BitlineParity::of(0), BitlineParity::Even);
        assert_eq!(BitlineParity::of(1), BitlineParity::Odd);
        assert_eq!(BitlineParity::of(2), BitlineParity::Even);
        assert_eq!(BitlineParity::Even.other(), BitlineParity::Odd);
        assert_eq!(BitlineParity::Odd.other(), BitlineParity::Even);
    }

    #[test]
    fn normal_pages() {
        assert_eq!(NormalPage::ALL.len(), 4);
        assert!(NormalPage::LowerEven.is_lower());
        assert!(!NormalPage::UpperOdd.is_lower());
        assert_eq!(NormalPage::LowerOdd.parity(), BitlineParity::Odd);
        assert_eq!(NormalPage::UpperEven.parity(), BitlineParity::Even);
        // Program order: both lower pages precede both upper pages.
        let first_upper = NormalPage::ALL.iter().position(|p| !p.is_lower()).unwrap();
        assert!(NormalPage::ALL[..first_upper].iter().all(|p| p.is_lower()));
    }

    #[test]
    fn reduced_pages() {
        assert_eq!(ReducedPage::ALL.len(), 3);
        assert_eq!(ReducedPage::Lower.parity(), Some(BitlineParity::Even));
        assert_eq!(ReducedPage::Middle.parity(), Some(BitlineParity::Odd));
        // The upper page selects all bitlines (paper: "all bitlines will be
        // selected" in the 2nd program step).
        assert_eq!(ReducedPage::Upper.parity(), None);
        assert!(ReducedPage::Lower.is_first_step());
        assert!(ReducedPage::Middle.is_first_step());
        assert!(!ReducedPage::Upper.is_first_step());
    }

    #[test]
    fn layout_rejects_bad_widths() {
        assert!(WordlineLayout::new(0).is_err());
        assert!(WordlineLayout::new(6).is_err());
        assert!(WordlineLayout::new(8).is_ok());
    }

    #[test]
    fn page_size_is_mode_independent() {
        let wl = WordlineLayout::new(256).unwrap();
        assert_eq!(wl.page_bits(CellMode::Normal), 128);
        assert_eq!(wl.page_bits(CellMode::Reduced), 128);
        assert_eq!(wl.cells_per_group(), 128);
        assert_eq!(wl.pairs_per_group(), 64);
    }

    #[test]
    fn reduced_mode_keeps_three_quarters_density() {
        let wl = WordlineLayout::paper_wordline();
        assert_eq!(wl.wordline_bits(CellMode::Normal), 2 * wl.cells() / 2 * 2);
        assert!((wl.relative_density(CellMode::Reduced) - 0.75).abs() < 1e-12);
        assert_eq!(wl.relative_density(CellMode::Normal), 1.0);
    }

    #[test]
    fn paper_wordline_page_is_16kb() {
        let wl = WordlineLayout::paper_wordline();
        assert_eq!(wl.page_bits(CellMode::Normal), 16 * 1024 * 8);
    }

    #[test]
    fn reduced_bit_accounting() {
        // 3 bits per 2 cells: for N cells, 3N/2 bits total.
        let wl = WordlineLayout::new(1024).unwrap();
        assert_eq!(wl.wordline_bits(CellMode::Reduced), 1024 * 3 / 2);
    }
}
