//! Physical units used throughout the device model.
//!
//! Threshold voltages, program-pulse amplitudes and noise-margin widths are
//! all plain voltages, but keeping them behind the [`Volts`] newtype prevents
//! accidental mixing with unit-less model parameters (coupling ratios,
//! probabilities). Latencies use [`Micros`], matching the microsecond
//! granularity of the paper's Table 6.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A voltage in volts.
///
/// Used for threshold voltages (`Vth`), read reference voltages, program
/// verify voltages and program pulse amplitudes (`Vpp`).
///
/// ```
/// use flash_model::Volts;
///
/// let verify = Volts(2.71);
/// let pulse = Volts(0.15);
/// assert!(verify + pulse > verify);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Volts(pub f64);

impl Volts {
    /// Zero volts.
    pub const ZERO: Volts = Volts(0.0);

    /// Returns the raw value in volts.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Absolute value of the voltage.
    #[inline]
    pub fn abs(self) -> Volts {
        Volts(self.0.abs())
    }

    /// Returns the larger of two voltages.
    #[inline]
    pub fn max(self, other: Volts) -> Volts {
        Volts(self.0.max(other.0))
    }

    /// Returns the smaller of two voltages.
    #[inline]
    pub fn min(self, other: Volts) -> Volts {
        Volts(self.0.min(other.0))
    }

    /// `true` if the value is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} V", self.0)
    }
}

impl Add for Volts {
    type Output = Volts;
    #[inline]
    fn add(self, rhs: Volts) -> Volts {
        Volts(self.0 + rhs.0)
    }
}

impl AddAssign for Volts {
    #[inline]
    fn add_assign(&mut self, rhs: Volts) {
        self.0 += rhs.0;
    }
}

impl Sub for Volts {
    type Output = Volts;
    #[inline]
    fn sub(self, rhs: Volts) -> Volts {
        Volts(self.0 - rhs.0)
    }
}

impl SubAssign for Volts {
    #[inline]
    fn sub_assign(&mut self, rhs: Volts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Volts {
    type Output = Volts;
    #[inline]
    fn neg(self) -> Volts {
        Volts(-self.0)
    }
}

impl Mul<f64> for Volts {
    type Output = Volts;
    #[inline]
    fn mul(self, rhs: f64) -> Volts {
        Volts(self.0 * rhs)
    }
}

impl Div<f64> for Volts {
    type Output = Volts;
    #[inline]
    fn div(self, rhs: f64) -> Volts {
        Volts(self.0 / rhs)
    }
}

impl Sum for Volts {
    fn sum<I: Iterator<Item = Volts>>(iter: I) -> Volts {
        Volts(iter.map(|v| v.0).sum())
    }
}

/// A latency in microseconds.
///
/// Table 6 of the paper expresses all NAND timing in microseconds
/// (program 1000 µs, read 90 µs, erase 3000 µs); simulator bookkeeping stays
/// in the same unit to avoid rounding.
///
/// ```
/// use flash_model::Micros;
///
/// let sense = Micros(90.0);
/// let two_senses = sense * 2.0;
/// assert_eq!(two_senses, Micros(180.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Micros(pub f64);

impl Micros {
    /// Zero microseconds.
    pub const ZERO: Micros = Micros(0.0);

    /// Returns the raw value in microseconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts to milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Converts to seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 / 1_000_000.0
    }

    /// Constructs from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> Micros {
        Micros(ms * 1_000.0)
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Micros) -> Micros {
        Micros(self.0.max(other.0))
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} µs", self.0)
    }
}

impl Add for Micros {
    type Output = Micros;
    #[inline]
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl AddAssign for Micros {
    #[inline]
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl Sub for Micros {
    type Output = Micros;
    #[inline]
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0 - rhs.0)
    }
}

impl Mul<f64> for Micros {
    type Output = Micros;
    #[inline]
    fn mul(self, rhs: f64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl Div<f64> for Micros {
    type Output = Micros;
    #[inline]
    fn div(self, rhs: f64) -> Micros {
        Micros(self.0 / rhs)
    }
}

impl Sum for Micros {
    fn sum<I: Iterator<Item = Micros>>(iter: I) -> Micros {
        Micros(iter.map(|v| v.0).sum())
    }
}

/// Storage time used by the retention model, in hours.
///
/// The paper reports retention BER at 1 day, 2 days, 1 week and 1 month;
/// constructors for those grid points are provided.
///
/// ```
/// use flash_model::Hours;
///
/// assert_eq!(Hours::days(2.0), Hours(48.0));
/// assert_eq!(Hours::weeks(1.0), Hours(168.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Hours(pub f64);

impl Hours {
    /// Zero storage time (freshly programmed).
    pub const ZERO: Hours = Hours(0.0);

    /// Constructs from a number of days.
    #[inline]
    pub fn days(d: f64) -> Hours {
        Hours(d * 24.0)
    }

    /// Constructs from a number of weeks.
    #[inline]
    pub fn weeks(w: f64) -> Hours {
        Hours(w * 24.0 * 7.0)
    }

    /// Constructs from a number of months (30-day months, as the paper's
    /// "1 month" grid point).
    #[inline]
    pub fn months(m: f64) -> Hours {
        Hours(m * 24.0 * 30.0)
    }

    /// Returns the raw value in hours.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Hours {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} h", self.0)
    }
}

impl Add for Hours {
    type Output = Hours;
    #[inline]
    fn add(self, rhs: Hours) -> Hours {
        Hours(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volts_arithmetic() {
        let a = Volts(2.65);
        let b = Volts(0.15);
        assert_eq!(a + b, Volts(2.8));
        assert!((a - b).as_f64() - 2.5 < 1e-12);
        assert_eq!(a * 2.0, Volts(5.3));
        assert_eq!(Volts(3.0) / 2.0, Volts(1.5));
        assert_eq!(-b, Volts(-0.15));
        assert_eq!(Volts(-1.0).abs(), Volts(1.0));
    }

    #[test]
    fn volts_min_max() {
        assert_eq!(Volts(1.0).max(Volts(2.0)), Volts(2.0));
        assert_eq!(Volts(1.0).min(Volts(2.0)), Volts(1.0));
    }

    #[test]
    fn volts_sum() {
        let total: Volts = [Volts(1.0), Volts(2.0), Volts(3.0)].into_iter().sum();
        assert_eq!(total, Volts(6.0));
    }

    #[test]
    fn volts_display() {
        assert_eq!(Volts(2.651).to_string(), "2.651 V");
    }

    #[test]
    fn micros_conversions() {
        assert_eq!(Micros::from_millis(3.0), Micros(3000.0));
        assert_eq!(Micros(3000.0).as_millis(), 3.0);
        assert_eq!(Micros(2_000_000.0).as_secs(), 2.0);
    }

    #[test]
    fn micros_arithmetic() {
        assert_eq!(Micros(90.0) + Micros(10.0), Micros(100.0));
        assert_eq!(Micros(90.0) * 3.0, Micros(270.0));
        assert_eq!(Micros(90.0).max(Micros(100.0)), Micros(100.0));
        let total: Micros = [Micros(1.0), Micros(2.0)].into_iter().sum();
        assert_eq!(total, Micros(3.0));
    }

    #[test]
    fn hours_grid_points() {
        assert_eq!(Hours::days(1.0).as_f64(), 24.0);
        assert_eq!(Hours::days(2.0).as_f64(), 48.0);
        assert_eq!(Hours::weeks(1.0).as_f64(), 168.0);
        assert_eq!(Hours::months(1.0).as_f64(), 720.0);
        assert_eq!(Hours(1.0) + Hours(2.0), Hours(3.0));
    }
}
