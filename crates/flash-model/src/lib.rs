//! Structural and logical model of MLC NAND flash memory.
//!
//! This crate is the device-level foundation of the FlexLevel reproduction
//! (Guo et al., *FlexLevel: a Novel NAND Flash Storage System Design for
//! LDPC Latency Reduction*, DAC 2015). It models everything about a NAND
//! device that is deterministic:
//!
//! * physical [`units`] — [`Volts`], [`Micros`], [`Hours`];
//! * threshold-voltage [`level`s](crate::level) and per-mode voltage
//!   configurations ([`LevelConfig`]), including the normal 4-level MLC
//!   baseline and reduced 3-level (LevelAdjust) shapes;
//! * the [Gray bit mapping](crate::gray "gray") of normal MLC cells;
//! * device [`geometry`] with the paper's Table 6 shape;
//! * the [even/odd bitline structure](crate::bitline "bitline") and how wordlines are
//!   carved into pages in normal and reduced (ReduceCode) modes;
//! * the logical [two-step program sequence](crate::program "program");
//! * operation [`timing`] from Table 6.
//!
//! Stochastic behaviour (program noise, cell-to-cell interference,
//! retention charge loss) lives in the `reliability` crate; the ReduceCode
//! codec and the NUNMA voltage schedules live in the `flexlevel` crate.
//!
//! # Example
//!
//! ```
//! use flash_model::{CellMode, DeviceGeometry, LevelConfig, Volts, VthLevel};
//!
//! // A baseline MLC device as evaluated in the paper.
//! let geometry = DeviceGeometry::paper_chip();
//! let levels = LevelConfig::normal_mlc();
//!
//! // Classify an analog threshold voltage the way a page read would.
//! assert_eq!(levels.classify(Volts(3.0)), VthLevel::L2);
//!
//! // LevelAdjust drops one level, trading 25% density for wider margins.
//! assert_eq!(CellMode::Reduced.relative_density(), 0.75);
//! assert_eq!(geometry.page_bytes(), 16 * 1024);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod bitline;
pub mod geometry;
pub mod gray;
pub mod level;
pub mod program;
pub mod timing;
pub mod units;

pub use array::{ArrayError, MlcBlock};
pub use bitline::{BitlineParity, LayoutError, NormalPage, ReducedPage, WordlineLayout};
pub use geometry::{BlockId, DeviceGeometry, GeometryError, LogicalPage, PhysicalPage};
pub use gray::{Bit, InvalidBitError, MlcBits};
pub use level::{CellMode, CellTech, LevelConfig, LevelConfigError, VthLevel};
pub use program::{MlcCell, ProgramError, ProgramState};
pub use timing::NandTiming;
pub use units::{Hours, Micros, Volts};
