//! Gray-code bit mapping for normal-state (4-level) MLC cells.
//!
//! The paper maps bit pairs `11, 10, 00, 01` to `Vth` levels 0–3. The least
//! significant bit of the pair belongs to the *lower page*, the most
//! significant bit to the *upper page*. Adjacent levels differ in exactly
//! one bit, so a single-level `Vth` distortion corrupts a single bit — the
//! property ReduceCode generalises to cell pairs in reduced mode.

use serde::{Deserialize, Serialize};

use crate::level::VthLevel;

/// A single stored bit.
///
/// A dedicated type (rather than `bool`) keeps page payloads, code words and
/// level mappings self-describing at API boundaries.
///
/// ```
/// use flash_model::Bit;
///
/// assert_eq!(Bit::ONE.flipped(), Bit::ZERO);
/// assert_eq!(u8::from(Bit::ONE), 1);
/// assert_eq!(Bit::from(true), Bit::ONE);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bit(pub bool);

impl Bit {
    /// The bit value `0`.
    pub const ZERO: Bit = Bit(false);
    /// The bit value `1`.
    pub const ONE: Bit = Bit(true);

    /// Returns the opposite bit value.
    #[inline]
    pub fn flipped(self) -> Bit {
        Bit(!self.0)
    }

    /// `true` if the bit is set.
    #[inline]
    pub fn is_one(self) -> bool {
        self.0
    }
}

impl From<bool> for Bit {
    #[inline]
    fn from(b: bool) -> Bit {
        Bit(b)
    }
}

impl From<Bit> for bool {
    #[inline]
    fn from(b: Bit) -> bool {
        b.0
    }
}

impl From<Bit> for u8 {
    #[inline]
    fn from(b: Bit) -> u8 {
        b.0 as u8
    }
}

impl TryFrom<u8> for Bit {
    type Error = InvalidBitError;

    fn try_from(v: u8) -> Result<Bit, InvalidBitError> {
        match v {
            0 => Ok(Bit::ZERO),
            1 => Ok(Bit::ONE),
            other => Err(InvalidBitError(other)),
        }
    }
}

/// Error converting an integer other than 0 or 1 into a [`Bit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBitError(pub u8);

impl std::fmt::Display for InvalidBitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value {} is not a valid bit (expected 0 or 1)", self.0)
    }
}

impl std::error::Error for InvalidBitError {}

impl std::fmt::Display for Bit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0 as u8)
    }
}

/// The two bits stored by a normal-state MLC cell.
///
/// `lower` is the LSB (lower page), `upper` the MSB (upper page).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MlcBits {
    /// Least significant bit — belongs to the lower page.
    pub lower: Bit,
    /// Most significant bit — belongs to the upper page.
    pub upper: Bit,
}

impl MlcBits {
    /// Constructs a bit pair from lower-page and upper-page bits.
    #[inline]
    pub fn new(lower: Bit, upper: Bit) -> MlcBits {
        MlcBits { lower, upper }
    }

    /// Number of bit positions differing from `other` (0, 1 or 2).
    #[inline]
    pub fn hamming_distance(self, other: MlcBits) -> u8 {
        (self.lower != other.lower) as u8 + (self.upper != other.upper) as u8
    }
}

/// Lower-page (LSB) bit pattern across levels 0–3: `1, 1, 0, 0`.
const LOWER_BITS: [Bit; 4] = [Bit::ONE, Bit::ONE, Bit::ZERO, Bit::ZERO];
/// Upper-page (MSB) bit pattern across levels 0–3: `1, 0, 0, 1`.
const UPPER_BITS: [Bit; 4] = [Bit::ONE, Bit::ZERO, Bit::ZERO, Bit::ONE];

/// Maps a bit pair to its Gray-coded `Vth` level (paper §2.1:
/// `11, 10, 00, 01` → levels 0–3).
///
/// ```
/// use flash_model::{gray, Bit, MlcBits, VthLevel};
///
/// // "11" (erased) is level 0
/// assert_eq!(gray::encode(MlcBits::new(Bit::ONE, Bit::ONE)), VthLevel::ERASED);
/// ```
pub fn encode(bits: MlcBits) -> VthLevel {
    for level in 0..4u8 {
        let l = VthLevel::new(level);
        if decode(l) == bits {
            return l;
        }
    }
    unreachable!("all four bit pairs are covered by the Gray map")
}

/// Maps a Gray-coded `Vth` level back to its bit pair.
///
/// # Panics
///
/// Never panics: all four MLC levels are valid inputs by construction of
/// [`VthLevel`].
pub fn decode(level: VthLevel) -> MlcBits {
    let i = level.index() as usize;
    MlcBits::new(LOWER_BITS[i], UPPER_BITS[i])
}

/// The lower-page (LSB) bit of a level.
#[inline]
pub fn lower_bit(level: VthLevel) -> Bit {
    LOWER_BITS[level.index() as usize]
}

/// The upper-page (MSB) bit of a level.
#[inline]
pub fn upper_bit(level: VthLevel) -> Bit {
    UPPER_BITS[level.index() as usize]
}

/// The stored bit pattern of a `Vth` level in the N-level Gray mapping:
/// the bitwise complement of the binary-reflected Gray code,
/// `!(i ^ (i >> 1))` masked to `bits_per_cell` bits.
///
/// This generalises the flash conventions the MLC map hard-codes to any
/// supported cell technology (1–3 bits per cell): the erased level reads
/// all-ones, and adjacent levels differ in exactly one bit, so a
/// single-level `Vth` distortion corrupts a single bit. (The MLC page
/// table above additionally fixes *which* physical page each bit belongs
/// to — an assignment orthogonal to the Gray property itself.)
///
/// ```
/// use flash_model::{gray, VthLevel};
///
/// // TLC erased level reads 0b111.
/// assert_eq!(gray::nlevel_bits(VthLevel::ERASED, 3), 0b111);
/// // Adjacent levels differ in one bit.
/// let a = gray::nlevel_bits(VthLevel::new(3), 3);
/// let b = gray::nlevel_bits(VthLevel::new(4), 3);
/// assert_eq!((a ^ b).count_ones(), 1);
/// ```
///
/// # Panics
///
/// Panics if `bits_per_cell` is outside `1..=3` or the level index is not
/// below `2^bits_per_cell`.
pub fn nlevel_bits(level: VthLevel, bits_per_cell: u32) -> u8 {
    assert!(
        (1..=3).contains(&bits_per_cell),
        "bits per cell {bits_per_cell} outside supported range 1..=3"
    );
    let mask = (1u8 << bits_per_cell) - 1;
    let i = level.index();
    assert!(
        i <= mask,
        "level {i} out of range for {bits_per_cell} bits per cell"
    );
    !(i ^ (i >> 1)) & mask
}

/// Maps an N-level Gray bit pattern back to its `Vth` level (the inverse
/// of [`nlevel_bits`]).
///
/// # Panics
///
/// Panics if `bits_per_cell` is outside `1..=3` or `bits` has bits set
/// beyond the cell's width.
pub fn nlevel_from_bits(bits: u8, bits_per_cell: u32) -> VthLevel {
    assert!(
        (1..=3).contains(&bits_per_cell),
        "bits per cell {bits_per_cell} outside supported range 1..=3"
    );
    let mask = (1u8 << bits_per_cell) - 1;
    assert!(
        bits <= mask,
        "pattern {bits:#b} out of range for {bits_per_cell} bits per cell"
    );
    // Undo the complement, then the Gray prefix-xor.
    let mut g = !bits & mask;
    let mut level = 0u8;
    while g != 0 {
        level ^= g;
        g >>= 1;
    }
    VthLevel::new(level)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mapping() {
        // 11, 10, 00, 01 -> levels 0..3 with (lower, upper) = (LSB, MSB).
        // Level 0: lower=1 upper=1; level 1: lower=1 upper=0;
        // level 2: lower=0 upper=0; level 3: lower=0 upper=1.
        assert_eq!(decode(VthLevel::ERASED), MlcBits::new(Bit::ONE, Bit::ONE));
        assert_eq!(decode(VthLevel::L1), MlcBits::new(Bit::ONE, Bit::ZERO));
        assert_eq!(decode(VthLevel::L2), MlcBits::new(Bit::ZERO, Bit::ZERO));
        assert_eq!(decode(VthLevel::L3), MlcBits::new(Bit::ZERO, Bit::ONE));
    }

    #[test]
    fn roundtrip() {
        for i in 0..4 {
            let level = VthLevel::new(i);
            assert_eq!(encode(decode(level)), level);
        }
    }

    #[test]
    fn adjacent_levels_differ_in_one_bit() {
        // The Gray property: a one-level Vth distortion flips exactly one bit.
        for i in 0..3u8 {
            let a = decode(VthLevel::new(i));
            let b = decode(VthLevel::new(i + 1));
            assert_eq!(a.hamming_distance(b), 1, "levels {i} and {}", i + 1);
        }
    }

    #[test]
    fn erased_cell_reads_all_ones() {
        // An erased cell must read as 1 on both pages (flash convention).
        let bits = decode(VthLevel::ERASED);
        assert!(bits.lower.is_one());
        assert!(bits.upper.is_one());
    }

    #[test]
    fn lower_page_determined_by_first_program_step() {
        // Levels {0,1} carry lower=1, {2,3} carry lower=0: the first program
        // step decides which half of the level range the cell occupies.
        assert_eq!(lower_bit(VthLevel::ERASED), Bit::ONE);
        assert_eq!(lower_bit(VthLevel::L1), Bit::ONE);
        assert_eq!(lower_bit(VthLevel::L2), Bit::ZERO);
        assert_eq!(lower_bit(VthLevel::L3), Bit::ZERO);
    }

    #[test]
    fn bit_conversions() {
        assert_eq!(Bit::try_from(0u8), Ok(Bit::ZERO));
        assert_eq!(Bit::try_from(1u8), Ok(Bit::ONE));
        assert_eq!(Bit::try_from(2u8), Err(InvalidBitError(2)));
        assert_eq!(u8::from(Bit::ONE), 1);
        assert!(!bool::from(Bit::ZERO));
        assert_eq!(Bit::from(true), Bit::ONE);
        assert_eq!(Bit::ONE.to_string(), "1");
        assert_eq!(
            InvalidBitError(7).to_string(),
            "value 7 is not a valid bit (expected 0 or 1)"
        );
    }

    #[test]
    fn nlevel_gray_properties() {
        for bits_per_cell in 1..=3u32 {
            let levels = 1u8 << bits_per_cell;
            let mask = levels - 1;
            // Erased reads all-ones; the map is a bijection; adjacent
            // levels differ in exactly one bit.
            assert_eq!(nlevel_bits(VthLevel::ERASED, bits_per_cell), mask);
            let patterns: Vec<u8> = (0..levels)
                .map(|i| nlevel_bits(VthLevel::new(i), bits_per_cell))
                .collect();
            let mut sorted = patterns.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..levels).collect::<Vec<_>>(), "bijection");
            for w in patterns.windows(2) {
                assert_eq!((w[0] ^ w[1]).count_ones(), 1);
            }
            for i in 0..levels {
                let level = VthLevel::new(i);
                let round = nlevel_from_bits(nlevel_bits(level, bits_per_cell), bits_per_cell);
                assert_eq!(round, level);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside supported range")]
    fn nlevel_rejects_wide_cells() {
        let _ = nlevel_bits(VthLevel::ERASED, 4);
    }

    #[test]
    fn hamming_distance() {
        let a = MlcBits::new(Bit::ONE, Bit::ONE);
        let b = MlcBits::new(Bit::ZERO, Bit::ZERO);
        assert_eq!(a.hamming_distance(b), 2);
        assert_eq!(a.hamming_distance(a), 0);
    }
}
