//! Logical model of the two-step MLC program sequence (normal mode).
//!
//! Programming a normal-state MLC cell happens in two steps (paper §2.1):
//! the first program operation stores the LSB (lower page), the second the
//! MSB (upper page). The final `Vth` level follows the Gray map of
//! [`crate::gray`]. This module captures the *logical* state machine — the
//! ordering rules and bit-to-level transitions — while the analog ISPP
//! placement with noise lives in the `reliability` crate.

use serde::{Deserialize, Serialize};

use crate::gray::{self, Bit, MlcBits};
use crate::level::VthLevel;

/// Program-sequence state of one normal-mode MLC cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProgramState {
    /// Erased; neither page of the cell is programmed.
    #[default]
    Erased,
    /// The lower page (LSB) has been programmed.
    LowerProgrammed(Bit),
    /// Both pages are programmed; the cell holds a final level.
    Programmed(VthLevel),
}

/// Errors from out-of-order program operations.
///
/// NAND cells can only gain charge between erases; re-programming a page or
/// programming pages out of order is rejected by real devices and by this
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramError {
    /// Lower page programmed twice without an intervening erase.
    LowerAlreadyProgrammed,
    /// Upper page programmed before the lower page.
    UpperBeforeLower,
    /// Upper page programmed twice without an intervening erase.
    UpperAlreadyProgrammed,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::LowerAlreadyProgrammed => {
                write!(f, "lower page already programmed since last erase")
            }
            ProgramError::UpperBeforeLower => {
                write!(f, "upper page programmed before lower page")
            }
            ProgramError::UpperAlreadyProgrammed => {
                write!(f, "upper page already programmed since last erase")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A logical normal-mode MLC cell tracking its program sequence.
///
/// ```
/// use flash_model::{Bit, MlcCell, VthLevel};
///
/// # fn main() -> Result<(), flash_model::ProgramError> {
/// let mut cell = MlcCell::new();
/// cell.program_lower(Bit::ZERO)?;
/// cell.program_upper(Bit::ZERO)?;
/// assert_eq!(cell.level(), Some(VthLevel::L2)); // bits 00 → level 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MlcCell {
    state: ProgramState,
}

impl MlcCell {
    /// A fresh, erased cell.
    #[inline]
    pub fn new() -> MlcCell {
        MlcCell {
            state: ProgramState::Erased,
        }
    }

    /// Current program-sequence state.
    #[inline]
    pub fn state(&self) -> ProgramState {
        self.state
    }

    /// Erases the cell back to level 0 (both pages read as `1`).
    #[inline]
    pub fn erase(&mut self) {
        self.state = ProgramState::Erased;
    }

    /// First program step: stores the lower-page (LSB) bit.
    ///
    /// # Errors
    ///
    /// [`ProgramError::LowerAlreadyProgrammed`] if the cell was already
    /// lower- or fully programmed since the last erase.
    pub fn program_lower(&mut self, bit: Bit) -> Result<(), ProgramError> {
        match self.state {
            ProgramState::Erased => {
                self.state = ProgramState::LowerProgrammed(bit);
                Ok(())
            }
            _ => Err(ProgramError::LowerAlreadyProgrammed),
        }
    }

    /// Second program step: stores the upper-page (MSB) bit and commits the
    /// final Gray-coded level.
    ///
    /// # Errors
    ///
    /// [`ProgramError::UpperBeforeLower`] if the lower page has not been
    /// programmed; [`ProgramError::UpperAlreadyProgrammed`] if the cell is
    /// already fully programmed.
    pub fn program_upper(&mut self, bit: Bit) -> Result<(), ProgramError> {
        match self.state {
            ProgramState::LowerProgrammed(lower) => {
                let level = gray::encode(MlcBits::new(lower, bit));
                self.state = ProgramState::Programmed(level);
                Ok(())
            }
            ProgramState::Erased => Err(ProgramError::UpperBeforeLower),
            ProgramState::Programmed(_) => Err(ProgramError::UpperAlreadyProgrammed),
        }
    }

    /// The final `Vth` level, once both steps completed.
    pub fn level(&self) -> Option<VthLevel> {
        match self.state {
            ProgramState::Programmed(l) => Some(l),
            _ => None,
        }
    }

    /// Reads the lower-page bit in any state (an erased cell reads `1`; a
    /// lower-programmed cell returns the stored LSB).
    pub fn read_lower(&self) -> Bit {
        match self.state {
            ProgramState::Erased => Bit::ONE,
            ProgramState::LowerProgrammed(b) => b,
            ProgramState::Programmed(l) => gray::lower_bit(l),
        }
    }

    /// Reads the upper-page bit. An erased or lower-only cell reads `1`
    /// (the unprogrammed convention).
    pub fn read_upper(&self) -> Bit {
        match self.state {
            ProgramState::Programmed(l) => gray::upper_bit(l),
            _ => Bit::ONE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a cell through the full two-step sequence.
    fn program(lower: Bit, upper: Bit) -> MlcCell {
        let mut c = MlcCell::new();
        c.program_lower(lower).unwrap();
        c.program_upper(upper).unwrap();
        c
    }

    #[test]
    fn all_four_levels_reachable() {
        assert_eq!(program(Bit::ONE, Bit::ONE).level(), Some(VthLevel::ERASED));
        assert_eq!(program(Bit::ONE, Bit::ZERO).level(), Some(VthLevel::L1));
        assert_eq!(program(Bit::ZERO, Bit::ZERO).level(), Some(VthLevel::L2));
        assert_eq!(program(Bit::ZERO, Bit::ONE).level(), Some(VthLevel::L3));
    }

    #[test]
    fn readback_matches_programmed_bits() {
        for lower in [Bit::ZERO, Bit::ONE] {
            for upper in [Bit::ZERO, Bit::ONE] {
                let c = program(lower, upper);
                assert_eq!(c.read_lower(), lower);
                assert_eq!(c.read_upper(), upper);
            }
        }
    }

    #[test]
    fn erased_cell_reads_ones() {
        let c = MlcCell::new();
        assert_eq!(c.read_lower(), Bit::ONE);
        assert_eq!(c.read_upper(), Bit::ONE);
        assert_eq!(c.level(), None);
    }

    #[test]
    fn lower_only_cell_reads_stored_lsb() {
        let mut c = MlcCell::new();
        c.program_lower(Bit::ZERO).unwrap();
        assert_eq!(c.read_lower(), Bit::ZERO);
        assert_eq!(c.read_upper(), Bit::ONE);
        assert_eq!(c.level(), None);
    }

    #[test]
    fn ordering_rules_enforced() {
        let mut c = MlcCell::new();
        assert_eq!(
            c.program_upper(Bit::ZERO),
            Err(ProgramError::UpperBeforeLower)
        );
        c.program_lower(Bit::ONE).unwrap();
        assert_eq!(
            c.program_lower(Bit::ONE),
            Err(ProgramError::LowerAlreadyProgrammed)
        );
        c.program_upper(Bit::ONE).unwrap();
        assert_eq!(
            c.program_upper(Bit::ZERO),
            Err(ProgramError::UpperAlreadyProgrammed)
        );
        assert_eq!(
            c.program_lower(Bit::ONE),
            Err(ProgramError::LowerAlreadyProgrammed)
        );
    }

    #[test]
    fn erase_resets_sequence() {
        let mut c = program(Bit::ZERO, Bit::ONE);
        assert_eq!(c.level(), Some(VthLevel::L3));
        c.erase();
        assert_eq!(c.state(), ProgramState::Erased);
        c.program_lower(Bit::ONE).unwrap();
        c.program_upper(Bit::ZERO).unwrap();
        assert_eq!(c.level(), Some(VthLevel::L1));
    }

    #[test]
    fn error_display() {
        assert!(ProgramError::UpperBeforeLower
            .to_string()
            .contains("before"));
        assert!(ProgramError::LowerAlreadyProgrammed
            .to_string()
            .contains("already"));
    }
}
