//! Behavioural cell array: a block of logical MLC cells driven through
//! real page operations.
//!
//! The FTL layer of the simulator treats pages abstractly; this module is
//! the device-level view — a block as wordlines × bitlines of
//! [`MlcCell`] state machines, programmed page by page through the
//! even/odd structure with the ordering constraints real NAND imposes
//! (lower page before upper page on each group, no reprogramming without
//! erase). It backs the device-model examples and differential tests
//! against the logical layer.

use serde::{Deserialize, Serialize};

use crate::bitline::{BitlineParity, NormalPage};
use crate::gray::Bit;
use crate::program::{MlcCell, ProgramError};

/// Errors from block-level page operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayError {
    /// Wordline index out of range.
    WordlineOutOfRange {
        /// Requested wordline.
        wordline: u32,
        /// Wordlines in the block.
        count: u32,
    },
    /// Page data length does not match the page size of the group.
    WrongPageLength {
        /// Bits provided.
        provided: usize,
        /// Bits expected.
        expected: usize,
    },
    /// A cell rejected the program (ordering violation).
    Program(ProgramError),
}

impl From<ProgramError> for ArrayError {
    fn from(e: ProgramError) -> ArrayError {
        ArrayError::Program(e)
    }
}

impl std::fmt::Display for ArrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrayError::WordlineOutOfRange { wordline, count } => {
                write!(f, "wordline {wordline} out of range (block has {count})")
            }
            ArrayError::WrongPageLength { provided, expected } => {
                write!(f, "page data has {provided} bits, expected {expected}")
            }
            ArrayError::Program(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArrayError {}

/// A block of normal-mode MLC cells addressed as wordlines × bitlines.
///
/// ```
/// use flash_model::{Bit, MlcBlock, NormalPage};
///
/// # fn main() -> Result<(), flash_model::ArrayError> {
/// let mut block = MlcBlock::new(2, 8); // 2 wordlines × 8 bitlines
/// let page = vec![Bit::ZERO, Bit::ONE, Bit::ZERO, Bit::ONE];
/// block.program_page(0, NormalPage::LowerEven, &page)?;
/// block.program_page(0, NormalPage::UpperEven, &page)?;
/// assert_eq!(block.read_page(0, NormalPage::LowerEven)?, page);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlcBlock {
    wordlines: u32,
    bitlines: u32,
    /// Row-major: `cells[wl * bitlines + bl]`.
    cells: Vec<MlcCell>,
}

impl MlcBlock {
    /// Creates an erased block of `wordlines × bitlines` cells.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or `bitlines` is odd (the
    /// even/odd structure needs both parities).
    pub fn new(wordlines: u32, bitlines: u32) -> MlcBlock {
        assert!(wordlines > 0 && bitlines > 0, "empty block");
        assert!(
            bitlines.is_multiple_of(2),
            "even/odd structure needs even bitlines"
        );
        MlcBlock {
            wordlines,
            bitlines,
            cells: vec![MlcCell::new(); (wordlines * bitlines) as usize],
        }
    }

    /// Wordlines in the block.
    pub fn wordlines(&self) -> u32 {
        self.wordlines
    }

    /// Bitlines crossing each wordline.
    pub fn bitlines(&self) -> u32 {
        self.bitlines
    }

    /// Bits per page (= cells of one parity group).
    pub fn page_bits(&self) -> usize {
        (self.bitlines / 2) as usize
    }

    /// Erases the whole block.
    pub fn erase(&mut self) {
        for cell in &mut self.cells {
            cell.erase();
        }
    }

    fn group_indices(
        &self,
        wordline: u32,
        parity: BitlineParity,
    ) -> impl Iterator<Item = usize> + '_ {
        let base = (wordline * self.bitlines) as usize;
        let offset = match parity {
            BitlineParity::Even => 0,
            BitlineParity::Odd => 1,
        };
        (0..self.page_bits()).map(move |i| base + offset + 2 * i)
    }

    fn check_wordline(&self, wordline: u32) -> Result<(), ArrayError> {
        if wordline >= self.wordlines {
            return Err(ArrayError::WordlineOutOfRange {
                wordline,
                count: self.wordlines,
            });
        }
        Ok(())
    }

    /// Programs one page of `bits` onto `wordline`.
    ///
    /// # Errors
    ///
    /// [`ArrayError`] on a bad wordline, wrong page length, or a
    /// program-ordering violation (e.g. upper before lower).
    pub fn program_page(
        &mut self,
        wordline: u32,
        page: NormalPage,
        bits: &[Bit],
    ) -> Result<(), ArrayError> {
        self.check_wordline(wordline)?;
        if bits.len() != self.page_bits() {
            return Err(ArrayError::WrongPageLength {
                provided: bits.len(),
                expected: self.page_bits(),
            });
        }
        let indices: Vec<usize> = self.group_indices(wordline, page.parity()).collect();
        // Validate the whole page before mutating any cell, so a failed
        // program leaves the block unchanged.
        for &idx in &indices {
            let mut probe = self.cells[idx];
            if page.is_lower() {
                probe.program_lower(Bit::ZERO).map_err(ArrayError::from)?;
            } else {
                probe.program_upper(Bit::ZERO).map_err(ArrayError::from)?;
            }
        }
        for (&idx, &bit) in indices.iter().zip(bits) {
            if page.is_lower() {
                self.cells[idx].program_lower(bit)?;
            } else {
                self.cells[idx].program_upper(bit)?;
            }
        }
        Ok(())
    }

    /// Reads one page back.
    ///
    /// # Errors
    ///
    /// [`ArrayError::WordlineOutOfRange`] on a bad wordline.
    pub fn read_page(&self, wordline: u32, page: NormalPage) -> Result<Vec<Bit>, ArrayError> {
        self.check_wordline(wordline)?;
        Ok(self
            .group_indices(wordline, page.parity())
            .map(|idx| {
                if page.is_lower() {
                    self.cells[idx].read_lower()
                } else {
                    self.cells[idx].read_upper()
                }
            })
            .collect())
    }

    /// Direct cell access (diagnostics / differential tests).
    pub fn cell(&self, wordline: u32, bitline: u32) -> &MlcCell {
        &self.cells[(wordline * self.bitlines + bitline) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(pattern: &[u8]) -> Vec<Bit> {
        pattern.iter().map(|&b| Bit::from(b != 0)).collect()
    }

    #[test]
    fn block_shape() {
        let block = MlcBlock::new(4, 16);
        assert_eq!(block.wordlines(), 4);
        assert_eq!(block.bitlines(), 16);
        assert_eq!(block.page_bits(), 8);
    }

    #[test]
    #[should_panic(expected = "even bitlines")]
    fn odd_bitlines_rejected() {
        let _ = MlcBlock::new(2, 7);
    }

    #[test]
    fn full_wordline_roundtrip() {
        let mut block = MlcBlock::new(2, 8);
        let lower_even = bits(&[1, 0, 1, 0]);
        let upper_even = bits(&[0, 0, 1, 1]);
        let lower_odd = bits(&[1, 1, 0, 0]);
        let upper_odd = bits(&[0, 1, 0, 1]);
        block
            .program_page(0, NormalPage::LowerEven, &lower_even)
            .unwrap();
        block
            .program_page(0, NormalPage::LowerOdd, &lower_odd)
            .unwrap();
        block
            .program_page(0, NormalPage::UpperEven, &upper_even)
            .unwrap();
        block
            .program_page(0, NormalPage::UpperOdd, &upper_odd)
            .unwrap();
        assert_eq!(
            block.read_page(0, NormalPage::LowerEven).unwrap(),
            lower_even
        );
        assert_eq!(
            block.read_page(0, NormalPage::UpperEven).unwrap(),
            upper_even
        );
        assert_eq!(block.read_page(0, NormalPage::LowerOdd).unwrap(), lower_odd);
        assert_eq!(block.read_page(0, NormalPage::UpperOdd).unwrap(), upper_odd);
    }

    #[test]
    fn erased_pages_read_ones() {
        let block = MlcBlock::new(1, 8);
        for page in NormalPage::ALL {
            assert!(block.read_page(0, page).unwrap().iter().all(|b| b.is_one()));
        }
    }

    #[test]
    fn upper_before_lower_rejected_atomically() {
        let mut block = MlcBlock::new(1, 8);
        let page = bits(&[0, 0, 0, 0]);
        let err = block
            .program_page(0, NormalPage::UpperEven, &page)
            .unwrap_err();
        assert_eq!(err, ArrayError::Program(ProgramError::UpperBeforeLower));
        // The failed program must not have touched any cell.
        assert!(block
            .read_page(0, NormalPage::LowerEven)
            .unwrap()
            .iter()
            .all(|b| b.is_one()));
    }

    #[test]
    fn double_program_rejected() {
        let mut block = MlcBlock::new(1, 8);
        let page = bits(&[0, 1, 0, 1]);
        block.program_page(0, NormalPage::LowerEven, &page).unwrap();
        let err = block
            .program_page(0, NormalPage::LowerEven, &page)
            .unwrap_err();
        assert_eq!(
            err,
            ArrayError::Program(ProgramError::LowerAlreadyProgrammed)
        );
    }

    #[test]
    fn groups_are_independent() {
        let mut block = MlcBlock::new(1, 8);
        block
            .program_page(0, NormalPage::LowerEven, &bits(&[0, 0, 0, 0]))
            .unwrap();
        // Odd group untouched: still reads erased 1s.
        assert!(block
            .read_page(0, NormalPage::LowerOdd)
            .unwrap()
            .iter()
            .all(|b| b.is_one()));
    }

    #[test]
    fn wrong_lengths_and_wordlines_rejected() {
        let mut block = MlcBlock::new(1, 8);
        assert_eq!(
            block.program_page(0, NormalPage::LowerEven, &bits(&[1, 0])),
            Err(ArrayError::WrongPageLength {
                provided: 2,
                expected: 4
            })
        );
        assert!(matches!(
            block.program_page(3, NormalPage::LowerEven, &bits(&[1, 0, 1, 0])),
            Err(ArrayError::WordlineOutOfRange {
                wordline: 3,
                count: 1
            })
        ));
        assert!(block.read_page(9, NormalPage::LowerEven).is_err());
    }

    #[test]
    fn erase_resets_everything() {
        let mut block = MlcBlock::new(1, 8);
        block
            .program_page(0, NormalPage::LowerEven, &bits(&[0, 0, 1, 1]))
            .unwrap();
        block.erase();
        assert!(block
            .read_page(0, NormalPage::LowerEven)
            .unwrap()
            .iter()
            .all(|b| b.is_one()));
        // And the block accepts a fresh program sequence.
        block
            .program_page(0, NormalPage::LowerEven, &bits(&[1, 0, 1, 0]))
            .unwrap();
    }
}
