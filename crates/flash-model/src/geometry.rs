//! Device geometry: blocks, pages and address arithmetic.
//!
//! Defaults follow Table 6 of the paper: 16 KB pages, 1 MB blocks
//! (64 pages/block) and 4096 blocks per chip; the evaluated device is
//! 256 GB with 27 % over-provisioning. The geometry is fully configurable
//! so experiments can run on proportionally scaled-down devices.

use serde::{Deserialize, Serialize};

/// Identifies a physical block within a device.
///
/// ```
/// use flash_model::BlockId;
///
/// let b = BlockId(42);
/// assert_eq!(b.0, 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct BlockId(pub u32);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "block#{}", self.0)
    }
}

/// Identifies a physical page: a block plus a page offset within it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysicalPage {
    /// The containing block.
    pub block: BlockId,
    /// Page index within the block, `0..pages_per_block`.
    pub page: u32,
}

impl PhysicalPage {
    /// Constructs a physical page address.
    #[inline]
    pub fn new(block: BlockId, page: u32) -> PhysicalPage {
        PhysicalPage { block, page }
    }
}

impl std::fmt::Display for PhysicalPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/page#{}", self.block, self.page)
    }
}

/// A logical page number as seen by the host through the FTL.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogicalPage(pub u64);

impl std::fmt::Display for LogicalPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lpn#{}", self.0)
    }
}

/// Errors constructing a [`DeviceGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension (blocks, pages per block, page size) was zero.
    ZeroDimension(&'static str),
    /// Over-provisioning fraction outside `[0, 1)`.
    InvalidOverProvisioning(u32),
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::ZeroDimension(what) => write!(f, "geometry dimension {what} is zero"),
            GeometryError::InvalidOverProvisioning(pct) => {
                write!(f, "over-provisioning {pct}% outside 0..100")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Physical organisation of a NAND device.
///
/// ```
/// use flash_model::DeviceGeometry;
///
/// let geom = DeviceGeometry::paper_chip();
/// assert_eq!(geom.pages_per_block(), 64);          // 1 MB / 16 KB
/// assert_eq!(geom.raw_bytes(), 4 << 30);           // 4096 × 1 MB
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceGeometry {
    blocks: u32,
    pages_per_block: u32,
    page_bytes: u32,
    over_provisioning_pct: u32,
}

impl DeviceGeometry {
    /// Creates a geometry.
    ///
    /// `over_provisioning_pct` is the percentage of raw capacity reserved
    /// beyond the exported logical capacity (the paper uses 27 %).
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any dimension is zero or the
    /// over-provisioning percentage is 100 or more.
    pub fn new(
        blocks: u32,
        pages_per_block: u32,
        page_bytes: u32,
        over_provisioning_pct: u32,
    ) -> Result<DeviceGeometry, GeometryError> {
        if blocks == 0 {
            return Err(GeometryError::ZeroDimension("blocks"));
        }
        if pages_per_block == 0 {
            return Err(GeometryError::ZeroDimension("pages_per_block"));
        }
        if page_bytes == 0 {
            return Err(GeometryError::ZeroDimension("page_bytes"));
        }
        if over_provisioning_pct >= 100 {
            return Err(GeometryError::InvalidOverProvisioning(
                over_provisioning_pct,
            ));
        }
        Ok(DeviceGeometry {
            blocks,
            pages_per_block,
            page_bytes,
            over_provisioning_pct,
        })
    }

    /// The single-chip geometry of Table 6: 4096 blocks × 1 MB blocks of
    /// 16 KB pages, with the paper's 27 % over-provisioning.
    pub fn paper_chip() -> DeviceGeometry {
        DeviceGeometry::new(4096, 64, 16 * 1024, 27).expect("paper geometry is valid")
    }

    /// A scaled-down geometry with the same page/block shape as
    /// [`paper_chip`](Self::paper_chip) but `blocks` blocks, for fast
    /// simulation. Over-provisioning stays at the paper's 27 %.
    pub fn scaled(blocks: u32) -> Result<DeviceGeometry, GeometryError> {
        DeviceGeometry::new(blocks, 64, 16 * 1024, 27)
    }

    /// Number of physical blocks.
    #[inline]
    pub fn blocks(&self) -> u32 {
        self.blocks
    }

    /// Pages per block.
    #[inline]
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Page payload size in bytes.
    #[inline]
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Over-provisioning percentage of raw capacity.
    #[inline]
    pub fn over_provisioning_pct(&self) -> u32 {
        self.over_provisioning_pct
    }

    /// Total number of physical pages.
    #[inline]
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes (all physical pages).
    #[inline]
    pub fn raw_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Block size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Logical (exported) capacity in pages after over-provisioning.
    #[inline]
    pub fn logical_pages(&self) -> u64 {
        self.total_pages() * (100 - self.over_provisioning_pct) as u64 / 100
    }

    /// Logical (exported) capacity in bytes.
    #[inline]
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.page_bytes as u64
    }

    /// `true` if `page` addresses a valid physical page of this geometry.
    #[inline]
    pub fn contains(&self, page: PhysicalPage) -> bool {
        page.block.0 < self.blocks && page.page < self.pages_per_block
    }

    /// Flattens a physical page address into a dense index in
    /// `0..total_pages()`, or `None` if out of range.
    pub fn page_index(&self, page: PhysicalPage) -> Option<u64> {
        if !self.contains(page) {
            return None;
        }
        Some(page.block.0 as u64 * self.pages_per_block as u64 + page.page as u64)
    }

    /// Inverse of [`page_index`](Self::page_index).
    pub fn page_at(&self, index: u64) -> Option<PhysicalPage> {
        if index >= self.total_pages() {
            return None;
        }
        Some(PhysicalPage::new(
            BlockId((index / self.pages_per_block as u64) as u32),
            (index % self.pages_per_block as u64) as u32,
        ))
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks).map(BlockId)
    }
}

impl Default for DeviceGeometry {
    fn default() -> DeviceGeometry {
        DeviceGeometry::paper_chip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_chip_matches_table6() {
        let g = DeviceGeometry::paper_chip();
        assert_eq!(g.blocks(), 4096);
        assert_eq!(g.page_bytes(), 16 * 1024);
        assert_eq!(g.block_bytes(), 1 << 20); // 1 MB block
        assert_eq!(g.pages_per_block(), 64);
        assert_eq!(g.raw_bytes(), 4 << 30); // 4 GB chip
        assert_eq!(g.over_provisioning_pct(), 27);
    }

    #[test]
    fn logical_capacity_respects_over_provisioning() {
        let g = DeviceGeometry::paper_chip();
        assert_eq!(g.logical_pages(), g.total_pages() * 73 / 100);
        assert!(g.logical_bytes() < g.raw_bytes());
    }

    #[test]
    fn page_index_roundtrip() {
        let g = DeviceGeometry::scaled(16).unwrap();
        for idx in [0, 1, 63, 64, 1023] {
            let p = g.page_at(idx).unwrap();
            assert_eq!(g.page_index(p), Some(idx));
        }
        assert_eq!(g.page_at(g.total_pages()), None);
        assert_eq!(
            g.page_index(PhysicalPage::new(BlockId(16), 0)),
            None,
            "block out of range"
        );
        assert_eq!(
            g.page_index(PhysicalPage::new(BlockId(0), 64)),
            None,
            "page out of range"
        );
    }

    #[test]
    fn invalid_geometries_rejected() {
        assert!(matches!(
            DeviceGeometry::new(0, 64, 16384, 27),
            Err(GeometryError::ZeroDimension("blocks"))
        ));
        assert!(matches!(
            DeviceGeometry::new(10, 0, 16384, 27),
            Err(GeometryError::ZeroDimension("pages_per_block"))
        ));
        assert!(matches!(
            DeviceGeometry::new(10, 64, 0, 27),
            Err(GeometryError::ZeroDimension("page_bytes"))
        ));
        assert!(matches!(
            DeviceGeometry::new(10, 64, 16384, 100),
            Err(GeometryError::InvalidOverProvisioning(100))
        ));
    }

    #[test]
    fn display_impls() {
        assert_eq!(BlockId(3).to_string(), "block#3");
        assert_eq!(
            PhysicalPage::new(BlockId(3), 7).to_string(),
            "block#3/page#7"
        );
        assert_eq!(LogicalPage(9).to_string(), "lpn#9");
    }

    #[test]
    fn block_ids_iterates_all() {
        let g = DeviceGeometry::scaled(4).unwrap();
        let ids: Vec<_> = g.block_ids().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3], BlockId(3));
    }
}
