//! Threshold-voltage levels and per-mode level configurations.
//!
//! A multi-level cell stores information as one of several discrete
//! threshold-voltage (`Vth`) *levels*. A [`LevelConfig`] describes one
//! operating mode of a cell: how many levels exist, the read reference
//! voltages separating them, the program verify voltage of each programmed
//! level and the nominal (post-program) distribution placement.
//!
//! FlexLevel cells have two modes ([`CellMode`]):
//!
//! * [`CellMode::Normal`] — four levels, a regular MLC cell storing 2 bits.
//! * [`CellMode::Reduced`] — three levels (LevelAdjust); a *pair* of reduced
//!   cells stores 3 bits via ReduceCode (built in the `flexlevel` crate).
//!
//! The paper's design point is MLC, but the same machinery generalises to
//! any cell technology ([`CellTech`]): SLC (2 levels), MLC (4) and TLC (8)
//! configurations pack their levels into the same overall `Vth` window, so
//! LevelAdjust/ReduceCode can be priced off the MLC design point.

use serde::{Deserialize, Serialize};

use crate::units::Volts;

/// A discrete threshold-voltage level of a cell.
///
/// Level 0 is the erased state; higher levels hold progressively more charge.
///
/// ```
/// use flash_model::VthLevel;
///
/// let l2 = VthLevel::new(2);
/// assert_eq!(l2.index(), 2);
/// assert!(l2 > VthLevel::ERASED);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VthLevel(u8);

impl VthLevel {
    /// The erased state (level 0).
    pub const ERASED: VthLevel = VthLevel(0);
    /// Level 1.
    pub const L1: VthLevel = VthLevel(1);
    /// Level 2.
    pub const L2: VthLevel = VthLevel(2);
    /// Level 3 (only valid in normal, 4-level mode).
    pub const L3: VthLevel = VthLevel(3);

    /// Creates a level from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds 7; no supported cell technology (up to
    /// TLC, 8 levels) has more levels in this model.
    #[inline]
    pub fn new(index: u8) -> VthLevel {
        assert!(index <= 7, "Vth level index out of range: {index}");
        VthLevel(index)
    }

    /// The raw level index.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// `true` for the erased state.
    #[inline]
    pub fn is_erased(self) -> bool {
        self.0 == 0
    }

    /// Distance in levels to another level (used by the one-bit-error
    /// analysis of ReduceCode).
    #[inline]
    pub fn distance(self, other: VthLevel) -> u8 {
        self.0.abs_diff(other.0)
    }
}

impl std::fmt::Display for VthLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Operating mode of a FlexLevel cell.
///
/// Switching a page to [`CellMode::Reduced`] is the LevelAdjust operation:
/// the top level is dropped, each remaining level gets a wider noise margin,
/// and ReduceCode packs 3 bits into each cell pair (75 % of normal density).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CellMode {
    /// Regular MLC operation: four levels, 2 bits per cell, Gray mapping.
    #[default]
    Normal,
    /// LevelAdjust operation: three levels, 3 bits per cell *pair*.
    Reduced,
}

impl CellMode {
    /// Number of `Vth` levels in this mode.
    #[inline]
    pub fn level_count(self) -> usize {
        match self {
            CellMode::Normal => 4,
            CellMode::Reduced => 3,
        }
    }

    /// Stored bits per *pair of cells* in this mode (normal: 2 × 2 bits;
    /// reduced: 3 bits via ReduceCode).
    #[inline]
    pub fn bits_per_cell_pair(self) -> usize {
        match self {
            CellMode::Normal => 4,
            CellMode::Reduced => 3,
        }
    }

    /// Storage density relative to normal mode (reduced mode keeps 75 %).
    #[inline]
    pub fn relative_density(self) -> f64 {
        self.bits_per_cell_pair() as f64 / CellMode::Normal.bits_per_cell_pair() as f64
    }
}

/// Cell technology: how many `Vth` levels a cell discriminates.
///
/// The paper's design point is [`CellTech::Mlc`]; the other technologies
/// reuse the same machinery with their level count packed into the *same*
/// overall `Vth` window, which is what makes an off-design-point
/// evaluation fair — SLC trades capacity for margin, TLC trades margin
/// for capacity, and LevelAdjust/ReduceCode can be priced against either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CellTech {
    /// Single-level cell: 2 levels, 1 bit.
    Slc,
    /// Multi-level cell: 4 levels, 2 bits — the paper's design point.
    #[default]
    Mlc,
    /// Triple-level cell: 8 levels, 3 bits.
    Tlc,
}

impl CellTech {
    /// All supported technologies, densest last.
    pub const ALL: [CellTech; 3] = [CellTech::Slc, CellTech::Mlc, CellTech::Tlc];

    /// Bits stored per cell.
    #[inline]
    pub fn bits_per_cell(self) -> u32 {
        match self {
            CellTech::Slc => 1,
            CellTech::Mlc => 2,
            CellTech::Tlc => 3,
        }
    }

    /// Number of `Vth` levels (`2^bits`).
    #[inline]
    pub fn level_count(self) -> usize {
        1 << self.bits_per_cell()
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            CellTech::Slc => "SLC",
            CellTech::Mlc => "MLC",
            CellTech::Tlc => "TLC",
        }
    }

    /// Parses a label (`slc`/`mlc`/`tlc`, case-insensitive).
    pub fn parse(name: &str) -> Option<CellTech> {
        match name.to_ascii_lowercase().as_str() {
            "slc" => Some(CellTech::Slc),
            "mlc" => Some(CellTech::Mlc),
            "tlc" => Some(CellTech::Tlc),
            _ => None,
        }
    }

    /// The normal-mode voltage configuration of this technology.
    ///
    /// MLC is exactly [`LevelConfig::normal_mlc`] — bit-identical to the
    /// pre-generalisation model, so the paper's calibrated numbers never
    /// move. SLC and TLC pack their read references into the same
    /// programmed window (`[2.40, 3.60]`), with verify offsets and ISPP
    /// pulse scaled proportionally to the level spacing: wider margins
    /// for SLC, narrower for TLC.
    pub fn level_config(self) -> LevelConfig {
        match self {
            CellTech::Mlc => LevelConfig::normal_mlc(),
            _ => packed_config(self.level_count()),
        }
    }

    /// The reduced-mode (LevelAdjust) configuration: one level dropped,
    /// the remainder re-spread over the same window. SLC is already at
    /// the 2-level floor, so LevelAdjust is the identity there. (MLC
    /// deployments use the NUNMA schedules from the `flexlevel` crate;
    /// this symmetric shape is the technology-generic fallback.)
    pub fn reduced_level_config(self) -> LevelConfig {
        match self {
            CellTech::Slc => self.level_config(),
            _ => packed_config(self.level_count() - 1),
        }
    }

    /// Bits per cell a ReduceCode-style pair packing achieves in reduced
    /// mode: `floor(log2((n-1)^2)) / 2` for `n` normal levels (MLC:
    /// 3 bits per pair = 1.5; TLC: 5 bits per pair = 2.5). SLC has no
    /// reduced mode and keeps its normal density.
    pub fn reduced_bits_per_cell(self) -> f64 {
        let levels = self.level_count() - 1;
        if levels < 2 {
            return self.bits_per_cell() as f64;
        }
        ((levels * levels) as f64).log2().floor() / 2.0
    }
}

impl std::fmt::Display for CellTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// `n` levels spread evenly over the MLC programmed window `[2.40, 3.60]`,
/// with the verify offset (52 mV at MLC's 0.60 V spacing) and ISPP pulse
/// (0.15 V at MLC) scaled proportionally to the level spacing. A single
/// read reference (SLC) sits at the window midpoint with double-MLC scale.
fn packed_config(levels: usize) -> LevelConfig {
    let refs = levels - 1;
    let (read_refs, scale): (Vec<Volts>, f64) = if refs == 1 {
        (vec![Volts(3.00)], 2.0)
    } else {
        let spacing = 1.20 / (refs as f64 - 1.0);
        (
            (0..refs)
                .map(|k| Volts(2.40 + spacing * k as f64))
                .collect(),
            spacing / 0.60,
        )
    };
    let verify = read_refs
        .iter()
        .map(|r| *r + Volts(0.052 * scale))
        .collect();
    LevelConfig::new(read_refs, verify, Volts(1.1), Volts(0.15 * scale))
        .expect("packed level configuration is valid")
}

/// Voltage configuration of one cell operating mode.
///
/// Holds, for `n` levels: `n - 1` read reference voltages (level boundaries),
/// a program verify voltage per programmed level, and the nominal mean of the
/// erased distribution. Programmed cells land in `[verify, verify + Vpp)`
/// under the ISPP staircase model, so the verify voltage *is* the lower edge
/// of a programmed distribution.
///
/// ```
/// use flash_model::{LevelConfig, Volts, VthLevel};
///
/// let cfg = LevelConfig::normal_mlc();
/// assert_eq!(cfg.level_count(), 4);
/// assert_eq!(cfg.classify(Volts(0.9)), VthLevel::ERASED);
/// assert_eq!(cfg.classify(Volts(9.0)), VthLevel::L3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelConfig {
    read_refs: Vec<Volts>,
    verify: Vec<Volts>,
    erased_mean: Volts,
    erased_sigma: Volts,
    program_pulse: Volts,
}

/// Error returned when a [`LevelConfig`] is structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelConfigError {
    /// Fewer than 2 or more than 8 levels requested.
    LevelCountOutOfRange(usize),
    /// Read reference voltages are not strictly increasing.
    ReadRefsNotSorted,
    /// One verify voltage per programmed level is required.
    VerifyCountMismatch {
        /// Number of programmed levels implied by the read references.
        expected: usize,
        /// Number of verify voltages supplied.
        actual: usize,
    },
    /// A verify voltage lies below its level's lower read reference, so a
    /// successfully verified cell could still read back as the level below.
    VerifyBelowReadRef {
        /// Index of the offending programmed level (1-based level index).
        level: u8,
    },
    /// The program pulse amplitude must be positive.
    NonPositivePulse,
}

impl std::fmt::Display for LevelConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelConfigError::LevelCountOutOfRange(n) => {
                write!(f, "level count {n} outside supported range 2..=8")
            }
            LevelConfigError::ReadRefsNotSorted => {
                write!(f, "read reference voltages must be strictly increasing")
            }
            LevelConfigError::VerifyCountMismatch { expected, actual } => write!(
                f,
                "expected {expected} verify voltages (one per programmed level), got {actual}"
            ),
            LevelConfigError::VerifyBelowReadRef { level } => write!(
                f,
                "verify voltage of level {level} is below its lower read reference"
            ),
            LevelConfigError::NonPositivePulse => {
                write!(f, "program pulse amplitude must be positive")
            }
        }
    }
}

impl std::error::Error for LevelConfigError {}

impl LevelConfig {
    /// Builds a configuration from raw voltages.
    ///
    /// `read_refs` are the level boundaries (length = level count − 1),
    /// `verify` the program verify voltage of each *programmed* level
    /// (length = level count − 1, the erased level is not programmed), and
    /// `program_pulse` the ISPP step `Vpp`.
    ///
    /// # Errors
    ///
    /// Returns a [`LevelConfigError`] if the voltage sets are inconsistent
    /// (unsorted read references, wrong verify count, a verify voltage below
    /// its level's lower boundary, or a non-positive pulse).
    pub fn new(
        read_refs: Vec<Volts>,
        verify: Vec<Volts>,
        erased_mean: Volts,
        program_pulse: Volts,
    ) -> Result<LevelConfig, LevelConfigError> {
        let levels = read_refs.len() + 1;
        if !(2..=8).contains(&levels) {
            return Err(LevelConfigError::LevelCountOutOfRange(levels));
        }
        if read_refs.windows(2).any(|w| w[0] >= w[1]) {
            return Err(LevelConfigError::ReadRefsNotSorted);
        }
        if verify.len() != read_refs.len() {
            return Err(LevelConfigError::VerifyCountMismatch {
                expected: read_refs.len(),
                actual: verify.len(),
            });
        }
        for (i, (v, r)) in verify.iter().zip(read_refs.iter()).enumerate() {
            if v < r {
                return Err(LevelConfigError::VerifyBelowReadRef {
                    level: (i + 1) as u8,
                });
            }
        }
        if program_pulse <= Volts::ZERO {
            return Err(LevelConfigError::NonPositivePulse);
        }
        Ok(LevelConfig {
            read_refs,
            verify,
            erased_mean,
            erased_sigma: Volts(0.35),
            program_pulse,
        })
    }

    /// Replaces the standard deviation of the erased (`L0`) distribution
    /// (paper §6.1 models level 0 as `N(1.1, 0.35)`; 0.35 is the default).
    #[must_use]
    pub fn with_erased_sigma(mut self, sigma: Volts) -> LevelConfig {
        self.erased_sigma = sigma;
        self
    }

    /// The regular MLC (normal state) configuration used as the paper's
    /// baseline: four levels packed into the same overall `Vth` window the
    /// reduced state spreads three levels across.
    ///
    /// The erased distribution is `N(1.1, 0.35)` (paper §6.1). The three
    /// programmed levels occupy `[2.40, 3.80]` with verify voltages 52 mV
    /// above each lower read reference — the paper never publishes its
    /// baseline margins, so this offset was fitted against Table 4 (see
    /// `crates/core/examples/calibrate_table4.rs`). It sits just under the
    /// 60 mV margin of NUNMA 1, preserving the paper's strict ordering
    /// baseline > NUNMA 1 > NUNMA 2 > NUNMA 3 at every stress point.
    pub fn normal_mlc() -> LevelConfig {
        LevelConfig::new(
            vec![Volts(2.40), Volts(3.00), Volts(3.60)],
            vec![Volts(2.452), Volts(3.052), Volts(3.652)],
            Volts(1.1),
            Volts(0.15),
        )
        .expect("baseline MLC configuration is valid")
    }

    /// A reduced-state (three-level) configuration with symmetric margins
    /// and no NUNMA bias: verify voltages sit just above the Table 3 read
    /// references, as in Figure 4(a).
    ///
    /// NUNMA variants (Table 3) are constructed by the `flexlevel` crate.
    pub fn reduced_symmetric() -> LevelConfig {
        LevelConfig::new(
            vec![Volts(2.65), Volts(3.55)],
            vec![Volts(2.70), Volts(3.60)],
            Volts(1.1),
            Volts(0.15),
        )
        .expect("symmetric reduced configuration is valid")
    }

    /// Number of `Vth` levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.read_refs.len() + 1
    }

    /// The read reference voltages (level boundaries), lowest first.
    #[inline]
    pub fn read_refs(&self) -> &[Volts] {
        &self.read_refs
    }

    /// The program verify voltage of a programmed level.
    ///
    /// Returns `None` for the erased level or out-of-range levels.
    #[inline]
    pub fn verify_voltage(&self, level: VthLevel) -> Option<Volts> {
        if level.is_erased() {
            None
        } else {
            self.verify.get(level.index() as usize - 1).copied()
        }
    }

    /// Mean of the erased (`L0`) distribution.
    #[inline]
    pub fn erased_mean(&self) -> Volts {
        self.erased_mean
    }

    /// Standard deviation of the erased (`L0`) distribution.
    #[inline]
    pub fn erased_sigma(&self) -> Volts {
        self.erased_sigma
    }

    /// ISPP program pulse amplitude `Vpp`.
    #[inline]
    pub fn program_pulse(&self) -> Volts {
        self.program_pulse
    }

    /// Nominal centre of a level's post-program distribution.
    ///
    /// The erased level centres on [`erased_mean`](Self::erased_mean);
    /// programmed levels centre half a pulse above their verify voltage
    /// (ISPP places cells uniformly in `[verify, verify + Vpp)`).
    pub fn nominal_mean(&self, level: VthLevel) -> Option<Volts> {
        if level.index() as usize >= self.level_count() {
            return None;
        }
        Some(match self.verify_voltage(level) {
            None => self.erased_mean,
            Some(v) => v + self.program_pulse / 2.0,
        })
    }

    /// Classifies an analog threshold voltage into a level by comparing
    /// against the read references, exactly as a page read does.
    pub fn classify(&self, vth: Volts) -> VthLevel {
        let idx = self.read_refs.iter().take_while(|r| vth >= **r).count();
        VthLevel::new(idx as u8)
    }

    /// The *retention* noise margin of a level: distance from the nominal
    /// post-program placement down to the lower read reference. Charge loss
    /// greater than this margin misreads the cell one level down.
    ///
    /// Returns `None` for the erased level (it has no lower boundary).
    pub fn retention_margin(&self, level: VthLevel) -> Option<Volts> {
        let lower_ref = *self
            .read_refs
            .get((level.index() as usize).checked_sub(1)?)?;
        Some(self.nominal_mean(level)? - lower_ref)
    }

    /// The *interference* noise margin of a level: distance from the nominal
    /// post-program placement up to the upper read reference. A `Vth` gain
    /// (cell-to-cell coupling) greater than this misreads one level up.
    ///
    /// Returns `None` for the top level (it has no upper boundary).
    pub fn interference_margin(&self, level: VthLevel) -> Option<Volts> {
        let upper_ref = *self.read_refs.get(level.index() as usize)?;
        Some(upper_ref - self.nominal_mean(level)?)
    }

    /// The highest valid level in this configuration.
    #[inline]
    pub fn top_level(&self) -> VthLevel {
        VthLevel::new((self.level_count() - 1) as u8)
    }

    /// Iterates over all levels of this configuration, lowest first.
    pub fn levels(&self) -> impl Iterator<Item = VthLevel> + '_ {
        (0..self.level_count() as u8).map(VthLevel::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_basic() {
        assert_eq!(VthLevel::new(2).index(), 2);
        assert!(VthLevel::ERASED.is_erased());
        assert!(!VthLevel::L1.is_erased());
        assert_eq!(VthLevel::L3.distance(VthLevel::L1), 2);
        assert_eq!(VthLevel::L1.distance(VthLevel::L3), 2);
        assert_eq!(VthLevel::L2.to_string(), "L2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_out_of_range_panics() {
        let _ = VthLevel::new(8);
    }

    #[test]
    fn tlc_levels_are_valid() {
        // The N-level generalisation: indices 4..=7 exist for TLC.
        for i in 4..8u8 {
            assert_eq!(VthLevel::new(i).index(), i);
        }
    }

    #[test]
    fn cell_tech_shapes() {
        assert_eq!(CellTech::Slc.level_count(), 2);
        assert_eq!(CellTech::Mlc.level_count(), 4);
        assert_eq!(CellTech::Tlc.level_count(), 8);
        assert_eq!(CellTech::default(), CellTech::Mlc);
        assert_eq!(CellTech::parse("tlc"), Some(CellTech::Tlc));
        assert_eq!(CellTech::parse("MLC"), Some(CellTech::Mlc));
        assert_eq!(CellTech::parse("qlc"), None);
        assert_eq!(CellTech::Tlc.to_string(), "TLC");
        // MLC stays bit-identical to the paper's baseline config.
        assert_eq!(CellTech::Mlc.level_config(), LevelConfig::normal_mlc());
        // Reduced densities: MLC 1.5 b/cell (ReduceCode), TLC 2.5, SLC n/a.
        assert_eq!(CellTech::Mlc.reduced_bits_per_cell(), 1.5);
        assert_eq!(CellTech::Tlc.reduced_bits_per_cell(), 2.5);
        assert_eq!(CellTech::Slc.reduced_bits_per_cell(), 1.0);
        assert_eq!(
            CellTech::Slc.reduced_level_config(),
            CellTech::Slc.level_config()
        );
    }

    #[test]
    fn packed_configs_share_the_window_and_order_margins() {
        let slc = CellTech::Slc.level_config();
        let tlc = CellTech::Tlc.level_config();
        assert_eq!(slc.level_count(), 2);
        assert_eq!(tlc.level_count(), 8);
        // TLC spans the same programmed window as MLC.
        assert_eq!(tlc.read_refs().first(), Some(&Volts(2.40)));
        assert!((tlc.read_refs().last().unwrap().as_f64() - 3.60).abs() < 1e-12);
        // Worst interference margin shrinks with density: SLC > MLC > TLC.
        let worst_int = |cfg: &LevelConfig| {
            cfg.levels()
                .filter_map(|l| cfg.interference_margin(l))
                .fold(Volts(f64::INFINITY), Volts::min)
        };
        let mlc = LevelConfig::normal_mlc();
        assert!(worst_int(&slc) > worst_int(&mlc));
        assert!(worst_int(&mlc) > worst_int(&tlc));
        // Every packed level still verifies above its lower boundary and
        // classifies back to itself at its nominal mean.
        for cfg in [&slc, &tlc] {
            for level in cfg.levels() {
                let mean = cfg.nominal_mean(level).unwrap();
                assert_eq!(cfg.classify(mean), level, "level {level} round-trips");
            }
        }
    }

    #[test]
    fn cell_mode_density() {
        assert_eq!(CellMode::Normal.level_count(), 4);
        assert_eq!(CellMode::Reduced.level_count(), 3);
        assert_eq!(CellMode::Reduced.bits_per_cell_pair(), 3);
        // The paper's 25 % density-loss claim for reduced pages.
        assert!((CellMode::Reduced.relative_density() - 0.75).abs() < 1e-12);
        assert_eq!(CellMode::Normal.relative_density(), 1.0);
    }

    #[test]
    fn normal_mlc_classify() {
        let cfg = LevelConfig::normal_mlc();
        assert_eq!(cfg.level_count(), 4);
        assert_eq!(cfg.classify(Volts(1.1)), VthLevel::ERASED);
        assert_eq!(cfg.classify(Volts(2.5)), VthLevel::L1);
        assert_eq!(cfg.classify(Volts(3.1)), VthLevel::L2);
        assert_eq!(cfg.classify(Volts(3.8)), VthLevel::L3);
        // boundary is inclusive upward
        assert_eq!(cfg.classify(Volts(3.00)), VthLevel::L2);
    }

    #[test]
    fn reduced_margins_exceed_baseline_margins() {
        // The premise of basic LevelAdjust: spreading fewer levels over the
        // same window widens the interference margins substantially (the
        // Figure 5 effect). Retention margins stay comparable in the basic
        // symmetric configuration — widening those is NUNMA's job.
        let base = LevelConfig::normal_mlc();
        let reduced = LevelConfig::reduced_symmetric();
        let worst_base_int = (0..3)
            .map(|i| base.interference_margin(VthLevel::new(i)).unwrap())
            .fold(Volts(f64::INFINITY), Volts::min);
        let worst_reduced_int = (0..2)
            .map(|i| reduced.interference_margin(VthLevel::new(i)).unwrap())
            .fold(Volts(f64::INFINITY), Volts::min);
        assert!(worst_reduced_int > worst_base_int + Volts(0.2));

        let worst_base_ret = (1..4)
            .map(|i| base.retention_margin(VthLevel::new(i)).unwrap())
            .fold(Volts(f64::INFINITY), Volts::min);
        let worst_reduced_ret = (1..3)
            .map(|i| reduced.retention_margin(VthLevel::new(i)).unwrap())
            .fold(Volts(f64::INFINITY), Volts::min);
        assert!(worst_reduced_ret > worst_base_ret - Volts(0.01));
    }

    #[test]
    fn erased_sigma_configurable() {
        let cfg = LevelConfig::normal_mlc();
        assert_eq!(cfg.erased_sigma(), Volts(0.35));
        let wide = cfg.with_erased_sigma(Volts(0.5));
        assert_eq!(wide.erased_sigma(), Volts(0.5));
    }

    #[test]
    fn reduced_classify() {
        let cfg = LevelConfig::reduced_symmetric();
        assert_eq!(cfg.level_count(), 3);
        assert_eq!(cfg.top_level(), VthLevel::L2);
        assert_eq!(cfg.classify(Volts(1.0)), VthLevel::ERASED);
        assert_eq!(cfg.classify(Volts(3.0)), VthLevel::L1);
        assert_eq!(cfg.classify(Volts(4.0)), VthLevel::L2);
    }

    #[test]
    fn nominal_means_and_margins() {
        let cfg = LevelConfig::reduced_symmetric();
        assert_eq!(cfg.nominal_mean(VthLevel::ERASED), Some(Volts(1.1)));
        // verify 2.70 + half pulse 0.075
        let l1_mean = cfg.nominal_mean(VthLevel::L1).unwrap();
        assert!((l1_mean.as_f64() - 2.775).abs() < 1e-12);
        // retention margin of L1 = 2.775 - 2.65
        let m = cfg.retention_margin(VthLevel::L1).unwrap();
        assert!((m.as_f64() - 0.125).abs() < 1e-12);
        // interference margin of L1 = 3.55 - 2.775
        let i = cfg.interference_margin(VthLevel::L1).unwrap();
        assert!((i.as_f64() - 0.775).abs() < 1e-12);
        // erased level has no retention margin; top level no interference margin
        assert_eq!(cfg.retention_margin(VthLevel::ERASED), None);
        assert_eq!(cfg.interference_margin(VthLevel::L2), None);
    }

    #[test]
    fn verify_is_lower_edge() {
        // Raising the verify voltage (NUNMA) widens the retention margin.
        let base = LevelConfig::reduced_symmetric();
        let nunma = LevelConfig::new(
            vec![Volts(2.65), Volts(3.55)],
            vec![Volts(2.75), Volts(3.70)],
            Volts(1.1),
            Volts(0.15),
        )
        .unwrap();
        assert!(
            nunma.retention_margin(VthLevel::L2).unwrap()
                > base.retention_margin(VthLevel::L2).unwrap()
        );
        assert!(
            nunma.interference_margin(VthLevel::L1).unwrap()
                < base.interference_margin(VthLevel::L1).unwrap()
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        // unsorted read refs
        assert_eq!(
            LevelConfig::new(
                vec![Volts(3.0), Volts(2.0)],
                vec![Volts(3.1), Volts(2.1)],
                Volts(1.1),
                Volts(0.15),
            )
            .unwrap_err(),
            LevelConfigError::ReadRefsNotSorted
        );
        // verify count mismatch
        assert!(matches!(
            LevelConfig::new(
                vec![Volts(2.0), Volts(3.0)],
                vec![Volts(2.1)],
                Volts(1.1),
                Volts(0.15),
            )
            .unwrap_err(),
            LevelConfigError::VerifyCountMismatch {
                expected: 2,
                actual: 1
            }
        ));
        // verify below read ref
        assert_eq!(
            LevelConfig::new(
                vec![Volts(2.0), Volts(3.0)],
                vec![Volts(1.9), Volts(3.1)],
                Volts(1.1),
                Volts(0.15),
            )
            .unwrap_err(),
            LevelConfigError::VerifyBelowReadRef { level: 1 }
        );
        // non-positive pulse
        assert_eq!(
            LevelConfig::new(vec![Volts(2.0)], vec![Volts(2.1)], Volts(1.1), Volts(0.0),)
                .unwrap_err(),
            LevelConfigError::NonPositivePulse
        );
        // too many levels (8 refs = 9 levels exceeds the TLC ceiling)
        let refs: Vec<Volts> = (0..8).map(|k| Volts(1.0 + 0.3 * k as f64)).collect();
        let verify: Vec<Volts> = refs.iter().map(|r| *r + Volts(0.05)).collect();
        assert!(matches!(
            LevelConfig::new(refs, verify, Volts(0.5), Volts(0.15)).unwrap_err(),
            LevelConfigError::LevelCountOutOfRange(9)
        ));
    }

    #[test]
    fn levels_iterator() {
        let cfg = LevelConfig::normal_mlc();
        let ls: Vec<_> = cfg.levels().collect();
        assert_eq!(
            ls,
            vec![VthLevel::ERASED, VthLevel::L1, VthLevel::L2, VthLevel::L3]
        );
    }
}
