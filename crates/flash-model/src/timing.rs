//! NAND operation timing (paper Table 6 plus bus/codec constants).
//!
//! Table 6 specifies program 1000 µs, read (one sensing pass) 90 µs and
//! erase 3 ms for the modelled 2Xnm MLC part. Soft-decision LDPC reads add
//! one extra sensing pass *and* one extra page transfer per soft sensing
//! level; the transfer and decoder constants here are chosen so that six
//! extra levels inflate a read by ≈7×, the figure the paper cites for
//! BER ≈ 1e-2.

use serde::{Deserialize, Serialize};

use crate::units::Micros;

/// Timing parameters of one NAND device.
///
/// ```
/// use flash_model::NandTiming;
///
/// let t = NandTiming::paper_mlc();
/// assert_eq!(t.read_sense, flash_model::Micros(90.0));
/// // a hard-decision read: one sense + one transfer
/// let hard = t.read_sense + t.page_transfer;
/// assert!(hard.as_f64() > 90.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Full page program latency (ISPP loop), Table 6: 1000 µs.
    pub program: Micros,
    /// One sensing pass of a page read, Table 6: 90 µs.
    pub read_sense: Micros,
    /// Block erase latency, Table 6: 3 ms.
    pub erase: Micros,
    /// Transferring one page (plus ECC parity) over the chip bus.
    /// 16 KB at ≈400 MB/s ⇒ 40 µs.
    pub page_transfer: Micros,
    /// ReduceCode encode/decode adds one controller clock cycle
    /// (5 ns at 200 MHz — paper §4.3); negligible but modelled.
    pub reduce_code_cycle: Micros,
}

impl NandTiming {
    /// The Table 6 configuration.
    pub fn paper_mlc() -> NandTiming {
        NandTiming {
            program: Micros(1000.0),
            read_sense: Micros(90.0),
            erase: Micros::from_millis(3.0),
            page_transfer: Micros(40.0),
            reduce_code_cycle: Micros(0.005),
        }
    }

    /// Sensing-only latency of a read needing `extra_sensing_levels` soft
    /// sensing levels: one array-sensing pass per level (nominal + extra),
    /// each at a shifted reference voltage. This is the portion of a read
    /// that occupies the *die*; the matching bus time is
    /// [`transfer_latency`](Self::transfer_latency).
    pub fn sense_latency(&self, extra_sensing_levels: u32) -> Micros {
        self.read_sense * (1.0 + extra_sensing_levels as f64)
    }

    /// Bus-transfer-only latency of a read needing `extra_sensing_levels`
    /// soft sensing levels: every sensing pass ships one full page image
    /// to the controller, so transfer time scales with the pass count.
    /// This is the portion of a read that occupies the *channel*.
    pub fn transfer_latency(&self, extra_sensing_levels: u32) -> Micros {
        self.page_transfer * (1.0 + extra_sensing_levels as f64)
    }

    /// Latency of a read that needs `extra_sensing_levels` soft sensing
    /// levels, excluding decode time.
    ///
    /// Every extra level is an additional sensing pass at a shifted
    /// reference voltage and an additional transfer of the sensed page
    /// image to the controller (paper §2.2: "extra memory sensing overhead
    /// together with extra data transfer time"). Equals
    /// [`sense_latency`](Self::sense_latency) +
    /// [`transfer_latency`](Self::transfer_latency).
    pub fn read_transfer_latency(&self, extra_sensing_levels: u32) -> Micros {
        let passes = 1.0 + extra_sensing_levels as f64;
        self.read_sense * passes + self.page_transfer * passes
    }

    /// Latency of a reduced-state (ReduceCode) read with no extra sensing
    /// levels: a plain read plus the one-cycle decode of ReduceCode.
    pub fn reduced_read_latency(&self) -> Micros {
        self.read_transfer_latency(0) + self.reduce_code_cycle
    }
}

impl Default for NandTiming {
    fn default() -> NandTiming {
        NandTiming::paper_mlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_constants() {
        let t = NandTiming::paper_mlc();
        assert_eq!(t.program, Micros(1000.0));
        assert_eq!(t.read_sense, Micros(90.0));
        assert_eq!(t.erase, Micros(3000.0));
    }

    #[test]
    fn extra_levels_scale_latency() {
        let t = NandTiming::paper_mlc();
        let hard = t.read_transfer_latency(0);
        assert_eq!(hard, Micros(130.0));
        let soft6 = t.read_transfer_latency(6);
        // Six extra levels ⇒ 7 passes ⇒ 7× the sensing+transfer time,
        // matching the paper's "7× higher read latency" at BER 1e-2.
        assert_eq!(soft6, Micros(7.0 * 130.0));
    }

    #[test]
    fn stage_split_sums_to_lumped_latency() {
        let t = NandTiming::paper_mlc();
        for levels in 0..=6 {
            assert_eq!(
                t.sense_latency(levels) + t.transfer_latency(levels),
                t.read_transfer_latency(levels),
                "sense + transfer must equal the lumped cost at {levels} levels"
            );
        }
        assert_eq!(t.sense_latency(0), Micros(90.0));
        assert_eq!(t.transfer_latency(0), Micros(40.0));
        assert_eq!(t.sense_latency(6), Micros(630.0));
    }

    #[test]
    fn reduce_code_overhead_is_negligible() {
        let t = NandTiming::paper_mlc();
        let plain = t.read_transfer_latency(0);
        let reduced = t.reduced_read_latency();
        let overhead = (reduced - plain).as_f64();
        assert!(overhead > 0.0);
        assert!(
            overhead / plain.as_f64() < 1e-4,
            "ReduceCode must cost well under 0.01% of a read"
        );
    }
}
