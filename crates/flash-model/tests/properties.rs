//! Property-based tests of the device model's core invariants.

use flash_model::{
    gray, Bit, CellMode, DeviceGeometry, LevelConfig, MlcBits, PhysicalPage, Volts, VthLevel,
    WordlineLayout,
};
use proptest::prelude::*;

proptest! {
    /// Gray encode/decode is an involution and adjacent levels always
    /// differ in exactly one bit.
    #[test]
    fn gray_involution(lower in proptest::bool::ANY, upper in proptest::bool::ANY) {
        let bits = MlcBits::new(Bit::from(lower), Bit::from(upper));
        let level = gray::encode(bits);
        prop_assert_eq!(gray::decode(level), bits);
    }

    /// Classification respects the read-reference partition: the nominal
    /// mean of every level classifies as that level.
    #[test]
    fn nominal_means_classify_correctly(which in 0u8..2) {
        let cfg = if which == 0 {
            LevelConfig::normal_mlc()
        } else {
            LevelConfig::reduced_symmetric()
        };
        for level in cfg.levels() {
            let mean = cfg.nominal_mean(level).unwrap();
            prop_assert_eq!(cfg.classify(mean), level, "level {}", level);
        }
    }

    /// Classification is monotone and saturates at the extremes.
    #[test]
    fn classify_monotone(v in -1.0f64..6.0, delta in 0.0f64..2.0) {
        let cfg = LevelConfig::normal_mlc();
        prop_assert!(cfg.classify(Volts(v)) <= cfg.classify(Volts(v + delta)));
        prop_assert_eq!(cfg.classify(Volts(-10.0)), VthLevel::ERASED);
        prop_assert_eq!(cfg.classify(Volts(100.0)), cfg.top_level());
    }

    /// Geometry page-index flattening is a bijection over the device.
    #[test]
    fn geometry_page_index_bijection(blocks in 1u32..64, idx_seed in 0u64..10_000) {
        let g = DeviceGeometry::scaled(blocks).unwrap();
        let idx = idx_seed % g.total_pages();
        let page = g.page_at(idx).unwrap();
        prop_assert_eq!(g.page_index(page), Some(idx));
        prop_assert!(g.contains(page));
        // One past the end must fail both ways.
        prop_assert_eq!(g.page_at(g.total_pages()), None);
        prop_assert_eq!(
            g.page_index(PhysicalPage::new(flash_model::BlockId(blocks), 0)),
            None
        );
    }

    /// Logical capacity is always consistent with the over-provisioning
    /// percentage.
    #[test]
    fn over_provisioning_math(blocks in 1u32..256, op in 0u32..100) {
        let g = DeviceGeometry::new(blocks, 64, 16 * 1024, op).unwrap();
        prop_assert_eq!(g.logical_pages(), g.total_pages() * (100 - op) as u64 / 100);
        prop_assert!(g.logical_bytes() <= g.raw_bytes());
    }

    /// Wordline page accounting: page size is mode-independent, and the
    /// reduced wordline always stores exactly 3/4 of the normal bits.
    #[test]
    fn wordline_density(quads in 1u32..100_000) {
        let wl = WordlineLayout::new(quads * 4).unwrap();
        prop_assert_eq!(
            wl.page_bits(CellMode::Normal),
            wl.page_bits(CellMode::Reduced)
        );
        prop_assert_eq!(
            wl.wordline_bits(CellMode::Reduced) * 4,
            wl.wordline_bits(CellMode::Normal) * 3
        );
    }

    /// Two-step programming reaches exactly the Gray level of the
    /// written bit pair, in any write order of distinct cells.
    #[test]
    fn mlc_program_reaches_gray_level(lower in proptest::bool::ANY, upper in proptest::bool::ANY) {
        use flash_model::MlcCell;
        let mut cell = MlcCell::new();
        let (lo, up) = (Bit::from(lower), Bit::from(upper));
        cell.program_lower(lo).unwrap();
        cell.program_upper(up).unwrap();
        let expected = gray::encode(MlcBits::new(lo, up));
        prop_assert_eq!(cell.level(), Some(expected));
        prop_assert_eq!(cell.read_lower(), lo);
        prop_assert_eq!(cell.read_upper(), up);
    }
}
