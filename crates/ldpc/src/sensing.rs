//! Required-sensing-level estimation (the machinery behind Table 5).
//!
//! How many extra soft sensing levels does the LDPC decoder need before a
//! page is reliably decodable? Two paths answer that question:
//!
//! * [`decode_success_rate`] / [`minimum_levels`] — the *measured* path:
//!   run the real min-sum decoder over Monte-Carlo-corrupted codewords at
//!   each sensing precision and find the smallest one that decodes. This is
//!   what the Table 5 experiment binary uses.
//! * [`SensingSchedule`] — the *fast* path: a monotone raw-BER → levels
//!   lookup used by the SSD simulator, which needs millions of per-read
//!   queries. The default schedule reproduces the paper's published
//!   Table 4 → Table 5 mapping (first extra level triggered at BER
//!   4 × 10⁻³, §6.1) and can be re-derived from the measured path.

use std::sync::Arc;

use obs::Histogram;
use reliability::mc::{self, McOptions};
use serde::{Deserialize, Serialize};

use crate::channel::MlcReadChannel;
use crate::code::QcLdpcCode;
use crate::decoder::{DecoderGraph, MinSumDecoder};
use crate::encoder::{encode, random_info};
use crate::farm::{DecodeFarm, DecodeRequest};
use crate::quantized::{DecoderWorkspace, LlrQuantizer, QuantizedMinSumDecoder};

/// Outcome of a frame-error-rate measurement at one sensing precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FerMeasurement {
    /// Extra sensing levels used.
    pub extra_levels: u32,
    /// Fraction of frames decoded successfully.
    pub success_rate: f64,
    /// Mean decoder iterations over all trials.
    pub mean_iterations: f64,
    /// Raw channel BER observed during channel calibration.
    pub raw_ber: f64,
}

/// Measures the decoder's frame success rate over `trials` random
/// codewords transmitted through `channel`.
pub fn decode_success_rate<R: rand::Rng + ?Sized>(
    code: &QcLdpcCode,
    graph: &DecoderGraph,
    decoder: &MinSumDecoder,
    channel: &MlcReadChannel,
    trials: u32,
    rng: &mut R,
) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    let mut ws = DecoderWorkspace::new();
    let mut llrs = vec![0.0f32; code.codeword_bits()];
    let mut successes = 0u32;
    let mut iterations = 0u64;
    for _ in 0..trials {
        let info = random_info(code, rng);
        let cw = encode(code, &info).expect("random info has the right length");
        for (llr, &b) in llrs.iter_mut().zip(&cw) {
            *llr = channel.sample_llr(b, rng);
        }
        let out = decoder.decode_with(graph, &llrs, &mut ws);
        iterations += u64::from(out.iterations);
        if out.success && out.info_bits(code) == &info[..] {
            successes += 1;
        }
    }
    (
        successes as f64 / trials as f64,
        iterations as f64 / trials as f64,
    )
}

/// Batch width of [`measure_fer`]. Fixed — like the MC engine's shard
/// layout, it is part of the determinism contract: trials within a shard
/// decode in groups of this size, in order, so results are independent of
/// the thread count but would change under a different batch width.
pub const FER_BATCH: usize = 8;

/// Aggregate outcome of a [`measure_fer`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FerStats {
    /// Total frames decoded.
    pub trials: u64,
    /// Frames that failed to decode to the transmitted codeword.
    pub frame_errors: u64,
    /// Decoder iterations summed over all frames.
    pub total_iterations: u64,
}

impl FerStats {
    /// Frame error rate.
    pub fn fer(&self) -> f64 {
        self.frame_errors as f64 / self.trials as f64
    }

    /// Fraction of frames decoded successfully.
    pub fn success_rate(&self) -> f64 {
        1.0 - self.fer()
    }

    /// Mean decoder iterations per frame.
    pub fn mean_iterations(&self) -> f64 {
        self.total_iterations as f64 / self.trials as f64
    }
}

/// Measures the quantized batch decoder's frame error rate over `trials`
/// random codewords through `channel`, sharded across the deterministic
/// MC engine.
///
/// Each shard owns one [`DecoderWorkspace`] and decodes its trials in
/// fixed-order batches of [`FER_BATCH`] lanes, so the result is
/// bit-identical for every thread count (the PR 1 contract) while the
/// graph is traversed once per iteration for the whole batch.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn measure_fer(
    code: &QcLdpcCode,
    decoder: &QuantizedMinSumDecoder,
    channel: &MlcReadChannel,
    quantizer: &LlrQuantizer,
    trials: u64,
    seed: u64,
    options: &McOptions,
) -> FerStats {
    measure_fer_observed(code, decoder, channel, quantizer, trials, seed, options).0
}

/// [`measure_fer`] plus a per-frame decoder-iteration [`Histogram`].
///
/// Each shard records its frames' iteration counts into its own
/// histogram; shard histograms are merged in shard order, so — like the
/// scalar statistics — the distribution is bit-identical for every
/// thread count. The RNG stream is untouched by the extra recording,
/// which is why [`measure_fer`] can delegate here without changing its
/// published numbers.
pub fn measure_fer_observed(
    code: &QcLdpcCode,
    decoder: &QuantizedMinSumDecoder,
    channel: &MlcReadChannel,
    quantizer: &LlrQuantizer,
    trials: u64,
    seed: u64,
    options: &McOptions,
) -> (FerStats, Histogram) {
    assert!(trials > 0, "need at least one trial");
    let graph = DecoderGraph::cached(code);
    let table = channel.quantized_llr_table(quantizer);
    let shards = mc::run_trials(trials, seed, options, |_, shard_trials, rng| {
        let mut histogram = Histogram::new();
        let (errors, iterations) = fer_shard(
            code,
            &graph,
            decoder,
            channel,
            &table,
            shard_trials,
            rng,
            Some(&mut histogram),
        );
        (errors, iterations, histogram)
    });
    let mut stats = FerStats {
        trials,
        frame_errors: 0,
        total_iterations: 0,
    };
    let mut histogram = Histogram::new();
    for (errors, iterations, shard_histogram) in shards {
        stats.frame_errors += errors;
        stats.total_iterations += iterations;
        histogram.merge(&shard_histogram);
    }
    (stats, histogram)
}

/// One MC shard of [`measure_fer`]: decode `shard_trials` frames in
/// fixed-order [`FER_BATCH`]-lane groups, returning `(frame_errors,
/// total_iterations)`. The optional histogram records per-frame iteration
/// counts without touching the RNG stream, which is what lets
/// [`measure_fer`], [`measure_fer_observed`] and [`measure_fer_until`]
/// share one frame sequence.
#[allow(clippy::too_many_arguments)] // private plumbing shared by three entry points
fn fer_shard<R: rand::Rng + ?Sized>(
    code: &QcLdpcCode,
    graph: &DecoderGraph,
    decoder: &QuantizedMinSumDecoder,
    channel: &MlcReadChannel,
    table: &[i8],
    shard_trials: u64,
    rng: &mut R,
    mut histogram: Option<&mut Histogram>,
) -> (u64, u64) {
    let n = code.codeword_bits();
    let mut ws = DecoderWorkspace::new();
    let mut qllrs = vec![0i8; n * FER_BATCH];
    let mut sent = vec![0u8; n * FER_BATCH];
    let mut errors = 0u64;
    let mut iterations = 0u64;
    let mut remaining = shard_trials;
    while remaining > 0 {
        let lanes = remaining.min(FER_BATCH as u64) as usize;
        for lane in 0..lanes {
            let info = random_info(code, rng);
            let cw = encode(code, &info).expect("random info has the right length");
            for (bit, &b) in cw.iter().enumerate() {
                let region = channel.sample_region(b, rng);
                qllrs[bit * lanes + lane] = table[region];
                sent[bit * lanes + lane] = b;
            }
        }
        let out = decoder.decode_batch(graph, &qllrs[..n * lanes], lanes, &mut ws);
        for lane in 0..lanes {
            iterations += u64::from(out.iterations(lane));
            if let Some(h) = histogram.as_deref_mut() {
                h.record(f64::from(out.iterations(lane)));
            }
            let ok = out.success(lane)
                && (0..n).all(|bit| out.hard_bit(lane, bit) == sent[bit * lanes + lane]);
            if !ok {
                errors += 1;
            }
        }
        remaining -= lanes as u64;
    }
    (errors, iterations)
}

/// [`measure_fer`] with a deterministic early-exit drain: stops
/// dispatching new shard waves once `target_errors` frame errors have
/// accumulated, so low-BER sweep points don't burn the full trial budget
/// after the estimate is already resolved.
///
/// Built on [`mc::run_trials_until`]: shards run in fixed waves of
/// [`mc::WAVE_SHARDS`] and the error count is only consulted between
/// waves, so the executed trial prefix — and every statistic — is
/// bit-identical for every thread count. `FerStats::trials` reports the
/// trials actually executed (`≤ max_trials`); each executed frame is
/// identical to the corresponding [`measure_fer`] frame, and when the
/// target is never reached the result equals
/// `measure_fer(.., max_trials, ..)` exactly.
///
/// # Panics
///
/// Panics if `max_trials == 0`.
#[allow(clippy::too_many_arguments)] // mirrors measure_fer + the stopping pair
pub fn measure_fer_until(
    code: &QcLdpcCode,
    decoder: &QuantizedMinSumDecoder,
    channel: &MlcReadChannel,
    quantizer: &LlrQuantizer,
    max_trials: u64,
    target_errors: u64,
    seed: u64,
    options: &McOptions,
) -> FerStats {
    assert!(max_trials > 0, "need at least one trial");
    let graph = DecoderGraph::cached(code);
    let table = channel.quantized_llr_table(quantizer);
    let shards = mc::run_trials_until(
        max_trials,
        seed,
        options,
        |_, shard_trials, rng| {
            let (errors, iterations) = fer_shard(
                code,
                &graph,
                decoder,
                channel,
                &table,
                shard_trials,
                rng,
                None,
            );
            (shard_trials, errors, iterations)
        },
        |done| done.iter().map(|shard| shard.1).sum::<u64>() >= target_errors,
    );
    let mut stats = FerStats {
        trials: 0,
        frame_errors: 0,
        total_iterations: 0,
    };
    for (shard_trials, errors, iterations) in shards {
        stats.trials += shard_trials;
        stats.frame_errors += errors;
        stats.total_iterations += iterations;
    }
    stats
}

/// [`measure_fer`] through a shared [`DecodeFarm`] instead of per-shard
/// [`FER_BATCH`]-lane batches.
///
/// Frame generation reuses `measure_fer`'s shard layout and per-trial RNG
/// consumption order, so every frame is bit-identical to the
/// corresponding `measure_fer` frame; the frames are then submitted as
/// one request queue and packed into the farm's (wider) batches. Because
/// the quantized kernels are strictly lane-wise, re-batching cannot
/// change any verdict — this returns **exactly** `measure_fer`'s
/// statistics for the same `(trials, seed, options)` and the farm's
/// decoder, for every worker count and batch width.
///
/// # Panics
///
/// Panics if `trials == 0` or the farm was built for a different code.
pub fn measure_fer_farm(
    code: &QcLdpcCode,
    channel: &MlcReadChannel,
    quantizer: &LlrQuantizer,
    trials: u64,
    seed: u64,
    options: &McOptions,
    farm: &DecodeFarm,
) -> FerStats {
    assert!(trials > 0, "need at least one trial");
    let table = channel.quantized_llr_table(quantizer);
    let n = code.codeword_bits();
    let shards = mc::run_trials(trials, seed, options, |_, shard_trials, rng| {
        let mut requests = Vec::with_capacity(shard_trials as usize);
        for _ in 0..shard_trials {
            let info = random_info(code, rng);
            let cw = encode(code, &info).expect("random info has the right length");
            let mut qllrs = vec![0i8; n];
            for (bit, &b) in cw.iter().enumerate() {
                qllrs[bit] = table[channel.sample_region(b, rng)];
            }
            requests.push(DecodeRequest {
                qllrs,
                expected: Some(cw),
            });
        }
        requests
    });
    let requests: Vec<DecodeRequest> = shards.into_iter().flatten().collect();
    let verdicts = farm.decode_all(&requests);
    FerStats {
        trials,
        frame_errors: verdicts.iter().filter(|v| !v.correct).count() as u64,
        total_iterations: verdicts.iter().map(|v| u64::from(v.iterations)).sum(),
    }
}

/// Finds the minimum number of extra sensing levels (0..=`max_levels`)
/// at which the decoder reaches `target_success` over `trials` frames.
///
/// Returns the full measurement ladder; the first entry meeting the target
/// is the answer (callers may also inspect the whole curve). The channel
/// is obtained per precision via `make_channel(extra_levels)` —
/// typically [`MlcReadChannel::build_cached`], so repeated ladders over
/// the same stress grid reuse calibrations.
pub fn minimum_levels<F, R>(
    code: &QcLdpcCode,
    decoder: &MinSumDecoder,
    max_levels: u32,
    trials: u32,
    target_success: f64,
    mut make_channel: F,
    rng: &mut R,
) -> Vec<FerMeasurement>
where
    F: FnMut(u32) -> Arc<MlcReadChannel>,
    R: rand::Rng + ?Sized,
{
    let graph = DecoderGraph::cached(code);
    let mut ladder = Vec::new();
    for extra in 0..=max_levels {
        let channel = make_channel(extra);
        let (success_rate, mean_iterations) =
            decode_success_rate(code, &graph, decoder, &channel, trials, rng);
        ladder.push(FerMeasurement {
            extra_levels: extra,
            success_rate,
            mean_iterations,
            raw_ber: channel.raw_ber(),
        });
        if success_rate >= target_success {
            break;
        }
    }
    ladder
}

/// A monotone raw-BER → required-extra-sensing-levels lookup.
///
/// `max_ber[e]` is the highest raw BER at which `e` extra levels still meet
/// the UBER target; BERs beyond the last entry saturate at
/// `max_ber.len()` levels.
///
/// ```
/// use ldpc::SensingSchedule;
///
/// let sched = SensingSchedule::paper_anchor();
/// assert_eq!(sched.required_levels(1e-3), 0);   // low BER: hard decision
/// assert_eq!(sched.required_levels(1.61e-2), 6); // Table 5: 6000 P/E, 1 month
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensingSchedule {
    max_ber: Vec<f64>,
}

impl SensingSchedule {
    /// Builds a schedule from per-level maximum BERs.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are empty or not strictly increasing.
    pub fn new(max_ber: Vec<f64>) -> SensingSchedule {
        assert!(!max_ber.is_empty(), "schedule needs at least one threshold");
        assert!(
            max_ber.windows(2).all(|w| w[0] < w[1]),
            "sensing thresholds must be strictly increasing"
        );
        SensingSchedule { max_ber }
    }

    /// The schedule consistent with the paper's §6.1 (first extra level at
    /// raw BER 4 × 10⁻³) and the published Table 4 → Table 5 mapping.
    ///
    /// Every (P/E, retention) grid point of Table 4's baseline column maps
    /// to exactly the extra-level count of Table 5 under this schedule.
    pub fn paper_anchor() -> SensingSchedule {
        SensingSchedule::new(vec![
            4.2e-3,  // 0 extra levels suffice up to here (the 4e-3 trigger)
            5.5e-3,  // 1
            7.0e-3,  // 2
            7.5e-3,  // 3
            1.25e-2, // 4
            1.45e-2, // 5
            1.7e-2,  // 6
        ])
    }

    /// Number of extra sensing levels required at raw BER `ber`.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is negative or NaN.
    pub fn required_levels(&self, ber: f64) -> u32 {
        assert!(ber >= 0.0 && !ber.is_nan(), "invalid BER {ber}");
        for (e, &limit) in self.max_ber.iter().enumerate() {
            if ber <= limit {
                return e as u32;
            }
        }
        self.max_ber.len() as u32
    }

    /// The largest level count this schedule can demand.
    pub fn max_extra_levels(&self) -> u32 {
        self.max_ber.len() as u32
    }

    /// Per-level maximum BERs.
    pub fn thresholds(&self) -> &[f64] {
        &self.max_ber
    }

    /// Folds measured `(raw_ber, min_levels)` points into a schedule: the
    /// threshold for `e` levels is the highest BER whose measured minimum
    /// was `≤ e`, interpolated midway to the first BER that needed more.
    ///
    /// Points are sorted internally. Returns `None` if fewer than two
    /// distinct level counts were observed (nothing to calibrate).
    pub fn from_measurements(points: &[(f64, u32)]) -> Option<SensingSchedule> {
        if points.is_empty() {
            return None;
        }
        let mut sorted: Vec<(f64, u32)> = points.to_vec();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite BER"));
        let max_level = sorted.iter().map(|p| p.1).max()?;
        if max_level == 0 {
            return None;
        }
        let mut thresholds = Vec::new();
        for e in 0..max_level {
            // Highest BER decodable with ≤ e levels.
            let below = sorted
                .iter()
                .filter(|p| p.1 <= e)
                .map(|p| p.0)
                .fold(f64::NEG_INFINITY, f64::max);
            // Lowest BER needing more than e levels.
            let above = sorted
                .iter()
                .filter(|p| p.1 > e)
                .map(|p| p.0)
                .fold(f64::INFINITY, f64::min);
            let threshold = if below.is_finite() && above.is_finite() {
                (below + above) / 2.0
            } else if below.is_finite() {
                below
            } else {
                above * 0.9
            };
            thresholds.push(threshold);
        }
        // Enforce strict monotonicity (measurement noise can invert points).
        for i in 1..thresholds.len() {
            if thresholds[i] <= thresholds[i - 1] {
                thresholds[i] = thresholds[i - 1] * 1.05;
            }
        }
        Some(SensingSchedule::new(thresholds))
    }
}

impl Default for SensingSchedule {
    fn default() -> SensingSchedule {
        SensingSchedule::paper_anchor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelStress, SoftSensingConfig};
    use flash_model::{Hours, LevelConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_anchor_reproduces_table5() {
        // Table 4 baseline BER (rows) → Table 5 extra levels.
        let sched = SensingSchedule::paper_anchor();
        let cases: &[(f64, u32)] = &[
            (0.000638, 0), // 2000 / 1 day
            (0.00184, 0),  // 2000 / 1 month
            (0.00260, 0),  // 3000 / 1 week
            (0.00459, 1),  // 3000 / 1 month
            (0.00229, 0),  // 4000 / 1 day
            (0.00456, 1),  // 4000 / 1 week
            (0.00778, 4),  // 4000 / 1 month
            (0.00359, 0),  // 5000 / 1 day
            (0.00457, 1),  // 5000 / 2 days
            (0.00699, 2),  // 5000 / 1 week
            (0.0120, 4),   // 5000 / 1 month
            (0.00484, 1),  // 6000 / 1 day
            (0.00613, 2),  // 6000 / 2 days
            (0.00961, 4),  // 6000 / 1 week
            (0.0161, 6),   // 6000 / 1 month
        ];
        for &(ber, want) in cases {
            assert_eq!(
                sched.required_levels(ber),
                want,
                "BER {ber} should need {want} levels"
            );
        }
    }

    #[test]
    fn required_levels_monotone() {
        let sched = SensingSchedule::paper_anchor();
        let mut prev = 0;
        for i in 0..200 {
            let ber = i as f64 * 1e-4;
            let e = sched.required_levels(ber);
            assert!(e >= prev);
            prev = e;
        }
        // Saturation above the last threshold.
        assert_eq!(sched.required_levels(0.5), sched.max_extra_levels());
    }

    #[test]
    fn schedule_validation() {
        assert_eq!(
            SensingSchedule::new(vec![1e-3, 2e-3]).required_levels(1.5e-3),
            1
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn schedule_rejects_unsorted() {
        let _ = SensingSchedule::new(vec![2e-3, 1e-3]);
    }

    #[test]
    #[should_panic(expected = "at least one threshold")]
    fn schedule_rejects_empty() {
        let _ = SensingSchedule::new(vec![]);
    }

    #[test]
    fn from_measurements_interpolates() {
        let points = [(1e-3, 0u32), (3e-3, 0), (5e-3, 1), (7e-3, 2), (9e-3, 3)];
        let sched = SensingSchedule::from_measurements(&points).unwrap();
        assert_eq!(sched.max_extra_levels(), 3);
        assert_eq!(sched.required_levels(3.5e-3), 0); // below (3e-3+5e-3)/2
        assert_eq!(sched.required_levels(4.5e-3), 1);
        assert_eq!(sched.required_levels(8.5e-3), 3);
    }

    #[test]
    fn from_measurements_degenerate_cases() {
        assert_eq!(SensingSchedule::from_measurements(&[]), None);
        assert_eq!(SensingSchedule::from_measurements(&[(1e-3, 0)]), None);
    }

    #[test]
    fn decoder_ladder_improves_with_levels() {
        // At a harsh stress point, more sensing levels must not hurt the
        // success rate (and typically strictly help).
        let code = QcLdpcCode::small_test_code();
        let decoder = MinSumDecoder::new();
        let cfg = LevelConfig::normal_mlc();
        let mut rng = StdRng::seed_from_u64(21);
        let ladder = minimum_levels(
            &code,
            &decoder,
            4,
            40,
            0.99,
            |extra| {
                MlcReadChannel::build_cached(
                    &cfg,
                    crate::channel::PageKind::Lower,
                    ChannelStress::retention(6000, Hours::weeks(1.0)),
                    SoftSensingConfig::soft(extra),
                    20_000,
                    50 + extra as u64,
                )
            },
            &mut rng,
        );
        assert!(!ladder.is_empty());
        // Success rate should be non-decreasing along the ladder within
        // Monte-Carlo tolerance.
        for w in ladder.windows(2) {
            assert!(
                w[1].success_rate >= w[0].success_rate - 0.15,
                "ladder regressed: {ladder:?}"
            );
        }
    }

    #[test]
    fn measure_fer_counts_and_iterations_are_sane() {
        let code = QcLdpcCode::small_test_code();
        let channel = MlcReadChannel::build_cached(
            &LevelConfig::normal_mlc(),
            crate::channel::PageKind::Lower,
            ChannelStress::retention(5000, Hours::weeks(1.0)),
            SoftSensingConfig::soft(4),
            20_000,
            31,
        );
        let opts = mc::McOptions {
            min_shard_trials: 32,
            ..mc::McOptions::default()
        };
        let stats = measure_fer(
            &code,
            &QuantizedMinSumDecoder::new(),
            &channel,
            &LlrQuantizer::default(),
            100,
            17,
            &opts,
        );
        assert_eq!(stats.trials, 100);
        assert!(stats.frame_errors <= stats.trials);
        // Every frame executes at least one iteration.
        assert!(stats.total_iterations >= stats.trials);
        assert!((0.0..=1.0).contains(&stats.fer()));
        assert!((stats.success_rate() + stats.fer() - 1.0).abs() < 1e-12);
        assert!(stats.mean_iterations() >= 1.0);
    }
}
