//! u64 bit-plane (bit-sliced) quantized min-sum kernels.
//!
//! Instead of one `i8` per (edge, lane), this kernel stores each *bit* of
//! the quantized messages in its own `u64` plane: bit `j` of a plane word
//! belongs to codeword lane `j`, so **64 lanes advance per machine word**
//! on stable Rust with no `std::simd` or intrinsics. Messages are held in
//! sign-magnitude form — one sign plane plus five magnitude planes
//! (±[`Q_MAX`] fits five bits) — which makes the check-node min/sign
//! reduction pure boolean algebra:
//!
//! * compare via a ripple **borrow** chain (`a < b` ⇔ borrow out of
//!   `a - b`),
//! * select via `b ^ ((a ^ b) & mask)`,
//! * α = 3/4 via a ripple adder computing `3m` and dropping two planes,
//! * bit totals in `W`-plane two's complement (ripple carry), `W` sized
//!   from the graph's maximum bit degree and padded up to a compile-time
//!   plane count (8/12/16) so every ripple chain fully unrolls — extra
//!   sign-extension planes never change the represented value.
//!
//! Every operation is lane-wise, so the kernel reproduces the `i8`
//! structure-of-arrays reference (`QuantizedMinSumDecoder::decode_batch`
//! with [`DecodeKernel::I8Soa`](crate::quantized::DecodeKernel::I8Soa))
//! **bit for bit, lane for lane** — same hard decisions, same per-lane
//! iteration counts, same success flags — for both the flooding and the
//! layered [`Schedule`]. `tests/bitplane_parity.rs` pins that contract.
//!
//! Batches wider than 64 lanes run in independent 64-lane groups; partial
//! groups pad with zero-LLR lanes, which is sound because no operation
//! ever mixes lanes.

use crate::decoder::DecoderGraph;
use crate::quantized::{DecoderWorkspace, Schedule, Q_MAX};

/// Codeword lanes per plane word.
pub const LANES: usize = 64;

/// Magnitude planes per message: [`Q_MAX`] = 31 fits five bits.
pub const MAG_PLANES: usize = 5;

/// Largest supported two's-complement plane count for bit totals.
const MAX_W: usize = 16;

/// Transposes an 8×8 bit matrix held in one `u64` (row `j` = byte `j`,
/// LSB-first within each row): bit `(j, k)` moves to bit `(k, j)`. An
/// involution. The three masked-swap steps are the classic Hacker's
/// Delight network.
#[inline]
fn transpose8x8(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Transposes 64 lane bytes into 8 bit-planes: bit `k` of lane `j` lands
/// in bit `j` of `planes[k]`. Inverse of [`untranspose64`].
pub fn transpose64(bytes: &[u8; 64]) -> [u64; 8] {
    let mut planes = [0u64; 8];
    for (g, chunk) in bytes.chunks_exact(8).enumerate() {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let t = transpose8x8(word);
        for (k, plane) in planes.iter_mut().enumerate() {
            *plane |= ((t >> (8 * k)) & 0xFF) << (8 * g);
        }
    }
    planes
}

/// Scatters 8 bit-planes back into 64 lane bytes: bit `j` of `planes[k]`
/// lands in bit `k` of lane `j`. Inverse of [`transpose64`].
pub fn untranspose64(planes: &[u64; 8]) -> [u8; 64] {
    let mut bytes = [0u8; 64];
    for g in 0..8 {
        let mut word = 0u64;
        for (k, plane) in planes.iter().enumerate() {
            word |= ((plane >> (8 * g)) & 0xFF) << (8 * k);
        }
        let t = transpose8x8(word);
        bytes[8 * g..8 * g + 8].copy_from_slice(&t.to_le_bytes());
    }
    bytes
}

/// Plane-domain buffer arena of the bit-plane kernels, embedded in
/// [`DecoderWorkspace`]. Sized per 64-lane group (independent of the
/// batch width) and grown lazily like the rest of the workspace.
#[derive(Debug, Default)]
pub(crate) struct PlaneBuffers {
    v2c_sign: Vec<u64>,
    v2c_mag: Vec<u64>,
    c2v_sign: Vec<u64>,
    c2v_mag: Vec<u64>,
    ch_sign: Vec<u64>,
    ch_mag: Vec<u64>,
    hard: Vec<u64>,
    hard_out: Vec<u64>,
    /// Layered posterior, `w` two's-complement planes per bit.
    post: Vec<u64>,
    /// Layered per-check scratch: saturated v2c of the current row.
    vrow_sign: Vec<u64>,
    vrow_mag: Vec<u64>,
}

fn grow(buf: &mut Vec<u64>, len: usize) {
    if buf.len() < len {
        buf.resize(len, 0);
    }
}

impl PlaneBuffers {
    fn ensure(&mut self, edges: usize, bits: usize, w: usize, max_check_degree: usize) {
        grow(&mut self.v2c_sign, edges);
        grow(&mut self.v2c_mag, edges * MAG_PLANES);
        grow(&mut self.c2v_sign, edges);
        grow(&mut self.c2v_mag, edges * MAG_PLANES);
        grow(&mut self.ch_sign, bits);
        grow(&mut self.ch_mag, bits * MAG_PLANES);
        grow(&mut self.hard, bits);
        grow(&mut self.hard_out, bits);
        grow(&mut self.post, bits * w);
        grow(&mut self.vrow_sign, max_check_degree);
        grow(&mut self.vrow_mag, max_check_degree * MAG_PLANES);
    }
}

/// `mask ? a : b`, lane-wise.
#[inline(always)]
fn sel(mask: u64, a: u64, b: u64) -> u64 {
    b ^ ((a ^ b) & mask)
}

/// Lane mask of `a < b` over [`MAG_PLANES`]-bit unsigned magnitudes: the
/// borrow out of the ripple subtraction `a - b`.
#[inline(always)]
fn lt_mag(a: &[u64; MAG_PLANES], b: &[u64; MAG_PLANES]) -> u64 {
    let mut borrow = 0u64;
    for k in 0..MAG_PLANES {
        borrow = (!a[k] & b[k]) | ((!a[k] | b[k]) & borrow);
    }
    borrow
}

/// Lane mask of `a == b` over magnitudes.
#[inline(always)]
fn eq_mag(a: &[u64; MAG_PLANES], b: &[u64; MAG_PLANES]) -> u64 {
    let mut ne = 0u64;
    for k in 0..MAG_PLANES {
        ne |= a[k] ^ b[k];
    }
    !ne
}

/// `(3·m) >> 2` over magnitudes `m ≤ 31` — the exact integer α = 3/4 of
/// the reference kernel. `3m ≤ 93` fits seven planes; dropping the two
/// low planes is the `>> 2`.
#[inline(always)]
fn alpha34(m: &[u64; MAG_PLANES]) -> [u64; MAG_PLANES] {
    let mut t3 = [0u64; MAG_PLANES + 2];
    let mut carry = 0u64;
    for (k, out) in t3.iter_mut().enumerate() {
        let a = if k < MAG_PLANES { m[k] } else { 0 };
        let b = if (1..=MAG_PLANES).contains(&k) {
            m[k - 1]
        } else {
            0
        };
        *out = a ^ b ^ carry;
        carry = (a & b) | (carry & (a ^ b));
    }
    [t3[2], t3[3], t3[4], t3[5], t3[6]]
}

/// Initializes `t` (two's complement, `W` planes) to the sign-magnitude
/// value `(s, mag)`: `(mag ^ s) + s`, sign-extended.
#[inline(always)]
fn sm_init<const W: usize>(t: &mut [u64; W], s: u64, mag: &[u64; MAG_PLANES]) {
    let mut carry = s;
    for (k, out) in t.iter_mut().enumerate() {
        let a = if k < MAG_PLANES { mag[k] ^ s } else { s };
        *out = a ^ carry;
        carry &= a;
    }
}

/// Adds the sign-magnitude value `(s, mag)` into the two's-complement
/// accumulator `t` (ripple carry). Subtraction is the same call with the
/// sign plane complemented — valid for every lane including `mag == 0`.
#[inline(always)]
fn sm_add<const W: usize>(t: &mut [u64; W], s: u64, mag: &[u64; MAG_PLANES]) {
    let mut carry = s;
    for (k, acc) in t.iter_mut().enumerate() {
        let a = *acc;
        let b = if k < MAG_PLANES { mag[k] ^ s } else { s };
        *acc = a ^ b ^ carry;
        carry = (a & b) | (carry & (a ^ b));
    }
}

/// Clamps the two's-complement value `u` to ±[`Q_MAX`] and returns it in
/// sign-magnitude form — the plane-domain equivalent of
/// `(t as i16).clamp(-31, 31)`.
#[inline(always)]
fn clamp_q<const W: usize>(u: &[u64; W]) -> (u64, [u64; MAG_PLANES]) {
    let s = u[W - 1];
    let mut high_or = 0u64;
    let mut high_and = u64::MAX;
    let mut low_or = 0u64;
    for &plane in &u[MAG_PLANES..W] {
        high_or |= plane;
        high_and &= plane;
    }
    for &plane in &u[..MAG_PLANES] {
        low_or |= plane;
    }
    // Positive overflow: any plane above the magnitude field set.
    // Negative overflow (u < -31 ⇔ u ≤ -32): not (high planes all ones
    // and some low bit set).
    let over = (!s & high_or) | (s & !(high_and & low_or));
    // Two's-complement negate of the low field, for negative lanes.
    let mut neg = [0u64; MAG_PLANES];
    let mut carry = u64::MAX;
    for k in 0..MAG_PLANES {
        let a = !u[k];
        neg[k] = a ^ carry;
        carry &= a;
    }
    let mut mag = [0u64; MAG_PLANES];
    for k in 0..MAG_PLANES {
        // Saturated lanes take magnitude 31 = all ones.
        mag[k] = sel(s, neg[k], u[k]) | over;
    }
    (s, mag)
}

/// Borrows magnitude slot `index` of a plane buffer as a fixed-size
/// array, so downstream ripple loops see a compile-time length.
#[inline(always)]
fn mag_ref(buf: &[u64], index: usize) -> &[u64; MAG_PLANES] {
    buf[index * MAG_PLANES..(index + 1) * MAG_PLANES]
        .try_into()
        .expect("magnitude slot")
}

#[inline]
fn mag_at(buf: &[u64], index: usize) -> [u64; MAG_PLANES] {
    *mag_ref(buf, index)
}

/// Decodes `batch` structure-of-arrays codewords with the bit-plane
/// kernel, writing per-lane outcomes into the workspace's `success` /
/// `iterations` / `hard_out` arrays exactly like the `i8` kernels.
pub(crate) fn decode_batch_planes(
    graph: &DecoderGraph,
    qllrs: &[i8],
    batch: usize,
    max_iterations: u32,
    schedule: Schedule,
    ws: &mut DecoderWorkspace,
) {
    // Plane count of the two's-complement bit totals: flooding totals are
    // bounded by |channel| + deg·|c2v|max (the per-edge u drops one term,
    // so it is strictly inside that bound); layered posteriors by
    // Q_MAX + 23 (+23 for the in-flight subtraction).
    let c2v_max = i64::from((3 * Q_MAX) >> 2);
    let max_abs = match schedule {
        Schedule::Flooding => i64::from(Q_MAX) + c2v_max * graph.max_bit_degree() as i64,
        Schedule::Layered => i64::from(Q_MAX) + 2 * c2v_max,
    };
    let w = (64 - (max_abs as u64).leading_zeros() as usize) + 1;
    assert!(w <= MAX_W, "bit degree too large for the bit-plane kernel");
    // Pad the runtime requirement up to a compile-time plane count so the
    // ripple chains (`sm_init`/`sm_add`/`clamp_q`) fully unroll. Sign
    // extension makes the extra planes value-preserving, so any W ≥ w is
    // bit-exact; the paper's deg-4 code takes the W = 8 path.
    match w {
        0..=8 => decode_batch_w::<8>(graph, qllrs, batch, max_iterations, schedule, ws),
        9..=12 => decode_batch_w::<12>(graph, qllrs, batch, max_iterations, schedule, ws),
        _ => decode_batch_w::<MAX_W>(graph, qllrs, batch, max_iterations, schedule, ws),
    }
}

fn decode_batch_w<const W: usize>(
    graph: &DecoderGraph,
    qllrs: &[i8],
    batch: usize,
    max_iterations: u32,
    schedule: Schedule,
    ws: &mut DecoderWorkspace,
) {
    let max_deg = match schedule {
        Schedule::Flooding => 0,
        Schedule::Layered => graph.max_check_degree(),
    };
    ws.bp
        .ensure(graph.edge_count(), graph.bit_count(), W, max_deg);
    let DecoderWorkspace {
        bp,
        hard_out,
        success,
        iterations,
        ..
    } = ws;
    for group in (0..batch).step_by(LANES) {
        let lanes = LANES.min(batch - group);
        decode_group::<W>(
            graph,
            qllrs,
            batch,
            group,
            lanes,
            max_iterations,
            schedule,
            bp,
            hard_out,
            success,
            iterations,
        );
    }
}

/// Loads the channel LLRs of one lane group into sign/magnitude planes.
/// Lanes beyond `lanes` pad with zero LLRs; they decode independently
/// (to the all-zero codeword, in one iteration) and are never read back.
fn load_channel(
    bp: &mut PlaneBuffers,
    qllrs: &[i8],
    batch: usize,
    group: usize,
    lanes: usize,
    n: usize,
) {
    let mut bytes = [0u8; 64];
    for b in 0..n {
        let row = &qllrs[b * batch + group..b * batch + group + lanes];
        for (dst, &q) in bytes.iter_mut().zip(row) {
            *dst = q as u8;
        }
        bytes[lanes..].fill(0);
        let planes = transpose64(&bytes);
        // |q| ≤ 31, so bit 7 is the sign and magnitude = (low5 ^ s) + s.
        let s = planes[7];
        let mut carry = s;
        for (k, &plane) in planes.iter().enumerate().take(MAG_PLANES) {
            let a = plane ^ s;
            bp.ch_mag[b * MAG_PLANES + k] = a ^ carry;
            carry &= a;
        }
        bp.ch_sign[b] = s;
    }
}

#[allow(clippy::too_many_arguments)] // one 64-lane group of the hot kernel
fn decode_group<const W: usize>(
    graph: &DecoderGraph,
    qllrs: &[i8],
    batch: usize,
    group: usize,
    lanes: usize,
    max_iterations: u32,
    schedule: Schedule,
    bp: &mut PlaneBuffers,
    hard_out: &mut [u8],
    success: &mut [u8],
    iterations: &mut [u32],
) {
    let n = graph.bit_count();
    let edges = graph.edge_count();
    load_channel(bp, qllrs, batch, group, lanes, n);
    bp.c2v_sign[..edges].fill(0);
    bp.c2v_mag[..edges * MAG_PLANES].fill(0);
    bp.hard[..n].fill(0);
    match schedule {
        Schedule::Flooding => {
            // v2c initialised to channel values.
            for (e, &b) in graph.edge_bits.iter().enumerate() {
                let b = b as usize;
                bp.v2c_sign[e] = bp.ch_sign[b];
                for k in 0..MAG_PLANES {
                    bp.v2c_mag[e * MAG_PLANES + k] = bp.ch_mag[b * MAG_PLANES + k];
                }
            }
        }
        Schedule::Layered => {
            // Posterior initialised to channel values, in two's complement.
            for b in 0..n {
                let post: &mut [u64; W] = (&mut bp.post[b * W..(b + 1) * W])
                    .try_into()
                    .expect("posterior slot");
                sm_init(post, bp.ch_sign[b], mag_ref(&bp.ch_mag, b));
            }
        }
    }

    let mut done = 0u64;
    let mut success_mask = 0u64;
    let mut lane_iter = [0u32; LANES];
    let mut executed = 0u32;
    for iter in 1..=max_iterations {
        executed = iter;
        match schedule {
            Schedule::Flooding => flood_iteration::<W>(graph, bp),
            Schedule::Layered => layered_sweep::<W>(graph, bp),
        }
        // Per-lane syndrome over the hard-decision planes.
        let mut unsat = 0u64;
        for c in 0..graph.check_count() {
            let (lo, hi) = graph.check_edge_range(c);
            let mut parity = 0u64;
            for &b in &graph.edge_bits[lo..hi] {
                parity ^= bp.hard[b as usize];
            }
            unsat |= parity;
        }
        // Freeze newly converged lanes: record their iteration count and
        // snapshot their hard decisions via plane masking.
        let newly = !unsat & !done;
        if newly != 0 {
            done |= newly;
            success_mask |= newly;
            let mut m = newly;
            while m != 0 {
                lane_iter[m.trailing_zeros() as usize] = iter;
                m &= m - 1;
            }
            for b in 0..n {
                bp.hard_out[b] = (bp.hard_out[b] & !newly) | (bp.hard[b] & newly);
            }
        }
        if done == u64::MAX {
            break;
        }
    }
    // Lanes that never converged report the executed iteration count and
    // their final (failed) hard decision.
    let rem = !done;
    if rem != 0 {
        let mut m = rem;
        while m != 0 {
            lane_iter[m.trailing_zeros() as usize] = executed;
            m &= m - 1;
        }
        for b in 0..n {
            bp.hard_out[b] = (bp.hard_out[b] & !rem) | (bp.hard[b] & rem);
        }
    }
    // Scatter the group's planes back into the byte-domain outputs.
    for j in 0..lanes {
        success[group + j] = ((success_mask >> j) & 1) as u8;
        iterations[group + j] = lane_iter[j];
    }
    for b in 0..n {
        let plane = bp.hard_out[b];
        let row = &mut hard_out[b * batch + group..b * batch + group + lanes];
        for (j, out) in row.iter_mut().enumerate() {
            *out = ((plane >> j) & 1) as u8;
        }
    }
}

/// One flooding iteration in the plane domain: check pass, bit pass,
/// hard decisions. Mirrors `QuantizedMinSumDecoder::flood_i8` exactly.
fn flood_iteration<const W: usize>(graph: &DecoderGraph, bp: &mut PlaneBuffers) {
    let n = graph.bit_count();
    // Check-node update. m1/m2 start at 31 (all magnitude planes set)
    // rather than the reference kernel's i16::MAX — equivalent, because
    // every magnitude is ≤ 31 and the reference clamps `m.min(31)`
    // before scaling.
    for c in 0..graph.check_count() {
        let (lo, hi) = graph.check_edge_range(c);
        let mut m1 = [u64::MAX; MAG_PLANES];
        let mut m2 = [u64::MAX; MAG_PLANES];
        let mut sg = 0u64;
        for e in lo..hi {
            sg ^= bp.v2c_sign[e];
            let mag = mag_ref(&bp.v2c_mag, e);
            let lt = lt_mag(mag, &m1);
            let mut mx = [0u64; MAG_PLANES];
            for k in 0..MAG_PLANES {
                mx[k] = sel(lt, m1[k], mag[k]); // max(mag, m1)
            }
            let lt2 = lt_mag(&m2, &mx);
            for k in 0..MAG_PLANES {
                m2[k] = sel(lt2, m2[k], mx[k]); // min(m2, max(mag, m1))
                m1[k] = sel(lt, mag[k], m1[k]); // min(m1, mag)
            }
        }
        // Scale once per check, select per edge: lane-wise select and
        // scale commute, so this equals the reference's per-edge scaling.
        let s1 = alpha34(&m1);
        let s2 = alpha34(&m2);
        for e in lo..hi {
            let eq = eq_mag(mag_ref(&bp.v2c_mag, e), &m1);
            for k in 0..MAG_PLANES {
                bp.c2v_mag[e * MAG_PLANES + k] = sel(eq, s2[k], s1[k]);
            }
            bp.c2v_sign[e] = sg ^ bp.v2c_sign[e];
        }
    }
    // Bit-node update: total = channel + Σ c2v in W-plane two's
    // complement, hard = sign plane, v2c = saturated extrinsic difference.
    for b in 0..n {
        let mut t = [0u64; W];
        sm_init(&mut t, bp.ch_sign[b], mag_ref(&bp.ch_mag, b));
        let (blo, bhi) = graph.bit_edge_range(b);
        for &e in &graph.bit_edges[blo..bhi] {
            let e = e as usize;
            sm_add(&mut t, bp.c2v_sign[e], mag_ref(&bp.c2v_mag, e));
        }
        bp.hard[b] = t[W - 1];
        for &e in &graph.bit_edges[blo..bhi] {
            let e = e as usize;
            let mut u = t;
            sm_add(&mut u, !bp.c2v_sign[e], mag_ref(&bp.c2v_mag, e));
            let (s, mag) = clamp_q(&u);
            bp.v2c_sign[e] = s;
            bp.v2c_mag[e * MAG_PLANES..(e + 1) * MAG_PLANES].copy_from_slice(&mag);
        }
    }
}

/// One layered sweep in the plane domain: per check, recover the
/// saturated v2c from the posterior, update min/sign, emit new c2v and
/// fold it straight back into the posterior. Mirrors
/// `layered::decode_batch_layered_i8` exactly.
fn layered_sweep<const W: usize>(graph: &DecoderGraph, bp: &mut PlaneBuffers) {
    let n = graph.bit_count();
    for c in 0..graph.check_count() {
        let (lo, hi) = graph.check_edge_range(c);
        let mut m1 = [u64::MAX; MAG_PLANES];
        let mut m2 = [u64::MAX; MAG_PLANES];
        let mut sg = 0u64;
        for (i, e) in (lo..hi).enumerate() {
            let b = graph.edge_bit(e);
            let mut u: [u64; W] = bp.post[b * W..(b + 1) * W]
                .try_into()
                .expect("posterior slot");
            sm_add(&mut u, !bp.c2v_sign[e], mag_ref(&bp.c2v_mag, e));
            let (vs, vm) = clamp_q(&u);
            bp.vrow_sign[i] = vs;
            bp.vrow_mag[i * MAG_PLANES..(i + 1) * MAG_PLANES].copy_from_slice(&vm);
            sg ^= vs;
            let lt = lt_mag(&vm, &m1);
            let mut mx = [0u64; MAG_PLANES];
            for k in 0..MAG_PLANES {
                mx[k] = sel(lt, m1[k], vm[k]);
            }
            let lt2 = lt_mag(&m2, &mx);
            for k in 0..MAG_PLANES {
                m2[k] = sel(lt2, m2[k], mx[k]);
                m1[k] = sel(lt, vm[k], m1[k]);
            }
        }
        let s1 = alpha34(&m1);
        let s2 = alpha34(&m2);
        for (i, e) in (lo..hi).enumerate() {
            let vs = bp.vrow_sign[i];
            let vm = mag_at(&bp.vrow_mag, i);
            let eq = eq_mag(&vm, &m1);
            let mut cm = [0u64; MAG_PLANES];
            for k in 0..MAG_PLANES {
                cm[k] = sel(eq, s2[k], s1[k]);
            }
            let cs = sg ^ vs;
            bp.c2v_sign[e] = cs;
            bp.c2v_mag[e * MAG_PLANES..(e + 1) * MAG_PLANES].copy_from_slice(&cm);
            // Posterior = saturated v2c + fresh c2v, applied immediately.
            let b = graph.edge_bit(e);
            let post: &mut [u64; W] = (&mut bp.post[b * W..(b + 1) * W])
                .try_into()
                .expect("posterior slot");
            sm_init(post, vs, &vm);
            sm_add(post, cs, &cm);
        }
    }
    for b in 0..n {
        bp.hard[b] = bp.post[b * W + W - 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference transpose: bit `k` of lane `j` → bit `j` of plane `k`.
    fn naive_transpose(bytes: &[u8; 64]) -> [u64; 8] {
        let mut planes = [0u64; 8];
        for (j, &byte) in bytes.iter().enumerate() {
            for (k, plane) in planes.iter_mut().enumerate() {
                *plane |= u64::from((byte >> k) & 1) << j;
            }
        }
        planes
    }

    #[test]
    fn transpose_matches_naive_reference() {
        let mut bytes = [0u8; 64];
        for (j, b) in bytes.iter_mut().enumerate() {
            *b = (j as u8).wrapping_mul(37).wrapping_add(11);
        }
        assert_eq!(transpose64(&bytes), naive_transpose(&bytes));
    }

    #[test]
    fn transpose_round_trips() {
        let mut bytes = [0u8; 64];
        for (j, b) in bytes.iter_mut().enumerate() {
            *b = (j as u8).wrapping_mul(201) ^ 0x5A;
        }
        assert_eq!(untranspose64(&transpose64(&bytes)), bytes);
    }

    #[test]
    fn clamp_matches_scalar_semantics() {
        // Sweep every representable value at W = 9 in lane 0 and compare
        // against the i16 clamp the reference kernel uses.
        for v in -200i32..=200 {
            let mut planes = [0u64; 9];
            let bits = (v as u32) & 0x1FF;
            for (k, plane) in planes.iter_mut().enumerate() {
                *plane = u64::from((bits >> k) & 1);
            }
            let (s, mag) = clamp_q(&planes);
            let mut got = 0i32;
            for (k, m) in mag.iter().enumerate() {
                got |= ((m & 1) as i32) << k;
            }
            if s & 1 == 1 {
                got = -got;
            }
            let want = v.clamp(-31, 31);
            assert_eq!(got, want, "clamp of {v}");
        }
    }

    #[test]
    fn alpha_scaling_matches_integer_formula() {
        for m in 0u32..=31 {
            let mut planes = [0u64; MAG_PLANES];
            for (k, plane) in planes.iter_mut().enumerate() {
                *plane = u64::from((m >> k) & 1);
            }
            let scaled = alpha34(&planes);
            let mut got = 0u32;
            for (k, s) in scaled.iter().enumerate() {
                got |= ((s & 1) as u32) << k;
            }
            assert_eq!(got, (3 * m) >> 2, "alpha of {m}");
        }
    }
}
