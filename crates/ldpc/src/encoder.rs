//! Systematic QC-LDPC encoding via the staircase parity structure.
//!
//! With the dual-diagonal parity section, each parity block is a running
//! XOR of the information contributions row by row:
//!
//! ```text
//! p_0[t] = Σ_j u_j[(t + s(0,j)) mod Z]
//! p_i[t] = p_{i-1}[t] + Σ_j u_j[(t + s(i,j)) mod Z]
//! ```
//!
//! so encoding is a single `O(n · J)` pass with no matrix inversion.

use crate::code::QcLdpcCode;

/// Errors from encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The information word length does not match the code's `k`.
    InfoLengthMismatch {
        /// Expected information bits.
        expected: usize,
        /// Provided bits.
        actual: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::InfoLengthMismatch { expected, actual } => {
                write!(f, "expected {expected} information bits, got {actual}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes `info` (one bit per byte, values 0/1) into a systematic
/// codeword `[info | parity]`.
///
/// # Errors
///
/// Returns [`EncodeError::InfoLengthMismatch`] if `info.len()` differs from
/// [`QcLdpcCode::info_bits`].
///
/// ```
/// use ldpc::{encode, QcLdpcCode};
///
/// # fn main() -> Result<(), ldpc::EncodeError> {
/// let code = QcLdpcCode::small_test_code();
/// let info = vec![1u8; code.info_bits()];
/// let codeword = encode(&code, &info)?;
/// assert_eq!(codeword.len(), code.codeword_bits());
/// assert_eq!(code.syndrome_weight(&codeword), 0);
/// # Ok(())
/// # }
/// ```
pub fn encode(code: &QcLdpcCode, info: &[u8]) -> Result<Vec<u8>, EncodeError> {
    if info.len() != code.info_bits() {
        return Err(EncodeError::InfoLengthMismatch {
            expected: code.info_bits(),
            actual: info.len(),
        });
    }
    let z = code.circulant_size();
    let mut codeword = Vec::with_capacity(code.codeword_bits());
    codeword.extend_from_slice(info);
    codeword.resize(code.codeword_bits(), 0);

    let mut prev_parity = vec![0u8; z];
    for i in 0..code.base_rows() {
        let mut parity = prev_parity; // running XOR from the previous row
        for j in 0..code.info_cols() {
            let s = code.info_shift(i, j);
            let block = &info[j * z..(j + 1) * z];
            for (t, p) in parity.iter_mut().enumerate() {
                *p ^= block[(t + s) % z] & 1;
            }
        }
        let out = &mut codeword[code.info_bits() + i * z..code.info_bits() + (i + 1) * z];
        out.copy_from_slice(&parity);
        prev_parity = parity;
    }
    Ok(codeword)
}

/// Generates a uniformly random information word (one bit per byte).
pub fn random_info<R: rand::Rng + ?Sized>(code: &QcLdpcCode, rng: &mut R) -> Vec<u8> {
    (0..code.info_bits())
        .map(|_| rng.gen_range(0..2u8))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_info_encodes_to_zero() {
        let code = QcLdpcCode::small_test_code();
        let cw = encode(&code, &vec![0u8; code.info_bits()]).unwrap();
        assert!(cw.iter().all(|&b| b == 0));
    }

    #[test]
    fn random_codewords_satisfy_all_checks() {
        let code = QcLdpcCode::small_test_code();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            assert_eq!(code.syndrome_weight(&cw), 0);
            // systematic: info section preserved
            assert_eq!(&cw[..code.info_bits()], &info[..]);
        }
    }

    #[test]
    fn paper_code_encodes_validly() {
        let code = QcLdpcCode::paper_code();
        let mut rng = StdRng::seed_from_u64(2);
        let info = random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        assert_eq!(cw.len(), 36_864);
        assert_eq!(code.syndrome_weight(&cw), 0);
    }

    #[test]
    fn linearity() {
        // XOR of two codewords is a codeword.
        let code = QcLdpcCode::small_test_code();
        let mut rng = StdRng::seed_from_u64(3);
        let a = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let b = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(code.syndrome_weight(&xored), 0);
    }

    #[test]
    fn wrong_length_rejected() {
        let code = QcLdpcCode::small_test_code();
        let err = encode(&code, &[0u8; 5]).unwrap_err();
        assert_eq!(
            err,
            EncodeError::InfoLengthMismatch {
                expected: 1024,
                actual: 5
            }
        );
        assert!(err.to_string().contains("1024"));
    }
}
