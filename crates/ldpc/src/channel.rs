//! The NAND read channel: soft sensing and LLR extraction.
//!
//! A hard-decision lower-page read senses once against the page's boundary
//! reference voltage. Soft-decision LDPC adds *extra sensing levels* —
//! additional reference voltages straddling the boundary — so each cell is
//! resolved to a narrow `Vth` *region* instead of a single bit. The
//! log-likelihood ratio of each region follows from the channel statistics
//! (where each level's distribution actually lies after wear, interference
//! and retention), which is what makes soft decoding succeed far above the
//! hard-decision BER limit.
//!
//! This module builds the lower-page channel of a normal-state MLC cell:
//! levels {0, 1} carry bit 1, levels {2, 3} carry bit 0 (the Gray map of
//! `flash_model::gray`), with one nominal boundary between levels 1 and 2.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use flash_model::{Hours, LevelConfig, Volts, VthLevel};
use rand::Rng;
use serde::{Deserialize, Serialize};

use reliability::{InterferenceModel, ProgramModel, RetentionModel, RetentionStress};

use crate::quantized::LlrQuantizer;

/// Placement of soft sensing thresholds around the nominal boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SoftSensingConfig {
    /// Number of extra sensing levels beyond the hard-decision reference.
    pub extra_levels: u32,
    /// Spacing between adjacent soft thresholds.
    pub spacing: Volts,
}

impl SoftSensingConfig {
    /// Hard-decision sensing: no extra levels.
    pub fn hard_decision() -> SoftSensingConfig {
        SoftSensingConfig {
            extra_levels: 0,
            spacing: Volts(0.04),
        }
    }

    /// Soft sensing with `extra_levels` extra thresholds at the default
    /// 40 mV spacing.
    pub fn soft(extra_levels: u32) -> SoftSensingConfig {
        SoftSensingConfig {
            extra_levels,
            spacing: Volts(0.04),
        }
    }

    /// The sorted sensing thresholds for a page whose nominal reference is
    /// `boundary`.
    ///
    /// Extra thresholds alternate below/above the boundary (below first —
    /// retention loss drags distributions downward, so the lower side is
    /// where ambiguity concentrates): `−1δ, +1δ, −2δ, +2δ, …`.
    pub fn thresholds(&self, boundary: Volts) -> Vec<f64> {
        let mut t = vec![boundary.as_f64()];
        for k in 0..self.extra_levels {
            let step = (k / 2 + 1) as f64 * self.spacing.as_f64();
            let offset = if k % 2 == 0 { -step } else { step };
            t.push(boundary.as_f64() + offset);
        }
        t.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        t
    }
}

/// Device stress applied when building a channel.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelStress {
    /// Cell-to-cell interference, if modelled.
    pub c2c: Option<InterferenceModel>,
    /// Retention wear/time point, if modelled.
    pub retention: Option<(RetentionModel, RetentionStress)>,
}

impl ChannelStress {
    /// Retention-dominated stress, the Table 4/5 scenario.
    pub fn retention(pe_cycles: u32, time: Hours) -> ChannelStress {
        ChannelStress {
            c2c: None,
            retention: Some((
                RetentionModel::paper(),
                RetentionStress::new(pe_cycles, time),
            )),
        }
    }

    /// Both noise sources.
    pub fn full(pe_cycles: u32, time: Hours) -> ChannelStress {
        ChannelStress {
            c2c: Some(InterferenceModel::default()),
            retention: Some((
                RetentionModel::paper(),
                RetentionStress::new(pe_cycles, time),
            )),
        }
    }
}

/// Which MLC page a channel models.
///
/// The Gray map (`11, 10, 00, 01` → levels 0–3) gives the two pages very
/// different read channels: the lower page has one boundary (between
/// levels 1 and 2, one sensing pass), while the upper page has two
/// (levels 0/1 and 2/3 — two sensing passes, and two distributions'
/// tails to fight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageKind {
    /// LSB page: bit 1 on levels {0, 1}, bit 0 on levels {2, 3}.
    Lower,
    /// MSB page: bit 1 on levels {0, 3}, bit 0 on levels {1, 2}.
    Upper,
}

/// A calibrated MLC page read channel: thresholds plus per-region LLRs.
#[derive(Debug, Clone)]
pub struct MlcReadChannel {
    config: LevelConfig,
    page: PageKind,
    program: ProgramModel,
    stress: ChannelStress,
    thresholds: Vec<f64>,
    llr_by_region: Vec<f32>,
    raw_ber: f64,
}

impl MlcReadChannel {
    /// Convenience: [`build`](Self::build) for the lower page.
    ///
    /// # Panics
    ///
    /// See [`build`](Self::build).
    pub fn build_lower_page(
        config: &LevelConfig,
        stress: ChannelStress,
        soft: SoftSensingConfig,
        calibration_samples: u32,
        seed: u64,
    ) -> MlcReadChannel {
        MlcReadChannel::build(
            config,
            PageKind::Lower,
            stress,
            soft,
            calibration_samples,
            seed,
        )
    }

    /// Builds the channel of either MLC page of `config` under `stress`,
    /// sensing with `soft` (extra thresholds straddle *each* nominal
    /// boundary of the page), calibrating region LLRs from
    /// `calibration_samples` Monte-Carlo draws per bit value using the
    /// deterministic `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not have 4 levels (the page maps are
    /// specific to normal-state MLC) or `calibration_samples == 0`.
    pub fn build(
        config: &LevelConfig,
        page: PageKind,
        stress: ChannelStress,
        soft: SoftSensingConfig,
        calibration_samples: u32,
        seed: u64,
    ) -> MlcReadChannel {
        assert_eq!(
            config.level_count(),
            4,
            "MLC page channels require a 4-level configuration"
        );
        assert!(calibration_samples > 0, "calibration needs samples");
        let mut thresholds: Vec<f64> = match page {
            PageKind::Lower => soft.thresholds(config.read_refs()[1]),
            PageKind::Upper => {
                let mut t = soft.thresholds(config.read_refs()[0]);
                t.extend(soft.thresholds(config.read_refs()[2]));
                t
            }
        };
        thresholds.sort_by(|a, b| a.partial_cmp(b).expect("thresholds are finite"));
        let regions = thresholds.len() + 1;

        let mut channel = MlcReadChannel {
            config: config.clone(),
            page,
            program: ProgramModel::default(),
            stress,
            thresholds,
            llr_by_region: vec![0.0; regions],
            raw_ber: 0.0,
        };

        // Monte-Carlo calibration of P(region | bit).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut counts = [vec![0u64; regions], vec![0u64; regions]];
        let mut hard_errors = 0u64;
        for bit in 0..2u8 {
            for _ in 0..calibration_samples {
                let vth = channel.sample_vth(bit, &mut rng);
                let r = channel.sense(vth);
                counts[bit as usize][r] += 1;
                if channel.hard_decision(vth) != bit {
                    hard_errors += 1;
                }
            }
        }
        channel.raw_ber = hard_errors as f64 / (2.0 * calibration_samples as f64);
        let n = calibration_samples as f64;
        #[allow(clippy::needless_range_loop)] // r indexes three arrays at once
        for r in 0..regions {
            // Laplace smoothing keeps empty regions finite.
            let p0 = (counts[0][r] as f64 + 0.5) / (n + 0.5 * regions as f64);
            let p1 = (counts[1][r] as f64 + 0.5) / (n + 0.5 * regions as f64);
            channel.llr_by_region[r] = (p0 / p1).ln().clamp(-20.0, 20.0) as f32;
        }
        channel
    }

    /// A process-wide memoized [`build`](Self::build).
    ///
    /// Channel construction is dominated by the `2 × calibration_samples`
    /// Monte-Carlo draws that calibrate the region LLR table; sweeps and
    /// sensing ladders rebuild the *same* channel many times. This cache
    /// keys on every build input — `(config, page, stress, soft,
    /// calibration_samples, seed)` — so a hit returns the identical
    /// calibrated table (construction is deterministic in the seed) and
    /// the memoization is observationally pure.
    ///
    /// # Panics
    ///
    /// See [`build`](Self::build).
    pub fn build_cached(
        config: &LevelConfig,
        page: PageKind,
        stress: ChannelStress,
        soft: SoftSensingConfig,
        calibration_samples: u32,
        seed: u64,
    ) -> Arc<MlcReadChannel> {
        type Cache = Mutex<HashMap<String, Arc<MlcReadChannel>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        // Every field of every input renders losslessly through Debug
        // (f64 Debug prints a round-trip representation), so the string is
        // a faithful composite key without requiring Hash on f64 fields.
        let key = format!("{config:?}|{page:?}|{stress:?}|{soft:?}|{calibration_samples}|{seed}");
        let mut map = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("channel cache poisoned");
        Arc::clone(map.entry(key).or_insert_with(|| {
            Arc::new(MlcReadChannel::build(
                config,
                page,
                stress,
                soft,
                calibration_samples,
                seed,
            ))
        }))
    }

    /// The nominal lower-page boundary voltage (the middle read
    /// reference). Upper-page channels have two boundaries; see
    /// [`hard_decision`](Self::hard_decision).
    pub fn boundary(&self) -> f64 {
        self.config.read_refs()[1].as_f64()
    }

    /// The page this channel models.
    pub fn page(&self) -> PageKind {
        self.page
    }

    /// Hard-decision readout of an analog `Vth` for this page.
    pub fn hard_decision(&self, vth: Volts) -> u8 {
        let refs = self.config.read_refs();
        match self.page {
            PageKind::Lower => u8::from(vth < refs[1]),
            // Upper bit pattern across levels is 1,0,0,1.
            PageKind::Upper => u8::from(vth < refs[0] || vth >= refs[2]),
        }
    }

    /// The sorted sensing thresholds.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Raw hard-decision BER observed during calibration.
    pub fn raw_ber(&self) -> f64 {
        self.raw_ber
    }

    /// Calibrated LLR of each sensing region.
    pub fn llr_table(&self) -> &[f32] {
        &self.llr_by_region
    }

    /// The region LLR table quantized for the fixed-point decoder: index
    /// with a sensing region to get the `i8` channel LLR directly, with
    /// no per-bit float math on the trial hot path.
    pub fn quantized_llr_table(&self, quantizer: &LlrQuantizer) -> Vec<i8> {
        quantizer.quantize_table(&self.llr_by_region)
    }

    /// Resolves an analog `Vth` to its sensing region (0 = below all
    /// thresholds).
    pub fn sense(&self, vth: Volts) -> usize {
        self.thresholds
            .iter()
            .take_while(|&&t| vth.as_f64() >= t)
            .count()
    }

    /// Samples the post-stress `Vth` of a cell storing lower-page `bit`
    /// (the companion upper-page bit is uniform, selecting one of the two
    /// levels consistent with `bit`).
    pub fn sample_vth<R: Rng + ?Sized>(&self, bit: u8, rng: &mut R) -> Volts {
        // Gray maps: lower page bit 1 on levels {0,1}; upper page bit 1
        // on levels {0,3}.
        let level = match (self.page, bit, rng.gen_bool(0.5)) {
            (PageKind::Lower, 1, false) => VthLevel::ERASED,
            (PageKind::Lower, 1, true) => VthLevel::L1,
            (PageKind::Lower, 0, false) => VthLevel::L2,
            (PageKind::Lower, 0, true) => VthLevel::L3,
            (PageKind::Upper, 1, false) => VthLevel::ERASED,
            (PageKind::Upper, 1, true) => VthLevel::L3,
            (PageKind::Upper, 0, false) => VthLevel::L1,
            (PageKind::Upper, 0, true) => VthLevel::L2,
            _ => panic!("bit must be 0 or 1, got {bit}"),
        };
        let initial = self.program.program(&self.config, level, rng);
        let mut vth = initial;
        if let Some(ref c2c) = self.stress.c2c {
            vth += c2c.sample_shift(&self.config, &self.program, rng);
        }
        if let Some((ref model, stress)) = self.stress.retention {
            vth -= model.sample_shift(
                initial,
                self.config.erased_mean(),
                stress.pe_cycles,
                stress.time,
                rng,
            );
        }
        vth
    }

    /// Samples the sensing region observed for a stored `bit`: sample
    /// `Vth`, sense it. Identical draw sequence to
    /// [`sample_llr`](Self::sample_llr), but returns the region index so
    /// callers can look it up in a (possibly quantized) LLR table.
    pub fn sample_region<R: Rng + ?Sized>(&self, bit: u8, rng: &mut R) -> usize {
        let vth = self.sample_vth(bit, rng);
        self.sense(vth)
    }

    /// Samples the channel LLR observed for a stored `bit`: sample `Vth`,
    /// sense it, look up the region LLR.
    pub fn sample_llr<R: Rng + ?Sized>(&self, bit: u8, rng: &mut R) -> f32 {
        self.llr_by_region[self.sample_region(bit, rng)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fresh_channel(extra: u32) -> MlcReadChannel {
        MlcReadChannel::build_lower_page(
            &LevelConfig::normal_mlc(),
            ChannelStress::retention(5000, Hours::weeks(1.0)),
            SoftSensingConfig::soft(extra),
            50_000,
            7,
        )
    }

    #[test]
    fn threshold_placement() {
        let soft = SoftSensingConfig::soft(4);
        let t = soft.thresholds(Volts(3.0));
        assert_eq!(t.len(), 5);
        // -2δ, -1δ, 0, +1δ, +2δ around 3.0 at δ = 0.04
        let want = [2.92, 2.96, 3.0, 3.04, 3.08];
        for (got, want) in t.iter().zip(want) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn threshold_placement_odd_count_biases_low() {
        let soft = SoftSensingConfig::soft(1);
        let t = soft.thresholds(Volts(3.0));
        assert_eq!(t, vec![2.96, 3.0]);
    }

    #[test]
    fn hard_decision_single_threshold() {
        let soft = SoftSensingConfig::hard_decision();
        assert_eq!(soft.thresholds(Volts(3.0)), vec![3.0]);
    }

    #[test]
    fn llr_signs_follow_regions() {
        let ch = fresh_channel(4);
        let llrs = ch.llr_table();
        // Lowest region (deep below boundary): strongly bit 1 ⇒ negative.
        assert!(llrs[0] < -2.0, "lowest region LLR {}", llrs[0]);
        // Highest region: strongly bit 0 ⇒ positive.
        assert!(llrs[llrs.len() - 1] > 2.0);
        // LLRs increase monotonically with the region.
        for w in llrs.windows(2) {
            assert!(w[0] <= w[1] + 0.5, "LLR order violated: {llrs:?}");
        }
    }

    #[test]
    fn sense_maps_regions_correctly() {
        let ch = fresh_channel(2);
        let t = ch.thresholds();
        assert_eq!(ch.sense(Volts(t[0] - 0.1)), 0);
        assert_eq!(ch.sense(Volts(t[t.len() - 1] + 0.1)), t.len());
    }

    #[test]
    fn raw_ber_reasonable_under_stress() {
        let ch = fresh_channel(0);
        // Lower-page errors at 5000 P/E, 1 week: small but nonzero.
        assert!(ch.raw_ber() > 0.0, "ber {}", ch.raw_ber());
        assert!(ch.raw_ber() < 0.05, "ber {}", ch.raw_ber());
    }

    #[test]
    fn stress_raises_raw_ber() {
        let mild = MlcReadChannel::build_lower_page(
            &LevelConfig::normal_mlc(),
            ChannelStress::retention(2000, Hours::days(1.0)),
            SoftSensingConfig::hard_decision(),
            50_000,
            7,
        );
        let harsh = MlcReadChannel::build_lower_page(
            &LevelConfig::normal_mlc(),
            ChannelStress::retention(6000, Hours::months(1.0)),
            SoftSensingConfig::hard_decision(),
            50_000,
            7,
        );
        assert!(harsh.raw_ber() > mild.raw_ber());
    }

    #[test]
    fn sampled_llrs_point_the_right_way_on_average() {
        let ch = fresh_channel(4);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean_llr_bit0: f32 = (0..n).map(|_| ch.sample_llr(0, &mut rng)).sum::<f32>() / n as f32;
        let mean_llr_bit1: f32 = (0..n).map(|_| ch.sample_llr(1, &mut rng)).sum::<f32>() / n as f32;
        assert!(mean_llr_bit0 > 1.0, "bit 0 mean LLR {mean_llr_bit0}");
        assert!(mean_llr_bit1 < -1.0, "bit 1 mean LLR {mean_llr_bit1}");
    }

    fn upper_channel(extra: u32) -> MlcReadChannel {
        MlcReadChannel::build(
            &LevelConfig::normal_mlc(),
            PageKind::Upper,
            ChannelStress::retention(5000, Hours::weeks(1.0)),
            SoftSensingConfig::soft(extra),
            50_000,
            7,
        )
    }

    #[test]
    fn upper_page_has_two_boundary_threshold_clusters() {
        let ch = upper_channel(2);
        // 2 soft levels around each of the 2 boundaries + the boundaries:
        // 6 thresholds total.
        assert_eq!(ch.thresholds().len(), 6);
        assert_eq!(ch.page(), PageKind::Upper);
        let t = ch.thresholds();
        assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted: {t:?}");
    }

    #[test]
    fn upper_page_hard_decision_pattern() {
        let ch = upper_channel(0);
        let refs = LevelConfig::normal_mlc();
        let refs = refs.read_refs();
        // Below ref0 (level 0) and above ref2 (level 3) carry bit 1.
        assert_eq!(ch.hard_decision(Volts(refs[0].as_f64() - 0.2)), 1);
        assert_eq!(ch.hard_decision(Volts(refs[2].as_f64() + 0.2)), 1);
        // Between them (levels 1 and 2) carries bit 0.
        assert_eq!(ch.hard_decision(Volts(refs[1].as_f64())), 0);
    }

    #[test]
    fn upper_page_llrs_bend_back() {
        // The upper page's LLR profile is non-monotone: strongly bit-1 at
        // both extremes, bit-0 in the middle.
        let ch = upper_channel(4);
        let llrs = ch.llr_table();
        assert!(llrs[0] < -1.0, "lowest region is bit 1: {llrs:?}");
        assert!(
            llrs[llrs.len() - 1] < -1.0,
            "highest region is bit 1: {llrs:?}"
        );
        let mid = llrs[llrs.len() / 2];
        assert!(mid > 1.0, "middle region is bit 0: {llrs:?}");
    }

    #[test]
    fn upper_page_sampled_llrs_point_right() {
        let ch = upper_channel(4);
        let mut rng = StdRng::seed_from_u64(12);
        let n = 20_000;
        let mean_bit0: f32 = (0..n).map(|_| ch.sample_llr(0, &mut rng)).sum::<f32>() / n as f32;
        let mean_bit1: f32 = (0..n).map(|_| ch.sample_llr(1, &mut rng)).sum::<f32>() / n as f32;
        assert!(mean_bit0 > 1.0, "bit 0 mean LLR {mean_bit0}");
        assert!(mean_bit1 < -1.0, "bit 1 mean LLR {mean_bit1}");
    }

    #[test]
    fn upper_page_ber_exceeds_lower_under_retention() {
        // The upper page fights two boundaries; under retention-dominated
        // stress its raw BER is at least comparable to the lower page's
        // (level 3 sags toward ref2 while level 2 sags toward ref1).
        let lower = fresh_channel(0);
        let upper = MlcReadChannel::build(
            &LevelConfig::normal_mlc(),
            PageKind::Upper,
            ChannelStress::retention(5000, Hours::weeks(1.0)),
            SoftSensingConfig::hard_decision(),
            50_000,
            7,
        );
        assert!(upper.raw_ber() > 0.0);
        assert!(
            upper.raw_ber() > lower.raw_ber() * 0.5,
            "upper {} vs lower {}",
            upper.raw_ber(),
            lower.raw_ber()
        );
    }

    #[test]
    fn cached_build_returns_shared_identical_channel() {
        let cfg = LevelConfig::normal_mlc();
        let stress = ChannelStress::retention(4000, Hours::days(2.0));
        let soft = SoftSensingConfig::soft(2);
        let a = MlcReadChannel::build_cached(&cfg, PageKind::Lower, stress, soft, 20_000, 9);
        let b = MlcReadChannel::build_cached(&cfg, PageKind::Lower, stress, soft, 20_000, 9);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        // The cached channel matches a fresh deterministic build.
        let fresh = MlcReadChannel::build(&cfg, PageKind::Lower, stress, soft, 20_000, 9);
        assert_eq!(a.llr_table(), fresh.llr_table());
        assert_eq!(a.raw_ber(), fresh.raw_ber());
        // Any differing input is a different entry.
        let c = MlcReadChannel::build_cached(&cfg, PageKind::Lower, stress, soft, 20_000, 10);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn quantized_table_tracks_f32_table() {
        let ch = fresh_channel(4);
        let q = LlrQuantizer::default();
        let qt = ch.quantized_llr_table(&q);
        assert_eq!(qt.len(), ch.llr_table().len());
        for (&qv, &fv) in qt.iter().zip(ch.llr_table()) {
            assert_eq!(qv, q.quantize(fv));
        }
    }

    #[test]
    fn sample_region_matches_sample_llr_draws() {
        let ch = fresh_channel(4);
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        for bit in [0u8, 1] {
            for _ in 0..200 {
                let region = ch.sample_region(bit, &mut rng_a);
                let llr = ch.sample_llr(bit, &mut rng_b);
                assert_eq!(ch.llr_table()[region], llr);
            }
        }
    }

    #[test]
    #[should_panic(expected = "4-level")]
    fn rejects_reduced_configs() {
        let _ = MlcReadChannel::build_lower_page(
            &LevelConfig::reduced_symmetric(),
            ChannelStress::default(),
            SoftSensingConfig::hard_decision(),
            1000,
            1,
        );
    }
}
