//! Fixed-point, batched normalized min-sum decoding.
//!
//! NAND controllers do not decode with f32 message passing: they quantize
//! channel LLRs to a handful of bits (4–6 in shipping parts) and run the
//! min-sum datapath in narrow integers. This module reproduces that
//! datapath and exploits it for Monte-Carlo throughput:
//!
//! * [`LlrQuantizer`] — maps f32 LLRs onto 6-bit-saturated `i8` values
//!   (default step 0.5 LLR, clamp at ±[`Q_MAX`]);
//! * [`DecoderWorkspace`] — a reusable buffer arena so steady-state
//!   decoding performs **zero heap allocations**;
//! * [`QuantizedMinSumDecoder`] — the integer decoder. Its
//!   [`decode_batch`](QuantizedMinSumDecoder::decode_batch) entry point
//!   lays `B` codewords out structure-of-arrays (`buf[edge * B + lane]`),
//!   so every inner loop over the CSR Tanner graph is a contiguous sweep
//!   across the batch dimension that auto-vectorizes 16–32 lanes wide on
//!   `i8`/`i16` — the graph is traversed once per iteration for the whole
//!   batch instead of once per codeword.
//!
//! The check-node normalization α = 0.75 is computed exactly in integers
//! as `(3·m) >> 2`, and the sign/selection logic matches the f32 decoder
//! bit for bit (zero counts as positive), so hard decisions agree with
//! [`MinSumDecoder`](crate::decoder::MinSumDecoder) wherever quantization
//! does not flip a marginal message — see `tests/quantized_parity.rs` for
//! the statistical FER-parity bound.

use std::sync::OnceLock;

use crate::decoder::{DecodeOutcome, DecoderGraph};

/// Saturation magnitude of quantized LLRs and messages: 6-bit symmetric,
/// i.e. values in `[-31, 31]`.
pub const Q_MAX: i8 = 31;

/// Message-passing schedule of the quantized decoder.
///
/// The schedule changes *how fast* frames converge (layered typically
/// halves the sweep count) but not *whether* the datapath is exact: each
/// schedule is implemented identically by both [`DecodeKernel`]s, so
/// outcomes are kernel-independent bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Two-phase flooding: every check reads the previous iteration's
    /// messages. The reproduction's original (PR 2) schedule.
    Flooding,
    /// Row-staggered (layered) schedule: checks are processed
    /// sequentially and update the posterior immediately, so later checks
    /// in the same sweep see refreshed information — typically ~half the
    /// iterations of flooding at identical error-rate performance.
    Layered,
}

/// Inner-loop implementation executing the quantized message passing.
///
/// Both kernels compute the same integer algorithm; for any frame whose
/// quantized LLRs fit the ±[`Q_MAX`] domain (everything the
/// [`LlrQuantizer`] produces) their per-lane outcomes — success,
/// iteration count and every hard bit — are **bit-identical**. Inputs
/// outside that domain silently fall back to [`I8Soa`](Self::I8Soa),
/// which handles the full `i8` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeKernel {
    /// `i8` structure-of-arrays lane loops, relying on auto-vectorization
    /// across the batch dimension. The reference implementation.
    I8Soa,
    /// u64 bit-plane (bit-sliced) kernel: magnitudes live in five
    /// bit-planes, 64 codeword lanes per machine word, and the min/sign
    /// reductions are pure boolean algebra — see [`crate::bitplane`].
    BitPlane,
}

impl DecodeKernel {
    /// Environment variable selecting the process-wide default kernel:
    /// `bitplane` or `i8` (alias `i8-soa`). Unset or unrecognized values
    /// keep the built-in default ([`BitPlane`](Self::BitPlane)); because
    /// the kernels are bit-exact peers, flipping the variable never
    /// changes results, only throughput.
    pub const ENV: &'static str = "FLEXLEVEL_DECODE_KERNEL";

    /// The process-wide default kernel: [`Self::ENV`] if set, otherwise
    /// the bit-plane kernel. Read once and cached for the process
    /// lifetime.
    pub fn from_env() -> DecodeKernel {
        static CACHE: OnceLock<DecodeKernel> = OnceLock::new();
        *CACHE.get_or_init(|| match std::env::var(DecodeKernel::ENV).as_deref() {
            Ok("i8") | Ok("i8-soa") => DecodeKernel::I8Soa,
            Ok("bitplane") => DecodeKernel::BitPlane,
            _ => DecodeKernel::BitPlane,
        })
    }
}

/// Maps f32 channel LLRs onto the decoder's `i8` domain.
///
/// `scale` is the number of quantization steps per unit LLR; the default
/// of 2.0 gives a step of 0.5 LLR and a representable range of ±15.5,
/// comfortably covering the channel's ±20-clamped region LLRs once
/// saturation is accounted for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlrQuantizer {
    scale: f32,
}

impl LlrQuantizer {
    /// The default step of 0.5 LLR per code.
    pub const DEFAULT_SCALE: f32 = 2.0;

    /// Builds a quantizer with `scale` steps per unit LLR.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is finite and positive.
    pub fn new(scale: f32) -> LlrQuantizer {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantizer scale must be finite and positive, got {scale}"
        );
        LlrQuantizer { scale }
    }

    /// Steps per unit LLR.
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one LLR: round to the nearest step, saturate at ±[`Q_MAX`].
    #[inline]
    pub fn quantize(&self, llr: f32) -> i8 {
        let q = (llr * self.scale).round();
        q.clamp(f32::from(-Q_MAX), f32::from(Q_MAX)) as i8
    }

    /// Quantizes a whole LLR table (e.g. a channel's per-region LLRs).
    pub fn quantize_table(&self, llrs: &[f32]) -> Vec<i8> {
        llrs.iter().map(|&l| self.quantize(l)).collect()
    }
}

impl Default for LlrQuantizer {
    fn default() -> LlrQuantizer {
        LlrQuantizer::new(LlrQuantizer::DEFAULT_SCALE)
    }
}

/// Reusable decoder buffer arena.
///
/// All decode entry points size the arena lazily on first use and then
/// only ever reuse it, so a warm workspace makes decoding allocation-free.
/// One workspace serves any mix of codes, batch sizes and decoders (it
/// grows to the largest seen); it is `Send`, so each Monte-Carlo shard
/// owns one.
#[derive(Debug, Default)]
pub struct DecoderWorkspace {
    // Quantized batch state, structure-of-arrays with lane stride = batch.
    pub(crate) q_v2c: Vec<i8>,
    pub(crate) q_c2v: Vec<i8>,
    pub(crate) q_total: Vec<i16>,
    pub(crate) hard: Vec<u8>,
    pub(crate) hard_out: Vec<u8>,
    // Per-lane check-node scratch.
    pub(crate) min1: Vec<i16>,
    pub(crate) min2: Vec<i16>,
    pub(crate) sign: Vec<u8>,
    pub(crate) parity: Vec<u8>,
    pub(crate) unsat: Vec<u8>,
    // Per-lane outcome state.
    pub(crate) done: Vec<u8>,
    pub(crate) success: Vec<u8>,
    pub(crate) iterations: Vec<u32>,
    // Layered-schedule state: i16 posteriors plus a per-check row of
    // saturated variable-to-check messages.
    pub(crate) q_post: Vec<i16>,
    pub(crate) q_vrow: Vec<i8>,
    // Bit-plane kernel state (u64 planes, 64 lanes per word).
    pub(crate) bp: crate::bitplane::PlaneBuffers,
    // f32 scalar state for `MinSumDecoder::decode_with`.
    v2c_f: Vec<f32>,
    c2v_f: Vec<f32>,
    total_f: Vec<f32>,
    hard_f: Vec<u8>,
}

fn grow<T: Clone + Default>(buf: &mut Vec<T>, len: usize) {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
}

impl DecoderWorkspace {
    /// An empty workspace; buffers are sized on first decode.
    pub fn new() -> DecoderWorkspace {
        DecoderWorkspace::default()
    }

    fn ensure_batch(&mut self, edges: usize, bits: usize, batch: usize) {
        grow(&mut self.q_v2c, edges * batch);
        grow(&mut self.q_c2v, edges * batch);
        grow(&mut self.q_total, batch);
        grow(&mut self.hard, bits * batch);
        grow(&mut self.hard_out, bits * batch);
        grow(&mut self.min1, batch);
        grow(&mut self.min2, batch);
        grow(&mut self.sign, batch);
        grow(&mut self.parity, batch);
        grow(&mut self.unsat, batch);
        grow(&mut self.done, batch);
        grow(&mut self.success, batch);
        grow(&mut self.iterations, batch);
    }

    pub(crate) fn ensure_layered(&mut self, bits: usize, batch: usize, max_check_degree: usize) {
        grow(&mut self.q_post, bits * batch);
        grow(&mut self.q_vrow, max_check_degree * batch);
    }

    pub(crate) fn ensure_scalar_f32(&mut self, edges: usize, bits: usize) {
        grow(&mut self.v2c_f, edges);
        grow(&mut self.c2v_f, edges);
        grow(&mut self.total_f, bits);
        grow(&mut self.hard_f, bits);
    }

    pub(crate) fn scalar_f32_buffers(&mut self) -> (&mut [f32], &mut [f32], &mut [f32], &mut [u8]) {
        (
            &mut self.v2c_f,
            &mut self.c2v_f,
            &mut self.total_f,
            &mut self.hard_f,
        )
    }
}

/// Per-lane results of a batched decode, borrowed from the workspace.
///
/// Valid until the next decode call on the same workspace; copy what you
/// need (e.g. via [`lane_outcome`](BatchOutcome::lane_outcome)) to keep
/// results longer.
#[derive(Debug)]
pub struct BatchOutcome<'a> {
    batch: usize,
    bits: usize,
    success: &'a [u8],
    iterations: &'a [u32],
    hard: &'a [u8],
}

impl BatchOutcome<'_> {
    /// Number of lanes (codewords) in the batch.
    #[inline]
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// `true` if `lane`'s final hard decision satisfies every check.
    #[inline]
    pub fn success(&self, lane: usize) -> bool {
        self.success[lane] != 0
    }

    /// Iterations lane `lane` actually executed before converging (or the
    /// iteration cap on failure) — always ≥ 1.
    #[inline]
    pub fn iterations(&self, lane: usize) -> u32 {
        self.iterations[lane]
    }

    /// Hard decision of bit `bit` in lane `lane` (0 or 1).
    #[inline]
    pub fn hard_bit(&self, lane: usize, bit: usize) -> u8 {
        self.hard[bit * self.batch + lane]
    }

    /// Copies one lane out as a standalone [`DecodeOutcome`] (allocates).
    pub fn lane_outcome(&self, lane: usize) -> DecodeOutcome {
        DecodeOutcome {
            success: self.success(lane),
            iterations: self.iterations(lane),
            hard_decision: (0..self.bits).map(|b| self.hard_bit(lane, b)).collect(),
        }
    }
}

/// Fixed-point normalized min-sum decoder (flooding schedule, α = 3/4).
///
/// Messages are `i8` saturated at ±[`Q_MAX`]; bit totals accumulate in
/// `i16` (variable degree ≤ a few dozen keeps them far from overflow).
///
/// ```
/// use ldpc::{encode, DecoderGraph, DecoderWorkspace, LlrQuantizer, QcLdpcCode,
///            QuantizedMinSumDecoder};
///
/// # fn main() -> Result<(), ldpc::EncodeError> {
/// let code = QcLdpcCode::small_test_code();
/// let graph = DecoderGraph::new(&code);
/// let codeword = encode(&code, &vec![1u8; code.info_bits()])?;
/// let q = LlrQuantizer::default();
/// let qllrs: Vec<i8> = codeword
///     .iter()
///     .map(|&b| q.quantize(if b == 0 { 4.0 } else { -4.0 }))
///     .collect();
/// let mut ws = DecoderWorkspace::new();
/// let out = QuantizedMinSumDecoder::new().decode(&graph, &qllrs, &mut ws);
/// assert!(out.success);
/// assert_eq!(out.hard_decision, codeword);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizedMinSumDecoder {
    /// Maximum iterations (flooding) / sweeps (layered) before declaring
    /// failure.
    pub max_iterations: u32,
    /// Message-passing schedule. Changes convergence speed (and therefore
    /// outcomes); part of any determinism contract built on this decoder.
    pub schedule: Schedule,
    /// Inner-loop kernel. Bit-exact peers — switching kernels never
    /// changes outcomes, only throughput.
    pub kernel: DecodeKernel,
}

impl QuantizedMinSumDecoder {
    /// The reproduction's configuration: 30 iterations, flooding
    /// schedule, kernel from [`DecodeKernel::from_env`]. The
    /// normalization is fixed at α = 3/4, computed exactly as
    /// `(3·m) >> 2`.
    pub fn new() -> QuantizedMinSumDecoder {
        QuantizedMinSumDecoder {
            max_iterations: 30,
            schedule: Schedule::Flooding,
            kernel: DecodeKernel::from_env(),
        }
    }

    /// Returns the decoder with a different iteration/sweep cap.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: u32) -> QuantizedMinSumDecoder {
        self.max_iterations = max_iterations;
        self
    }

    /// Returns the decoder on a different schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> QuantizedMinSumDecoder {
        self.schedule = schedule;
        self
    }

    /// Returns the decoder pinned to a specific kernel (overriding the
    /// [`DecodeKernel::from_env`] default).
    #[must_use]
    pub fn with_kernel(mut self, kernel: DecodeKernel) -> QuantizedMinSumDecoder {
        self.kernel = kernel;
        self
    }

    /// Decodes a single codeword of quantized LLRs (positive ⇒ bit 0).
    ///
    /// # Panics
    ///
    /// Panics if `qllrs.len() != graph.bit_count()`.
    pub fn decode(
        &self,
        graph: &DecoderGraph,
        qllrs: &[i8],
        ws: &mut DecoderWorkspace,
    ) -> DecodeOutcome {
        let out = self.decode_batch(graph, qllrs, 1, ws);
        out.lane_outcome(0)
    }

    /// Decodes `batch` codewords laid out structure-of-arrays:
    /// `qllrs[bit * batch + lane]` is bit `bit` of codeword `lane`.
    ///
    /// All lanes run in lockstep over the shared graph; each lane freezes
    /// its hard decision and iteration count the moment its syndrome
    /// clears, and the sweep stops early once every lane is done. The
    /// result borrows the workspace — it is valid until the next decode.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or `qllrs.len() != bit_count · batch`.
    pub fn decode_batch<'w>(
        &self,
        graph: &DecoderGraph,
        qllrs: &[i8],
        batch: usize,
        ws: &'w mut DecoderWorkspace,
    ) -> BatchOutcome<'w> {
        assert!(batch > 0, "batch must be non-empty");
        let n = graph.bit_count();
        let edges = graph.edge_count();
        assert_eq!(
            qllrs.len(),
            n * batch,
            "LLR length must match codeword length times batch"
        );
        ws.ensure_batch(edges, n, batch);
        // The bit-plane kernel stores magnitudes in five planes, so it
        // requires the ±Q_MAX domain the quantizer produces; raw caller
        // inputs outside it fall back to the full-range reference kernel.
        // It also retires a fixed 64 lanes per machine word, so batches
        // that cannot fill one lane group would mostly decode padding —
        // those run the reference kernel too. Both demotions are
        // invisible in the outputs: the kernels are bit-exact peers.
        let kernel = match self.kernel {
            DecodeKernel::BitPlane
                if batch >= crate::bitplane::LANES
                    && qllrs.iter().all(|&q| q.unsigned_abs() <= Q_MAX as u8) =>
            {
                DecodeKernel::BitPlane
            }
            _ => DecodeKernel::I8Soa,
        };
        match (self.schedule, kernel) {
            (Schedule::Flooding, DecodeKernel::I8Soa) => self.flood_i8(graph, qllrs, batch, ws),
            (Schedule::Layered, DecodeKernel::I8Soa) => crate::layered::decode_batch_layered_i8(
                graph,
                qllrs,
                batch,
                self.max_iterations,
                ws,
            ),
            (schedule, DecodeKernel::BitPlane) => crate::bitplane::decode_batch_planes(
                graph,
                qllrs,
                batch,
                self.max_iterations,
                schedule,
                ws,
            ),
        }
        BatchOutcome {
            batch,
            bits: n,
            success: &ws.success[..batch],
            iterations: &ws.iterations[..batch],
            hard: &ws.hard_out[..n * batch],
        }
    }

    /// The PR 2 reference kernel: flooding schedule over `i8`
    /// structure-of-arrays lanes.
    fn flood_i8(
        &self,
        graph: &DecoderGraph,
        qllrs: &[i8],
        batch: usize,
        ws: &mut DecoderWorkspace,
    ) {
        let n = graph.bit_count();
        let edges = graph.edge_count();
        // Exact-length local slices: every lane loop below runs over
        // equal-length slices via `zip`, which compiles to branch-free,
        // bounds-check-free code that auto-vectorizes across the batch.
        let q_v2c = &mut ws.q_v2c[..edges * batch];
        let q_c2v = &mut ws.q_c2v[..edges * batch];
        let q_total = &mut ws.q_total[..batch];
        let hard = &mut ws.hard[..n * batch];
        let hard_out = &mut ws.hard_out[..n * batch];
        let min1 = &mut ws.min1[..batch];
        let min2 = &mut ws.min2[..batch];
        let sign = &mut ws.sign[..batch];
        let parity = &mut ws.parity[..batch];
        let unsat = &mut ws.unsat[..batch];
        let done = &mut ws.done[..batch];
        let success = &mut ws.success[..batch];
        let lane_iterations = &mut ws.iterations[..batch];

        q_c2v.fill(0);
        done.fill(0);
        success.fill(0);
        lane_iterations.fill(0);
        // v2c initialised to channel values.
        for (e, &b) in graph.edge_bits.iter().enumerate() {
            let src = &qllrs[b as usize * batch..(b as usize + 1) * batch];
            q_v2c[e * batch..(e + 1) * batch].copy_from_slice(src);
        }

        let q_max = i16::from(Q_MAX);
        let mut remaining = batch;
        let mut iterations = 0;
        for iter in 1..=self.max_iterations {
            iterations = iter;
            // Check-node update: per-lane min / second-min of |v2c| and the
            // sign product, then c2v = sign · (3·min_excluding_self) >> 2.
            // The excluded-self select is value-based (`mag == min1` picks
            // min2): on ties min1 == min2, so it is exactly the classic
            // argmin-tracking formulation without the extra index lane.
            for c in 0..graph.check_count() {
                let (lo, hi) = graph.check_edge_range(c);
                min1.fill(i16::MAX);
                min2.fill(i16::MAX);
                sign.fill(0);
                for row in q_v2c[lo * batch..hi * batch].chunks_exact(batch) {
                    let lanes = min1.iter_mut().zip(min2.iter_mut()).zip(sign.iter_mut());
                    for (((m1, m2), sg), &v) in lanes.zip(row) {
                        let mag = i16::from(v).abs();
                        *sg ^= u8::from(v < 0);
                        *m2 = (*m2).min(mag.max(*m1));
                        *m1 = (*m1).min(mag);
                    }
                }
                let rows = q_v2c[lo * batch..hi * batch]
                    .chunks_exact(batch)
                    .zip(q_c2v[lo * batch..hi * batch].chunks_exact_mut(batch));
                for (vrow, crow) in rows {
                    let lanes = vrow.iter().zip(crow.iter_mut()).zip(min1.iter());
                    for (((&v, c), &m1), (&m2, &sg)) in lanes.zip(min2.iter().zip(sign.iter())) {
                        let mag = i16::from(v).abs();
                        let m = if mag == m1 { m2 } else { m1 };
                        let scaled = ((3 * m.min(q_max)) >> 2) as i8;
                        let neg = sg ^ u8::from(v < 0);
                        *c = if neg != 0 { -scaled } else { scaled };
                    }
                }
            }
            // Bit-node update and hard decision, one bit row at a time:
            // total = channel + Σ c2v, hard = sign(total), v2c = saturated
            // extrinsic difference.
            for b in 0..n {
                let qrow = &qllrs[b * batch..(b + 1) * batch];
                for (t, &q) in q_total.iter_mut().zip(qrow) {
                    *t = i16::from(q);
                }
                let (blo, bhi) = graph.bit_edge_range(b);
                for &e in &graph.bit_edges[blo..bhi] {
                    let row = &q_c2v[e as usize * batch..(e as usize + 1) * batch];
                    for (t, &m) in q_total.iter_mut().zip(row) {
                        *t += i16::from(m);
                    }
                }
                let hrow = &mut hard[b * batch..(b + 1) * batch];
                for (h, &t) in hrow.iter_mut().zip(q_total.iter()) {
                    *h = u8::from(t < 0);
                }
                for &e in &graph.bit_edges[blo..bhi] {
                    let base = e as usize * batch;
                    let vrow = q_v2c[base..base + batch].iter_mut();
                    let crow = q_c2v[base..base + batch].iter();
                    for ((v, &c), &t) in vrow.zip(crow).zip(q_total.iter()) {
                        *v = (t - i16::from(c)).clamp(-q_max, q_max) as i8;
                    }
                }
            }
            // Per-lane syndrome check; freeze lanes whose syndrome clears.
            unsat.fill(0);
            for c in 0..graph.check_count() {
                let (lo, hi) = graph.check_edge_range(c);
                parity.fill(0);
                for &b in &graph.edge_bits[lo..hi] {
                    let hrow = &hard[b as usize * batch..(b as usize + 1) * batch];
                    for (p, &h) in parity.iter_mut().zip(hrow) {
                        *p ^= h;
                    }
                }
                for (u, &p) in unsat.iter_mut().zip(parity.iter()) {
                    *u |= p;
                }
            }
            if freeze_lanes(
                n,
                batch,
                iter,
                unsat,
                done,
                success,
                lane_iterations,
                hard,
                hard_out,
                &mut remaining,
            ) {
                break;
            }
        }
        finish_failed(n, batch, iterations, done, lane_iterations, hard, hard_out);
    }
}

/// Freezes every newly converged lane: marks it done/successful, records
/// its iteration count and snapshots its hard decision. Returns `true`
/// once every lane is frozen. Shared verbatim by the flooding and layered
/// `i8` kernels so their per-lane outcome semantics are identical.
#[allow(clippy::too_many_arguments)] // a hot-loop helper over workspace slices
pub(crate) fn freeze_lanes(
    n: usize,
    batch: usize,
    iter: u32,
    unsat: &[u8],
    done: &mut [u8],
    success: &mut [u8],
    lane_iterations: &mut [u32],
    hard: &[u8],
    hard_out: &mut [u8],
    remaining: &mut usize,
) -> bool {
    let frozen_before = batch - *remaining;
    for lane in 0..batch {
        if done[lane] == 0 && unsat[lane] == 0 {
            done[lane] = 1;
            success[lane] = 1;
            lane_iterations[lane] = iter;
            *remaining -= 1;
        }
    }
    if *remaining == 0 && frozen_before == 0 {
        // Everyone converged together (the clean-page common case):
        // snapshot the whole batch in one pass.
        hard_out.copy_from_slice(hard);
        return true;
    }
    for lane in 0..batch {
        if done[lane] != 0 && lane_iterations[lane] == iter {
            for b in 0..n {
                hard_out[b * batch + lane] = hard[b * batch + lane];
            }
        }
    }
    *remaining == 0
}

/// Lanes that never converged report the executed iteration count and
/// their final (failed) hard decision.
pub(crate) fn finish_failed(
    n: usize,
    batch: usize,
    iterations: u32,
    done: &[u8],
    lane_iterations: &mut [u32],
    hard: &[u8],
    hard_out: &mut [u8],
) {
    for lane in 0..batch {
        if done[lane] == 0 {
            lane_iterations[lane] = iterations;
            for b in 0..n {
                hard_out[b * batch + lane] = hard[b * batch + lane];
            }
        }
    }
}

impl Default for QuantizedMinSumDecoder {
    fn default() -> QuantizedMinSumDecoder {
        QuantizedMinSumDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::QcLdpcCode;
    use crate::decoder::MinSumDecoder;
    use crate::encoder::{encode, random_info};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bsc_qllrs<R: Rng>(cw: &[u8], p: f64, magnitude: f32, rng: &mut R) -> Vec<i8> {
        let q = LlrQuantizer::default();
        cw.iter()
            .map(|&bit| {
                let observed = bit ^ u8::from(rng.gen_bool(p));
                q.quantize(if observed == 0 { magnitude } else { -magnitude })
            })
            .collect()
    }

    #[test]
    fn quantizer_rounds_and_saturates() {
        let q = LlrQuantizer::default();
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.quantize(1.0), 2);
        assert_eq!(q.quantize(-1.0), -2);
        assert_eq!(q.quantize(0.26), 1); // rounds to nearest step
        assert_eq!(q.quantize(20.0), Q_MAX);
        assert_eq!(q.quantize(-20.0), -Q_MAX);
        assert_eq!(q.quantize(f32::INFINITY), Q_MAX);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn quantizer_rejects_bad_scale() {
        let _ = LlrQuantizer::new(0.0);
    }

    #[test]
    fn clean_codeword_decodes_in_one_iteration() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(1);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let qllrs = bsc_qllrs(&cw, 0.0, 8.0, &mut rng);
        let mut ws = DecoderWorkspace::new();
        let out = QuantizedMinSumDecoder::new().decode(&graph, &qllrs, &mut ws);
        assert!(out.success);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn corrects_moderate_noise_like_f32() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = QuantizedMinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ws = DecoderWorkspace::new();
        let mut successes = 0;
        let trials = 30;
        for _ in 0..trials {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let qllrs = bsc_qllrs(&cw, 0.005, 4.0, &mut rng);
            let out = decoder.decode(&graph, &qllrs, &mut ws);
            if out.success && out.hard_decision == cw {
                successes += 1;
            }
        }
        assert!(
            successes >= trials - 1,
            "quantized decoder corrected only {successes}/{trials} at p=0.5%"
        );
    }

    #[test]
    fn batch_lanes_match_scalar_decodes_exactly() {
        // Lockstep batched decoding is the same algorithm as batch=1, so
        // every lane must agree bit-for-bit with its scalar decode.
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = QuantizedMinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(3);
        let n = code.codeword_bits();
        let batch = 5;
        let mut frames = Vec::new();
        for _ in 0..batch {
            let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
            frames.push(bsc_qllrs(&cw, 0.02, 4.0, &mut rng));
        }
        let mut soa = vec![0i8; n * batch];
        for (lane, frame) in frames.iter().enumerate() {
            for (bit, &q) in frame.iter().enumerate() {
                soa[bit * batch + lane] = q;
            }
        }
        let mut ws = DecoderWorkspace::new();
        let mut scalar_outs = Vec::new();
        for frame in &frames {
            scalar_outs.push(decoder.decode(&graph, frame, &mut ws));
        }
        let batch_out = decoder.decode_batch(&graph, &soa, batch, &mut ws);
        for (lane, want) in scalar_outs.iter().enumerate() {
            assert_eq!(batch_out.lane_outcome(lane), *want, "lane {lane}");
        }
    }

    #[test]
    fn workspace_reuse_is_deterministic() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = QuantizedMinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(4);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let qllrs = bsc_qllrs(&cw, 0.03, 4.0, &mut rng);
        let mut ws = DecoderWorkspace::new();
        let first = decoder.decode(&graph, &qllrs, &mut ws);
        // Dirty the workspace with a different, noisier frame, then repeat.
        let other = bsc_qllrs(&cw, 0.3, 4.0, &mut rng);
        let _ = decoder.decode(&graph, &other, &mut ws);
        let second = decoder.decode(&graph, &qllrs, &mut ws);
        assert_eq!(first, second);
    }

    #[test]
    fn agrees_with_f32_on_clean_frames() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let q = LlrQuantizer::default();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ws = DecoderWorkspace::new();
        for _ in 0..5 {
            let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
            let llrs: Vec<f32> = cw
                .iter()
                .map(|&b| if b == 0 { 5.0 } else { -5.0 })
                .collect();
            let qllrs = q.quantize_table(&llrs);
            let f = MinSumDecoder::new().decode(&graph, &llrs);
            let i = QuantizedMinSumDecoder::new().decode(&graph, &qllrs, &mut ws);
            assert!(f.success && i.success);
            assert_eq!(f.hard_decision, i.hard_decision);
        }
    }

    #[test]
    fn fails_gracefully_under_extreme_noise() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = QuantizedMinSumDecoder::new().with_max_iterations(10);
        let mut rng = StdRng::seed_from_u64(6);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let qllrs = bsc_qllrs(&cw, 0.3, 4.0, &mut rng);
        let mut ws = DecoderWorkspace::new();
        let out = decoder.decode(&graph, &qllrs, &mut ws);
        assert!(!out.success);
        assert_eq!(out.iterations, 10);
    }

    #[test]
    fn early_lanes_freeze_their_iteration_count() {
        // A clean lane converges in 1 iteration even when batched with a
        // noisy lane that needs more.
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = QuantizedMinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(7);
        let n = code.codeword_bits();
        let clean_cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let clean = bsc_qllrs(&clean_cw, 0.0, 8.0, &mut rng);
        let noisy_cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let noisy = bsc_qllrs(&noisy_cw, 0.02, 4.0, &mut rng);
        let mut soa = vec![0i8; n * 2];
        for bit in 0..n {
            soa[bit * 2] = clean[bit];
            soa[bit * 2 + 1] = noisy[bit];
        }
        let mut ws = DecoderWorkspace::new();
        let out = decoder.decode_batch(&graph, &soa, 2, &mut ws);
        assert!(out.success(0));
        assert_eq!(out.iterations(0), 1);
        assert!(out.iterations(1) >= out.iterations(0));
    }

    #[test]
    #[should_panic(expected = "LLR length")]
    fn llr_length_checked() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut ws = DecoderWorkspace::new();
        let _ = QuantizedMinSumDecoder::new().decode(&graph, &[0i8; 3], &mut ws);
    }
}
