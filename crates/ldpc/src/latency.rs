//! Read-latency model of an LDPC-protected NAND page read.
//!
//! A read costs: one sensing pass per sensing level (nominal + extra),
//! one bus transfer of the sensed page image per pass, and the decoder
//! runtime. The sensing/transfer constants come from Table 6 via
//! [`flash_model::NandTiming`]; the decoder constants model a hardware
//! min-sum engine. At six extra levels the total lands at ≈7× a
//! hard-decision read — the inflation the paper cites for BER 1e-2.

use flash_model::{Micros, NandTiming};
use serde::{Deserialize, Serialize};

/// Latency model for LDPC-protected reads.
///
/// ```
/// use ldpc::ReadLatencyModel;
///
/// let m = ReadLatencyModel::paper_mlc();
/// // Soft sensing levels dominate the read cost.
/// assert!(m.read_latency(6, 10) > m.read_latency(0, 10) * 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadLatencyModel {
    /// Device timing (sense, transfer, ReduceCode cycle).
    pub timing: NandTiming,
    /// Fixed decoder pipeline latency.
    pub decode_base: Micros,
    /// Additional latency per decoder iteration.
    pub decode_per_iteration: Micros,
}

impl ReadLatencyModel {
    /// The reproduction's default: Table 6 timing plus a hardware decoder
    /// at 2 µs setup + 1.5 µs/iteration.
    pub fn paper_mlc() -> ReadLatencyModel {
        ReadLatencyModel {
            timing: NandTiming::paper_mlc(),
            decode_base: Micros(2.0),
            decode_per_iteration: Micros(1.5),
        }
    }

    /// Latency of a read using `extra_levels` soft sensing levels and
    /// `iterations` decoder iterations.
    pub fn read_latency(&self, extra_levels: u32, iterations: u32) -> Micros {
        self.timing.read_transfer_latency(extra_levels)
            + self.decode_base
            + self.decode_per_iteration * iterations as f64
    }

    /// Latency of a reduced-state (LevelAdjust) read: hard-decision
    /// sensing, ReduceCode's one-cycle decode, and a short LDPC pass
    /// (clean input converges immediately).
    pub fn reduced_read_latency(&self) -> Micros {
        self.timing.reduced_read_latency() + self.decode_base + self.decode_per_iteration
    }

    /// A monotone heuristic for expected decoder iterations at raw BER
    /// `ber`, calibrated against the min-sum decoder's measured behaviour
    /// (clean frames converge in 1–3 iterations; near-threshold frames
    /// take 15–30).
    pub fn typical_iterations(&self, ber: f64) -> u32 {
        let est = 2.0 + 900.0 * ber;
        est.clamp(1.0, 30.0) as u32
    }

    /// Convenience: latency of a read at raw BER `ber` needing
    /// `extra_levels`, with iterations from
    /// [`typical_iterations`](Self::typical_iterations).
    pub fn read_latency_at_ber(&self, extra_levels: u32, ber: f64) -> Micros {
        self.read_latency(extra_levels, self.typical_iterations(ber))
    }
}

impl Default for ReadLatencyModel {
    fn default() -> ReadLatencyModel {
        ReadLatencyModel::paper_mlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_read_baseline() {
        let m = ReadLatencyModel::paper_mlc();
        let hard = m.read_latency(0, 2);
        // 90 (sense) + 40 (transfer) + 2 + 3 = 135 µs
        assert_eq!(hard, Micros(135.0));
    }

    #[test]
    fn six_levels_is_about_seven_x() {
        let m = ReadLatencyModel::paper_mlc();
        let hard = m.read_latency(0, 2).as_f64();
        let soft = m.read_latency(6, 25).as_f64();
        let ratio = soft / hard;
        assert!(
            (6.0..8.0).contains(&ratio),
            "6 extra levels should cost ≈7× a hard read, got {ratio:.2}×"
        );
    }

    #[test]
    fn latency_monotone_in_levels_and_iterations() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.read_latency(1, 5) > m.read_latency(0, 5));
        assert!(m.read_latency(1, 6) > m.read_latency(1, 5));
    }

    #[test]
    fn reduced_read_is_cheap() {
        let m = ReadLatencyModel::paper_mlc();
        let reduced = m.reduced_read_latency();
        let hard = m.read_latency(0, 1);
        // ReduceCode adds one clock cycle on top of a minimal read.
        assert!((reduced.as_f64() - hard.as_f64()).abs() < 0.01);
        // And is far below even one extra sensing level.
        assert!(reduced < m.read_latency(1, 1));
    }

    #[test]
    fn typical_iterations_monotone_and_clamped() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.typical_iterations(0.0) >= 1);
        assert!(m.typical_iterations(1e-3) <= m.typical_iterations(1e-2));
        assert_eq!(m.typical_iterations(1.0), 30);
    }

    #[test]
    fn read_latency_at_ber_grows_with_ber() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.read_latency_at_ber(0, 1e-2) > m.read_latency_at_ber(0, 1e-4));
    }
}
