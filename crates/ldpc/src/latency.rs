//! Read-latency model of an LDPC-protected NAND page read.
//!
//! A read costs: one sensing pass per sensing level (nominal + extra),
//! one bus transfer of the sensed page image per pass, and the decoder
//! runtime. The sensing/transfer constants come from Table 6 via
//! [`flash_model::NandTiming`]; the decoder constants model a hardware
//! min-sum engine. At six extra levels the total lands at ≈7× a
//! hard-decision read — the inflation the paper cites for BER 1e-2.

use flash_model::{Micros, NandTiming};
use serde::{Deserialize, Serialize};

use crate::decoder::DecodeOutcome;
use crate::sensing::FerMeasurement;

/// Latency model for LDPC-protected reads.
///
/// ```
/// use ldpc::ReadLatencyModel;
///
/// let m = ReadLatencyModel::paper_mlc();
/// // Soft sensing levels dominate the read cost.
/// assert!(m.read_latency(6, 10) > m.read_latency(0, 10) * 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadLatencyModel {
    /// Device timing (sense, transfer, ReduceCode cycle).
    pub timing: NandTiming,
    /// Fixed decoder pipeline latency.
    pub decode_base: Micros,
    /// Additional latency per decoder iteration.
    pub decode_per_iteration: Micros,
}

impl ReadLatencyModel {
    /// The reproduction's default: Table 6 timing plus a hardware decoder
    /// at 2 µs setup + 1.5 µs/iteration.
    pub fn paper_mlc() -> ReadLatencyModel {
        ReadLatencyModel {
            timing: NandTiming::paper_mlc(),
            decode_base: Micros(2.0),
            decode_per_iteration: Micros(1.5),
        }
    }

    /// Latency of a read using `extra_levels` soft sensing levels and
    /// `iterations` decoder iterations.
    pub fn read_latency(&self, extra_levels: u32, iterations: u32) -> Micros {
        self.timing.read_transfer_latency(extra_levels)
            + self.decode_base
            + self.decode_per_iteration * iterations as f64
    }

    /// Decoder-only latency of a decode running `iterations` iterations
    /// (pipeline setup plus the per-iteration cost).
    pub fn decode_latency(&self, iterations: u32) -> Micros {
        self.decode_base + self.decode_per_iteration * iterations as f64
    }

    /// Per-stage decomposition of [`read_latency`](Self::read_latency):
    /// the same total cost, split into the die-resident sensing time, the
    /// channel-resident bus time and the controller-resident decode time.
    /// The pipelined SSD timing model schedules each part on its own
    /// resource so stages of different reads can overlap.
    pub fn read_stages(&self, extra_levels: u32, iterations: u32) -> ReadStageCosts {
        ReadStageCosts {
            sense: self.timing.sense_latency(extra_levels),
            transfer: self.timing.transfer_latency(extra_levels),
            decode: self.decode_latency(iterations),
        }
    }

    /// Latency of a reduced-state (LevelAdjust) read: hard-decision
    /// sensing, ReduceCode's one-cycle decode, and a short LDPC pass
    /// (clean input converges immediately).
    pub fn reduced_read_latency(&self) -> Micros {
        self.timing.reduced_read_latency() + self.decode_base + self.decode_per_iteration
    }

    /// A monotone heuristic for expected decoder iterations at raw BER
    /// `ber`, calibrated against the min-sum decoder's measured behaviour
    /// (clean frames converge in 1–3 iterations; near-threshold frames
    /// take 15–30).
    pub fn typical_iterations(&self, ber: f64) -> u32 {
        let est = 2.0 + 900.0 * ber;
        est.clamp(1.0, 30.0) as u32
    }

    /// Convenience: latency of a read at raw BER `ber` needing
    /// `extra_levels`, with iterations from
    /// [`typical_iterations`](Self::typical_iterations).
    pub fn read_latency_at_ber(&self, extra_levels: u32, ber: f64) -> Micros {
        self.read_latency(extra_levels, self.typical_iterations(ber))
    }

    /// Latency of a read whose decode produced `outcome`: charges the
    /// iterations the decoder *actually* executed, so an early-converging
    /// decode is no longer billed the worst-case iteration count.
    pub fn read_latency_for_outcome(&self, extra_levels: u32, outcome: &DecodeOutcome) -> Micros {
        self.read_latency(extra_levels, outcome.iterations)
    }

    /// Convenience: latency at `extra_levels` with the mean measured
    /// iteration count of `profile` at that depth.
    pub fn read_latency_measured(&self, extra_levels: u32, profile: &IterationProfile) -> Micros {
        self.read_latency(extra_levels, profile.iterations(extra_levels))
    }
}

/// The three independently schedulable parts of one LDPC-protected read,
/// as split by [`ReadLatencyModel::read_stages`]: sensing occupies the
/// page's die, transfer its channel, decode a controller decoder slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadStageCosts {
    /// Array sensing time (die-resident).
    pub sense: Micros,
    /// Page-image bus time (channel-resident).
    pub transfer: Micros,
    /// Decoder runtime (controller-resident).
    pub decode: Micros,
}

impl ReadStageCosts {
    /// Sum of all stages — equals the lumped
    /// [`read_latency`](ReadLatencyModel::read_latency).
    pub fn total(&self) -> Micros {
        self.sense + self.transfer + self.decode
    }
}

/// Mean decoder iterations-to-converge, measured per sensing depth.
///
/// Indexed by extra sensing levels (0 through [`SLOTS`](Self::SLOTS)`-1`;
/// deeper reads saturate at the last slot). Built from a measured FER
/// ladder via [`from_ladder`](Self::from_ladder), it replaces the
/// [`typical_iterations`](ReadLatencyModel::typical_iterations) heuristic
/// with what the real decoder did — early convergence on clean frames
/// included.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationProfile {
    mean: [f64; IterationProfile::SLOTS],
}

impl IterationProfile {
    /// Number of sensing depths tracked: levels 0..=7, covering the
    /// paper's 0–6 extra-level range with headroom.
    pub const SLOTS: usize = 8;

    /// Builds a profile from per-depth mean iteration counts.
    ///
    /// # Panics
    ///
    /// Panics if any mean is not finite or is below 1 (every decode runs
    /// at least one iteration).
    pub fn new(mean: [f64; IterationProfile::SLOTS]) -> IterationProfile {
        for (level, &m) in mean.iter().enumerate() {
            assert!(
                m.is_finite() && m >= 1.0,
                "mean iterations at level {level} must be ≥ 1, got {m}"
            );
        }
        IterationProfile { mean }
    }

    /// Builds a profile from a measured sensing ladder (the output of
    /// [`minimum_levels`](crate::sensing::minimum_levels)): each rung's
    /// mean iteration count fills its level slot, and unmeasured depths
    /// inherit the nearest shallower measurement. Returns `None` on an
    /// empty ladder.
    pub fn from_ladder(ladder: &[FerMeasurement]) -> Option<IterationProfile> {
        if ladder.is_empty() {
            return None;
        }
        let mut mean = [f64::NAN; IterationProfile::SLOTS];
        for m in ladder {
            let slot = (m.extra_levels as usize).min(IterationProfile::SLOTS - 1);
            mean[slot] = m.mean_iterations.max(1.0);
        }
        // Fill gaps forward from the nearest shallower rung, then any
        // leading gap backward from the first measured one.
        let first = mean
            .iter()
            .position(|m| m.is_finite())
            .expect("non-empty ladder has a measured rung");
        for slot in 0..first {
            mean[slot] = mean[first];
        }
        for slot in first + 1..IterationProfile::SLOTS {
            if !mean[slot].is_finite() {
                mean[slot] = mean[slot - 1];
            }
        }
        Some(IterationProfile::new(mean))
    }

    /// Mean iterations at `extra_levels` (saturating at the last slot).
    pub fn mean_iterations(&self, extra_levels: u32) -> f64 {
        self.mean[(extra_levels as usize).min(IterationProfile::SLOTS - 1)]
    }

    /// Integer iteration count at `extra_levels`: the rounded mean,
    /// clamped to the decoder's 1..=30 range.
    pub fn iterations(&self, extra_levels: u32) -> u32 {
        self.mean_iterations(extra_levels).round().clamp(1.0, 30.0) as u32
    }
}

impl Default for ReadLatencyModel {
    fn default() -> ReadLatencyModel {
        ReadLatencyModel::paper_mlc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_split_sums_to_lumped_read_latency() {
        let m = ReadLatencyModel::paper_mlc();
        for levels in 0..=6u32 {
            for iters in [1u32, 2, 10, 30] {
                let stages = m.read_stages(levels, iters);
                assert_eq!(
                    stages.total(),
                    m.read_latency(levels, iters),
                    "split must sum exactly at {levels} levels / {iters} iters"
                );
                assert_eq!(stages.decode, m.decode_latency(iters));
            }
        }
        // The hard-read decomposition pins the Table 6 constants.
        let hard = m.read_stages(0, 2);
        assert_eq!(hard.sense, Micros(90.0));
        assert_eq!(hard.transfer, Micros(40.0));
        assert_eq!(hard.decode, Micros(5.0)); // 2 + 2 × 1.5
    }

    #[test]
    fn hard_read_baseline() {
        let m = ReadLatencyModel::paper_mlc();
        let hard = m.read_latency(0, 2);
        // 90 (sense) + 40 (transfer) + 2 + 3 = 135 µs
        assert_eq!(hard, Micros(135.0));
    }

    #[test]
    fn six_levels_is_about_seven_x() {
        let m = ReadLatencyModel::paper_mlc();
        let hard = m.read_latency(0, 2).as_f64();
        let soft = m.read_latency(6, 25).as_f64();
        let ratio = soft / hard;
        assert!(
            (6.0..8.0).contains(&ratio),
            "6 extra levels should cost ≈7× a hard read, got {ratio:.2}×"
        );
    }

    #[test]
    fn latency_monotone_in_levels_and_iterations() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.read_latency(1, 5) > m.read_latency(0, 5));
        assert!(m.read_latency(1, 6) > m.read_latency(1, 5));
    }

    #[test]
    fn reduced_read_is_cheap() {
        let m = ReadLatencyModel::paper_mlc();
        let reduced = m.reduced_read_latency();
        let hard = m.read_latency(0, 1);
        // ReduceCode adds one clock cycle on top of a minimal read.
        assert!((reduced.as_f64() - hard.as_f64()).abs() < 0.01);
        // And is far below even one extra sensing level.
        assert!(reduced < m.read_latency(1, 1));
    }

    #[test]
    fn typical_iterations_monotone_and_clamped() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.typical_iterations(0.0) >= 1);
        assert!(m.typical_iterations(1e-3) <= m.typical_iterations(1e-2));
        assert_eq!(m.typical_iterations(1.0), 30);
    }

    #[test]
    fn read_latency_at_ber_grows_with_ber() {
        let m = ReadLatencyModel::paper_mlc();
        assert!(m.read_latency_at_ber(0, 1e-2) > m.read_latency_at_ber(0, 1e-4));
    }

    #[test]
    fn outcome_latency_charges_actual_iterations() {
        let m = ReadLatencyModel::paper_mlc();
        let outcome = DecodeOutcome {
            success: true,
            iterations: 3,
            hard_decision: vec![],
        };
        assert_eq!(
            m.read_latency_for_outcome(0, &outcome),
            m.read_latency(0, 3)
        );
        // An early-converging decode beats the worst-case assumption.
        assert!(m.read_latency_for_outcome(0, &outcome) < m.read_latency(0, 30));
    }

    #[test]
    fn iteration_profile_lookup_saturates() {
        let p = IterationProfile::new([2.0, 2.4, 3.6, 5.0, 8.0, 12.0, 18.0, 25.0]);
        assert_eq!(p.iterations(0), 2);
        assert_eq!(p.iterations(1), 2); // 2.4 rounds down
        assert_eq!(p.iterations(2), 4); // 3.6 rounds up
        assert_eq!(p.iterations(7), 25);
        assert_eq!(p.iterations(40), 25); // saturates at the last slot
        let m = ReadLatencyModel::paper_mlc();
        assert_eq!(m.read_latency_measured(2, &p), m.read_latency(2, 4));
    }

    #[test]
    fn iteration_profile_from_ladder_fills_gaps() {
        let rung = |extra_levels, mean_iterations| FerMeasurement {
            extra_levels,
            success_rate: 1.0,
            mean_iterations,
            raw_ber: 1e-3,
        };
        let p = IterationProfile::from_ladder(&[rung(1, 4.2), rung(3, 9.8)]).unwrap();
        assert_eq!(p.iterations(0), 4); // leading gap inherits level 1
        assert_eq!(p.iterations(1), 4);
        assert_eq!(p.iterations(2), 4); // gap inherits shallower rung
        assert_eq!(p.iterations(3), 10);
        assert_eq!(p.iterations(7), 10); // trailing gaps inherit deepest
        assert_eq!(IterationProfile::from_ladder(&[]), None);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn iteration_profile_rejects_sub_one_means() {
        let _ = IterationProfile::new([0.5; IterationProfile::SLOTS]);
    }
}
