//! Work-stealing decoder-slot farm.
//!
//! One decode engine shared by every producer of codewords: Monte-Carlo
//! FER sweeps ([`measure_fer_farm`](crate::sensing::measure_fer_farm)),
//! iteration-profile calibration ([`measure_iteration_profile`]) and the
//! SSD simulator's decoder pool (`flexlevel-sim --measured-iterations`).
//! The farm's worker count comes from the same knob as every other
//! thread pool in the workspace: an explicit request wins, otherwise
//! `FLEXLEVEL_THREADS`, otherwise the machine
//! ([`reliability::mc::resolve_threads`]). Frames from all
//! producers are packed **in submission order** into batch-sized
//! structure-of-arrays jobs, so batches fill completely instead of each
//! producer running half-empty batches of its own; worker threads then
//! *steal* jobs off a shared atomic counter, each with its own
//! [`DecoderWorkspace`] arena, and results land in a fixed-order slot
//! table.
//!
//! # Determinism
//!
//! The quantized kernels are strictly lane-wise — no operation ever mixes
//! batch lanes — so a frame's verdict is independent of which job it
//! landed in, which lanes share its batch, and which worker decoded it.
//! Combined with the fixed-order reduction this gives the same contract
//! as `reliability::mc`: results are a pure function of the request list,
//! bit-identical for every worker count (and every batch width).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use reliability::mc;

use crate::channel::MlcReadChannel;
use crate::code::QcLdpcCode;
use crate::decoder::DecoderGraph;
use crate::encoder::{encode, random_info};
use crate::latency::IterationProfile;
use crate::quantized::{DecoderWorkspace, LlrQuantizer, QuantizedMinSumDecoder};
use crate::sensing::FerMeasurement;

/// Sizing knobs of a [`DecodeFarm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Worker threads; `0` = auto (`reliability::mc::resolve_threads`,
    /// i.e. `FLEXLEVEL_THREADS` or the machine). Has **no** effect on
    /// results, only wall-clock — the simulator forwards its unified
    /// `--threads` knob here.
    pub workers: u32,
    /// Lanes per batch job. The bit-plane kernel retires 64 lanes per
    /// machine word, so the default is 64. Also result-neutral.
    pub batch: usize,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            workers: 0,
            batch: 64,
        }
    }
}

impl FarmConfig {
    /// Returns the config with an explicit worker count
    /// (`0` keeps the auto behaviour).
    #[must_use]
    pub fn with_workers(mut self, workers: u32) -> FarmConfig {
        self.workers = workers;
        self
    }

    /// Returns the config with an explicit batch width.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> FarmConfig {
        assert!(batch > 0, "farm batch must be non-empty");
        self.batch = batch;
        self
    }
}

/// One codeword to decode: quantized channel LLRs plus, optionally, the
/// transmitted codeword to verify the hard decision against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeRequest {
    /// Quantized channel LLRs, one per codeword bit (positive ⇒ bit 0).
    pub qllrs: Vec<i8>,
    /// Transmitted codeword, if known (Monte-Carlo producers know it;
    /// a real read path does not).
    pub expected: Option<Vec<u8>>,
}

/// Per-frame outcome of a farm decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeVerdict {
    /// The syndrome cleared within the iteration budget.
    pub success: bool,
    /// Iterations (flooding) / sweeps (layered) the frame executed.
    pub iterations: u32,
    /// `success` *and* the hard decision matched
    /// [`DecodeRequest::expected`]; equals `success` when no expectation
    /// was attached.
    pub correct: bool,
}

/// The shared work-stealing decode engine. Cheap to construct (the graph
/// is process-memoized); freely shareable across threads.
#[derive(Debug, Clone)]
pub struct DecodeFarm {
    graph: Arc<DecoderGraph>,
    decoder: QuantizedMinSumDecoder,
    config: FarmConfig,
}

impl DecodeFarm {
    /// Builds a farm decoding `code` with `decoder`.
    pub fn new(
        code: &QcLdpcCode,
        decoder: QuantizedMinSumDecoder,
        config: FarmConfig,
    ) -> DecodeFarm {
        DecodeFarm {
            graph: DecoderGraph::cached(code),
            decoder,
            config,
        }
    }

    /// The decoder every job runs.
    pub fn decoder(&self) -> &QuantizedMinSumDecoder {
        &self.decoder
    }

    /// The farm's sizing knobs.
    pub fn config(&self) -> &FarmConfig {
        &self.config
    }

    /// Decodes every request and returns verdicts in request order.
    ///
    /// Requests are packed into `config.batch`-lane jobs in submission
    /// order (the final job may be partial); workers pull jobs off a
    /// shared counter until the queue drains. Bit-identical for every
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if any request's LLR length does not match the code.
    pub fn decode_all(&self, requests: &[DecodeRequest]) -> Vec<DecodeVerdict> {
        let n = self.graph.bit_count();
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(
                req.qllrs.len(),
                n,
                "request {i}: LLR length must match codeword length"
            );
        }
        if requests.is_empty() {
            return Vec::new();
        }
        let batch = self.config.batch;
        let jobs: Vec<&[DecodeRequest]> = requests.chunks(batch).collect();
        let run_job = |job: &[DecodeRequest], ws: &mut DecoderWorkspace, soa: &mut Vec<i8>| {
            let lanes = job.len();
            soa.clear();
            soa.resize(n * lanes, 0);
            for (lane, req) in job.iter().enumerate() {
                for (bit, &q) in req.qllrs.iter().enumerate() {
                    soa[bit * lanes + lane] = q;
                }
            }
            let out = self.decoder.decode_batch(&self.graph, soa, lanes, ws);
            job.iter()
                .enumerate()
                .map(|(lane, req)| {
                    let success = out.success(lane);
                    let correct = success
                        && req
                            .expected
                            .as_ref()
                            .is_none_or(|cw| (0..n).all(|bit| out.hard_bit(lane, bit) == cw[bit]));
                    DecodeVerdict {
                        success,
                        iterations: out.iterations(lane),
                        correct,
                    }
                })
                .collect::<Vec<DecodeVerdict>>()
        };

        let workers = mc::resolve_threads(self.config.workers).min(jobs.len() as u32);
        if workers <= 1 {
            let mut ws = DecoderWorkspace::new();
            let mut soa = Vec::new();
            return jobs
                .iter()
                .flat_map(|job| run_job(job, &mut ws, &mut soa))
                .collect();
        }
        let slots: Vec<Mutex<Option<Vec<DecodeVerdict>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut ws = DecoderWorkspace::new();
                    let mut soa = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= jobs.len() {
                            break;
                        }
                        let out = run_job(jobs[index], &mut ws, &mut soa);
                        *slots[index].lock().expect("farm slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .expect("farm slot poisoned")
                    .expect("every job ran")
            })
            .collect()
    }
}

/// Measures the mean layered/flooding iteration count per sensing depth
/// through one shared farm queue, and folds it into an
/// [`IterationProfile`] for `SsdConfig::measured_iterations`.
///
/// All depths' frames (depth `e` seeded from `mc::shard_seed(seed, e)`)
/// are generated first and submitted as **one** request list, so rungs
/// fill each other's batches — the multi-producer case the farm exists
/// for. Returns the profile plus the underlying ladder (success rate,
/// mean iterations and raw BER per depth).
///
/// # Panics
///
/// Panics if `trials_per_level == 0`.
#[allow(clippy::too_many_arguments)] // mirrors `minimum_levels`' surface
pub fn measure_iteration_profile<F>(
    code: &QcLdpcCode,
    decoder: &QuantizedMinSumDecoder,
    quantizer: &LlrQuantizer,
    max_levels: u32,
    trials_per_level: u32,
    seed: u64,
    farm_config: FarmConfig,
    mut make_channel: F,
) -> (IterationProfile, Vec<FerMeasurement>)
where
    F: FnMut(u32) -> Arc<MlcReadChannel>,
{
    assert!(trials_per_level > 0, "need at least one trial per level");
    let n = code.codeword_bits();
    let mut requests = Vec::new();
    let mut spans = Vec::new();
    for extra in 0..=max_levels {
        let channel = make_channel(extra);
        let table = channel.quantized_llr_table(quantizer);
        let mut rng = mc::shard_rng(seed, extra);
        let start = requests.len();
        for _ in 0..trials_per_level {
            let info = random_info(code, &mut rng);
            let cw = encode(code, &info).expect("random info has the right length");
            let mut qllrs = vec![0i8; n];
            for (bit, &b) in cw.iter().enumerate() {
                let region = channel.sample_region(b, &mut rng);
                qllrs[bit] = table[region];
            }
            requests.push(DecodeRequest {
                qllrs,
                expected: Some(cw),
            });
        }
        spans.push((extra, start..requests.len(), channel.raw_ber()));
    }
    let farm = DecodeFarm::new(code, *decoder, farm_config);
    let verdicts = farm.decode_all(&requests);
    let mut ladder = Vec::new();
    for (extra, span, raw_ber) in spans {
        let slice = &verdicts[span];
        let trials = slice.len() as f64;
        let correct = slice.iter().filter(|v| v.correct).count() as f64;
        let iterations: u64 = slice.iter().map(|v| u64::from(v.iterations)).sum();
        ladder.push(FerMeasurement {
            extra_levels: extra,
            success_rate: correct / trials,
            mean_iterations: iterations as f64 / trials,
            raw_ber,
        });
    }
    let profile = IterationProfile::from_ladder(&ladder).expect("ladder is non-empty");
    (profile, ladder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelStress, PageKind, SoftSensingConfig};
    use crate::quantized::Schedule;
    use flash_model::{Hours, LevelConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn noisy_request(code: &QcLdpcCode, p: f64, rng: &mut StdRng) -> DecodeRequest {
        let q = LlrQuantizer::default();
        let cw = encode(code, &random_info(code, rng)).unwrap();
        let qllrs = cw
            .iter()
            .map(|&bit| {
                let observed = bit ^ u8::from(rng.gen_bool(p));
                q.quantize(if observed == 0 { 4.0 } else { -4.0 })
            })
            .collect();
        DecodeRequest {
            qllrs,
            expected: Some(cw),
        }
    }

    #[test]
    fn farm_matches_per_frame_decodes() {
        let code = QcLdpcCode::small_test_code();
        let decoder = QuantizedMinSumDecoder::new();
        let graph = DecoderGraph::cached(&code);
        let mut rng = StdRng::seed_from_u64(41);
        let requests: Vec<DecodeRequest> = (0..23)
            .map(|i| noisy_request(&code, if i % 3 == 0 { 0.0 } else { 0.02 }, &mut rng))
            .collect();
        // Odd batch width forces a partial trailing job.
        let farm = DecodeFarm::new(&code, decoder, FarmConfig::default().with_batch(7));
        let verdicts = farm.decode_all(&requests);
        assert_eq!(verdicts.len(), requests.len());
        let mut ws = DecoderWorkspace::new();
        for (req, verdict) in requests.iter().zip(&verdicts) {
            let solo = decoder.decode(&graph, &req.qllrs, &mut ws);
            assert_eq!(verdict.success, solo.success);
            assert_eq!(verdict.iterations, solo.iterations);
            let want_correct =
                solo.success && &solo.hard_decision == req.expected.as_ref().unwrap();
            assert_eq!(verdict.correct, want_correct);
        }
    }

    #[test]
    fn farm_verdicts_identical_for_any_worker_count() {
        let code = QcLdpcCode::small_test_code();
        let decoder = QuantizedMinSumDecoder::new().with_schedule(Schedule::Layered);
        let mut rng = StdRng::seed_from_u64(42);
        let requests: Vec<DecodeRequest> = (0..40)
            .map(|_| noisy_request(&code, 0.02, &mut rng))
            .collect();
        let run = |workers: u32| {
            DecodeFarm::new(
                &code,
                decoder,
                FarmConfig::default().with_workers(workers).with_batch(8),
            )
            .decode_all(&requests)
        };
        let serial = run(1);
        for workers in [2u32, 8] {
            assert_eq!(serial, run(workers), "workers {workers}");
        }
    }

    #[test]
    fn farm_handles_empty_queue() {
        let code = QcLdpcCode::small_test_code();
        let farm = DecodeFarm::new(&code, QuantizedMinSumDecoder::new(), FarmConfig::default());
        assert!(farm.decode_all(&[]).is_empty());
    }

    #[test]
    fn iteration_profile_reflects_noise() {
        let code = QcLdpcCode::small_test_code();
        let decoder = QuantizedMinSumDecoder::new().with_schedule(Schedule::Layered);
        let (profile, ladder) = measure_iteration_profile(
            &code,
            &decoder,
            &LlrQuantizer::default(),
            2,
            24,
            91,
            FarmConfig::default(),
            |extra| {
                MlcReadChannel::build_cached(
                    &LevelConfig::normal_mlc(),
                    PageKind::Lower,
                    ChannelStress::retention(5000, Hours::weeks(1.0)),
                    SoftSensingConfig::soft(extra),
                    20_000,
                    50 + u64::from(extra),
                )
            },
        );
        assert_eq!(ladder.len(), 3);
        for rung in &ladder {
            assert!(rung.mean_iterations >= 1.0);
            assert!((0.0..=1.0).contains(&rung.success_rate));
        }
        assert!(profile.mean_iterations(0) >= 1.0);
        // Deterministic: same inputs, same profile.
        let (again, _) = measure_iteration_profile(
            &code,
            &decoder,
            &LlrQuantizer::default(),
            2,
            24,
            91,
            FarmConfig::default().with_workers(4),
            |extra| {
                MlcReadChannel::build_cached(
                    &LevelConfig::normal_mlc(),
                    PageKind::Lower,
                    ChannelStress::retention(5000, Hours::weeks(1.0)),
                    SoftSensingConfig::soft(extra),
                    20_000,
                    50 + u64::from(extra),
                )
            },
        );
        assert_eq!(profile, again);
    }
}
