//! Quasi-cyclic LDPC code construction.
//!
//! The paper protects each 4 KB data block with a rate-8/9 LDPC code
//! (§6.1). We build that code as a quasi-cyclic (QC) LDPC: the parity-check
//! matrix is a `J × L` array of `Z × Z` circulant permutation blocks. The
//! information section uses shifts `s(i, j) = i · (7j + 3) mod Z`, whose
//! pairwise differences provably avoid 4-cycles for `Z = 1024` (all cross
//! differences are nonzero and never equal `Z/2` times the row distance);
//! the parity section is the standard dual-diagonal "staircase" that makes
//! encoding a single forward pass.
//!
//! Paper shape: `Z = 1024`, `J = 4`, 32 information columns + 4 parity
//! columns ⇒ `n = 36 864`, `k = 32 768`, rate exactly 8/9.

use serde::{Deserialize, Serialize};

/// Errors constructing a [`QcLdpcCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// All dimensions must be positive.
    ZeroDimension(&'static str),
    /// The staircase parity section needs at least two parity columns and
    /// exactly one parity column per base row.
    ParityShapeMismatch {
        /// Base rows requested.
        rows: usize,
        /// Parity columns requested.
        parity_cols: usize,
    },
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::ZeroDimension(what) => write!(f, "code dimension {what} is zero"),
            CodeError::ParityShapeMismatch { rows, parity_cols } => write!(
                f,
                "staircase parity needs one column per row, got {rows} rows and {parity_cols} columns"
            ),
        }
    }
}

impl std::error::Error for CodeError {}

/// A quasi-cyclic LDPC code with a staircase (dual-diagonal) parity part.
///
/// ```
/// use ldpc::QcLdpcCode;
///
/// let code = QcLdpcCode::paper_code();
/// assert_eq!(code.codeword_bits(), 36_864);
/// assert_eq!(code.info_bits(), 32_768);
/// assert!((code.rate() - 8.0 / 9.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QcLdpcCode {
    z: usize,
    base_rows: usize,
    info_cols: usize,
    /// `shifts[i][j]` for information blocks.
    info_shifts: Vec<Vec<usize>>,
}

impl QcLdpcCode {
    /// Builds a code with `base_rows × info_cols` information blocks of
    /// size `z` and a `base_rows`-column staircase parity section.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError`] if a dimension is zero or the staircase shape
    /// is impossible (fewer than 2 rows).
    pub fn new(z: usize, base_rows: usize, info_cols: usize) -> Result<QcLdpcCode, CodeError> {
        if z == 0 {
            return Err(CodeError::ZeroDimension("z"));
        }
        if base_rows == 0 {
            return Err(CodeError::ZeroDimension("base_rows"));
        }
        if info_cols == 0 {
            return Err(CodeError::ZeroDimension("info_cols"));
        }
        if base_rows < 2 {
            return Err(CodeError::ParityShapeMismatch {
                rows: base_rows,
                parity_cols: base_rows,
            });
        }
        let info_shifts = (0..base_rows)
            .map(|i| {
                (0..info_cols)
                    .map(|j| (i * (7 * j + 3)) % z)
                    .collect::<Vec<_>>()
            })
            .collect();
        Ok(QcLdpcCode {
            z,
            base_rows,
            info_cols,
            info_shifts,
        })
    }

    /// The paper's rate-8/9 code over a 4 KB data block:
    /// `Z = 1024`, 4 base rows, 32 information columns.
    pub fn paper_code() -> QcLdpcCode {
        QcLdpcCode::new(1024, 4, 32).expect("paper code parameters are valid")
    }

    /// A small code for fast tests: `Z = 64`, 4 base rows, 16 information
    /// columns (n = 1280, k = 1024, rate 0.8).
    pub fn small_test_code() -> QcLdpcCode {
        QcLdpcCode::new(64, 4, 16).expect("test code parameters are valid")
    }

    /// Circulant block size `Z`.
    #[inline]
    pub fn circulant_size(&self) -> usize {
        self.z
    }

    /// Number of base matrix rows `J` (also parity columns).
    #[inline]
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Number of information block-columns.
    #[inline]
    pub fn info_cols(&self) -> usize {
        self.info_cols
    }

    /// Information bits `k`.
    #[inline]
    pub fn info_bits(&self) -> usize {
        self.info_cols * self.z
    }

    /// Parity bits (`base_rows × Z`).
    #[inline]
    pub fn parity_bits(&self) -> usize {
        self.base_rows * self.z
    }

    /// Codeword length `n`.
    #[inline]
    pub fn codeword_bits(&self) -> usize {
        self.info_bits() + self.parity_bits()
    }

    /// Number of parity checks (rows of H).
    #[inline]
    pub fn check_count(&self) -> usize {
        self.parity_bits()
    }

    /// Code rate `k / n`.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.info_bits() as f64 / self.codeword_bits() as f64
    }

    /// Shift of information block `(row, col)`.
    #[inline]
    pub fn info_shift(&self, row: usize, col: usize) -> usize {
        self.info_shifts[row][col]
    }

    /// The bit positions participating in parity check `check`
    /// (information bits first, then the staircase parity bits).
    ///
    /// Check `c = i·Z + t` (block row `i`, offset `t`) touches:
    /// information bit `j·Z + (t + s(i,j)) mod Z` for every info column
    /// `j`, parity bit `i·Z + t`, and (for `i > 0`) parity bit
    /// `(i−1)·Z + t`.
    pub fn check_bits(&self, check: usize) -> Vec<usize> {
        assert!(check < self.check_count(), "check index out of range");
        let i = check / self.z;
        let t = check % self.z;
        let mut bits = Vec::with_capacity(self.info_cols + 2);
        for j in 0..self.info_cols {
            let s = self.info_shifts[i][j];
            bits.push(j * self.z + (t + s) % self.z);
        }
        let parity_base = self.info_bits();
        bits.push(parity_base + i * self.z + t);
        if i > 0 {
            bits.push(parity_base + (i - 1) * self.z + t);
        }
        bits
    }

    /// Builds the full sparse structure: for every check, its bit list.
    pub fn all_checks(&self) -> Vec<Vec<usize>> {
        (0..self.check_count())
            .map(|c| self.check_bits(c))
            .collect()
    }

    /// Computes the syndrome weight of a hard-decision word (number of
    /// unsatisfied checks). Zero means `word` is a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != codeword_bits()`.
    pub fn syndrome_weight(&self, word: &[u8]) -> usize {
        assert_eq!(word.len(), self.codeword_bits(), "word length mismatch");
        (0..self.check_count())
            .filter(|&c| {
                self.check_bits(c)
                    .iter()
                    .fold(0u8, |acc, &b| acc ^ (word[b] & 1))
                    == 1
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_code_shape() {
        let code = QcLdpcCode::paper_code();
        assert_eq!(code.circulant_size(), 1024);
        assert_eq!(code.info_bits(), 32_768);
        assert_eq!(code.parity_bits(), 4_096);
        assert_eq!(code.codeword_bits(), 36_864);
        assert_eq!(code.check_count(), 4_096);
        assert!((code.rate() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn small_code_shape() {
        let code = QcLdpcCode::small_test_code();
        assert_eq!(code.codeword_bits(), 1280);
        assert_eq!(code.info_bits(), 1024);
        assert!((code.rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invalid_dimensions_rejected() {
        assert!(matches!(
            QcLdpcCode::new(0, 4, 8),
            Err(CodeError::ZeroDimension("z"))
        ));
        assert!(matches!(
            QcLdpcCode::new(64, 0, 8),
            Err(CodeError::ZeroDimension("base_rows"))
        ));
        assert!(matches!(
            QcLdpcCode::new(64, 4, 0),
            Err(CodeError::ZeroDimension("info_cols"))
        ));
        assert!(matches!(
            QcLdpcCode::new(64, 1, 8),
            Err(CodeError::ParityShapeMismatch { .. })
        ));
    }

    #[test]
    fn check_degree_regular() {
        let code = QcLdpcCode::small_test_code();
        for c in 0..code.check_count() {
            let bits = code.check_bits(c);
            let expected = code.info_cols() + if c / code.circulant_size() > 0 { 2 } else { 1 };
            assert_eq!(bits.len(), expected, "check {c}");
            // no duplicate bit connections
            let set: HashSet<_> = bits.iter().collect();
            assert_eq!(set.len(), bits.len());
        }
    }

    #[test]
    fn variable_degrees() {
        // Information bits: degree J (one per base row).
        // Parity bits: degree 2 (staircase), except the last block (degree 1
        // connection... actually first block col appears in rows 0 and 1).
        let code = QcLdpcCode::small_test_code();
        let mut degree = vec![0usize; code.codeword_bits()];
        for c in 0..code.check_count() {
            for b in code.check_bits(c) {
                degree[b] += 1;
            }
        }
        for (b, &d) in degree.iter().enumerate().take(code.info_bits()) {
            assert_eq!(d, code.base_rows(), "info bit {b}");
        }
        let z = code.circulant_size();
        for (idx, &d) in degree[code.info_bits()..].iter().enumerate() {
            let block = idx / z;
            let expected = if block == code.base_rows() - 1 { 1 } else { 2 };
            assert_eq!(d, expected, "parity bit {idx}");
        }
    }

    #[test]
    fn no_four_cycles_in_small_code() {
        // Girth > 4: no two checks share more than one bit.
        let code = QcLdpcCode::small_test_code();
        let checks = code.all_checks();
        for a in 0..checks.len() {
            let set: HashSet<_> = checks[a].iter().collect();
            for (b, check) in checks.iter().enumerate().skip(a + 1) {
                let shared = check.iter().filter(|x| set.contains(x)).count();
                assert!(shared <= 1, "checks {a} and {b} share {shared} bits");
            }
        }
    }

    #[test]
    fn zero_word_is_codeword() {
        let code = QcLdpcCode::small_test_code();
        let zero = vec![0u8; code.codeword_bits()];
        assert_eq!(code.syndrome_weight(&zero), 0);
    }

    #[test]
    fn single_bit_flip_breaks_checks() {
        let code = QcLdpcCode::small_test_code();
        let mut word = vec![0u8; code.codeword_bits()];
        word[5] = 1; // an information bit: participates in J checks
        assert_eq!(code.syndrome_weight(&word), code.base_rows());
    }

    #[test]
    fn check_bits_deterministic_structure() {
        let code = QcLdpcCode::small_test_code();
        // Check 0 (row 0, offset 0) touches info bit (t + s(0,j)) = s(0,j)=0
        // of each block plus parity bit 0 of block 0.
        let bits = code.check_bits(0);
        for (j, &b) in bits.iter().take(code.info_cols()).enumerate() {
            assert_eq!(b, j * code.circulant_size());
        }
        assert_eq!(bits[code.info_cols()], code.info_bits());
    }
}
