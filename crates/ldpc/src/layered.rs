//! Layered (turbo-decoding-message-passing) min-sum decoder.
//!
//! Flooding updates every check from the *previous* iteration's messages;
//! layered decoding sweeps checks sequentially and lets later checks in
//! the same iteration see the refreshed posteriors immediately. For QC
//! codes this typically halves the iterations to convergence — which in a
//! NAND controller halves the decode stage of the read latency — at
//! identical error-rate performance. Offered alongside the flooding
//! [`MinSumDecoder`](crate::decoder::MinSumDecoder) so the latency model
//! can be studied under both (see the `ldpc_decode` bench).

use crate::decoder::{DecodeOutcome, DecoderGraph};

/// Layered normalized min-sum decoder.
///
/// ```
/// use ldpc::{encode, DecoderGraph, LayeredDecoder, QcLdpcCode};
///
/// # fn main() -> Result<(), ldpc::EncodeError> {
/// let code = QcLdpcCode::small_test_code();
/// let graph = DecoderGraph::new(&code);
/// let codeword = encode(&code, &vec![1u8; code.info_bits()])?;
/// let llrs: Vec<f32> = codeword.iter().map(|&b| if b == 0 { 4.0 } else { -4.0 }).collect();
/// assert!(LayeredDecoder::new().decode(&graph, &llrs).success);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredDecoder {
    /// Maximum full sweeps over the check set.
    pub max_iterations: u32,
    /// Check-node normalization factor α.
    pub normalization: f32,
}

impl LayeredDecoder {
    /// Default configuration matching the flooding decoder (30 sweeps,
    /// α = 0.75).
    pub fn new() -> LayeredDecoder {
        LayeredDecoder {
            max_iterations: 30,
            normalization: 0.75,
        }
    }

    /// Decodes `channel_llrs` (positive ⇒ bit 0) over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len() != graph.bit_count()`.
    pub fn decode(&self, graph: &DecoderGraph, channel_llrs: &[f32]) -> DecodeOutcome {
        assert_eq!(
            channel_llrs.len(),
            graph.bit_count(),
            "LLR length must match codeword length"
        );
        let edges = graph.edge_count();
        let mut c2v = vec![0.0f32; edges];
        let mut posterior: Vec<f32> = channel_llrs.to_vec();
        let mut hard = vec![0u8; graph.bit_count()];

        let mut iterations = 0;
        for iter in 1..=self.max_iterations {
            iterations = iter;
            for c in 0..graph.check_count() {
                let (lo, hi) = graph.check_edge_range(c);
                // Variable-to-check messages: posterior minus this check's
                // previous contribution.
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min1_edge = lo;
                let mut sign_product = 1.0f32;
                #[allow(clippy::needless_range_loop)] // e also feeds min1_edge
                for e in lo..hi {
                    let b = graph.edge_bit(e);
                    let v = posterior[b] - c2v[e];
                    let mag = v.abs();
                    if v < 0.0 {
                        sign_product = -sign_product;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_edge = e;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                // New check-to-variable messages, applied immediately.
                #[allow(clippy::needless_range_loop)] // e is compared to min1_edge
                for e in lo..hi {
                    let b = graph.edge_bit(e);
                    let v_old = posterior[b] - c2v[e];
                    let mag = if e == min1_edge { min2 } else { min1 };
                    let self_sign = if v_old < 0.0 { -1.0 } else { 1.0 };
                    let new = self.normalization * sign_product * self_sign * mag;
                    posterior[b] = v_old + new;
                    c2v[e] = new;
                }
            }
            for (b, h) in hard.iter_mut().enumerate() {
                *h = (posterior[b] < 0.0) as u8;
            }
            if graph.syndrome_satisfied(&hard) {
                return DecodeOutcome {
                    success: true,
                    iterations,
                    hard_decision: hard,
                };
            }
        }
        DecodeOutcome {
            success: false,
            iterations,
            hard_decision: hard,
        }
    }
}

impl Default for LayeredDecoder {
    fn default() -> LayeredDecoder {
        LayeredDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::QcLdpcCode;
    use crate::decoder::MinSumDecoder;
    use crate::encoder::{encode, random_info};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bsc_llrs<R: Rng>(cw: &[u8], p: f64, rng: &mut R) -> Vec<f32> {
        cw.iter()
            .map(|&bit| {
                let observed = bit ^ (rng.gen_bool(p) as u8);
                if observed == 0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect()
    }

    #[test]
    fn clean_codeword_one_sweep() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(1);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs = bsc_llrs(&cw, 0.0, &mut rng);
        let out = LayeredDecoder::new().decode(&graph, &llrs);
        assert!(out.success);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn corrects_where_flooding_does() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let layered = LayeredDecoder::new();
        let flooding = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layered_ok = 0;
        let mut flooding_ok = 0;
        for _ in 0..25 {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let llrs = bsc_llrs(&cw, 0.006, &mut rng);
            if layered.decode(&graph, &llrs).success {
                layered_ok += 1;
            }
            if flooding.decode(&graph, &llrs).success {
                flooding_ok += 1;
            }
        }
        assert!(
            layered_ok >= flooding_ok - 1,
            "layered {layered_ok} vs flooding {flooding_ok}"
        );
    }

    #[test]
    fn converges_faster_than_flooding() {
        // The whole point of layered scheduling.
        let code = QcLdpcCode::paper_code();
        let graph = DecoderGraph::new(&code);
        let layered = LayeredDecoder::new();
        let flooding = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layered_iters = 0u32;
        let mut flooding_iters = 0u32;
        for _ in 0..4 {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let llrs = bsc_llrs(&cw, 4e-3, &mut rng);
            let l = layered.decode(&graph, &llrs);
            let f = flooding.decode(&graph, &llrs);
            assert!(l.success && f.success);
            layered_iters += l.iterations;
            flooding_iters += f.iterations;
        }
        assert!(
            layered_iters < flooding_iters,
            "layered {layered_iters} must beat flooding {flooding_iters}"
        );
    }

    #[test]
    fn fails_cleanly_on_garbage() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(4);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs = bsc_llrs(&cw, 0.3, &mut rng);
        let out = LayeredDecoder {
            max_iterations: 8,
            normalization: 0.75,
        }
        .decode(&graph, &llrs);
        assert!(!out.success);
        assert_eq!(out.iterations, 8);
    }
}
