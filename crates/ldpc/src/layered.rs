//! Layered (turbo-decoding-message-passing) min-sum decoder.
//!
//! Flooding updates every check from the *previous* iteration's messages;
//! layered decoding sweeps checks sequentially and lets later checks in
//! the same iteration see the refreshed posteriors immediately. For QC
//! codes this typically halves the iterations to convergence — which in a
//! NAND controller halves the decode stage of the read latency — at
//! identical error-rate performance. Offered alongside the flooding
//! [`MinSumDecoder`](crate::decoder::MinSumDecoder) so the latency model
//! can be studied under both (see the `ldpc_decode` bench).

use crate::decoder::{DecodeOutcome, DecoderGraph};
use crate::quantized::{finish_failed, freeze_lanes, DecoderWorkspace, Q_MAX};

/// Layered (row-staggered) schedule for the quantized batch decoder: the
/// `i8` structure-of-arrays reference kernel behind
/// [`Schedule::Layered`](crate::quantized::Schedule::Layered).
///
/// State per lane is the `i16` posterior (bounded by ±(Q_MAX + 23), far
/// from overflow) plus the last `i8` c2v per edge. Each check recovers
/// its saturated v2c as `clamp(posterior − c2v, ±Q_MAX)`, runs the same
/// exact min/sign/α=3/4 datapath as flooding, and folds the fresh c2v
/// straight back into the posterior so later checks in the same sweep see
/// it. Hard decisions and per-lane freezing happen once per sweep, with
/// the flooding kernel's exact freeze semantics (shared helpers).
pub(crate) fn decode_batch_layered_i8(
    graph: &DecoderGraph,
    qllrs: &[i8],
    batch: usize,
    max_iterations: u32,
    ws: &mut DecoderWorkspace,
) {
    let n = graph.bit_count();
    let edges = graph.edge_count();
    ws.ensure_layered(n, batch, graph.max_check_degree());
    let DecoderWorkspace {
        q_c2v,
        q_post,
        q_vrow,
        hard,
        hard_out,
        min1,
        min2,
        sign,
        parity,
        unsat,
        done,
        success,
        iterations: lane_iterations,
        ..
    } = ws;
    let q_c2v = &mut q_c2v[..edges * batch];
    let q_post = &mut q_post[..n * batch];
    let hard = &mut hard[..n * batch];
    let hard_out = &mut hard_out[..n * batch];
    let min1 = &mut min1[..batch];
    let min2 = &mut min2[..batch];
    let sign = &mut sign[..batch];
    let parity = &mut parity[..batch];
    let unsat = &mut unsat[..batch];
    let done = &mut done[..batch];
    let success = &mut success[..batch];
    let lane_iterations = &mut lane_iterations[..batch];

    q_c2v.fill(0);
    done.fill(0);
    success.fill(0);
    lane_iterations.fill(0);
    for (p, &q) in q_post.iter_mut().zip(qllrs) {
        *p = i16::from(q);
    }

    let q_max = i16::from(Q_MAX);
    let mut remaining = batch;
    let mut iterations = 0;
    for sweep in 1..=max_iterations {
        iterations = sweep;
        for c in 0..graph.check_count() {
            let (lo, hi) = graph.check_edge_range(c);
            min1.fill(i16::MAX);
            min2.fill(i16::MAX);
            sign.fill(0);
            // Pass 1: recover saturated v2c rows, accumulate min/sign.
            for (i, e) in (lo..hi).enumerate() {
                let b = graph.edge_bit(e);
                let prow = &q_post[b * batch..(b + 1) * batch];
                let crow = &q_c2v[e * batch..(e + 1) * batch];
                let vrow = &mut q_vrow[i * batch..(i + 1) * batch];
                let lanes = vrow.iter_mut().zip(prow).zip(crow);
                for (((v, &p), &cm), ((m1, m2), sg)) in
                    lanes.zip(min1.iter_mut().zip(min2.iter_mut()).zip(sign.iter_mut()))
                {
                    let vv = (p - i16::from(cm)).clamp(-q_max, q_max) as i8;
                    *v = vv;
                    let mag = i16::from(vv).abs();
                    *sg ^= u8::from(vv < 0);
                    *m2 = (*m2).min(mag.max(*m1));
                    *m1 = (*m1).min(mag);
                }
            }
            // Pass 2: emit fresh c2v, apply it to the posterior at once.
            for (i, e) in (lo..hi).enumerate() {
                let b = graph.edge_bit(e);
                let prow = &mut q_post[b * batch..(b + 1) * batch];
                let crow = &mut q_c2v[e * batch..(e + 1) * batch];
                let vrow = &q_vrow[i * batch..(i + 1) * batch];
                let lanes = prow.iter_mut().zip(crow.iter_mut()).zip(vrow);
                for (((p, cm), &vv), ((&m1, &m2), &sg)) in
                    lanes.zip(min1.iter().zip(min2.iter()).zip(sign.iter()))
                {
                    let mag = i16::from(vv).abs();
                    let m = if mag == m1 { m2 } else { m1 };
                    let scaled = ((3 * m.min(q_max)) >> 2) as i8;
                    let neg = sg ^ u8::from(vv < 0);
                    let c_new = if neg != 0 { -scaled } else { scaled };
                    *p = i16::from(vv) + i16::from(c_new);
                    *cm = c_new;
                }
            }
        }
        // Hard decisions from the posterior, once per sweep.
        for (h, &p) in hard.iter_mut().zip(q_post.iter()) {
            *h = u8::from(p < 0);
        }
        // Per-lane syndrome, identical to the flooding kernel.
        unsat.fill(0);
        for c in 0..graph.check_count() {
            let (lo, hi) = graph.check_edge_range(c);
            parity.fill(0);
            for &b in &graph.edge_bits[lo..hi] {
                let hrow = &hard[b as usize * batch..(b as usize + 1) * batch];
                for (p, &h) in parity.iter_mut().zip(hrow) {
                    *p ^= h;
                }
            }
            for (u, &p) in unsat.iter_mut().zip(parity.iter()) {
                *u |= p;
            }
        }
        if freeze_lanes(
            n,
            batch,
            sweep,
            unsat,
            done,
            success,
            lane_iterations,
            hard,
            hard_out,
            &mut remaining,
        ) {
            break;
        }
    }
    finish_failed(n, batch, iterations, done, lane_iterations, hard, hard_out);
}

/// Layered normalized min-sum decoder.
///
/// ```
/// use ldpc::{encode, DecoderGraph, LayeredDecoder, QcLdpcCode};
///
/// # fn main() -> Result<(), ldpc::EncodeError> {
/// let code = QcLdpcCode::small_test_code();
/// let graph = DecoderGraph::new(&code);
/// let codeword = encode(&code, &vec![1u8; code.info_bits()])?;
/// let llrs: Vec<f32> = codeword.iter().map(|&b| if b == 0 { 4.0 } else { -4.0 }).collect();
/// assert!(LayeredDecoder::new().decode(&graph, &llrs).success);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayeredDecoder {
    /// Maximum full sweeps over the check set.
    pub max_iterations: u32,
    /// Check-node normalization factor α.
    pub normalization: f32,
}

impl LayeredDecoder {
    /// Default configuration matching the flooding decoder (30 sweeps,
    /// α = 0.75).
    pub fn new() -> LayeredDecoder {
        LayeredDecoder {
            max_iterations: 30,
            normalization: 0.75,
        }
    }

    /// Decodes `channel_llrs` (positive ⇒ bit 0) over `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len() != graph.bit_count()`.
    pub fn decode(&self, graph: &DecoderGraph, channel_llrs: &[f32]) -> DecodeOutcome {
        assert_eq!(
            channel_llrs.len(),
            graph.bit_count(),
            "LLR length must match codeword length"
        );
        let edges = graph.edge_count();
        let mut c2v = vec![0.0f32; edges];
        let mut posterior: Vec<f32> = channel_llrs.to_vec();
        let mut hard = vec![0u8; graph.bit_count()];

        let mut iterations = 0;
        for iter in 1..=self.max_iterations {
            iterations = iter;
            for c in 0..graph.check_count() {
                let (lo, hi) = graph.check_edge_range(c);
                // Variable-to-check messages: posterior minus this check's
                // previous contribution.
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min1_edge = lo;
                let mut sign_product = 1.0f32;
                #[allow(clippy::needless_range_loop)] // e also feeds min1_edge
                for e in lo..hi {
                    let b = graph.edge_bit(e);
                    let v = posterior[b] - c2v[e];
                    let mag = v.abs();
                    if v < 0.0 {
                        sign_product = -sign_product;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_edge = e;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                // New check-to-variable messages, applied immediately.
                #[allow(clippy::needless_range_loop)] // e is compared to min1_edge
                for e in lo..hi {
                    let b = graph.edge_bit(e);
                    let v_old = posterior[b] - c2v[e];
                    let mag = if e == min1_edge { min2 } else { min1 };
                    let self_sign = if v_old < 0.0 { -1.0 } else { 1.0 };
                    let new = self.normalization * sign_product * self_sign * mag;
                    posterior[b] = v_old + new;
                    c2v[e] = new;
                }
            }
            for (b, h) in hard.iter_mut().enumerate() {
                *h = (posterior[b] < 0.0) as u8;
            }
            if graph.syndrome_satisfied(&hard) {
                return DecodeOutcome {
                    success: true,
                    iterations,
                    hard_decision: hard,
                };
            }
        }
        DecodeOutcome {
            success: false,
            iterations,
            hard_decision: hard,
        }
    }
}

impl Default for LayeredDecoder {
    fn default() -> LayeredDecoder {
        LayeredDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::QcLdpcCode;
    use crate::decoder::MinSumDecoder;
    use crate::encoder::{encode, random_info};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn bsc_llrs<R: Rng>(cw: &[u8], p: f64, rng: &mut R) -> Vec<f32> {
        cw.iter()
            .map(|&bit| {
                let observed = bit ^ (rng.gen_bool(p) as u8);
                if observed == 0 {
                    4.0
                } else {
                    -4.0
                }
            })
            .collect()
    }

    #[test]
    fn clean_codeword_one_sweep() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(1);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs = bsc_llrs(&cw, 0.0, &mut rng);
        let out = LayeredDecoder::new().decode(&graph, &llrs);
        assert!(out.success);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn corrects_where_flooding_does() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let layered = LayeredDecoder::new();
        let flooding = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layered_ok = 0;
        let mut flooding_ok = 0;
        for _ in 0..25 {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let llrs = bsc_llrs(&cw, 0.006, &mut rng);
            if layered.decode(&graph, &llrs).success {
                layered_ok += 1;
            }
            if flooding.decode(&graph, &llrs).success {
                flooding_ok += 1;
            }
        }
        assert!(
            layered_ok >= flooding_ok - 1,
            "layered {layered_ok} vs flooding {flooding_ok}"
        );
    }

    #[test]
    fn converges_faster_than_flooding() {
        // The whole point of layered scheduling.
        let code = QcLdpcCode::paper_code();
        let graph = DecoderGraph::new(&code);
        let layered = LayeredDecoder::new();
        let flooding = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layered_iters = 0u32;
        let mut flooding_iters = 0u32;
        for _ in 0..4 {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let llrs = bsc_llrs(&cw, 4e-3, &mut rng);
            let l = layered.decode(&graph, &llrs);
            let f = flooding.decode(&graph, &llrs);
            assert!(l.success && f.success);
            layered_iters += l.iterations;
            flooding_iters += f.iterations;
        }
        assert!(
            layered_iters < flooding_iters,
            "layered {layered_iters} must beat flooding {flooding_iters}"
        );
    }

    #[test]
    fn fails_cleanly_on_garbage() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(4);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs = bsc_llrs(&cw, 0.3, &mut rng);
        let out = LayeredDecoder {
            max_iterations: 8,
            normalization: 0.75,
        }
        .decode(&graph, &llrs);
        assert!(!out.success);
        assert_eq!(out.iterations, 8);
    }
}
