//! Normalized min-sum LDPC decoder (flooding schedule).
//!
//! The industry-standard soft decoder for NAND controllers: check-node
//! updates use the min-sum approximation scaled by a normalization factor
//! (α = 0.75 by default), which trades a fraction of a dB for a much
//! cheaper datapath than sum-product. Decoding stops as soon as the hard
//! decision satisfies every parity check.
//!
//! LLR convention: **positive LLR ⇒ bit 0 more likely**.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::code::QcLdpcCode;
use crate::quantized::DecoderWorkspace;

/// Sparse Tanner-graph adjacency in CSR form, precomputed once per code.
#[derive(Debug, Clone)]
pub struct DecoderGraph {
    n: usize,
    check_offsets: Vec<u32>,
    /// Bit index of each edge, grouped by check.
    pub(crate) edge_bits: Vec<u32>,
    bit_offsets: Vec<u32>,
    /// Edge indices (into `edge_bits` order), grouped by bit.
    pub(crate) bit_edges: Vec<u32>,
}

impl DecoderGraph {
    /// Builds the adjacency structure of `code`.
    pub fn new(code: &QcLdpcCode) -> DecoderGraph {
        let n = code.codeword_bits();
        let checks = code.check_count();
        let mut check_offsets = Vec::with_capacity(checks + 1);
        let mut edge_bits = Vec::new();
        check_offsets.push(0u32);
        for c in 0..checks {
            for b in code.check_bits(c) {
                edge_bits.push(b as u32);
            }
            check_offsets.push(edge_bits.len() as u32);
        }
        // Bucket edges by bit.
        let mut degree = vec![0u32; n];
        for &b in &edge_bits {
            degree[b as usize] += 1;
        }
        let mut bit_offsets = Vec::with_capacity(n + 1);
        bit_offsets.push(0u32);
        for b in 0..n {
            bit_offsets.push(bit_offsets[b] + degree[b]);
        }
        let mut cursor = bit_offsets[..n].to_vec();
        let mut bit_edges = vec![0u32; edge_bits.len()];
        for (e, &b) in edge_bits.iter().enumerate() {
            let slot = cursor[b as usize];
            bit_edges[slot as usize] = e as u32;
            cursor[b as usize] += 1;
        }
        DecoderGraph {
            n,
            check_offsets,
            edge_bits,
            bit_offsets,
            bit_edges,
        }
    }

    /// Number of edges in the Tanner graph.
    pub fn edge_count(&self) -> usize {
        self.edge_bits.len()
    }

    /// Number of codeword bits.
    pub fn bit_count(&self) -> usize {
        self.n
    }

    /// Number of parity checks.
    pub fn check_count(&self) -> usize {
        self.check_offsets.len() - 1
    }

    /// The half-open edge range `[lo, hi)` of check `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= check_count()`.
    #[inline]
    pub fn check_edge_range(&self, c: usize) -> (usize, usize) {
        (
            self.check_offsets[c] as usize,
            self.check_offsets[c + 1] as usize,
        )
    }

    /// The bit index edge `e` connects to.
    ///
    /// # Panics
    ///
    /// Panics if `e >= edge_count()`.
    #[inline]
    pub fn edge_bit(&self, e: usize) -> usize {
        self.edge_bits[e] as usize
    }

    /// The half-open range `[lo, hi)` into the bit-grouped edge list of
    /// bit `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= bit_count()`.
    #[inline]
    pub fn bit_edge_range(&self, b: usize) -> (usize, usize) {
        (
            self.bit_offsets[b] as usize,
            self.bit_offsets[b + 1] as usize,
        )
    }

    /// Largest check-node degree (row weight) in the graph. Sizes the
    /// per-check scratch of the layered kernels.
    pub fn max_check_degree(&self) -> usize {
        self.check_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Largest bit-node degree (column weight) in the graph. Bounds the
    /// bit-total magnitude, which sizes the bit-plane kernel's
    /// two's-complement plane count.
    pub fn max_bit_degree(&self) -> usize {
        self.bit_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// A process-wide memoized graph for `code`.
    ///
    /// Several bench binaries, tests and the sensing ladder rebuild the
    /// same graph repeatedly (the paper code's has ~138k edges); this
    /// cache builds it once per distinct code shape. The key is
    /// `(Z, base_rows, info_cols)` — complete, because
    /// [`QcLdpcCode::new`] derives the information shifts purely from
    /// those three parameters.
    pub fn cached(code: &QcLdpcCode) -> Arc<DecoderGraph> {
        type Cache = Mutex<HashMap<(usize, usize, usize), Arc<DecoderGraph>>>;
        static CACHE: OnceLock<Cache> = OnceLock::new();
        let key = (code.circulant_size(), code.base_rows(), code.info_cols());
        let mut map = CACHE
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("decoder graph cache poisoned");
        Arc::clone(
            map.entry(key)
                .or_insert_with(|| Arc::new(DecoderGraph::new(code))),
        )
    }

    /// `true` if the hard decision satisfies every parity check.
    pub fn syndrome_satisfied(&self, hard: &[u8]) -> bool {
        for c in 0..self.check_count() {
            let (lo, hi) = self.check_edge_range(c);
            let parity = self.edge_bits[lo..hi]
                .iter()
                .fold(0u8, |acc, &b| acc ^ hard[b as usize]);
            if parity != 0 {
                return false;
            }
        }
        true
    }
}

/// Result of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// `true` if the final hard decision satisfies every parity check.
    pub success: bool,
    /// Iterations actually executed (≥ 1).
    pub iterations: u32,
    /// Final hard decision, one bit per byte.
    pub hard_decision: Vec<u8>,
}

impl DecodeOutcome {
    /// The information section of the hard decision (systematic code).
    pub fn info_bits<'a>(&'a self, code: &QcLdpcCode) -> &'a [u8] {
        &self.hard_decision[..code.info_bits()]
    }
}

/// Normalized min-sum decoder configuration.
///
/// ```
/// use ldpc::{encode, DecoderGraph, MinSumDecoder, QcLdpcCode};
///
/// # fn main() -> Result<(), ldpc::EncodeError> {
/// let code = QcLdpcCode::small_test_code();
/// let graph = DecoderGraph::new(&code);
/// let codeword = encode(&code, &vec![0u8; code.info_bits()])?;
/// let llrs: Vec<f32> = codeword.iter().map(|_| 4.0).collect();
/// let out = MinSumDecoder::new().decode(&graph, &llrs);
/// assert!(out.success);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinSumDecoder {
    /// Maximum flooding iterations before declaring failure.
    pub max_iterations: u32,
    /// Check-node normalization factor α (0 < α ≤ 1).
    pub normalization: f32,
}

impl MinSumDecoder {
    /// The configuration used throughout the reproduction: 30 iterations,
    /// α = 0.75.
    pub fn new() -> MinSumDecoder {
        MinSumDecoder {
            max_iterations: 30,
            normalization: 0.75,
        }
    }

    /// Decodes `channel_llrs` (positive ⇒ bit 0) over `graph`.
    ///
    /// Allocates fresh message buffers; hot loops should prefer
    /// [`decode_with`](Self::decode_with) and a reused
    /// [`DecoderWorkspace`].
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len() != graph.bit_count()`.
    pub fn decode(&self, graph: &DecoderGraph, channel_llrs: &[f32]) -> DecodeOutcome {
        self.decode_with(graph, channel_llrs, &mut DecoderWorkspace::new())
    }

    /// Decodes `channel_llrs` reusing `ws` for all message buffers: a warm
    /// workspace makes the only remaining allocation the returned hard
    /// decision. Numerically identical to [`decode`](Self::decode).
    ///
    /// # Panics
    ///
    /// Panics if `channel_llrs.len() != graph.bit_count()`.
    pub fn decode_with(
        &self,
        graph: &DecoderGraph,
        channel_llrs: &[f32],
        ws: &mut DecoderWorkspace,
    ) -> DecodeOutcome {
        assert_eq!(
            channel_llrs.len(),
            graph.bit_count(),
            "LLR length must match codeword length"
        );
        let edges = graph.edge_count();
        ws.ensure_scalar_f32(edges, graph.bit_count());
        let (v2c, c2v, total, hard) = ws.scalar_f32_buffers();
        let (v2c, c2v) = (&mut v2c[..edges], &mut c2v[..edges]);
        let total = &mut total[..graph.bit_count()];
        let hard = &mut hard[..graph.bit_count()];
        // v2c initialised to channel values; c2v starts at zero.
        for (v, &b) in v2c.iter_mut().zip(&graph.edge_bits) {
            *v = channel_llrs[b as usize];
        }
        c2v.fill(0.0);

        let mut iterations = 0;
        for iter in 1..=self.max_iterations {
            iterations = iter;
            // Check-node update: for every check, min / second-min of |v2c|
            // and the sign product, then c2v = α · sign · (min excluding self).
            for c in 0..graph.check_offsets.len() - 1 {
                let lo = graph.check_offsets[c] as usize;
                let hi = graph.check_offsets[c + 1] as usize;
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min1_edge = lo;
                let mut sign_product = 1.0f32;
                #[allow(clippy::needless_range_loop)] // e also feeds min1_edge
                for e in lo..hi {
                    let v = v2c[e];
                    let mag = v.abs();
                    if v < 0.0 {
                        sign_product = -sign_product;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_edge = e;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for e in lo..hi {
                    let mag = if e == min1_edge { min2 } else { min1 };
                    let self_sign = if v2c[e] < 0.0 { -1.0 } else { 1.0 };
                    c2v[e] = self.normalization * sign_product * self_sign * mag;
                }
            }
            // Bit-node update and hard decision.
            total.copy_from_slice(channel_llrs);
            for (e, &b) in graph.edge_bits.iter().enumerate() {
                total[b as usize] += c2v[e];
            }
            for b in 0..graph.bit_count() {
                hard[b] = (total[b] < 0.0) as u8;
                let lo = graph.bit_offsets[b] as usize;
                let hi = graph.bit_offsets[b + 1] as usize;
                for &e in &graph.bit_edges[lo..hi] {
                    v2c[e as usize] = total[b] - c2v[e as usize];
                }
            }
            if graph.syndrome_satisfied(hard) {
                return DecodeOutcome {
                    success: true,
                    iterations,
                    hard_decision: hard.to_vec(),
                };
            }
        }
        DecodeOutcome {
            success: false,
            iterations,
            hard_decision: hard.to_vec(),
        }
    }
}

impl Default for MinSumDecoder {
    fn default() -> MinSumDecoder {
        MinSumDecoder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, random_info};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Maps a codeword + BSC flips into hard-decision LLRs.
    fn bsc_llrs<R: Rng>(cw: &[u8], p: f64, magnitude: f32, rng: &mut R) -> Vec<f32> {
        cw.iter()
            .map(|&bit| {
                let flipped = rng.gen_bool(p);
                let observed = bit ^ (flipped as u8);
                if observed == 0 {
                    magnitude
                } else {
                    -magnitude
                }
            })
            .collect()
    }

    #[test]
    fn graph_structure() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        assert_eq!(graph.bit_count(), code.codeword_bits());
        // Edges: info bits have degree J; parity staircase adds 2 per check
        // except block row 0 (1 edge).
        let expected = code.info_cols() * code.base_rows() * code.circulant_size()
            + (2 * code.base_rows() - 1) * code.circulant_size();
        assert_eq!(graph.edge_count(), expected);
    }

    #[test]
    fn clean_codeword_decodes_in_one_iteration() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(1);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs = bsc_llrs(&cw, 0.0, 8.0, &mut rng);
        let out = MinSumDecoder::new().decode(&graph, &llrs);
        assert!(out.success);
        assert_eq!(out.iterations, 1);
        assert_eq!(out.hard_decision, cw);
    }

    #[test]
    fn corrects_moderate_bsc_noise() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut successes = 0;
        let trials = 30;
        for _ in 0..trials {
            let info = random_info(&code, &mut rng);
            let cw = encode(&code, &info).unwrap();
            let llrs = bsc_llrs(&cw, 0.005, 4.0, &mut rng);
            let out = decoder.decode(&graph, &llrs);
            if out.success && out.hard_decision == cw {
                successes += 1;
            }
        }
        assert!(
            successes >= trials - 1,
            "decoder corrected only {successes}/{trials} at p=0.5%"
        );
    }

    #[test]
    fn fails_gracefully_under_extreme_noise() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder {
            max_iterations: 10,
            normalization: 0.75,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        // 30% flips: far beyond any code's capability.
        let llrs = bsc_llrs(&cw, 0.3, 4.0, &mut rng);
        let out = decoder.decode(&graph, &llrs);
        assert!(!out.success);
        assert_eq!(out.iterations, 10);
    }

    #[test]
    fn soft_information_beats_erasures() {
        // Bits with near-zero LLR (erasures) are recovered from the strong
        // neighbours — the essence of why soft sensing helps.
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(4);
        let info = random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        let mut llrs: Vec<f32> = cw
            .iter()
            .map(|&b| if b == 0 { 6.0 } else { -6.0 })
            .collect();
        // Erase 5% of bits entirely.
        for _ in 0..code.codeword_bits() / 20 {
            let idx = rng.gen_range(0..llrs.len());
            llrs[idx] = 0.0;
        }
        let out = decoder.decode(&graph, &llrs);
        assert!(out.success);
        assert_eq!(out.info_bits(&code), &info[..]);
    }

    #[test]
    fn paper_code_decodes_at_low_ber() {
        let code = QcLdpcCode::paper_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(5);
        let info = random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        let llrs = bsc_llrs(&cw, 1e-3, 4.0, &mut rng);
        let out = decoder.decode(&graph, &llrs);
        assert!(out.success, "rate-8/9 code must decode BER 1e-3 easily");
        assert_eq!(out.info_bits(&code), &info[..]);
    }

    #[test]
    #[should_panic(expected = "LLR length")]
    fn llr_length_checked() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let _ = MinSumDecoder::new().decode(&graph, &[0.0; 3]);
    }

    #[test]
    fn decode_with_matches_decode_exactly() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let decoder = MinSumDecoder::new();
        let mut rng = StdRng::seed_from_u64(6);
        let mut ws = DecoderWorkspace::new();
        for p in [0.0, 0.01, 0.04] {
            let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
            let llrs = bsc_llrs(&cw, p, 4.0, &mut rng);
            let fresh = decoder.decode(&graph, &llrs);
            let reused = decoder.decode_with(&graph, &llrs, &mut ws);
            assert_eq!(fresh, reused, "p={p}");
        }
    }

    #[test]
    fn cached_graph_is_shared_and_correct() {
        let code = QcLdpcCode::small_test_code();
        let a = DecoderGraph::cached(&code);
        let b = DecoderGraph::cached(&QcLdpcCode::small_test_code());
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        assert_eq!(a.edge_count(), DecoderGraph::new(&code).edge_count());
        // A different shape gets its own entry.
        let other = QcLdpcCode::new(64, 4, 8).unwrap();
        let c = DecoderGraph::cached(&other);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(c.bit_count(), other.codeword_bits());
    }

    #[test]
    fn bit_edge_range_covers_all_edges() {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut seen = 0;
        for b in 0..graph.bit_count() {
            let (lo, hi) = graph.bit_edge_range(b);
            assert!(lo <= hi);
            for &e in &graph.bit_edges[lo..hi] {
                assert_eq!(graph.edge_bit(e as usize), b);
                seen += 1;
            }
        }
        assert_eq!(seen, graph.edge_count());
    }
}
