//! LDPC coding for NAND flash: the error-correction substrate of the
//! FlexLevel reproduction (Guo et al., DAC 2015).
//!
//! The paper protects each 4 KB data block with a rate-8/9 soft-decision
//! LDPC code whose read cost grows with the number of extra *soft sensing
//! levels* the decoder needs. This crate implements the whole stack:
//!
//! * [`QcLdpcCode`] — quasi-cyclic code construction (`Z = 1024`, 4 × 36
//!   base matrix ⇒ n = 36 864, k = 32 768, rate exactly 8/9), 4-cycle free;
//! * [`encode`] — single-pass systematic encoding via the staircase parity
//!   structure;
//! * [`MinSumDecoder`] — normalized min-sum flooding decoder with early
//!   termination;
//! * [`QuantizedMinSumDecoder`] — the same decoder in 6-bit fixed point
//!   with a structure-of-arrays
//!   [`decode_batch`](quantized::QuantizedMinSumDecoder::decode_batch)
//!   path and a zero-allocation [`DecoderWorkspace`] — the Monte-Carlo
//!   hot path (see [`measure_fer`]);
//! * [`MlcReadChannel`] — the lower-page MLC read channel: soft sensing
//!   thresholds, Monte-Carlo-calibrated region LLRs, built directly on the
//!   `reliability` crate's noise models;
//! * [`SensingSchedule`] / [`minimum_levels`] — how many extra sensing
//!   levels a given raw BER demands (Table 5), both measured with the real
//!   decoder and as a fast lookup for the SSD simulator;
//! * [`ReadLatencyModel`] — sensing + transfer + decode latency (the ≈7×
//!   read inflation at BER 1e-2 that motivates FlexLevel).
//!
//! # Example: encode, corrupt, decode
//!
//! ```
//! use ldpc::{encode, DecoderGraph, MinSumDecoder, QcLdpcCode};
//!
//! # fn main() -> Result<(), ldpc::EncodeError> {
//! let code = QcLdpcCode::small_test_code();
//! let info = vec![1u8; code.info_bits()];
//! let codeword = encode(&code, &info)?;
//!
//! // Hard-decision LLRs with one corrupted bit.
//! let mut llrs: Vec<f32> = codeword.iter().map(|&b| if b == 0 { 5.0 } else { -5.0 }).collect();
//! llrs[7] = -llrs[7];
//!
//! let graph = DecoderGraph::new(&code);
//! let out = MinSumDecoder::new().decode(&graph, &llrs);
//! assert!(out.success);
//! assert_eq!(out.info_bits(&code), &info[..]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bitplane;
pub mod channel;
pub mod code;
pub mod decoder;
pub mod encoder;
pub mod farm;
pub mod latency;
pub mod layered;
pub mod quantized;
pub mod sensing;

pub use channel::{ChannelStress, MlcReadChannel, PageKind, SoftSensingConfig};
pub use code::{CodeError, QcLdpcCode};
pub use decoder::{DecodeOutcome, DecoderGraph, MinSumDecoder};
pub use encoder::{encode, random_info, EncodeError};
pub use farm::{measure_iteration_profile, DecodeFarm, DecodeRequest, DecodeVerdict, FarmConfig};
pub use latency::{IterationProfile, ReadLatencyModel, ReadStageCosts};
pub use layered::LayeredDecoder;
pub use quantized::{
    BatchOutcome, DecodeKernel, DecoderWorkspace, LlrQuantizer, QuantizedMinSumDecoder, Schedule,
    Q_MAX,
};
pub use sensing::{
    decode_success_rate, measure_fer, measure_fer_farm, measure_fer_observed, measure_fer_until,
    minimum_levels, FerMeasurement, FerStats, SensingSchedule, FER_BATCH,
};
