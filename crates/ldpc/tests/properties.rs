//! Property-based tests of the LDPC stack.

use ldpc::{
    encode, random_info, DecoderGraph, LayeredDecoder, MinSumDecoder, QcLdpcCode, SensingSchedule,
    SoftSensingConfig,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    /// Any valid (z, rows, cols) combination yields a consistent code:
    /// dimensions add up, every check touches distinct bits, and the
    /// all-zero word is a codeword.
    #[test]
    fn code_construction_consistent(z in 8usize..64, rows in 2usize..5, cols in 2usize..10) {
        let code = QcLdpcCode::new(z, rows, cols).unwrap();
        prop_assert_eq!(code.codeword_bits(), code.info_bits() + code.parity_bits());
        prop_assert_eq!(code.check_count(), code.parity_bits());
        let zero = vec![0u8; code.codeword_bits()];
        prop_assert_eq!(code.syndrome_weight(&zero), 0);
        for c in [0, code.check_count() / 2, code.check_count() - 1] {
            let bits = code.check_bits(c);
            let set: std::collections::HashSet<_> = bits.iter().collect();
            prop_assert_eq!(set.len(), bits.len(), "duplicate bits in check {}", c);
            prop_assert!(bits.iter().all(|&b| b < code.codeword_bits()));
        }
    }

    /// Random info words always encode to valid codewords for arbitrary
    /// code shapes.
    #[test]
    fn encode_valid_for_any_shape(z in 8usize..48, cols in 2usize..8, seed in 0u64..500) {
        let code = QcLdpcCode::new(z, 3, cols).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let info = random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        prop_assert_eq!(code.syndrome_weight(&cw), 0);
    }

    /// Flooding and layered decoders agree on success for correctable
    /// corruption (both must fix ≤2 strong-LLR flips).
    #[test]
    fn schedules_agree_on_easy_frames(seed in 0u64..300, f1 in 0usize..1280, f2 in 0usize..1280) {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::new(&code);
        let mut rng = StdRng::seed_from_u64(seed);
        let info = random_info(&code, &mut rng);
        let cw = encode(&code, &info).unwrap();
        let mut llrs: Vec<f32> = cw.iter().map(|&b| if b == 0 { 5.0 } else { -5.0 }).collect();
        for f in [f1, f2] {
            llrs[f] = -llrs[f];
        }
        let flood = MinSumDecoder::new().decode(&graph, &llrs);
        let layer = LayeredDecoder::new().decode(&graph, &llrs);
        prop_assert!(flood.success);
        prop_assert!(layer.success);
        prop_assert_eq!(flood.info_bits(&code), &info[..]);
        prop_assert_eq!(layer.info_bits(&code), &info[..]);
    }

    /// Soft-sensing threshold sets are always sorted, contain the
    /// boundary, and have the requested cardinality.
    #[test]
    fn threshold_sets_well_formed(extra in 0u32..12, boundary in 1.0f64..4.0, spacing in 0.005f64..0.1) {
        let cfg = SoftSensingConfig {
            extra_levels: extra,
            spacing: flash_model::Volts(spacing),
        };
        let t = cfg.thresholds(flash_model::Volts(boundary));
        prop_assert_eq!(t.len(), extra as usize + 1);
        prop_assert!(t.windows(2).all(|w| w[0] < w[1]), "sorted: {:?}", t);
        prop_assert!(t.iter().any(|&x| (x - boundary).abs() < 1e-12));
    }

    /// Schedules built from arbitrary monotone measurement sets stay
    /// monotone in required levels.
    #[test]
    fn schedule_from_measurements_monotone(
        points in prop::collection::vec((1e-4f64..5e-2, 0u32..7), 2..20),
        query in 0.0f64..0.1,
    ) {
        if let Some(schedule) = SensingSchedule::from_measurements(&points) {
            let a = schedule.required_levels(query);
            let b = schedule.required_levels(query * 1.5 + 1e-5);
            prop_assert!(b >= a);
            prop_assert!(a <= schedule.max_extra_levels());
        }
    }
}
