//! Parity contract between the quantized i8 decode path and the f32
//! reference decoder:
//!
//! 1. **Exactness on easy frames** — on clean and lightly corrupted
//!    codewords the two engines must both decode to the transmitted
//!    word (property-based, many seeds).
//! 2. **FER parity at 2Xnm BER** — at raw BER 1e-2 the quantized
//!    decoder's frame error rate must statistically match the f32
//!    decoder's: the paired success-count difference stays inside a 6σ
//!    binomial bound, the same style of bound the MC determinism suite
//!    uses. This is the proxy for "≤ 0.1 dB-equivalent loss": a 0.1 dB
//!    penalty at this operating point would shift the FER by far more
//!    than 6σ of the discordant-pair noise.
//! 3. **Thread-count determinism** — [`ldpc::measure_fer`] is
//!    bit-identical for 1, 2 and 8 workers (the PR 1 contract extended
//!    to the batch decoder).

use flash_model::{Hours, LevelConfig};
use ldpc::{
    encode, measure_fer, random_info, ChannelStress, DecoderGraph, DecoderWorkspace, LlrQuantizer,
    MinSumDecoder, MlcReadChannel, PageKind, QcLdpcCode, QuantizedMinSumDecoder, SoftSensingConfig,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use reliability::mc::McOptions;

/// Hard-decision LLR magnitude used by the BSC workloads here (matches
/// the decode benchmarks).
const LLR_MAG: f32 = 4.0;

proptest! {
    /// On a clean codeword both engines converge to the transmitted word.
    #[test]
    fn both_engines_decode_clean_frames(seed in 0u64..200) {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::cached(&code);
        let mut rng = StdRng::seed_from_u64(seed);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs: Vec<f32> = cw
            .iter()
            .map(|&b| if b == 0 { LLR_MAG } else { -LLR_MAG })
            .collect();
        let qllrs = LlrQuantizer::default().quantize_table(&llrs);

        let mut ws = DecoderWorkspace::new();
        let f = MinSumDecoder::new().decode_with(&graph, &llrs, &mut ws);
        let q = QuantizedMinSumDecoder::new().decode(&graph, &qllrs, &mut ws);
        prop_assert!(f.success && q.success);
        prop_assert_eq!(&f.hard_decision, &cw);
        prop_assert_eq!(&q.hard_decision, &cw);
        prop_assert_eq!(f.iterations, q.iterations);
    }

    /// Light BSC noise (well inside the code's correction radius): both
    /// engines must recover the transmitted codeword — quantization may
    /// not lose frames the f32 decoder handles easily.
    #[test]
    fn both_engines_correct_light_noise(seed in 0u64..150, flips in 1usize..7) {
        let code = QcLdpcCode::small_test_code();
        let graph = DecoderGraph::cached(&code);
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let mut llrs: Vec<f32> = cw
            .iter()
            .map(|&b| if b == 0 { LLR_MAG } else { -LLR_MAG })
            .collect();
        for _ in 0..flips {
            let i = rng.gen_range(0..llrs.len());
            llrs[i] = -llrs[i];
        }
        let qllrs = LlrQuantizer::default().quantize_table(&llrs);

        let mut ws = DecoderWorkspace::new();
        let f = MinSumDecoder::new().decode_with(&graph, &llrs, &mut ws);
        let q = QuantizedMinSumDecoder::new().decode(&graph, &qllrs, &mut ws);
        prop_assert!(f.success, "f32 decoder lost an easy frame (seed {})", seed);
        prop_assert!(q.success, "quantized decoder lost an easy frame (seed {})", seed);
        prop_assert_eq!(&f.hard_decision, &cw);
        prop_assert_eq!(&q.hard_decision, &cw);
    }
}

/// Paired FER comparison at raw BER 1e-2 (the 2Xnm operating point of
/// the paper's motivation). Each frame is decoded by both engines from
/// the same corrupted LLRs; the success-count difference is bounded by
/// 6σ of the discordant pairs, so the test fails only on a systematic
/// quantization penalty (≥ ~2% absolute FER shift at this sample size),
/// not Monte-Carlo noise.
#[test]
fn fer_parity_at_2xnm_ber() {
    const FRAMES: u64 = 800;
    const P: f64 = 1e-2;
    let code = QcLdpcCode::small_test_code();
    let graph = DecoderGraph::cached(&code);
    let f32_decoder = MinSumDecoder::new();
    let q_decoder = QuantizedMinSumDecoder::new();
    let quantizer = LlrQuantizer::default();
    let mut ws = DecoderWorkspace::new();
    let mut rng = StdRng::seed_from_u64(0xFE2);

    let (mut f32_ok, mut q_ok, mut discordant) = (0u64, 0u64, 0u64);
    for _ in 0..FRAMES {
        let cw = encode(&code, &random_info(&code, &mut rng)).unwrap();
        let llrs: Vec<f32> = cw
            .iter()
            .map(|&b| {
                let observed = b ^ u8::from(rng.gen_bool(P));
                if observed == 0 {
                    LLR_MAG
                } else {
                    -LLR_MAG
                }
            })
            .collect();
        let qllrs = quantizer.quantize_table(&llrs);
        let f = f32_decoder.decode_with(&graph, &llrs, &mut ws);
        let q = q_decoder.decode(&graph, &qllrs, &mut ws);
        let f_good = f.success && f.hard_decision == cw;
        let q_good = q.success && q.hard_decision == cw;
        f32_ok += u64::from(f_good);
        q_ok += u64::from(q_good);
        discordant += u64::from(f_good != q_good);
    }

    let f32_fer = 1.0 - f32_ok as f64 / FRAMES as f64;
    let q_fer = 1.0 - q_ok as f64 / FRAMES as f64;
    eprintln!(
        "FER parity over {FRAMES} frames at p = {P}: \
         f32 {f32_fer:.4}, quantized {q_fer:.4}, {discordant} discordant"
    );
    // Both engines must actually be stressed: neither perfect nor dead.
    assert!(f32_ok > 0 && q_ok > 0, "channel too harsh for the test");
    assert!(
        f32_ok < FRAMES || q_ok < FRAMES,
        "channel too clean to measure FER parity"
    );
    // Paired 6σ bound: each discordant frame shifts the difference by
    // ±1, so under parity |f32_ok − q_ok| concentrates within
    // 6·sqrt(discordant).
    let sigma = (discordant.max(1) as f64).sqrt();
    let diff = (f32_ok as f64 - q_ok as f64).abs();
    assert!(
        diff <= 6.0 * sigma,
        "quantized FER diverges from f32: |Δ successes| = {diff} > 6σ = {:.1} \
         (f32 FER {f32_fer:.4}, quantized FER {q_fer:.4})",
        6.0 * sigma
    );
}

/// The batched FER measurement is bit-identical for any worker count
/// and distinguishes seeds — `measure_fer` inherits the MC engine's
/// determinism contract.
#[test]
fn measure_fer_identical_for_any_thread_count() {
    let code = QcLdpcCode::small_test_code();
    let decoder = QuantizedMinSumDecoder::new();
    let quantizer = LlrQuantizer::default();
    let channel = MlcReadChannel::build_cached(
        &LevelConfig::normal_mlc(),
        PageKind::Lower,
        ChannelStress::retention(6000, Hours::months(1.0)),
        SoftSensingConfig::hard_decision(),
        20_000,
        77,
    );
    let base = McOptions {
        min_shard_trials: 32,
        ..McOptions::default()
    };
    let mut per_seed = Vec::new();
    for seed in [5u64, 29] {
        let serial = measure_fer(
            &code,
            &decoder,
            &channel,
            &quantizer,
            240,
            seed,
            &base.with_threads(1),
        );
        assert_ne!(serial.frame_errors, 0, "stress must produce frame errors");
        for threads in [2u32, 8] {
            let parallel = measure_fer(
                &code,
                &decoder,
                &channel,
                &quantizer,
                240,
                seed,
                &base.with_threads(threads),
            );
            assert_eq!(serial, parallel, "seed {seed}, {threads} threads");
        }
        per_seed.push(serial);
    }
    assert_ne!(per_seed[0], per_seed[1], "seeds must matter");
}
