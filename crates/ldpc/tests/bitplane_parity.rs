//! Parity contract of the bit-sliced decode path (PR 7).
//!
//! The bit-plane kernel and the layered schedule are only allowed into
//! the hot path because they are provably output-compatible:
//!
//! 1. **Kernel parity is exact** — for the same schedule, the bit-plane
//!    kernel must reproduce the i8 SoA kernel's `(success, iterations,
//!    hard decision)` lane for lane, on clean frames and at raw BER
//!    1e-2, including batches wider than one 64-lane plane group.
//! 2. **Schedule parity is statistical** — layered is a different
//!    message-passing order, so outcomes may differ per frame; the
//!    paired success-count difference stays inside a 6σ discordant-pair
//!    bound (the same bound `quantized_parity.rs` uses for i8 vs f32),
//!    and layered must not need more iterations on average.
//! 3. **The farm and the early-exit drain preserve the MC contract** —
//!    `measure_fer_farm` equals `measure_fer` exactly, and
//!    `measure_fer_until` is bit-identical across 1/2/8 threads.

use flash_model::{Hours, LevelConfig};
use ldpc::bitplane::{transpose64, untranspose64};
use ldpc::{
    encode, measure_fer, measure_fer_farm, measure_fer_until, random_info, ChannelStress,
    DecodeFarm, DecodeKernel, DecoderGraph, DecoderWorkspace, FarmConfig, LlrQuantizer,
    MlcReadChannel, PageKind, QcLdpcCode, QuantizedMinSumDecoder, Schedule, SoftSensingConfig,
    Q_MAX,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use reliability::mc::{McOptions, WAVE_SHARDS};

const LLR_MAG: f32 = 4.0;

fn bsc_batch(code: &QcLdpcCode, batch: usize, p: f64, rng: &mut StdRng) -> (Vec<i8>, Vec<u8>) {
    let n = code.codeword_bits();
    let q = LlrQuantizer::default();
    let mut qllrs = vec![0i8; n * batch];
    let mut sent = vec![0u8; n * batch];
    for lane in 0..batch {
        let cw = encode(code, &random_info(code, rng)).unwrap();
        for (bit, &b) in cw.iter().enumerate() {
            let observed = b ^ u8::from(p > 0.0 && rng.gen_bool(p));
            qllrs[bit * batch + lane] = q.quantize(if observed == 0 { LLR_MAG } else { -LLR_MAG });
            sent[bit * batch + lane] = b;
        }
    }
    (qllrs, sent)
}

/// Asserts the two kernels agree lane for lane on the same schedule:
/// same success flag, same iteration count, same hard decision bits.
fn assert_kernel_parity(schedule: Schedule, batch: usize, p: f64, seed: u64) {
    let code = QcLdpcCode::small_test_code();
    let graph = DecoderGraph::cached(&code);
    let n = code.codeword_bits();
    let mut rng = StdRng::seed_from_u64(seed);
    let (qllrs, _) = bsc_batch(&code, batch, p, &mut rng);

    let reference = QuantizedMinSumDecoder::new()
        .with_schedule(schedule)
        .with_kernel(DecodeKernel::I8Soa);
    let planes = reference.with_kernel(DecodeKernel::BitPlane);

    let mut ws_a = DecoderWorkspace::new();
    let mut ws_b = DecoderWorkspace::new();
    let a = reference.decode_batch(&graph, &qllrs, batch, &mut ws_a);
    let b = planes.decode_batch(&graph, &qllrs, batch, &mut ws_b);
    for lane in 0..batch {
        assert_eq!(
            a.success(lane),
            b.success(lane),
            "{schedule:?} success, lane {lane}"
        );
        assert_eq!(
            a.iterations(lane),
            b.iterations(lane),
            "{schedule:?} iterations, lane {lane}"
        );
        for bit in 0..n {
            assert_eq!(
                a.hard_bit(lane, bit),
                b.hard_bit(lane, bit),
                "{schedule:?} hard bit {bit}, lane {lane}"
            );
        }
    }
}

proptest! {
    /// 64 arbitrary lane bytes survive the plane transpose round trip.
    #[test]
    fn transpose_round_trips_arbitrary_lanes(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lanes = [0u8; 64];
        for lane in &mut lanes {
            *lane = rng.gen_range(0u32..256) as u8;
        }
        prop_assert_eq!(untranspose64(&transpose64(&lanes)), lanes);
    }

    /// Plane `k`, bit `j` is exactly bit `k` of lane `j` — the
    /// orientation every kernel loop depends on.
    #[test]
    fn transpose_orientation(lane in 0usize..64, bit in 0u32..8) {
        let mut lanes = [0u8; 64];
        lanes[lane] = 1u8 << bit;
        let planes = transpose64(&lanes);
        for (k, &plane) in planes.iter().enumerate() {
            let expected = if k as u32 == bit { 1u64 << lane } else { 0 };
            prop_assert_eq!(plane, expected, "plane {}", k);
        }
    }

    /// Exact kernel parity on mixed clean/noisy batches, both schedules,
    /// across batch widths that cover partial and multiple plane groups.
    #[test]
    fn kernels_agree_lane_for_lane(seed in 0u64..12, width in 0usize..4) {
        // One full plane group, partial second groups (36- and 2-lane),
        // and three exact groups. (Batches under 64 lanes fall back to
        // the reference kernel by design, so they are vacuous here.)
        let batch = [64usize, 100, 130, 192][width];
        assert_kernel_parity(Schedule::Flooding, batch, 1e-2, seed);
        assert_kernel_parity(Schedule::Layered, batch, 1e-2, 0xB17 ^ seed);
    }

    /// Clean frames: parity and success on both schedules and kernels.
    #[test]
    fn kernels_agree_on_clean_frames(seed in 0u64..12) {
        assert_kernel_parity(Schedule::Flooding, 66, 0.0, seed);
        assert_kernel_parity(Schedule::Layered, 66, 0.0, seed);
    }
}

/// Layered vs flooding at raw BER 1e-2: paired outcomes inside 6σ of the
/// discordant count, and layered converges in fewer sweeps on average —
/// the property the quantized-schedule tentpole is built on.
#[test]
fn layered_schedule_matches_flooding_outcomes_with_fewer_sweeps() {
    const FRAMES: usize = 600;
    const P: f64 = 1e-2;
    let code = QcLdpcCode::small_test_code();
    let graph = DecoderGraph::cached(&code);
    let flooding = QuantizedMinSumDecoder::new();
    let layered = flooding.with_schedule(Schedule::Layered);
    let mut rng = StdRng::seed_from_u64(0x1A7E);
    let mut ws = DecoderWorkspace::new();

    let (mut flood_ok, mut layer_ok, mut discordant) = (0u64, 0u64, 0u64);
    let (mut flood_iters, mut layer_iters) = (0u64, 0u64);
    for _ in 0..FRAMES {
        let (qllrs, sent) = bsc_batch(&code, 1, P, &mut rng);
        let f = flooding.decode(&graph, &qllrs, &mut ws);
        let l = layered.decode(&graph, &qllrs, &mut ws);
        let f_good = f.success && f.hard_decision == sent;
        let l_good = l.success && l.hard_decision == sent;
        flood_ok += u64::from(f_good);
        layer_ok += u64::from(l_good);
        discordant += u64::from(f_good != l_good);
        flood_iters += u64::from(f.iterations);
        layer_iters += u64::from(l.iterations);
    }
    assert!(flood_ok > 0 && layer_ok > 0, "channel too harsh");
    assert!(
        (flood_ok as usize) < FRAMES || (layer_ok as usize) < FRAMES,
        "channel too clean to compare schedules"
    );
    let sigma = (discordant.max(1) as f64).sqrt();
    let diff = (flood_ok as f64 - layer_ok as f64).abs();
    assert!(
        diff <= 6.0 * sigma,
        "layered diverges from flooding: |Δ successes| = {diff} > 6σ = {:.1}",
        6.0 * sigma
    );
    assert!(
        layer_iters < flood_iters,
        "layered should converge in fewer sweeps: layered {layer_iters} vs flooding {flood_iters}"
    );
}

/// Raw caller inputs outside ±Q_MAX silently fall back to the reference
/// kernel instead of corrupting the 5-bit magnitude planes — even at a
/// batch width the bit-plane kernel would otherwise claim.
#[test]
fn out_of_domain_llrs_fall_back_to_reference() {
    let code = QcLdpcCode::small_test_code();
    let graph = DecoderGraph::cached(&code);
    let n = code.codeword_bits();
    let batch = 64;
    let mut qllrs = vec![Q_MAX; n * batch];
    qllrs[17] = i8::MAX; // one lane outside the quantizer's ±Q_MAX domain
    let mut ws_a = DecoderWorkspace::new();
    let mut ws_b = DecoderWorkspace::new();
    let a = QuantizedMinSumDecoder::new()
        .with_kernel(DecodeKernel::I8Soa)
        .decode_batch(&graph, &qllrs, batch, &mut ws_a);
    let b = QuantizedMinSumDecoder::new()
        .with_kernel(DecodeKernel::BitPlane)
        .decode_batch(&graph, &qllrs, batch, &mut ws_b);
    for lane in 0..batch {
        assert_eq!(a.success(lane), b.success(lane), "lane {lane}");
        assert_eq!(a.iterations(lane), b.iterations(lane), "lane {lane}");
        for bit in 0..n {
            assert_eq!(a.hard_bit(lane, bit), b.hard_bit(lane, bit));
        }
    }
}

fn test_channel(seed: u64) -> std::sync::Arc<MlcReadChannel> {
    MlcReadChannel::build_cached(
        &LevelConfig::normal_mlc(),
        PageKind::Lower,
        ChannelStress::retention(6000, Hours::months(1.0)),
        SoftSensingConfig::hard_decision(),
        20_000,
        seed,
    )
}

/// The farm path returns exactly `measure_fer`'s statistics: identical
/// frames, lane-wise kernels, wider batches — nothing may shift.
#[test]
fn measure_fer_farm_equals_measure_fer() {
    let code = QcLdpcCode::small_test_code();
    let decoder = QuantizedMinSumDecoder::new().with_schedule(Schedule::Layered);
    let quantizer = LlrQuantizer::default();
    let channel = test_channel(77);
    let opts = McOptions {
        min_shard_trials: 32,
        ..McOptions::default()
    };
    let direct = measure_fer(&code, &decoder, &channel, &quantizer, 300, 9, &opts);
    assert_ne!(direct.frame_errors, 0, "stress must produce frame errors");
    for workers in [1u32, 2, 8] {
        let farm = DecodeFarm::new(&code, decoder, FarmConfig::default().with_workers(workers));
        let farmed = measure_fer_farm(&code, &channel, &quantizer, 300, 9, &opts, &farm);
        assert_eq!(direct, farmed, "workers {workers}");
    }
}

/// The early-exit drain: bit-identical across thread counts, equal to
/// `measure_fer` when the target is out of reach, and strictly cheaper
/// when the target is hit early.
#[test]
fn measure_fer_until_is_deterministic_and_stops_early() {
    let code = QcLdpcCode::small_test_code();
    let decoder = QuantizedMinSumDecoder::new();
    let quantizer = LlrQuantizer::default();
    let channel = test_channel(77);
    let base = McOptions {
        min_shard_trials: 16,
        ..McOptions::default()
    };
    const TRIALS: u64 = 640; // 40 shards of 16 → 5 waves

    // Unreachable target ⇒ the full run, exactly measure_fer.
    let full = measure_fer(&code, &decoder, &channel, &quantizer, TRIALS, 3, &base);
    let capped = measure_fer_until(
        &code,
        &decoder,
        &channel,
        &quantizer,
        TRIALS,
        u64::MAX,
        3,
        &base,
    );
    assert_eq!(full, capped);

    // Reachable target ⇒ stops on a wave boundary with fewer trials.
    assert!(full.frame_errors >= 2, "stress must produce frame errors");
    let early = measure_fer_until(&code, &decoder, &channel, &quantizer, TRIALS, 1, 3, &base);
    assert!(early.frame_errors >= 1);
    assert!(
        early.trials < TRIALS,
        "early exit should not run the full budget"
    );
    assert_eq!(
        early.trials % (16 * u64::from(WAVE_SHARDS)),
        0,
        "drain must stop on whole-wave boundaries"
    );

    // And the executed prefix is thread-count independent.
    for threads in [2u32, 8] {
        let parallel = measure_fer_until(
            &code,
            &decoder,
            &channel,
            &quantizer,
            TRIALS,
            1,
            3,
            &base.with_threads(threads),
        );
        assert_eq!(early, parallel, "threads {threads}");
    }
}
