//! Property-based tests of the log-linear histogram: bucket geometry,
//! quantile bracketing, and bitwise-deterministic merging.

use obs::hist::NUM_BUCKETS;
use obs::Histogram;
use proptest::prelude::*;

/// Maps a `(mantissa, decimal exponent)` sample to a positive finite
/// value spanning the histogram's useful range (sub-µs latencies through
/// multi-second makespans). The vendored proptest stub has no `prop_map`,
/// so sampled tuples are widened in the test bodies instead.
fn widen(m: f64, e: i32) -> f64 {
    m * 10f64.powi(e)
}

fn widen_all(pairs: &[(f64, i32)]) -> Vec<f64> {
    pairs.iter().map(|&(m, e)| widen(m, e)).collect()
}

proptest! {
    /// Bucket bounds tile the axis: each bucket's upper bound is the next
    /// bucket's lower bound, and bounds never decrease.
    #[test]
    fn bucket_bounds_are_monotone_and_contiguous(index in 0usize..NUM_BUCKETS - 1) {
        let (lo, hi) = Histogram::bucket_bounds(index);
        prop_assert!(lo < hi, "bucket {index}: {lo} !< {hi}");
        let (next_lo, _) = Histogram::bucket_bounds(index + 1);
        prop_assert_eq!(hi, next_lo, "bucket {} not contiguous", index);
    }

    /// Every representable value lands in exactly one bucket, and that
    /// bucket's bounds bracket it (`lo <= v < hi`).
    #[test]
    fn every_value_lands_in_its_bucket(m in 0.0f64..60.0, e in -3i32..9) {
        let v = widen(m, e);
        let index = Histogram::bucket_index(v);
        prop_assert!(index < NUM_BUCKETS);
        let (lo, hi) = Histogram::bucket_bounds(index);
        prop_assert!(lo <= v, "{v} below bucket {index} lower bound {lo}");
        prop_assert!(
            v < hi || index == NUM_BUCKETS - 1,
            "{v} at/above bucket {index} upper bound {hi}"
        );
    }

    /// Recording a value increments exactly one bucket.
    #[test]
    fn record_touches_exactly_one_bucket(m in 0.0f64..60.0, e in -3i32..9) {
        let v = widen(m, e);
        let mut h = Histogram::new();
        h.record(v);
        let touched: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        prop_assert_eq!(touched.len(), 1);
        prop_assert_eq!(touched[0], (Histogram::bucket_index(v), 1));
        prop_assert_eq!(h.count(), 1);
    }

    /// The histogram quantile is within one bucket width of the exact
    /// sample quantile: the exact value lies inside the reported
    /// bucket's bounds.
    #[test]
    fn quantile_brackets_exact_sample_quantile(
        pairs in proptest::collection::vec((0.0f64..60.0, -3i32..9), 1..200),
        q in 0.0f64..1.0,
    ) {
        let mut values = widen_all(&pairs);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rank = (q * (values.len() as u64 - 1) as f64).round() as usize;
        let exact = values[rank];
        let (lo, hi) = h.quantile_bounds(q);
        prop_assert!(
            lo <= exact && (exact < hi || hi == f64::INFINITY),
            "exact quantile {exact} outside reported bucket [{lo}, {hi})"
        );
    }

    /// Merging is bitwise commutative: merge(a, b) == merge(b, a) down to
    /// the f64 bit patterns of sum/min/max (addition of two summands is
    /// commutative in IEEE-754; only longer chains are order-sensitive).
    #[test]
    fn merge_is_bitwise_commutative(
        xs in proptest::collection::vec((0.0f64..60.0, -3i32..9), 0..50),
        ys in proptest::collection::vec((0.0f64..60.0, -3i32..9), 0..50),
    ) {
        let build = |pairs: &[(f64, i32)]| {
            let mut h = Histogram::new();
            for v in widen_all(pairs) {
                h.record(v);
            }
            h
        };
        let (a, b) = (build(&xs), build(&ys));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());
        prop_assert_eq!(ab.min().to_bits(), ba.min().to_bits());
        prop_assert_eq!(ab.max().to_bits(), ba.max().to_bits());
        for index in 0..NUM_BUCKETS {
            prop_assert_eq!(ab.bucket_count(index), ba.bucket_count(index));
        }
    }

    /// count/sum/mean stay consistent under arbitrary record streams.
    #[test]
    fn summary_statistics_are_consistent(
        pairs in proptest::collection::vec((0.0f64..60.0, -3i32..9), 1..100),
    ) {
        let values = widen_all(&pairs);
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let direct: f64 = values.iter().sum();
        prop_assert!((h.sum() - direct).abs() <= direct.abs() * 1e-12);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert!(h.mean() >= lo && h.mean() <= hi);
    }
}
