//! Structured per-request trace spans.
//!
//! Each serviced read produces a [`ReadSpan`]: where the request spent
//! its time (per-stage [`StageTiming`] entries), how deep the sensing
//! went, how many retry rungs the recovery ladder climbed, and how it
//! ended ([`SpanOutcome`]). Spans are collected into a [`SpanBuffer`]
//! which optionally down-samples with seeded reservoir sampling
//! (Algorithm R over a SplitMix64 stream, the same sampler family used
//! by `SimStats::record_response`), so trace volume is bounded and the
//! kept subset is a pure function of the span stream — never of wall
//! clock or thread scheduling.

/// Fixed seed for reservoir sampling; sampling decisions depend only on
/// the span sequence, keeping trace output reproducible run-to-run.
pub const SAMPLE_SEED: u64 = 0x5EED_5A3B_1E5E_4701;

/// Seed for the instant-event reservoir — a stream independent from the
/// span reservoir so event sampling never perturbs span sampling.
pub const EVENT_SAMPLE_SEED: u64 = 0x1E5E_4701_5EED_5A3B;

/// What an instant [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The recovery ladder was climbed for a read.
    Retry {
        /// Rungs climbed before the outcome.
        depth: u32,
        /// Whether the ladder ultimately corrected the read.
        recovered: bool,
    },
    /// A die-level reset interrupted service.
    DieReset,
    /// One patrol-scrub pass over a block.
    Scrub {
        /// Pages scrubbed in the pass.
        reads: u32,
        /// Pages refreshed (rewritten) because BER crossed threshold.
        refreshes: u32,
    },
}

impl EventKind {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Retry { .. } => "retry",
            EventKind::DieReset => "die_reset",
            EventKind::Scrub { .. } => "scrub",
        }
    }
}

/// One instant event: a point on the timeline (recovery-ladder climb,
/// die reset, scrub pass) rather than an interval. Timestamps are the
/// triggering request's *arrival* time, which is a property of the trace
/// and therefore identical across thread counts and timing backends.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Emission sequence number within the producing run (0-based,
    /// independent of the span sequence).
    pub seq: u64,
    /// Event time in µs (triggering request's arrival).
    pub t_us: f64,
    /// Sensing-scheme label the run was configured with.
    pub scheme: &'static str,
    /// Tenant the triggering request belongs to (0 in replay runs).
    pub tenant: u32,
    /// Logical page the event concerns.
    pub lpn: u64,
    /// What happened.
    pub kind: EventKind,
}

/// How a read ultimately completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Served from the write buffer; no flash access.
    BufferHit,
    /// Decoded successfully on the first flash read.
    Success,
    /// Required the retry ladder but was eventually corrected.
    Recovered,
    /// Exhausted the retry ladder without correcting.
    Uncorrectable,
}

impl SpanOutcome {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanOutcome::BufferHit => "buffer_hit",
            SpanOutcome::Success => "success",
            SpanOutcome::Recovered => "recovered",
            SpanOutcome::Uncorrectable => "uncorrectable",
        }
    }
}

/// One pipeline stage's contribution to a span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Stage label (e.g. `"sense"`, `"transfer"`, `"decode"`).
    pub stage: &'static str,
    /// Start offset in µs relative to the span's `start_us`.
    pub offset_us: f64,
    /// Stage duration in µs.
    pub duration_us: f64,
}

/// The full record of one serviced read request.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSpan {
    /// Emission sequence number within the producing run (0-based).
    pub seq: u64,
    /// Logical page address of the read.
    pub lpn: u64,
    /// Sensing-scheme label the run was configured with.
    pub scheme: &'static str,
    /// Tenant the request belongs to (0 for single-client replay runs).
    pub tenant: u32,
    /// Request arrival time in µs.
    pub arrival_us: f64,
    /// Time service began in µs (arrival + queueing delay).
    pub start_us: f64,
    /// End-to-end response time in µs (completion − arrival).
    pub response_us: f64,
    /// Extra sensing levels used beyond hard-decision.
    pub sensing_levels: u32,
    /// LDPC decoder iterations charged for the read.
    pub decode_iterations: u32,
    /// Retry-ladder rungs climbed (0 when no fault was injected).
    pub retry_rungs: u32,
    /// Per-stage breakdown; durations sum to the flash service time.
    pub stages: Vec<StageTiming>,
    /// How the read completed.
    pub outcome: SpanOutcome,
}

/// SplitMix64 step — the same generator `SimStats` uses for its
/// response-time reservoir.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A span collector with optional seeded reservoir sampling.
///
/// With `capacity == 0` every offered span is kept. Otherwise the buffer
/// holds a uniform sample of `capacity` spans via Algorithm R; because
/// the RNG is seeded and advances once per offered span, the kept subset
/// depends only on the order spans are offered.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanBuffer {
    spans: Vec<ReadSpan>,
    capacity: usize,
    offered: u64,
    rng: u64,
    events: Vec<TraceEvent>,
    events_offered: u64,
    events_rng: u64,
}

impl Default for SpanBuffer {
    fn default() -> SpanBuffer {
        SpanBuffer::unbounded()
    }
}

impl SpanBuffer {
    /// Creates a buffer that keeps every span.
    pub fn unbounded() -> SpanBuffer {
        SpanBuffer::with_capacity(0)
    }

    /// Creates a buffer keeping a uniform reservoir sample of at most
    /// `capacity` spans (`0` means unlimited).
    pub fn with_capacity(capacity: usize) -> SpanBuffer {
        SpanBuffer {
            spans: Vec::new(),
            capacity,
            offered: 0,
            rng: SAMPLE_SEED,
            events: Vec::new(),
            events_offered: 0,
            events_rng: EVENT_SAMPLE_SEED,
        }
    }

    /// Offers a span to the buffer.
    pub fn push(&mut self, span: ReadSpan) {
        self.offered += 1;
        if self.capacity == 0 || self.spans.len() < self.capacity {
            self.spans.push(span);
            return;
        }
        // Algorithm R: the n-th offered span replaces a random slot with
        // probability capacity/n.
        let slot = (splitmix64(&mut self.rng) % self.offered) as usize;
        if slot < self.capacity {
            self.spans[slot] = span;
        }
    }

    /// Offers an instant event to the buffer. Events use the same
    /// reservoir capacity as spans but an independent seeded stream, so
    /// adding event producers never changes which spans are kept.
    pub fn push_event(&mut self, event: TraceEvent) {
        self.events_offered += 1;
        if self.capacity == 0 || self.events.len() < self.capacity {
            self.events.push(event);
            return;
        }
        let slot = (splitmix64(&mut self.events_rng) % self.events_offered) as usize;
        if slot < self.capacity {
            self.events[slot] = event;
        }
    }

    /// Spans currently held, in reservoir order (exporters sort).
    pub fn spans(&self) -> &[ReadSpan] {
        &self.spans
    }

    /// Instant events currently held, in reservoir order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total instant events offered (kept or sampled away).
    pub fn events_offered(&self) -> u64 {
        self.events_offered
    }

    /// Kept events sorted by `(scheme, seq)` — the canonical export
    /// order.
    pub fn sorted_events(&self) -> Vec<&TraceEvent> {
        let mut events: Vec<&TraceEvent> = self.events.iter().collect();
        events.sort_by(|a, b| a.scheme.cmp(b.scheme).then(a.seq.cmp(&b.seq)));
        events
    }

    /// Number of spans currently held.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the buffer holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total spans offered (kept or sampled away).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Appends `other`'s kept spans. Buffers are merged in a fixed order
    /// (e.g. scheme registration order), so the combined trace is
    /// independent of how the producing runs were scheduled. The merged
    /// buffer keeps `self`'s capacity but does not re-sample.
    pub fn merge(&mut self, other: &SpanBuffer) {
        self.spans.extend(other.spans.iter().cloned());
        self.offered += other.offered;
        self.events.extend(other.events.iter().cloned());
        self.events_offered += other.events_offered;
    }

    /// The configured reservoir capacity (`0` = unlimited).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Resets to the empty state (same capacity, re-seeded sampler), so
    /// a fresh run reproduces the same sampling decisions.
    pub fn clear(&mut self) {
        self.spans.clear();
        self.offered = 0;
        self.rng = SAMPLE_SEED;
        self.events.clear();
        self.events_offered = 0;
        self.events_rng = EVENT_SAMPLE_SEED;
    }

    /// Kept spans sorted by `(scheme, seq)` — the canonical export order.
    pub fn sorted_spans(&self) -> Vec<&ReadSpan> {
        let mut spans: Vec<&ReadSpan> = self.spans.iter().collect();
        spans.sort_by(|a, b| a.scheme.cmp(b.scheme).then(a.seq.cmp(&b.seq)));
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, scheme: &'static str) -> ReadSpan {
        ReadSpan {
            seq,
            lpn: seq * 7,
            scheme,
            tenant: 0,
            arrival_us: seq as f64,
            start_us: seq as f64 + 0.5,
            response_us: 130.0,
            sensing_levels: 2,
            decode_iterations: 5,
            retry_rungs: 0,
            stages: vec![StageTiming {
                stage: "sense",
                offset_us: 0.0,
                duration_us: 90.0,
            }],
            outcome: SpanOutcome::Success,
        }
    }

    #[test]
    fn unbounded_keeps_everything_in_order() {
        let mut buffer = SpanBuffer::unbounded();
        for seq in 0..100 {
            buffer.push(span(seq, "flexlevel"));
        }
        assert_eq!(buffer.len(), 100);
        assert_eq!(buffer.offered(), 100);
        assert!(buffer.spans().windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn reservoir_caps_and_is_deterministic() {
        let run = || {
            let mut buffer = SpanBuffer::with_capacity(16);
            for seq in 0..1000 {
                buffer.push(span(seq, "baseline"));
            }
            buffer
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 16);
        assert_eq!(a.offered(), 1000);
        assert_eq!(a, b);
        // The sample is spread across the stream, not just a prefix.
        assert!(a.spans().iter().any(|s| s.seq >= 500));
    }

    #[test]
    fn merge_concatenates_and_sorts_canonically() {
        let mut a = SpanBuffer::unbounded();
        a.push(span(1, "flexlevel"));
        let mut b = SpanBuffer::unbounded();
        b.push(span(0, "baseline"));
        a.merge(&b);
        assert_eq!(a.offered(), 2);
        let sorted = a.sorted_spans();
        assert_eq!(sorted[0].scheme, "baseline");
        assert_eq!(sorted[1].scheme, "flexlevel");
    }

    #[test]
    fn outcome_labels_are_stable() {
        assert_eq!(SpanOutcome::BufferHit.label(), "buffer_hit");
        assert_eq!(SpanOutcome::Uncorrectable.label(), "uncorrectable");
    }

    fn event(seq: u64, scheme: &'static str) -> TraceEvent {
        TraceEvent {
            seq,
            t_us: seq as f64 * 10.0,
            scheme,
            tenant: 0,
            lpn: seq,
            kind: EventKind::Retry {
                depth: 2,
                recovered: true,
            },
        }
    }

    #[test]
    fn events_reservoir_is_independent_of_spans() {
        let with_events = |n_events: u64| {
            let mut buffer = SpanBuffer::with_capacity(16);
            for seq in 0..1000 {
                buffer.push(span(seq, "baseline"));
                if seq < n_events {
                    buffer.push_event(event(seq, "baseline"));
                }
            }
            buffer
        };
        let none = with_events(0);
        let many = with_events(500);
        assert_eq!(
            none.spans(),
            many.spans(),
            "event stream must not move spans"
        );
        assert_eq!(many.events().len(), 16);
        assert_eq!(many.events_offered(), 500);
        assert_eq!(with_events(500), with_events(500));
    }

    #[test]
    fn events_merge_and_sort_canonically() {
        let mut a = SpanBuffer::unbounded();
        a.push_event(event(1, "flexlevel"));
        let mut b = SpanBuffer::unbounded();
        b.push_event(event(0, "baseline"));
        a.merge(&b);
        assert_eq!(a.events_offered(), 2);
        let sorted = a.sorted_events();
        assert_eq!(sorted[0].scheme, "baseline");
        assert_eq!(sorted[0].kind.label(), "retry");
        a.clear();
        assert!(a.events().is_empty());
        assert_eq!(a.events_offered(), 0);
    }
}
