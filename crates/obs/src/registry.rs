//! Deterministic metrics registry: counters, gauges and histograms.
//!
//! Metrics are *registered* once up front (allocating their name, label
//! set and storage) and then updated through copyable integer ids —
//! [`CounterId`], [`GaugeId`], [`HistogramId`] — so the hot path is an
//! array index and an add, with **zero allocations**. Snapshot iteration
//! and the Prometheus exposition (see [`crate::export`]) walk metrics in
//! registration order, so rendered output is a pure function of the
//! recorded data, never of hashing or thread interleaving.

use crate::hist::Histogram;

/// Handle of a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle of a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle of a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Identity of one metric series: family name plus label pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricMeta {
    /// Metric family name (e.g. `flexlevel_flash_reads_total`).
    pub name: String,
    /// One-line description, rendered as the family's `# HELP`.
    pub help: String,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
}

fn meta(name: &str, help: &str, labels: &[(&str, &str)]) -> MetricMeta {
    MetricMeta {
        name: name.to_string(),
        help: help.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    }
}

fn matches(m: &MetricMeta, name: &str, labels: &[(&str, &str)]) -> bool {
    m.name == name
        && m.labels.len() == labels.len()
        && m.labels
            .iter()
            .zip(labels)
            .all(|((k, v), (wk, wv))| k == wk && v == wv)
}

/// The registry: an append-only table of metric series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Vec<(MetricMeta, u64)>,
    gauges: Vec<(MetricMeta, f64)>,
    histograms: Vec<(MetricMeta, Histogram)>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) the counter series `name{labels}`. Repeated
    /// registration of the same series returns the existing id, so
    /// metric definitions can live next to their call sites.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> CounterId {
        if let Some(i) = self
            .counters
            .iter()
            .position(|(m, _)| matches(m, name, labels))
        {
            return CounterId(i);
        }
        self.counters.push((meta(name, help, labels), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the gauge series `name{labels}`.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeId {
        if let Some(i) = self
            .gauges
            .iter()
            .position(|(m, _)| matches(m, name, labels))
        {
            return GaugeId(i);
        }
        self.gauges.push((meta(name, help, labels), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) the histogram series `name{labels}`.
    pub fn histogram(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramId {
        if let Some(i) = self
            .histograms
            .iter()
            .position(|(m, _)| matches(m, name, labels))
        {
            return HistogramId(i);
        }
        self.histograms
            .push((meta(name, help, labels), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by `by`. Allocation-free.
    #[inline]
    pub fn inc_by(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Increments a counter by one. Allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.inc_by(id, 1);
    }

    /// Sets a counter to an absolute value (used when folding a finished
    /// run's totals into the registry).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        self.counters[id.0].1 = value;
    }

    /// Sets a gauge. Allocation-free.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Records `value` into a histogram. Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.record(value);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// The histogram behind `id`.
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Looks up a counter series by name and exact label set.
    pub fn find_counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.counters
            .iter()
            .find(|(m, _)| matches(m, name, labels))
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge series by name and exact label set.
    pub fn find_gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(m, _)| matches(m, name, labels))
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram series by name and exact label set.
    pub fn find_histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(m, _)| matches(m, name, labels))
            .map(|(_, h)| h)
    }

    /// Counter series in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricMeta, u64)> {
        self.counters.iter().map(|(m, v)| (m, *v))
    }

    /// Gauge series in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricMeta, f64)> {
        self.gauges.iter().map(|(m, v)| (m, *v))
    }

    /// Histogram series in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricMeta, &Histogram)> {
        self.histograms.iter().map(|(m, h)| (m, h))
    }

    /// Folds `other` into `self`: series present in both are combined
    /// (counters add, gauges take `other`'s value, histograms merge);
    /// series new to `self` are appended in `other`'s registration order.
    /// Merging shards in a fixed order therefore yields bit-identical
    /// registries regardless of how the shards were scheduled.
    pub fn merge(&mut self, other: &Registry) {
        for (m, v) in &other.counters {
            match self.counters.iter_mut().find(|(mine, _)| mine == &*m) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((m.clone(), *v)),
            }
        }
        for (m, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(mine, _)| mine == &*m) {
                Some((_, mine)) => *mine = *v,
                None => self.gauges.push((m.clone(), *v)),
            }
        }
        for (m, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(mine, _)| mine == &*m) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((m.clone(), h.clone())),
            }
        }
    }

    /// Zeroes every value while keeping the registered series (ids stay
    /// valid), so a simulator reset does not invalidate handed-out ids.
    pub fn reset_values(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
        for (_, v) in &mut self.gauges {
            *v = 0.0;
        }
        for (_, h) in &mut self.histograms {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedupes_by_name_and_labels() {
        let mut r = Registry::new();
        let a = r.counter("reads_total", "reads", &[("scheme", "x")]);
        let b = r.counter("reads_total", "reads", &[("scheme", "x")]);
        let c = r.counter("reads_total", "reads", &[("scheme", "y")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        r.inc(a);
        r.inc_by(c, 5);
        assert_eq!(r.counter_value(a), 1);
        assert_eq!(r.find_counter("reads_total", &[("scheme", "y")]), Some(5));
        assert_eq!(r.find_counter("reads_total", &[]), None);
    }

    #[test]
    fn gauges_and_histograms_round_trip() {
        let mut r = Registry::new();
        let g = r.gauge("makespan_us", "makespan", &[]);
        r.set_gauge(g, 123.5);
        assert_eq!(r.gauge_value(g), 123.5);
        assert_eq!(r.find_gauge("makespan_us", &[]), Some(123.5));
        let h = r.histogram("response_us", "responses", &[]);
        r.observe(h, 100.0);
        r.observe(h, 300.0);
        assert_eq!(r.histogram_value(h).count(), 2);
        assert_eq!(r.find_histogram("response_us", &[]).unwrap().mean(), 200.0);
    }

    #[test]
    fn merge_combines_and_appends() {
        let mut a = Registry::new();
        let shared = a.counter("n", "", &[]);
        a.inc_by(shared, 2);
        let ha = a.histogram("h", "", &[]);
        a.observe(ha, 1.0);

        let mut b = Registry::new();
        let shared_b = b.counter("n", "", &[]);
        b.inc_by(shared_b, 3);
        let only_b = b.counter("m", "", &[("k", "v")]);
        b.inc(only_b);
        let hb = b.histogram("h", "", &[]);
        b.observe(hb, 2.0);

        a.merge(&b);
        assert_eq!(a.find_counter("n", &[]), Some(5));
        assert_eq!(a.find_counter("m", &[("k", "v")]), Some(1));
        assert_eq!(a.find_histogram("h", &[]).unwrap().count(), 2);
    }

    #[test]
    fn reset_keeps_series_valid() {
        let mut r = Registry::new();
        let c = r.counter("n", "", &[]);
        let h = r.histogram("h", "", &[]);
        r.inc(c);
        r.observe(h, 9.0);
        r.reset_values();
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.histogram_value(h).count(), 0);
        // Ids registered before the reset still address their series.
        r.inc_by(c, 7);
        assert_eq!(r.find_counter("n", &[]), Some(7));
    }
}
