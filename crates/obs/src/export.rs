//! Deterministic text exporters: span JSONL, Chrome `trace_event` JSON,
//! and Prometheus text exposition.
//!
//! All three formats are rendered by hand (no serializer dependency)
//! with fields in fixed order, series in registration order, and spans
//! in canonical `(scheme, seq)` order, so the bytes produced are a pure
//! function of the recorded data. Floats use Rust's shortest round-trip
//! `Display`, which is platform-independent.

use crate::hist::Histogram;
use crate::registry::Registry;
use crate::span::{EventKind, ReadSpan, SpanBuffer, TraceEvent};
use crate::timeseries::SeriesBlock;
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON or Prometheus quoted value.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// The distinct family names of `metas`, in first-appearance order.
fn family_order<'a>(names: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    let mut order: Vec<&str> = Vec::new();
    for name in names {
        if !order.contains(&name) {
            order.push(name);
        }
    }
    order
}

/// Renders `registry` in Prometheus text exposition format.
///
/// Families are emitted in first-registration order with all their
/// series grouped under one `# HELP`/`# TYPE` header (the exposition
/// format forbids interleaving a family's series with other families,
/// which merged multi-run registries would otherwise produce).
/// Histograms use sparse cumulative `_bucket{le="..."}` samples (only
/// buckets whose cumulative count changes are emitted, plus the
/// mandatory `le="+Inf"`), followed by `_sum` and `_count`.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    let header = |out: &mut String, name: &str, help: &str, kind: &str| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
    };
    let counters: Vec<_> = registry.counters().collect();
    for family in family_order(counters.iter().map(|(m, _)| m.name.as_str())) {
        for (i, (meta, value)) in counters
            .iter()
            .filter(|(m, _)| m.name == family)
            .enumerate()
        {
            if i == 0 {
                header(&mut out, &meta.name, &meta.help, "counter");
            }
            let _ = writeln!(out, "{}{} {value}", meta.name, label_block(&meta.labels));
        }
    }
    let gauges: Vec<_> = registry.gauges().collect();
    for family in family_order(gauges.iter().map(|(m, _)| m.name.as_str())) {
        for (i, (meta, value)) in gauges.iter().filter(|(m, _)| m.name == family).enumerate() {
            if i == 0 {
                header(&mut out, &meta.name, &meta.help, "gauge");
            }
            let _ = writeln!(out, "{}{} {value}", meta.name, label_block(&meta.labels));
        }
    }
    let histograms: Vec<_> = registry.histograms().collect();
    for family in family_order(histograms.iter().map(|(m, _)| m.name.as_str())) {
        for (i, (meta, hist)) in histograms
            .iter()
            .filter(|(m, _)| m.name == family)
            .enumerate()
        {
            if i == 0 {
                header(&mut out, &meta.name, &meta.help, "histogram");
            }
            let mut cumulative = 0u64;
            for (index, count) in hist.nonzero_buckets() {
                cumulative += count;
                let (_, upper) = Histogram::bucket_bounds(index);
                let le = if upper.is_finite() {
                    format!("{upper}")
                } else {
                    "+Inf".to_string()
                };
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    meta.name,
                    bucket_labels(&meta.labels, &le)
                );
            }
            if hist.bucket_count(crate::hist::NUM_BUCKETS - 1) == 0 {
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    meta.name,
                    bucket_labels(&meta.labels, "+Inf")
                );
            }
            let _ = writeln!(
                out,
                "{}_sum{} {}",
                meta.name,
                label_block(&meta.labels),
                hist.sum()
            );
            let _ = writeln!(
                out,
                "{}_count{} {}",
                meta.name,
                label_block(&meta.labels),
                hist.count()
            );
        }
    }
    out
}

fn bucket_labels(labels: &[(String, String)], le: &str) -> String {
    let mut all: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    all.push(format!("le=\"{le}\""));
    format!("{{{}}}", all.join(","))
}

fn span_json(span: &ReadSpan) -> String {
    let mut stages = String::new();
    for (i, stage) in span.stages.iter().enumerate() {
        if i > 0 {
            stages.push(',');
        }
        let _ = write!(
            stages,
            "{{\"stage\":\"{}\",\"offset_us\":{},\"duration_us\":{}}}",
            escape(stage.stage),
            stage.offset_us,
            stage.duration_us
        );
    }
    format!(
        concat!(
            "{{\"seq\":{},\"lpn\":{},\"scheme\":\"{}\",\"tenant\":{},\"arrival_us\":{},",
            "\"start_us\":{},\"response_us\":{},\"sensing_levels\":{},",
            "\"decode_iterations\":{},\"retry_rungs\":{},\"outcome\":\"{}\",",
            "\"stages\":[{}]}}"
        ),
        span.seq,
        span.lpn,
        escape(span.scheme),
        span.tenant,
        span.arrival_us,
        span.start_us,
        span.response_us,
        span.sensing_levels,
        span.decode_iterations,
        span.retry_rungs,
        span.outcome.label(),
        stages
    )
}

/// Renders the buffer as JSONL: one span object per line, in canonical
/// `(scheme, seq)` order.
pub fn span_jsonl(buffer: &SpanBuffer) -> String {
    let mut out = String::new();
    for span in buffer.sorted_spans() {
        out.push_str(&span_json(span));
        out.push('\n');
    }
    out
}

/// Renders one snapshot's series as a JSONL object with fixed field
/// order: scheme, window, window-end time, cumulative counters,
/// per-window deltas, boundary gauges.
fn series_json(block: &SeriesBlock, snap: &crate::timeseries::SeriesSnapshot) -> String {
    let columns = |names: &[String], values: &mut dyn Iterator<Item = String>| -> String {
        let body: Vec<String> = names
            .iter()
            .zip(values)
            .map(|(name, value)| format!("\"{}\":{value}", escape(name)))
            .collect();
        body.join(",")
    };
    format!(
        "{{\"scheme\":\"{}\",\"window\":{},\"t_us\":{},\"cum\":{{{}}},\"delta\":{{{}}},\"gauges\":{{{}}}}}",
        escape(&block.scheme),
        snap.window,
        snap.t_us,
        columns(&block.counters, &mut snap.cumulative.iter().map(|v| v.to_string())),
        columns(&block.counters, &mut snap.delta.iter().map(|v| v.to_string())),
        columns(&block.gauges, &mut snap.gauges.iter().map(|v| v.to_string())),
    )
}

/// Renders time-series blocks as JSONL: one snapshot object per line,
/// blocks in scheme order, snapshots in window order. Cumulative
/// counters are non-decreasing and `t_us` strictly increases within a
/// scheme, by construction of [`crate::timeseries::SeriesSampler`].
pub fn series_jsonl(blocks: &[SeriesBlock]) -> String {
    let mut ordered: Vec<&SeriesBlock> = blocks.iter().collect();
    ordered.sort_by(|a, b| a.scheme.cmp(&b.scheme));
    let mut out = String::new();
    for block in ordered {
        for snap in &block.snapshots {
            out.push_str(&series_json(block, snap));
            out.push('\n');
        }
    }
    out
}

fn event_json(event: &TraceEvent, tid: usize) -> String {
    let (cat, args) = match event.kind {
        EventKind::Retry { depth, recovered } => (
            "recovery",
            format!(",\"depth\":{depth},\"recovered\":{recovered}"),
        ),
        EventKind::DieReset => ("recovery", String::new()),
        EventKind::Scrub { reads, refreshes } => (
            "scrub",
            format!(",\"reads\":{reads},\"refreshes\":{refreshes}"),
        ),
    };
    format!(
        concat!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",",
            "\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{",
            "\"seq\":{},\"tenant\":{},\"lpn\":{}{}}}}}"
        ),
        event.kind.label(),
        cat,
        tid,
        event.t_us,
        event.seq,
        event.tenant,
        event.lpn,
        args
    )
}

/// Renders the buffer in Chrome `trace_event` JSON format, loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// Each scheme becomes one named track (`tid` = scheme order of first
/// appearance); each span emits a complete (`ph:"X"`) event covering the
/// whole request (queueing included) plus one nested complete event per
/// pipeline stage. Timestamps are in µs as the format requires.
///
/// Equivalent to [`chrome_trace_full`] with no time series.
pub fn chrome_trace(buffer: &SpanBuffer) -> String {
    chrome_trace_full(buffer, &[])
}

/// Like [`chrome_trace`], and additionally renders recovery/scrub
/// instant events (`ph:"i"`, with tenant and retry-depth args) on their
/// scheme's track, and each series block's per-window deltas and gauges
/// as counter tracks (`ph:"C"`) so Perfetto shows live series alongside
/// the spans. With no events and no series the output is byte-identical
/// to [`chrome_trace`].
pub fn chrome_trace_full(buffer: &SpanBuffer, series: &[SeriesBlock]) -> String {
    let spans = buffer.sorted_spans();
    let instants = buffer.sorted_events();
    let mut schemes: Vec<&str> = Vec::new();
    for span in &spans {
        if !schemes.contains(&span.scheme) {
            schemes.push(span.scheme);
        }
    }
    for event in &instants {
        if !schemes.contains(&event.scheme) {
            schemes.push(event.scheme);
        }
    }
    let tid = |scheme: &str| schemes.iter().position(|s| *s == scheme).unwrap() + 1;

    let mut events: Vec<String> = Vec::new();
    for scheme in &schemes {
        events.push(format!(
            concat!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},",
                "\"args\":{{\"name\":\"{}\"}}}}"
            ),
            tid(scheme),
            escape(scheme)
        ));
    }
    for span in &spans {
        let tid = tid(span.scheme);
        events.push(format!(
            concat!(
                "{{\"name\":\"read lpn={}\",\"cat\":\"read\",\"ph\":\"X\",",
                "\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
                "\"seq\":{},\"tenant\":{},\"sensing_levels\":{},\"decode_iterations\":{},",
                "\"retry_rungs\":{},\"outcome\":\"{}\"}}}}"
            ),
            span.lpn,
            tid,
            span.arrival_us,
            span.response_us,
            span.seq,
            span.tenant,
            span.sensing_levels,
            span.decode_iterations,
            span.retry_rungs,
            span.outcome.label()
        ));
        for stage in &span.stages {
            events.push(format!(
                concat!(
                    "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",",
                    "\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}"
                ),
                escape(stage.stage),
                tid,
                span.start_us + stage.offset_us,
                stage.duration_us
            ));
        }
    }
    for event in &instants {
        events.push(event_json(event, tid(event.scheme)));
    }
    let mut ordered: Vec<&SeriesBlock> = series.iter().collect();
    ordered.sort_by(|a, b| a.scheme.cmp(&b.scheme));
    for block in ordered {
        for snap in &block.snapshots {
            let mut args: Vec<String> = Vec::new();
            for (name, value) in block.counters.iter().zip(&snap.delta) {
                args.push(format!("\"{}\":{value}", escape(name)));
            }
            for (name, value) in block.gauges.iter().zip(&snap.gauges) {
                args.push(format!("\"{}\":{value}", escape(name)));
            }
            events.push(format!(
                "{{\"name\":\"series {}\",\"ph\":\"C\",\"pid\":1,\"ts\":{},\"args\":{{{}}}}}",
                escape(&block.scheme),
                snap.t_us,
                args.join(",")
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanOutcome, StageTiming};

    fn sample_buffer() -> SpanBuffer {
        let mut buffer = SpanBuffer::unbounded();
        buffer.push(ReadSpan {
            seq: 0,
            lpn: 42,
            scheme: "flexlevel",
            tenant: 0,
            arrival_us: 10.0,
            start_us: 12.5,
            response_us: 132.5,
            sensing_levels: 2,
            decode_iterations: 6,
            retry_rungs: 1,
            stages: vec![
                StageTiming {
                    stage: "sense",
                    offset_us: 0.0,
                    duration_us: 90.0,
                },
                StageTiming {
                    stage: "transfer",
                    offset_us: 90.0,
                    duration_us: 40.0,
                },
            ],
            outcome: SpanOutcome::Recovered,
        });
        buffer
    }

    #[test]
    fn jsonl_is_one_object_per_line_with_fixed_fields() {
        let text = span_jsonl(&sample_buffer());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"seq\":0,\"lpn\":42,\"scheme\":\"flexlevel\""));
        assert!(lines[0].contains("\"outcome\":\"recovered\""));
        assert!(lines[0].contains("\"stages\":[{\"stage\":\"sense\""));
    }

    #[test]
    fn chrome_trace_has_metadata_and_events() {
        let text = chrome_trace(&sample_buffer());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"name\":\"read lpn=42\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ts\":12.5"));
        // Balanced braces as a cheap well-formedness check.
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn prometheus_renders_families_in_order() {
        let mut registry = Registry::new();
        let reads = registry.counter(
            "flexlevel_flash_reads_total",
            "Flash page reads issued.",
            &[("scheme", "flexlevel")],
        );
        registry.inc_by(reads, 12941);
        let reads_b = registry.counter(
            "flexlevel_flash_reads_total",
            "Flash page reads issued.",
            &[("scheme", "baseline")],
        );
        registry.inc_by(reads_b, 14000);
        let gauge = registry.gauge("flexlevel_makespan_us", "Run makespan.", &[]);
        registry.set_gauge(gauge, 2.5e6);
        let hist = registry.histogram("flexlevel_response_us", "Response times.", &[]);
        registry.observe(hist, 130.0);
        registry.observe(hist, 910.0);

        let text = prometheus(&registry);
        assert!(text.contains("# HELP flexlevel_flash_reads_total Flash page reads issued.\n"));
        assert!(text.contains("# TYPE flexlevel_flash_reads_total counter\n"));
        // One header for the family even with two series.
        assert_eq!(
            text.matches("# TYPE flexlevel_flash_reads_total").count(),
            1
        );
        assert!(text.contains("flexlevel_flash_reads_total{scheme=\"flexlevel\"} 12941\n"));
        assert!(text.contains("flexlevel_makespan_us 2500000\n"));
        assert!(text.contains("# TYPE flexlevel_response_us histogram\n"));
        assert!(text.contains("flexlevel_response_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("flexlevel_response_us_sum 1040\n"));
        assert!(text.contains("flexlevel_response_us_count 2\n"));
    }

    #[test]
    fn prometheus_groups_interleaved_families_after_merge() {
        // Merging per-run registries appends each run's series at the
        // end, so a family's series are no longer adjacent in
        // registration order; the exporter must still group them under a
        // single header (the exposition format forbids interleaving).
        let build = |scheme: &'static str| {
            let mut r = Registry::new();
            let c = r.counter("a_total", "A.", &[("scheme", scheme)]);
            r.inc_by(c, 1);
            let g = r.gauge("b", "B.", &[("scheme", scheme)]);
            r.set_gauge(g, 2.0);
            r
        };
        let mut merged = build("x");
        merged.merge(&build("y"));
        let text = prometheus(&merged);
        assert_eq!(text.matches("# TYPE a_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE b gauge").count(), 1);
        let ax = text.find("a_total{scheme=\"x\"}").unwrap();
        let ay = text.find("a_total{scheme=\"y\"}").unwrap();
        let bx = text.find("b{scheme=\"x\"}").unwrap();
        assert!(ax < ay && ay < bx, "family series must stay grouped");
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let mut registry = Registry::new();
        let hist = registry.histogram("h", "two buckets", &[]);
        for _ in 0..3 {
            registry.observe(hist, 10.0);
        }
        registry.observe(hist, 1000.0);
        let text = prometheus(&registry);
        let bucket_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("h_bucket")).collect();
        assert_eq!(bucket_lines.len(), 3); // two data buckets + +Inf
        assert!(bucket_lines[0].ends_with(" 3"));
        assert!(bucket_lines[1].ends_with(" 4"));
        assert!(bucket_lines[2].contains("le=\"+Inf\"} 4"));
    }

    fn sample_block() -> SeriesBlock {
        use crate::timeseries::SeriesSampler;
        let mut s = SeriesSampler::new(
            "flexlevel",
            1000,
            vec!["host_reads".into()],
            vec!["uber".into()],
        );
        s.emit(vec![12], vec![2.5e-9]);
        s.emit(vec![30], vec![1.25e-9]);
        s.into_block()
    }

    #[test]
    fn series_jsonl_is_one_snapshot_per_line() {
        let text = series_jsonl(&[sample_block()]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            concat!(
                "{\"scheme\":\"flexlevel\",\"window\":0,\"t_us\":1000,",
                "\"cum\":{\"host_reads\":12},\"delta\":{\"host_reads\":12},",
                "\"gauges\":{\"uber\":0.0000000025}}"
            )
        );
        assert!(lines[1].contains("\"delta\":{\"host_reads\":18}"));
    }

    #[test]
    fn chrome_trace_full_adds_instants_and_counters() {
        use crate::span::{EventKind, TraceEvent};
        let mut buffer = sample_buffer();
        buffer.push_event(TraceEvent {
            seq: 0,
            t_us: 11.0,
            scheme: "flexlevel",
            tenant: 3,
            lpn: 42,
            kind: EventKind::Retry {
                depth: 2,
                recovered: true,
            },
        });
        let text = chrome_trace_full(&buffer, &[sample_block()]);
        assert!(text.contains("\"name\":\"retry\",\"cat\":\"recovery\",\"ph\":\"i\""));
        assert!(text.contains("\"tenant\":3,\"lpn\":42,\"depth\":2,\"recovered\":true"));
        assert!(text.contains("\"name\":\"series flexlevel\",\"ph\":\"C\""));
        assert!(text.contains("\"host_reads\":18"));
        let open = text.matches('{').count();
        let close = text.matches('}').count();
        assert_eq!(open, close);
        // Without events or series the full variant matches the basic one.
        assert_eq!(chrome_trace(&sample_buffer()), {
            chrome_trace_full(&sample_buffer(), &[])
        });
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let mut registry = Registry::new();
            let h = registry.histogram("h", "", &[("scheme", "x")]);
            for i in 0..100 {
                registry.observe(h, 10.0 + i as f64 * 3.7);
            }
            (prometheus(&registry), span_jsonl(&sample_buffer()))
        };
        assert_eq!(build(), build());
    }
}
