//! Log-linear latency histogram with exact, machine-independent bucket
//! boundaries.
//!
//! The layout is HDR-style: each power-of-two *octave* `[2^k, 2^(k+1))`
//! is split into [`SUB_BUCKETS`] equal linear sub-buckets, giving a
//! constant ≤ 1/[`SUB_BUCKETS`] relative quantization error across the
//! whole range. Values below `1.0` fall into a linear region of
//! [`SUB_BUCKETS`] buckets of width `1/`[`SUB_BUCKETS`], and values at or
//! above `2^`[`OCTAVES`] land in a single overflow bucket.
//!
//! Every boundary is of the form `2^k · (1 + i/SUB_BUCKETS)` with
//! `SUB_BUCKETS` a power of two, so boundaries are exactly representable
//! `f64`s and bucket indexing is pure bit manipulation on the IEEE-754
//! encoding — no `log`, no platform-dependent rounding. Recording the
//! same values always yields bit-identical state, and
//! [`merge`](Histogram::merge) is commutative bit-for-bit, which is what
//! lets per-shard histograms be combined in fixed shard order with the
//! same guarantees as `reliability::mc`'s fixed-order reduction.

/// Bits of linear resolution per octave.
const SUB_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two octave (32): the relative
/// quantization error of any recorded value is at most 1/32 ≈ 3.1 %.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Octaves covered above `1.0`. `2^40` µs ≈ 12.7 days — far beyond any
/// simulated latency; larger values share the overflow bucket.
pub const OCTAVES: usize = 40;

/// Total bucket count: the `[0, 1)` linear region, [`OCTAVES`] octaves,
/// and one overflow bucket.
pub const NUM_BUCKETS: usize = SUB_BUCKETS * (OCTAVES + 1) + 1;

/// A fixed-shape log-linear histogram over non-negative finite values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite — the histogram's
    /// domain is latencies/counts, and silently folding NaN into a bucket
    /// would hide a modelling bug.
    pub fn bucket_index(value: f64) -> usize {
        assert!(
            value.is_finite() && value >= 0.0,
            "histogram domain is finite non-negative values, got {value}"
        );
        if value < 1.0 {
            // Linear region: width 1/SUB_BUCKETS. The product is < 32,
            // so the cast truncation is the exact floor.
            return (value * SUB_BUCKETS as f64) as usize;
        }
        let bits = value.to_bits();
        let exponent = ((bits >> 52) & 0x7FF) as usize - 1023;
        if exponent >= OCTAVES {
            return NUM_BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS * (1 + exponent) + sub
    }

    /// The half-open range `[lower, upper)` of bucket `index`; the
    /// overflow bucket's upper bound is `+∞`. Boundaries are exactly
    /// representable and shared between adjacent buckets
    /// (`bounds(i).1 == bounds(i + 1).0`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
        let sub = SUB_BUCKETS as f64;
        if index < SUB_BUCKETS {
            return (index as f64 / sub, (index + 1) as f64 / sub);
        }
        if index == NUM_BUCKETS - 1 {
            return ((1u64 << OCTAVES) as f64, f64::INFINITY);
        }
        let octave = index / SUB_BUCKETS - 1;
        let slot = (index % SUB_BUCKETS) as f64;
        let base = (1u64 << octave) as f64;
        (base * (1.0 + slot / sub), base * (1.0 + (slot + 1.0) / sub))
    }

    /// Records one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Histogram::bucket_index(value)] += n;
        self.count += n;
        self.sum += value * n as f64;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.max
    }

    /// Observations in bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Non-empty buckets as `(index, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// The bucket holding the `q`-quantile observation (rank convention
    /// matching `SimStats::response_percentile`: the rank is
    /// `round(q · (count − 1))`). Returns `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return None;
        }
        let rank = (q * (self.count - 1) as f64).round() as u64;
        let mut cumulative = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                return Some(index);
            }
        }
        unreachable!("cumulative count covers every rank");
    }

    /// The `[lower, upper)` bounds bracketing the exact `q`-quantile: the
    /// true order statistic lies inside the returned bucket, so any point
    /// estimate within it is off by less than one bucket width. Returns
    /// `(0, 0)` when empty.
    pub fn quantile_bounds(&self, q: f64) -> (f64, f64) {
        match self.quantile_bucket(q) {
            Some(index) => Histogram::bucket_bounds(index),
            None => (0.0, 0.0),
        }
    }

    /// Point estimate of the `q`-quantile: the midpoint of the bracketing
    /// bucket (clamped to the largest recorded value, which also covers
    /// the unbounded overflow bucket). Within one bucket width of the
    /// exact quantile by construction.
    pub fn quantile(&self, q: f64) -> f64 {
        match self.quantile_bucket(q) {
            Some(index) => {
                let (lower, upper) = Histogram::bucket_bounds(index);
                if upper.is_finite() {
                    (lower + upper) / 2.0
                } else {
                    self.max()
                }
            }
            None => 0.0,
        }
    }

    /// Folds `other` into `self`. Bucket counts add; the running sum adds
    /// (IEEE-754 addition is commutative, so `merge(a, b)` and
    /// `merge(b, a)` are bit-identical — merging *more than two*
    /// histograms must still use a fixed order, as f64 addition is not
    /// associative).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to the empty state, keeping the allocation.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.quantile_bucket(0.5), None);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn boundaries_are_exact_and_shared() {
        for index in 0..NUM_BUCKETS - 1 {
            let (lower, upper) = Histogram::bucket_bounds(index);
            assert!(lower < upper, "bucket {index}");
            assert_eq!(upper, Histogram::bucket_bounds(index + 1).0);
        }
        assert_eq!(Histogram::bucket_bounds(0).0, 0.0);
        assert_eq!(Histogram::bucket_bounds(NUM_BUCKETS - 1).1, f64::INFINITY);
    }

    #[test]
    fn indexing_matches_bounds() {
        for value in [
            0.0,
            0.01,
            0.5,
            0.999,
            1.0,
            1.03125,
            1.5,
            2.0,
            90.0,
            135.0,
            1000.0,
            3000.0,
            65_535.9,
            1e9,
            2f64.powi(39),
            2f64.powi(40),
            1e300,
        ] {
            let index = Histogram::bucket_index(value);
            let (lower, upper) = Histogram::bucket_bounds(index);
            assert!(
                lower <= value && value < upper,
                "{value} landed in bucket {index} = [{lower}, {upper})"
            );
        }
    }

    #[test]
    fn boundary_values_open_their_own_bucket() {
        // A value exactly on a boundary belongs to the upper bucket.
        for index in 1..200 {
            let (lower, _) = Histogram::bucket_bounds(index);
            assert_eq!(Histogram::bucket_index(lower), index);
        }
    }

    #[test]
    fn relative_error_bounded() {
        let mut v = 1.0_f64;
        while v < 1e9 {
            let (lower, upper) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!((upper - lower) / lower <= 1.0 / SUB_BUCKETS as f64 + 1e-12);
            v *= 1.37;
        }
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let mut h = Histogram::new();
        let values: Vec<f64> = (0..1000).map(|i| 10.0 + i as f64).collect();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 10.0);
        assert_eq!(h.max(), 1009.0);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let exact = values[((values.len() - 1) as f64 * q).round() as usize];
            let (lower, upper) = h.quantile_bounds(q);
            assert!(
                lower <= exact && exact < upper,
                "q={q}: exact {exact} outside [{lower}, {upper})"
            );
            let estimate = h.quantile(q);
            assert!((estimate - exact).abs() < upper - lower);
        }
    }

    #[test]
    fn merge_is_commutative_bitwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500 {
            a.record(0.1 + i as f64 * 1.7);
            b.record(3000.0 / (1.0 + i as f64));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.sum().to_bits(), ba.sum().to_bits());
        assert_eq!(ab.count(), 1000);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        a.record_n(42.5, 3);
        a.record_n(7.0, 0); // no-op
        let mut b = Histogram::new();
        for _ in 0..3 {
            b.record(42.5);
        }
        assert_eq!(a.count(), b.count());
        assert_eq!(a.bucket_count(Histogram::bucket_index(42.5)), 3);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = Histogram::new();
        h.record(12.0);
        h.clear();
        assert_eq!(h, Histogram::new());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_values_rejected() {
        Histogram::bucket_index(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn nan_rejected() {
        Histogram::bucket_index(f64::NAN);
    }
}
