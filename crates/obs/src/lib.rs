//! Zero-overhead observability for the FlexLevel simulator.
//!
//! Three pieces, all deterministic by construction:
//!
//! * [`Registry`] ([`registry`]) — counters, gauges and log-linear
//!   latency [`Histogram`]s ([`hist`]) addressed by copyable ids, so the
//!   hot path never allocates and never hashes.
//! * [`SpanBuffer`] ([`span`]) — structured per-read [`ReadSpan`] trace
//!   records with seeded reservoir sampling.
//! * [`export`] — Prometheus text exposition, span JSONL, and Chrome
//!   `trace_event` JSON renderers whose output is a pure function of the
//!   recorded data (bit-identical across thread counts).
//!
//! The consuming simulator threads an `Option<&mut Recorder>` (or an
//! `Option<Box<...>>` field); when `None`, no observability code runs at
//! all, which is how the layer stays zero-cost when disabled.

#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use hist::Histogram;
pub use registry::{CounterId, GaugeId, HistogramId, MetricMeta, Registry};
pub use span::{EventKind, ReadSpan, SpanBuffer, SpanOutcome, StageTiming, TraceEvent};
pub use timeseries::{
    critical_path, PathComponents, SchemeAttribution, SeriesBlock, SeriesSampler, SeriesSnapshot,
    SeriesState,
};

/// Bundles the metrics registry, span buffer and time series a run
/// records into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recorder {
    /// Counters, gauges and histograms for the run.
    pub metrics: Registry,
    /// Collected read spans.
    pub spans: SpanBuffer,
    /// Windowed time series, one block per producing run.
    pub series: Vec<SeriesBlock>,
}

impl Recorder {
    /// Creates a recorder that keeps every span.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Creates a recorder whose span buffer reservoir-samples down to at
    /// most `sample` spans (`0` keeps everything).
    pub fn with_span_sample(sample: usize) -> Recorder {
        Recorder {
            metrics: Registry::new(),
            spans: SpanBuffer::with_capacity(sample),
            series: Vec::new(),
        }
    }

    /// Folds another recorder into this one: metrics merge series-wise,
    /// spans concatenate, series blocks append. Call in a fixed order
    /// (e.g. scheme order) so the combined state is independent of run
    /// scheduling.
    pub fn merge(&mut self, other: &Recorder) {
        self.metrics.merge(&other.metrics);
        self.spans.merge(&other.spans);
        self.series.extend(other.series.iter().cloned());
    }
}
