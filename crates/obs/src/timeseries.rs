//! Deterministic windowed time series over simulated time.
//!
//! A [`SeriesSampler`] divides simulated time into fixed windows of
//! `interval_us` microseconds — window *k* covers `[k·i, (k+1)·i)` — and
//! emits one [`SeriesSnapshot`] per window: the cumulative value of every
//! sampled counter at the window's end, the per-window delta, and a set
//! of gauges evaluated at the boundary.
//!
//! # Determinism contract
//!
//! The sampler is keyed **purely to simulated time**, never to wall
//! clock: the caller offers each request's *arrival* timestamp (which is
//! a property of the trace, identical across thread counts and timing
//! backends) and the sampler emits the pending windows *before* that
//! request's effects are applied. As long as the sampled values are
//! themselves logical (operation counters, admission state — not
//! measured response times), the resulting series is bit-identical
//! across 1/2/8 threads and both timing backends, and a checkpointed
//! and resumed run reproduces the uninterrupted series byte for byte
//! (the accumulated [`SeriesState`] rides the device image).
//!
//! The final, partial window is flushed exactly once at end-of-run via
//! [`SeriesSampler::flush`]; a run prefix that stops early for a
//! checkpoint does *not* flush, it snapshots its state instead.

/// One emitted window: cumulative and per-window counter values plus
/// boundary gauges, in the sampler's schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Window index (0-based).
    pub window: u64,
    /// Window end time in µs (`(window + 1) · interval`); the flushed
    /// final window keeps its nominal end time even when partial.
    pub t_us: f64,
    /// Cumulative counter values at the window end, schema order.
    pub cumulative: Vec<u64>,
    /// Counter increments within this window, schema order.
    pub delta: Vec<u64>,
    /// Gauge values evaluated at the window end, schema order.
    pub gauges: Vec<f64>,
}

/// A finished sampler's output: schema plus snapshots, detached from the
/// accumulation state so it can ride a [`crate::Recorder`] merge.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesBlock {
    /// Label of the scheme (or run) that produced the series.
    pub scheme: String,
    /// Counter column names, in snapshot vector order.
    pub counters: Vec<String>,
    /// Gauge column names, in snapshot vector order.
    pub gauges: Vec<String>,
    /// Emitted windows in window order.
    pub snapshots: Vec<SeriesSnapshot>,
}

/// Portable dump of a sampler's accumulation state, carried by the
/// device-image checkpoint so a resumed campaign continues its series
/// instead of restarting it. Schema names are not stored — the restoring
/// side reconstructs the sampler from the same CLI flags and
/// [`SeriesSampler::restore`] validates the arity.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesState {
    /// Sampling interval in µs.
    pub interval_us: u64,
    /// Index of the currently accumulating (unemitted) window.
    pub window: u64,
    /// Cumulative counter values at the last emitted boundary.
    pub last: Vec<u64>,
    /// Windows emitted so far.
    pub snapshots: Vec<SeriesSnapshot>,
}

/// Windowed snapshot engine; see the [module docs](self) for the
/// determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSampler {
    scheme: String,
    interval_us: u64,
    counters: Vec<String>,
    gauges: Vec<String>,
    window: u64,
    last: Vec<u64>,
    snapshots: Vec<SeriesSnapshot>,
    flushed: bool,
}

impl SeriesSampler {
    /// Creates a sampler with a fixed schema. `interval_us` is clamped
    /// to at least 1 µs.
    pub fn new(
        scheme: &str,
        interval_us: u64,
        counters: Vec<String>,
        gauges: Vec<String>,
    ) -> SeriesSampler {
        let last = vec![0; counters.len()];
        SeriesSampler {
            scheme: scheme.to_string(),
            interval_us: interval_us.max(1),
            counters,
            gauges,
            window: 0,
            last,
            snapshots: Vec::new(),
            flushed: false,
        }
    }

    /// Appends columns to the schema. Only legal before the first
    /// snapshot is emitted (panics otherwise) — used to add per-tenant
    /// columns once the serve path knows the tenant count.
    pub fn extend_schema(&mut self, counters: &[String], gauges: &[String]) {
        assert!(
            self.snapshots.is_empty() && self.window == 0,
            "series schema is frozen once the first window is emitted"
        );
        self.counters.extend(counters.iter().cloned());
        self.gauges.extend(gauges.iter().cloned());
        self.last.resize(self.counters.len(), 0);
    }

    /// The sampling interval in µs.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// The scheme label snapshots are attributed to.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Counter column names, in vector order.
    pub fn counter_names(&self) -> &[String] {
        &self.counters
    }

    /// Gauge column names, in vector order.
    pub fn gauge_names(&self) -> &[String] {
        &self.gauges
    }

    /// Windows emitted so far.
    pub fn snapshots(&self) -> &[SeriesSnapshot] {
        &self.snapshots
    }

    /// End time (µs) of the currently accumulating window — the next
    /// boundary to cross.
    fn boundary_us(&self) -> f64 {
        ((self.window + 1) * self.interval_us) as f64
    }

    /// If an event at `t_us` lies at or past the open window's end,
    /// returns that boundary time: the caller must gather the current
    /// values and [`emit`](Self::emit) before applying the event, then
    /// ask again (a large gap crosses several windows, each emitted with
    /// unchanged cumulative values). Returns `None` once `t_us` falls
    /// inside the open window.
    pub fn due(&self, t_us: f64) -> Option<f64> {
        let boundary = self.boundary_us();
        (t_us >= boundary).then_some(boundary)
    }

    /// Emits the open window with the given cumulative counter and
    /// boundary gauge values (schema order; lengths must match) and
    /// opens the next window.
    pub fn emit(&mut self, cumulative: Vec<u64>, gauges: Vec<f64>) {
        assert_eq!(cumulative.len(), self.counters.len(), "counter arity");
        assert_eq!(gauges.len(), self.gauges.len(), "gauge arity");
        let delta: Vec<u64> = cumulative
            .iter()
            .zip(&self.last)
            .map(|(now, before)| now.saturating_sub(*before))
            .collect();
        self.snapshots.push(SeriesSnapshot {
            window: self.window,
            t_us: self.boundary_us(),
            cumulative: cumulative.clone(),
            delta,
            gauges,
        });
        self.last = cumulative;
        self.window += 1;
    }

    /// Flushes the final, partial window at end-of-run. Idempotent: a
    /// second flush is a no-op, so the "last partial window" appears
    /// exactly once. The snapshot keeps the window's nominal end time.
    pub fn flush(&mut self, cumulative: Vec<u64>, gauges: Vec<f64>) {
        if self.flushed {
            return;
        }
        self.emit(cumulative, gauges);
        self.flushed = true;
    }

    /// Clears all accumulation (snapshots, deltas, window cursor) while
    /// keeping the schema, so a re-run reproduces the series from
    /// scratch.
    pub fn reset(&mut self) {
        self.window = 0;
        self.last = vec![0; self.counters.len()];
        self.snapshots.clear();
        self.flushed = false;
    }

    /// Snapshot of the accumulation state for checkpointing.
    pub fn state(&self) -> SeriesState {
        SeriesState {
            interval_us: self.interval_us,
            window: self.window,
            last: self.last.clone(),
            snapshots: self.snapshots.clone(),
        }
    }

    /// Restores a checkpointed accumulation state. Returns `false` (and
    /// leaves the sampler untouched) when the state does not match this
    /// sampler's interval or schema arity — e.g. a restore under
    /// different series flags.
    pub fn restore(&mut self, state: &SeriesState) -> bool {
        let arity_ok = state.last.len() == self.counters.len()
            && state.snapshots.iter().all(|s| {
                s.cumulative.len() == self.counters.len()
                    && s.delta.len() == self.counters.len()
                    && s.gauges.len() == self.gauges.len()
            });
        if state.interval_us != self.interval_us || !arity_ok {
            return false;
        }
        self.window = state.window;
        self.last = state.last.clone();
        self.snapshots = state.snapshots.clone();
        self.flushed = false;
        true
    }

    /// Consumes the sampler into its exportable block.
    pub fn into_block(self) -> SeriesBlock {
        SeriesBlock {
            scheme: self.scheme,
            counters: self.counters,
            gauges: self.gauges,
            snapshots: self.snapshots,
        }
    }
}

/// Per-read time attribution, averaged over a span population: where a
/// read's response time went, in µs per read.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathComponents {
    /// Host-side queueing: service start − arrival.
    pub queue_us: f64,
    /// Sensing stage busy time.
    pub sense_us: f64,
    /// Channel transfer stage busy time.
    pub transfer_us: f64,
    /// LDPC decode stage busy time.
    pub decode_us: f64,
    /// Recovery-ladder retry stage busy time.
    pub retry_us: f64,
    /// Die-reset stage busy time.
    pub die_reset_us: f64,
    /// Residual device-side wait (response − queue − Σ stage busy):
    /// inter-stage waits under the pipelined backend, 0 under the
    /// lumped one.
    pub wait_us: f64,
}

impl PathComponents {
    /// Total accounted time per read (sums every component).
    pub fn total_us(&self) -> f64 {
        self.queue_us
            + self.sense_us
            + self.transfer_us
            + self.decode_us
            + self.retry_us
            + self.die_reset_us
            + self.wait_us
    }

    fn add_span(&mut self, span: &crate::span::ReadSpan) {
        let queue = (span.start_us - span.arrival_us).max(0.0);
        self.queue_us += queue;
        let mut busy = 0.0;
        for stage in &span.stages {
            busy += stage.duration_us;
            match stage.stage {
                "sense" => self.sense_us += stage.duration_us,
                "transfer" => self.transfer_us += stage.duration_us,
                "decode" => self.decode_us += stage.duration_us,
                "retry" => self.retry_us += stage.duration_us,
                "die_reset" => self.die_reset_us += stage.duration_us,
                // Unlabelled stages still count toward busy time; the
                // residual wait stays an underestimate, never negative.
                _ => self.wait_us += stage.duration_us,
            }
        }
        self.wait_us += (span.response_us - queue - busy).max(0.0);
    }

    fn scaled(mut self, inv: f64) -> PathComponents {
        self.queue_us *= inv;
        self.sense_us *= inv;
        self.transfer_us *= inv;
        self.decode_us *= inv;
        self.retry_us *= inv;
        self.die_reset_us *= inv;
        self.wait_us *= inv;
        self
    }
}

/// One scheme's critical-path attribution: the mean breakdown over all
/// its spans and over its p99 tail ("where does p99 go").
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeAttribution {
    /// Scheme label.
    pub scheme: String,
    /// Spans attributed.
    pub reads: u64,
    /// Mean per-read breakdown over every span.
    pub mean: PathComponents,
    /// Response time of the p99-rank span (µs); tail threshold.
    pub p99_threshold_us: f64,
    /// Spans in the tail (`response ≥ p99_threshold_us`).
    pub tail_reads: u64,
    /// Mean per-read breakdown over the tail population.
    pub tail: PathComponents,
}

/// Folds read spans into per-scheme wait/busy breakdowns. Spans must be
/// in canonical `(scheme, seq)` order (see
/// [`SpanBuffer::sorted_spans`](crate::span::SpanBuffer::sorted_spans));
/// output schemes follow first-appearance order.
pub fn critical_path(spans: &[&crate::span::ReadSpan]) -> Vec<SchemeAttribution> {
    let mut out: Vec<SchemeAttribution> = Vec::new();
    let mut i = 0;
    while i < spans.len() {
        let scheme = spans[i].scheme;
        let mut group: Vec<&crate::span::ReadSpan> = Vec::new();
        while i < spans.len() && spans[i].scheme == scheme {
            group.push(spans[i]);
            i += 1;
        }
        let mut mean = PathComponents::default();
        for span in &group {
            mean.add_span(span);
        }
        let mean = mean.scaled(1.0 / group.len() as f64);
        // Tail threshold: the response at rank round(0.99·(n−1)) of the
        // sorted responses — the same rank convention SimStats uses for
        // its reported percentiles.
        let mut responses: Vec<f64> = group.iter().map(|s| s.response_us).collect();
        responses.sort_by(f64::total_cmp);
        let rank = (0.99 * (responses.len() - 1) as f64).round() as usize;
        let threshold = responses[rank.min(responses.len() - 1)];
        let tail_spans: Vec<&&crate::span::ReadSpan> = group
            .iter()
            .filter(|s| s.response_us >= threshold)
            .collect();
        let mut tail = PathComponents::default();
        for span in &tail_spans {
            tail.add_span(span);
        }
        let tail = tail.scaled(1.0 / tail_spans.len().max(1) as f64);
        out.push(SchemeAttribution {
            scheme: scheme.to_string(),
            reads: group.len() as u64,
            mean,
            p99_threshold_us: threshold,
            tail_reads: tail_spans.len() as u64,
            tail,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ReadSpan, SpanOutcome, StageTiming};

    fn sampler() -> SeriesSampler {
        SeriesSampler::new(
            "flexlevel",
            1000,
            vec!["reads".into(), "retries".into()],
            vec!["uber".into()],
        )
    }

    #[test]
    fn windows_emit_delta_and_cumulative() {
        let mut s = sampler();
        assert!(s.due(999.9).is_none());
        assert_eq!(s.due(1000.0), Some(1000.0));
        s.emit(vec![10, 1], vec![0.5]);
        assert!(s.due(1000.0).is_none());
        assert_eq!(s.due(2500.0), Some(2000.0));
        s.emit(vec![25, 1], vec![0.25]);
        assert!(s.due(2500.0).is_none());
        let snaps = s.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].window, 0);
        assert_eq!(snaps[0].t_us, 1000.0);
        assert_eq!(snaps[0].cumulative, vec![10, 1]);
        assert_eq!(snaps[0].delta, vec![10, 1]);
        assert_eq!(snaps[1].delta, vec![15, 0]);
        assert_eq!(snaps[1].gauges, vec![0.25]);
    }

    #[test]
    fn empty_windows_emit_zero_deltas() {
        let mut s = sampler();
        // An arrival at 3.2 ms crosses three boundaries; the caller
        // emits each with the same (unchanged) cumulative values.
        let mut crossed = 0;
        while s.due(3200.0).is_some() {
            s.emit(vec![7, 0], vec![1.0]);
            crossed += 1;
        }
        assert_eq!(crossed, 3);
        assert_eq!(s.snapshots()[0].delta, vec![7, 0]);
        assert_eq!(s.snapshots()[1].delta, vec![0, 0]);
        assert_eq!(s.snapshots()[2].delta, vec![0, 0]);
    }

    #[test]
    fn flush_is_idempotent() {
        let mut s = sampler();
        s.flush(vec![3, 1], vec![0.0]);
        s.flush(vec![9, 9], vec![9.0]);
        assert_eq!(s.snapshots().len(), 1);
        assert_eq!(s.snapshots()[0].cumulative, vec![3, 1]);
    }

    #[test]
    fn state_round_trips_through_restore() {
        let mut s = sampler();
        s.emit(vec![10, 1], vec![0.5]);
        s.emit(vec![25, 1], vec![0.25]);
        let state = s.state();
        let mut fresh = sampler();
        assert!(fresh.restore(&state));
        fresh.emit(vec![30, 2], vec![0.1]);
        s.emit(vec![30, 2], vec![0.1]);
        assert_eq!(s.snapshots(), fresh.snapshots());
        // Mismatched interval or arity is rejected.
        let mut other = SeriesSampler::new("x", 500, vec!["reads".into()], vec![]);
        assert!(!other.restore(&state));
    }

    #[test]
    fn reset_clears_accumulation_but_keeps_schema() {
        let mut s = sampler();
        s.emit(vec![10, 1], vec![0.5]);
        s.reset();
        assert!(s.snapshots().is_empty());
        assert_eq!(s.due(1000.0), Some(1000.0));
        s.emit(vec![4, 4], vec![0.0]);
        assert_eq!(s.snapshots()[0].delta, vec![4, 4]);
    }

    #[test]
    fn extend_schema_only_before_first_window() {
        let mut s = sampler();
        s.extend_schema(&["t0_served".into()], &["t0_inflight".into()]);
        assert_eq!(s.counter_names().len(), 3);
        s.emit(vec![1, 2, 3], vec![0.0, 1.0]);
        assert_eq!(s.snapshots()[0].cumulative, vec![1, 2, 3]);
    }

    fn span(scheme: &'static str, queue: f64, sense: f64, retry: f64) -> ReadSpan {
        ReadSpan {
            seq: 0,
            lpn: 0,
            scheme,
            tenant: 0,
            arrival_us: 100.0,
            start_us: 100.0 + queue,
            response_us: queue + sense + retry + 5.0,
            sensing_levels: 1,
            decode_iterations: 3,
            retry_rungs: u32::from(retry > 0.0),
            stages: vec![
                StageTiming {
                    stage: "sense",
                    offset_us: 0.0,
                    duration_us: sense,
                },
                StageTiming {
                    stage: "retry",
                    offset_us: sense,
                    duration_us: retry,
                },
            ],
            outcome: SpanOutcome::Success,
        }
    }

    #[test]
    fn critical_path_folds_queue_busy_and_wait() {
        let spans = [
            span("flexlevel", 10.0, 80.0, 0.0),
            span("flexlevel", 30.0, 80.0, 400.0),
        ];
        let refs: Vec<&ReadSpan> = spans.iter().collect();
        let attr = critical_path(&refs);
        assert_eq!(attr.len(), 1);
        let a = &attr[0];
        assert_eq!(a.reads, 2);
        assert_eq!(a.mean.queue_us, 20.0);
        assert_eq!(a.mean.sense_us, 80.0);
        assert_eq!(a.mean.retry_us, 200.0);
        assert_eq!(a.mean.wait_us, 5.0);
        // p99 of two spans is the slower one.
        assert_eq!(a.p99_threshold_us, 515.0);
        assert_eq!(a.tail_reads, 1);
        assert_eq!(a.tail.retry_us, 400.0);
        let total = a.mean.total_us();
        assert!((total - (20.0 + 80.0 + 200.0 + 5.0)).abs() < 1e-9);
    }

    #[test]
    fn critical_path_groups_schemes_in_order() {
        let spans = [
            span("baseline", 1.0, 2.0, 0.0),
            span("flexlevel", 1.0, 2.0, 0.0),
        ];
        let refs: Vec<&ReadSpan> = spans.iter().collect();
        let attr = critical_path(&refs);
        assert_eq!(attr.len(), 2);
        assert_eq!(attr[0].scheme, "baseline");
        assert_eq!(attr[1].scheme, "flexlevel");
    }
}
