//! Property tests for the deterministic event queue.
//!
//! The pipelined timing model's bit-identical-replay contract rests on
//! the queue imposing a *total* order on events: earliest time first,
//! and FIFO (push order) among events that share a timestamp. These
//! properties exercise arbitrary interleavings, including heavy ties.

use flash_model::Micros;
use proptest::prelude::*;
use ssd::events::EventQueue;

proptest! {
    /// Popping drains events in exactly the order a stable sort by time
    /// would produce: times are non-decreasing, and same-time events
    /// keep their push order. The time domain is tiny (0..6) so most
    /// cases contain many exact ties.
    #[test]
    fn pops_are_stably_sorted_by_time(times in proptest::collection::vec(0u64..6, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Micros(t as f64), i);
        }

        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: preserves push order on ties

        let popped: Vec<(u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time.as_f64() as u64, e.payload))).collect();
        prop_assert_eq!(popped, reference);
    }

    /// Two queues fed the same schedule drain identically — the order is
    /// a function of the input alone, never of heap internals.
    #[test]
    fn drain_order_is_deterministic(times in proptest::collection::vec(0u64..4, 1..150)) {
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            a.push(Micros(t as f64), i);
            b.push(Micros(t as f64), i);
        }
        while let Some(ea) = a.pop() {
            let eb = b.pop().expect("same length");
            prop_assert_eq!(ea.time.as_f64().to_bits(), eb.time.as_f64().to_bits());
            prop_assert_eq!(ea.seq, eb.seq);
            prop_assert_eq!(ea.payload, eb.payload);
        }
        prop_assert!(b.pop().is_none());
    }

    /// Interleaving pops with pushes never reorders already-due events:
    /// any event popped is no later than everything still in the queue,
    /// and ties still resolve by sequence number.
    #[test]
    fn pop_always_yields_global_minimum(
        times in proptest::collection::vec(0u64..5, 2..100),
        pop_every in 2usize..5,
    ) {
        let mut q = EventQueue::new();
        let mut popped = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Micros(t as f64), i);
            if i % pop_every == 0 {
                if let Some(ev) = q.pop() {
                    if let Some(next) = q.peek_time() {
                        prop_assert!(ev.time.as_f64() <= next.as_f64());
                    }
                    popped.push(ev);
                }
            }
        }
        while let Some(ev) = q.pop() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), times.len());
        // Same-time events always leave the queue in push (seq) order:
        // an earlier-seq event is pushed earlier, so whenever a
        // later-seq tie is poppable the earlier one is either already
        // out or still ahead of it in the heap.
        for w in popped.windows(2) {
            if w[0].time.as_f64() == w[1].time.as_f64() {
                prop_assert!(w[0].seq < w[1].seq,
                    "tie broke against push order: {:?} before {:?}", w[0], w[1]);
            }
        }
    }
}
