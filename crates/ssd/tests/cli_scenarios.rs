//! CLI contract of the scenario engine: `--list-scenarios` enumerates
//! the registry, parse errors (unknown preset) exit 2 with the valid
//! names listed, and simulation failures exit 1 — two distinct failure
//! channels scripts can branch on.

use std::process::Command;

fn sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexlevel-sim"))
}

#[test]
fn list_scenarios_prints_the_registry() {
    let out = sim().arg("--list-scenarios").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    for name in ssd::ScenarioSpec::names() {
        assert!(
            stdout.lines().any(|l| l.starts_with(name)),
            "listing must include {name}:\n{stdout}"
        );
    }
}

#[test]
fn unknown_scenario_is_a_parse_error_listing_valid_names() {
    let out = sim()
        .args(["--scenario", "no-such-preset"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "parse errors exit 2");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("unknown scenario 'no-such-preset'"),
        "stderr names the bad preset:\n{stderr}"
    );
    for name in ssd::ScenarioSpec::names() {
        assert!(
            stderr.contains(name),
            "stderr must list valid name {name}:\n{stderr}"
        );
    }
}

#[test]
fn simulation_failure_exits_one() {
    // A footprint far beyond the 64-block device's capacity fails every
    // scheme's run — a *simulation* failure, not a parse failure.
    let out = sim()
        .args([
            "--blocks",
            "64",
            "--requests",
            "50",
            "--footprint",
            "99999999",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "sim failures exit 1");
    let stderr = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(
        stderr.contains("exceeds device capacity"),
        "stderr explains the failure:\n{stderr}"
    );
}

#[test]
fn baseline_scenario_runs_clean() {
    let out = sim()
        .args([
            "--scenario",
            "baseline",
            "--blocks",
            "64",
            "--requests",
            "500",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "baseline scenario must succeed");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        stdout.contains("mean response"),
        "report printed:\n{stdout}"
    );
}

#[test]
fn fault_presets_surface_recovery_panel() {
    // A non-baseline preset that enables fault injection must print the
    // recovery panel even without `--faults` on the command line.
    let out = sim()
        .args([
            "--scenario",
            "seu-burst",
            "--blocks",
            "64",
            "--requests",
            "2000",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    assert!(
        stdout.contains("patrol scrub"),
        "fault panel printed:\n{stdout}"
    );
}
