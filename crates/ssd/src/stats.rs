//! Simulation counters and response-time accounting.

use flash_model::Micros;
use serde::{Deserialize, Serialize};

/// Everything the experiments read out of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Host read requests served.
    pub host_reads: u64,
    /// Host write requests served.
    pub host_writes: u64,
    /// Host read pages served from the write buffer.
    pub buffer_read_hits: u64,
    /// Flash page reads (host + GC + migration).
    pub flash_reads: u64,
    /// Flash page programs (host + GC + migration).
    pub flash_programs: u64,
    /// Block erases.
    pub erases: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_migrated_pages: u64,
    /// AccessEval promotions into reduced pages.
    pub promotions: u64,
    /// AccessEval demotions back to normal pages.
    pub demotions: u64,
    /// Host page reads served from reduced-state pages.
    pub reduced_reads: u64,
    /// Host page reads served from normal pages, by extra sensing levels
    /// used (index = levels).
    pub reads_by_sensing_level: Vec<u64>,
    /// Sum of host request response times (µs).
    pub total_response_us: f64,
    /// Sum of host *read* request response times (µs).
    pub read_response_us: f64,
    /// Maximum observed response time (µs).
    pub max_response_us: f64,
    /// Bounded sample of response times for percentile estimation
    /// (systematic 1-in-`SAMPLE_STRIDE` sampling).
    pub response_samples: Vec<f64>,
}

/// Response-time sampling stride for percentile estimation.
const SAMPLE_STRIDE: u64 = 4;
/// Hard cap on retained samples.
const MAX_SAMPLES: usize = 1 << 17;

impl SimStats {
    /// Creates zeroed stats able to track up to `max_levels` extra sensing
    /// levels.
    pub fn new(max_levels: u32) -> SimStats {
        SimStats {
            reads_by_sensing_level: vec![0; max_levels as usize + 1],
            ..SimStats::default()
        }
    }

    /// Records one host request's response time.
    pub fn record_response(&mut self, response: Micros, is_read: bool) {
        self.total_response_us += response.as_f64();
        if is_read {
            self.read_response_us += response.as_f64();
        }
        self.max_response_us = self.max_response_us.max(response.as_f64());
        if self.host_requests().is_multiple_of(SAMPLE_STRIDE)
            && self.response_samples.len() < MAX_SAMPLES
        {
            self.response_samples.push(response.as_f64());
        }
    }

    /// Response-time percentile (`q` in `[0, 1]`) from the retained
    /// sample, or zero if nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn response_percentile(&self, q: f64) -> Micros {
        assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
        if self.response_samples.is_empty() {
            return Micros::ZERO;
        }
        let mut sorted = self.response_samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite response times"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Micros(sorted[idx])
    }

    /// Host requests served.
    pub fn host_requests(&self) -> u64 {
        self.host_reads + self.host_writes
    }

    /// Mean response time over all host requests.
    pub fn mean_response(&self) -> Micros {
        if self.host_requests() == 0 {
            return Micros::ZERO;
        }
        Micros(self.total_response_us / self.host_requests() as f64)
    }

    /// Mean response time over host reads only.
    pub fn mean_read_response(&self) -> Micros {
        if self.host_reads == 0 {
            return Micros::ZERO;
        }
        Micros(self.read_response_us / self.host_reads as f64)
    }

    /// Write amplification: flash programs per host-written page. Needs
    /// the host page-write count, which the caller tracks.
    pub fn write_amplification(&self, host_pages_written: u64) -> f64 {
        if host_pages_written == 0 {
            return 0.0;
        }
        self.flash_programs as f64 / host_pages_written as f64
    }

    /// Fraction of normal-page host reads that needed soft sensing.
    pub fn soft_read_fraction(&self) -> f64 {
        let total: u64 = self.reads_by_sensing_level.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let soft: u64 = self.reads_by_sensing_level.iter().skip(1).sum();
        soft as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_accounting() {
        let mut s = SimStats::new(6);
        s.host_reads = 2;
        s.host_writes = 1;
        s.record_response(Micros(100.0), true);
        s.record_response(Micros(300.0), true);
        s.record_response(Micros(50.0), false);
        assert_eq!(s.host_requests(), 3);
        assert_eq!(s.mean_response(), Micros(150.0));
        assert_eq!(s.mean_read_response(), Micros(200.0));
        assert_eq!(s.max_response_us, 300.0);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SimStats::new(6);
        assert_eq!(s.mean_response(), Micros::ZERO);
        assert_eq!(s.mean_read_response(), Micros::ZERO);
        assert_eq!(s.write_amplification(0), 0.0);
        assert_eq!(s.soft_read_fraction(), 0.0);
    }

    #[test]
    fn soft_read_fraction() {
        let mut s = SimStats::new(6);
        s.reads_by_sensing_level[0] = 80;
        s.reads_by_sensing_level[2] = 15;
        s.reads_by_sensing_level[6] = 5;
        assert!((s.soft_read_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn write_amplification() {
        let mut s = SimStats::new(6);
        s.flash_programs = 150;
        assert!((s.write_amplification(100) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_from_samples() {
        let mut s = SimStats::new(6);
        // Feed 400 responses of increasing size; every 4th is sampled.
        for i in 0..400u64 {
            s.host_reads += 1;
            s.record_response(Micros(i as f64), true);
        }
        assert!(!s.response_samples.is_empty());
        let p50 = s.response_percentile(0.5).as_f64();
        let p99 = s.response_percentile(0.99).as_f64();
        assert!(p50 < p99);
        assert!((150.0..250.0).contains(&p50), "p50 {p50}");
        assert!(p99 > 380.0, "p99 {p99}");
        // Degenerate: empty stats.
        assert_eq!(SimStats::new(6).response_percentile(0.99), Micros::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        let _ = SimStats::new(6).response_percentile(1.5);
    }
}
