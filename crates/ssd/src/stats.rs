//! Simulation counters, response-time and per-stage accounting.

use flash_model::Micros;
use serde::{Deserialize, Serialize};

use crate::pipeline::StageKind;

/// Occupancy accounting for one pipeline stage class (all units of that
/// class combined). Populated only by the pipelined timing model; the
/// single-queue model has no per-stage visibility and leaves these zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageAccount {
    /// Stage executions.
    pub ops: u64,
    /// Total time units of this class were held (µs).
    pub busy_us: f64,
    /// Total time ready stages waited for a free unit (µs).
    pub wait_us: f64,
}

impl StageAccount {
    /// Mean service time per stage execution.
    pub fn mean_latency(&self) -> Micros {
        if self.ops == 0 {
            return Micros::ZERO;
        }
        Micros(self.busy_us / self.ops as f64)
    }

    /// Mean queueing delay per stage execution.
    pub fn mean_wait(&self) -> Micros {
        if self.ops == 0 {
            return Micros::ZERO;
        }
        Micros(self.wait_us / self.ops as f64)
    }
}

/// Everything the experiments read out of a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Host read requests served.
    pub host_reads: u64,
    /// Host write requests served.
    pub host_writes: u64,
    /// Host read pages served from the write buffer.
    pub buffer_read_hits: u64,
    /// Flash page reads (host + GC + migration).
    pub flash_reads: u64,
    /// Flash page programs (host + GC + migration).
    pub flash_programs: u64,
    /// Block erases.
    pub erases: u64,
    /// GC invocations.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_migrated_pages: u64,
    /// AccessEval promotions into reduced pages.
    pub promotions: u64,
    /// AccessEval demotions back to normal pages.
    pub demotions: u64,
    /// Host page reads served from reduced-state pages.
    pub reduced_reads: u64,
    /// Host page reads served from normal pages, by extra sensing levels
    /// used (index = levels).
    pub reads_by_sensing_level: Vec<u64>,
    /// Sum of host request response times (µs).
    pub total_response_us: f64,
    /// Sum of host *read* request response times (µs).
    pub read_response_us: f64,
    /// Maximum observed response time (µs).
    pub max_response_us: f64,
    /// Bounded uniform sample of response times for percentile
    /// estimation (deterministic seeded reservoir; exact — every response
    /// retained — for runs up to the reservoir capacity).
    pub response_samples: Vec<f64>,
    /// Responses offered to the reservoir so far.
    pub responses_seen: u64,
    /// SplitMix64 state driving reservoir replacement (fixed seed, so
    /// identical runs sample identically).
    pub sample_state: u64,
    /// Schedule makespan: when the last resource went idle (µs). The
    /// single-queue model reports the maximum channel horizon.
    pub makespan_us: f64,
    /// Extra flash read attempts spent by the recovery ladder (also
    /// included in [`flash_reads`](Self::flash_reads)).
    pub retry_reads: u64,
    /// Host frame reads that failed their first decode but were
    /// recovered by the ladder.
    pub recovered_reads: u64,
    /// Host frame reads the full ladder could not recover (data loss).
    pub uncorrectable_reads: u64,
    /// Reads by recovery-ladder depth: index 0 counts clean first-attempt
    /// decodes, index `d` counts reads needing `d` extra attempts. All
    /// zero unless fault injection ran.
    pub retry_depth_histogram: Vec<u64>,
    /// Page programs that failed their status check.
    pub program_failures: u64,
    /// Blocks retired as grown-bad.
    pub retired_blocks: u64,
    /// Transient whole-die faults cleared by a reset.
    pub die_resets: u64,
    /// Patrol-scrub block visits.
    pub scrub_runs: u64,
    /// Pages read by the patrol scrubber.
    pub scrub_reads: u64,
    /// Pages rewritten by the scrubber because retention BER crossed the
    /// refresh threshold.
    pub scrub_refreshes: u64,
    /// Device time attributable to recovery (retries + die resets), µs.
    pub recovery_latency_us: f64,
    /// Sensing-stage occupancy (pipelined model).
    pub stage_sense: StageAccount,
    /// Bus-transfer-stage occupancy (pipelined model).
    pub stage_transfer: StageAccount,
    /// Decode-stage occupancy (pipelined model).
    pub stage_decode: StageAccount,
    /// Program-stage occupancy (pipelined model).
    pub stage_program: StageAccount,
    /// Erase-stage occupancy (pipelined model).
    pub stage_erase: StageAccount,
    /// Per-tenant serving statistics; empty for closed-trace replay (the
    /// `serde` default keeps pre-serving JSON fixtures decodable).
    #[serde(default)]
    pub tenants: Vec<TenantStats>,
    /// Journal records replayed by sudden-power-off recovery; zero unless
    /// this run resumed from a crashed image (`serde` default keeps old
    /// fixtures decodable).
    #[serde(default)]
    pub journal_replayed: u64,
    /// Torn (interrupted, uncorrectable) pages detected and discarded by
    /// recovery.
    #[serde(default)]
    pub torn_pages_discarded: u64,
    /// Requests served between the restored checkpoint and the crash
    /// point (how much work recovery had to re-establish).
    #[serde(default)]
    pub checkpoint_age_requests: u64,
}

/// Reservoir capacity: runs at or below this many responses keep every
/// sample, making percentiles exact.
const MAX_SAMPLES: usize = 1 << 17;
/// Fixed seed of the reservoir's replacement stream.
const SAMPLE_SEED: u64 = 0x5EED_5A3B_1E5E_4701;

/// One step of the SplitMix64 generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Offers one value to an Algorithm-R reservoir. `responses_seen` must
/// already count this value; `state` is the SplitMix64 replacement stream.
/// Shared by the run-wide and per-tenant reservoirs so both sample with
/// exactly the same (deterministic) law.
fn reservoir_offer(samples: &mut Vec<f64>, responses_seen: u64, state: &mut u64, value: f64) {
    if samples.len() < MAX_SAMPLES {
        samples.push(value);
    } else {
        let slot = splitmix64(state) % responses_seen;
        if (slot as usize) < MAX_SAMPLES {
            samples[slot as usize] = value;
        }
    }
}

/// Percentile (`q` in `[0, 1]`) of a retained sample, or zero if empty.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
fn percentile_of(samples: &[f64], q: f64) -> Micros {
    assert!((0.0..=1.0).contains(&q), "percentile out of range: {q}");
    if samples.is_empty() {
        return Micros::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite response times"));
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Micros(sorted[idx])
}

/// Per-tenant serving statistics: admission accounting plus latency-SLO
/// tracking. Populated only by [`SsdSimulator::serve`] runs with a
/// tenanted [`ServeOptions`]; closed-trace replay leaves
/// [`SimStats::tenants`] empty.
///
/// [`SsdSimulator::serve`]: crate::sim::SsdSimulator::serve
/// [`ServeOptions`]: crate::serve::ServeOptions
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Requests this tenant submitted.
    pub arrivals: u64,
    /// Requests actually served (admitted and completed).
    pub served: u64,
    /// Requests rejected by queue-depth backpressure (`Drop` policy).
    pub dropped: u64,
    /// Requests delayed past their arrival by queue-depth backpressure
    /// (`Defer` policy); still served, with the wait charged to response.
    pub deferred: u64,
    /// Served read requests.
    pub reads: u64,
    /// Served write requests.
    pub writes: u64,
    /// Sum of served-request response times (µs).
    pub total_response_us: f64,
    /// Maximum observed response time (µs).
    pub max_response_us: f64,
    /// Latency SLO target (µs); 0 disables violation counting.
    pub slo_target_us: f64,
    /// Served requests whose response exceeded the SLO target.
    pub slo_violations: u64,
    /// Bounded uniform sample of response times (same deterministic
    /// Algorithm-R reservoir as [`SimStats::response_samples`]).
    pub response_samples: Vec<f64>,
    /// Responses offered to this tenant's reservoir so far.
    pub responses_seen: u64,
    /// SplitMix64 state of this tenant's reservoir.
    pub sample_state: u64,
}

impl TenantStats {
    /// Creates zeroed stats tracking violations against `slo_target_us`
    /// (0 disables the check).
    pub fn new(slo_target_us: f64) -> TenantStats {
        TenantStats {
            slo_target_us,
            sample_state: SAMPLE_SEED,
            ..TenantStats::default()
        }
    }

    /// Records one served request's response time against the SLO.
    pub fn record_response(&mut self, response: Micros) {
        let us = response.as_f64();
        self.total_response_us += us;
        self.max_response_us = self.max_response_us.max(us);
        if self.slo_target_us > 0.0 && us > self.slo_target_us {
            self.slo_violations += 1;
        }
        self.responses_seen += 1;
        reservoir_offer(
            &mut self.response_samples,
            self.responses_seen,
            &mut self.sample_state,
            us,
        );
    }

    /// Response-time percentile (`q` in `[0, 1]`), or zero if nothing was
    /// served.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn response_percentile(&self, q: f64) -> Micros {
        percentile_of(&self.response_samples, q)
    }

    /// Median response time.
    pub fn p50(&self) -> Micros {
        self.response_percentile(0.5)
    }

    /// 99th-percentile response time.
    pub fn p99(&self) -> Micros {
        self.response_percentile(0.99)
    }

    /// 99.9th-percentile response time.
    pub fn p999(&self) -> Micros {
        self.response_percentile(0.999)
    }

    /// Mean response time over served requests.
    pub fn mean_response(&self) -> Micros {
        if self.served == 0 {
            return Micros::ZERO;
        }
        Micros(self.total_response_us / self.served as f64)
    }

    /// Fraction of served requests violating the SLO (0 when nothing was
    /// served or no SLO is set).
    pub fn slo_violation_rate(&self) -> f64 {
        if self.served == 0 {
            return 0.0;
        }
        self.slo_violations as f64 / self.served as f64
    }
}

impl SimStats {
    /// Creates zeroed stats able to track up to `max_levels` extra sensing
    /// levels.
    pub fn new(max_levels: u32) -> SimStats {
        SimStats {
            reads_by_sensing_level: vec![0; max_levels as usize + 1],
            // Deepest ladder from a zero-level read: one Vref re-read,
            // `max_levels` escalations, one final deep attempt.
            retry_depth_histogram: vec![0; max_levels as usize + 3],
            sample_state: SAMPLE_SEED,
            ..SimStats::default()
        }
    }

    /// Records one host request's response time.
    ///
    /// Percentile samples use Algorithm R reservoir sampling: the first
    /// `MAX_SAMPLES` (2^17) responses are all kept (exact percentiles
    /// for small runs); past that, response `n` replaces a uniformly
    /// random reservoir slot with probability `MAX_SAMPLES / n`. The replacement
    /// stream is seeded at construction, so sampling is deterministic and
    /// — unlike the strided sampler this replaces — cannot alias against
    /// periodic structure in the trace.
    pub fn record_response(&mut self, response: Micros, is_read: bool) {
        self.total_response_us += response.as_f64();
        if is_read {
            self.read_response_us += response.as_f64();
        }
        self.max_response_us = self.max_response_us.max(response.as_f64());
        self.responses_seen += 1;
        reservoir_offer(
            &mut self.response_samples,
            self.responses_seen,
            &mut self.sample_state,
            response.as_f64(),
        );
    }

    /// Records one pipeline stage execution: `busy` on the unit after
    /// waiting `wait` for it.
    pub fn record_stage(&mut self, kind: StageKind, busy: Micros, wait: Micros) {
        let account = match kind {
            StageKind::Sense => &mut self.stage_sense,
            StageKind::Transfer => &mut self.stage_transfer,
            StageKind::Decode => &mut self.stage_decode,
            StageKind::Program => &mut self.stage_program,
            StageKind::Erase => &mut self.stage_erase,
        };
        account.ops += 1;
        account.busy_us += busy.as_f64();
        account.wait_us += wait.as_f64();
    }

    /// The accumulated account of one stage class.
    pub fn stage(&self, kind: StageKind) -> &StageAccount {
        match kind {
            StageKind::Sense => &self.stage_sense,
            StageKind::Transfer => &self.stage_transfer,
            StageKind::Decode => &self.stage_decode,
            StageKind::Program => &self.stage_program,
            StageKind::Erase => &self.stage_erase,
        }
    }

    /// Fraction of the makespan the `units` units of `kind` were busy
    /// (aggregate: 1.0 = every unit busy the whole run).
    pub fn stage_utilization(&self, kind: StageKind, units: u32) -> f64 {
        if self.makespan_us <= 0.0 || units == 0 {
            return 0.0;
        }
        self.stage(kind).busy_us / (self.makespan_us * units as f64)
    }

    /// Time-averaged number of stages queued (not yet running) on `kind`
    /// units, by Little's law: total wait over the makespan.
    pub fn mean_queue_depth(&self, kind: StageKind) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.stage(kind).wait_us / self.makespan_us
    }

    /// Host requests completed per second of schedule makespan.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 0.0;
        }
        self.host_requests() as f64 / Micros(self.makespan_us).as_secs()
    }

    /// Response-time percentile (`q` in `[0, 1]`) from the retained
    /// sample, or zero if nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn response_percentile(&self, q: f64) -> Micros {
        percentile_of(&self.response_samples, q)
    }

    /// Host requests served.
    pub fn host_requests(&self) -> u64 {
        self.host_reads + self.host_writes
    }

    /// Mean response time over all host requests.
    pub fn mean_response(&self) -> Micros {
        if self.host_requests() == 0 {
            return Micros::ZERO;
        }
        Micros(self.total_response_us / self.host_requests() as f64)
    }

    /// Mean response time over host reads only.
    pub fn mean_read_response(&self) -> Micros {
        if self.host_reads == 0 {
            return Micros::ZERO;
        }
        Micros(self.read_response_us / self.host_reads as f64)
    }

    /// Write amplification: flash programs per host-written page. Needs
    /// the host page-write count, which the caller tracks.
    pub fn write_amplification(&self, host_pages_written: u64) -> f64 {
        if host_pages_written == 0 {
            return 0.0;
        }
        self.flash_programs as f64 / host_pages_written as f64
    }

    /// Records the resolved recovery-ladder depth of one frame read:
    /// `0` = clean first-attempt decode, `d > 0` = `d` extra attempts.
    /// Called only when fault injection is active.
    pub fn record_retry_depth(&mut self, depth: usize) {
        let slot = depth.min(self.retry_depth_histogram.len().saturating_sub(1));
        if let Some(bin) = self.retry_depth_histogram.get_mut(slot) {
            *bin += 1;
        }
    }

    /// Host frames offered to the decoder (sensed normal reads plus
    /// reduced-page reads; retries re-decode the same host frame and are
    /// not counted again).
    pub fn decoded_frames(&self) -> u64 {
        self.reads_by_sensing_level.iter().sum::<u64>() + self.reduced_reads
    }

    /// Observed uncorrectable bit-error rate of the run: sectors declared
    /// uncorrectable per information bit read, the empirical counterpart
    /// of `reliability::EccConfig::uber` (Equation 1). `info_bits` is the
    /// frame's information payload (32 768 for the paper's code).
    pub fn observed_uber(&self, info_bits: u64) -> f64 {
        let bits = self.decoded_frames().saturating_mul(info_bits);
        if bits == 0 {
            return 0.0;
        }
        self.uncorrectable_reads as f64 / bits as f64
    }

    /// Deepest recovery ladder any read needed this run.
    pub fn max_retry_depth(&self) -> usize {
        self.retry_depth_histogram
            .iter()
            .rposition(|&n| n > 0)
            .unwrap_or(0)
    }

    /// Fraction of normal-page host reads that needed soft sensing.
    pub fn soft_read_fraction(&self) -> f64 {
        let total: u64 = self.reads_by_sensing_level.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let soft: u64 = self.reads_by_sensing_level.iter().skip(1).sum();
        soft as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_accounting() {
        let mut s = SimStats::new(6);
        s.host_reads = 2;
        s.host_writes = 1;
        s.record_response(Micros(100.0), true);
        s.record_response(Micros(300.0), true);
        s.record_response(Micros(50.0), false);
        assert_eq!(s.host_requests(), 3);
        assert_eq!(s.mean_response(), Micros(150.0));
        assert_eq!(s.mean_read_response(), Micros(200.0));
        assert_eq!(s.max_response_us, 300.0);
    }

    #[test]
    fn empty_stats_safe() {
        let s = SimStats::new(6);
        assert_eq!(s.mean_response(), Micros::ZERO);
        assert_eq!(s.mean_read_response(), Micros::ZERO);
        assert_eq!(s.write_amplification(0), 0.0);
        assert_eq!(s.soft_read_fraction(), 0.0);
    }

    #[test]
    fn soft_read_fraction() {
        let mut s = SimStats::new(6);
        s.reads_by_sensing_level[0] = 80;
        s.reads_by_sensing_level[2] = 15;
        s.reads_by_sensing_level[6] = 5;
        assert!((s.soft_read_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn write_amplification() {
        let mut s = SimStats::new(6);
        s.flash_programs = 150;
        assert!((s.write_amplification(100) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles_exact_for_small_runs() {
        let mut s = SimStats::new(6);
        // 400 responses of increasing size: far below the reservoir
        // capacity, so every one is retained and percentiles are exact.
        for i in 0..400u64 {
            s.host_reads += 1;
            s.record_response(Micros(i as f64), true);
        }
        assert_eq!(s.response_samples.len(), 400);
        assert_eq!(s.response_percentile(0.5), Micros(200.0));
        assert_eq!(s.response_percentile(0.99), Micros(395.0));
        assert_eq!(s.response_percentile(0.0), Micros(0.0));
        assert_eq!(s.response_percentile(1.0), Micros(399.0));
        // Degenerate: empty stats.
        assert_eq!(SimStats::new(6).response_percentile(0.99), Micros::ZERO);
    }

    #[test]
    fn reservoir_sampling_is_capped_unbiased_and_deterministic() {
        let feed = |n: u64| {
            let mut s = SimStats::new(6);
            for i in 0..n {
                // A strongly periodic trace: the old strided sampler
                // (1-in-4) would only ever see phase 0 of this pattern.
                s.record_response(Micros((i % 4) as f64 * 100.0), true);
            }
            s
        };
        let n = (MAX_SAMPLES + 50_000) as u64;
        let a = feed(n);
        assert_eq!(a.response_samples.len(), MAX_SAMPLES);
        assert_eq!(a.responses_seen, n);
        // All four phases survive in the reservoir in similar proportion.
        for phase in 0..4 {
            let count = a
                .response_samples
                .iter()
                .filter(|&&v| v == phase as f64 * 100.0)
                .count();
            let share = count as f64 / MAX_SAMPLES as f64;
            assert!(
                (share - 0.25).abs() < 0.02,
                "phase {phase} share {share} aliased"
            );
        }
        // Deterministic: a second identical run reproduces the reservoir.
        assert_eq!(a, feed(n));
    }

    #[test]
    fn reservoir_empty_run_is_all_zero() {
        let s = SimStats::new(6);
        assert_eq!(s.responses_seen, 0);
        assert!(s.response_samples.is_empty());
        assert_eq!(s.response_percentile(0.0), Micros::ZERO);
        assert_eq!(s.response_percentile(0.5), Micros::ZERO);
        assert_eq!(s.response_percentile(1.0), Micros::ZERO);
        let t = TenantStats::new(500.0);
        assert_eq!(t.p50(), Micros::ZERO);
        assert_eq!(t.p99(), Micros::ZERO);
        assert_eq!(t.p999(), Micros::ZERO);
        assert_eq!(t.mean_response(), Micros::ZERO);
        assert_eq!(t.slo_violation_rate(), 0.0);
    }

    #[test]
    fn reservoir_at_exact_capacity_keeps_everything() {
        // Exactly 2^17 responses: the reservoir is full but no replacement
        // draw has happened yet, so percentiles are still exact and the
        // SplitMix64 state is untouched.
        let mut s = SimStats::new(6);
        for i in 0..MAX_SAMPLES as u64 {
            s.record_response(Micros(i as f64), true);
        }
        assert_eq!(s.response_samples.len(), MAX_SAMPLES);
        assert_eq!(s.responses_seen, MAX_SAMPLES as u64);
        assert_eq!(s.sample_state, SAMPLE_SEED, "no replacement draw yet");
        assert_eq!(s.response_percentile(0.0), Micros(0.0));
        assert_eq!(s.response_percentile(1.0), Micros((MAX_SAMPLES - 1) as f64));
        // Exact median of 0..131071: idx = round(131071 * 0.5) = 65536.
        assert_eq!(s.response_percentile(0.5), Micros(65_536.0));
        // The very next response must trigger exactly one draw.
        s.record_response(Micros(0.0), true);
        assert_ne!(s.sample_state, SAMPLE_SEED);
        assert_eq!(s.response_samples.len(), MAX_SAMPLES);
    }

    #[test]
    fn reservoir_past_capacity_is_pinned() {
        // 2^17 + 4096 monotone responses through the seeded reservoir:
        // the retained sample (hence the percentiles) is a deterministic
        // function of SAMPLE_SEED alone. The literals below pin it —
        // any change to the sampling law or seed shows up here.
        let feed = || {
            let mut s = SimStats::new(6);
            for i in 0..(MAX_SAMPLES as u64 + 4_096) {
                s.record_response(Micros(i as f64), true);
            }
            s
        };
        let s = feed();
        assert_eq!(s.response_samples.len(), MAX_SAMPLES);
        assert_eq!(s.responses_seen, MAX_SAMPLES as u64 + 4_096);
        assert_eq!(s, feed(), "reservoir must be run-to-run deterministic");
        let p50 = s.response_percentile(0.5).as_f64();
        let p99 = s.response_percentile(0.99).as_f64();
        let p999 = s.response_percentile(0.999).as_f64();
        assert_eq!(
            (p50, p99, p999),
            (67_564.0, 133_810.0, 135_031.0),
            "pinned percentiles moved — sampling law changed"
        );
    }

    #[test]
    fn tenant_stats_slo_accounting() {
        let mut t = TenantStats::new(200.0);
        t.served = 4;
        t.record_response(Micros(100.0));
        t.record_response(Micros(300.0));
        t.record_response(Micros(250.0));
        t.record_response(Micros(200.0)); // boundary: not a violation
        assert_eq!(t.slo_violations, 2);
        assert_eq!(t.slo_violation_rate(), 0.5);
        assert_eq!(t.max_response_us, 300.0);
        assert_eq!(t.mean_response(), Micros(212.5));
        assert_eq!(t.p50(), Micros(250.0));
        // No SLO ⇒ no violations counted.
        let mut free = TenantStats::new(0.0);
        free.record_response(Micros(1e9));
        assert_eq!(free.slo_violations, 0);
    }

    #[test]
    fn stage_accounting_and_derived_metrics() {
        let mut s = SimStats::new(6);
        s.record_stage(StageKind::Sense, Micros(90.0), Micros(10.0));
        s.record_stage(StageKind::Sense, Micros(90.0), Micros(0.0));
        s.record_stage(StageKind::Decode, Micros(5.0), Micros(0.0));
        s.makespan_us = 400.0;
        s.host_reads = 2;
        assert_eq!(s.stage(StageKind::Sense).ops, 2);
        assert_eq!(s.stage(StageKind::Sense).mean_latency(), Micros(90.0));
        assert_eq!(s.stage(StageKind::Sense).mean_wait(), Micros(5.0));
        assert_eq!(s.stage(StageKind::Transfer).ops, 0);
        assert_eq!(s.stage(StageKind::Transfer).mean_latency(), Micros::ZERO);
        // 180 µs of sensing across 2 dies over a 400 µs run.
        let util = s.stage_utilization(StageKind::Sense, 2);
        assert!((util - 180.0 / 800.0).abs() < 1e-12, "utilization {util}");
        let depth = s.mean_queue_depth(StageKind::Sense);
        assert!((depth - 10.0 / 400.0).abs() < 1e-12, "queue depth {depth}");
        // 2 requests in 400 µs = 5000 req/s.
        assert!((s.throughput_rps() - 5000.0).abs() < 1e-9);
        // Degenerate guards.
        assert_eq!(SimStats::new(6).throughput_rps(), 0.0);
        assert_eq!(SimStats::new(6).stage_utilization(StageKind::Sense, 4), 0.0);
        assert_eq!(s.stage_utilization(StageKind::Sense, 0), 0.0);
        assert_eq!(SimStats::new(6).mean_queue_depth(StageKind::Decode), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        let _ = SimStats::new(6).response_percentile(1.5);
    }

    #[test]
    fn recovery_panel_accounting() {
        let mut s = SimStats::new(6);
        // Ladder depths 0..=8 fit the histogram (6 + 3 bins).
        assert_eq!(s.retry_depth_histogram.len(), 9);
        s.record_retry_depth(0);
        s.record_retry_depth(0);
        s.record_retry_depth(1);
        s.record_retry_depth(8);
        s.record_retry_depth(1000); // clamped into the last bin
        assert_eq!(s.retry_depth_histogram[0], 2);
        assert_eq!(s.retry_depth_histogram[1], 1);
        assert_eq!(s.retry_depth_histogram[8], 2);
        assert_eq!(s.max_retry_depth(), 8);
        assert_eq!(SimStats::new(6).max_retry_depth(), 0);
    }

    #[test]
    fn observed_uber_matches_hand_count() {
        let mut s = SimStats::new(6);
        s.reads_by_sensing_level[0] = 600;
        s.reads_by_sensing_level[4] = 300;
        s.reduced_reads = 100;
        assert_eq!(s.decoded_frames(), 1000);
        s.uncorrectable_reads = 2;
        let expected = 2.0 / (1000.0 * 32_768.0);
        assert!((s.observed_uber(32_768) - expected).abs() < 1e-18);
        // No frames read ⇒ UBER 0, not NaN.
        assert_eq!(SimStats::new(6).observed_uber(32_768), 0.0);
    }
}
